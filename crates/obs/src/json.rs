//! Minimal hand-rolled JSON helpers (the workspace takes no external
//! dependencies; this mirrors the hand-rolled text tables in
//! `gemini-harness`).

/// Quotes and escapes `s` as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats `v` as a JSON number; non-finite values become `null`.
///
/// Rust's `Display` for `f64` is the shortest round-trippable decimal
/// and never uses locale-dependent separators, so the output is
/// deterministic across runs.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.5), "0.5");
    }
}

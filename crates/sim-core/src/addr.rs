//! Strongly-typed addresses for the three address spaces of a virtualized
//! system.
//!
//! Memory virtualization involves three address spaces, and the huge-page
//! misalignment problem is precisely a statement about the relation between
//! mappings across them:
//!
//! - [`Gva`] — guest virtual address, used by applications inside a VM,
//! - [`Gpa`] — guest physical address, what the guest OS believes is RAM,
//! - [`Hpa`] — host physical address, actual machine memory.
//!
//! Keeping them as distinct newtypes makes it a type error to, say, index a
//! host buddy allocator with a guest physical address — the exact confusion
//! the misalignment problem thrives on.

use crate::page::{BASE_PAGE_SHIFT, HUGE_PAGE_SHIFT, HUGE_PAGE_SIZE};
use core::fmt;

macro_rules! define_address {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The zero address.
            pub const ZERO: Self = Self(0);

            /// Builds an address from a base-page frame number.
            pub const fn from_frame(frame: u64) -> Self {
                Self(frame << BASE_PAGE_SHIFT)
            }

            /// Builds an address from a huge-page frame number.
            pub const fn from_huge_frame(frame: u64) -> Self {
                Self(frame << HUGE_PAGE_SHIFT)
            }

            /// Returns the raw 64-bit address value.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the base-page frame number containing this address.
            pub const fn frame(self) -> u64 {
                self.0 >> BASE_PAGE_SHIFT
            }

            /// Returns the huge-page frame number containing this address.
            pub const fn huge_frame(self) -> u64 {
                self.0 >> HUGE_PAGE_SHIFT
            }

            /// Rounds down to the containing base-page boundary.
            pub const fn align_down_base(self) -> Self {
                Self(self.0 & !((1u64 << BASE_PAGE_SHIFT) - 1))
            }

            /// Rounds down to the containing huge-page boundary.
            pub const fn align_down_huge(self) -> Self {
                Self(self.0 & !((1u64 << HUGE_PAGE_SHIFT) - 1))
            }

            /// Rounds up to the next base-page boundary (identity when
            /// already aligned).
            pub const fn align_up_base(self) -> Self {
                Self((self.0 + ((1u64 << BASE_PAGE_SHIFT) - 1)) & !((1u64 << BASE_PAGE_SHIFT) - 1))
            }

            /// Rounds up to the next huge-page boundary (identity when
            /// already aligned).
            pub const fn align_up_huge(self) -> Self {
                Self((self.0 + ((1u64 << HUGE_PAGE_SHIFT) - 1)) & !((1u64 << HUGE_PAGE_SHIFT) - 1))
            }

            /// Returns true when the address sits on a base-page boundary.
            pub const fn is_base_aligned(self) -> bool {
                self.0 & ((1u64 << BASE_PAGE_SHIFT) - 1) == 0
            }

            /// Returns true when the address sits on a huge-page boundary.
            pub const fn is_huge_aligned(self) -> bool {
                self.0 & ((1u64 << HUGE_PAGE_SHIFT) - 1) == 0
            }

            /// Returns the offset of this address within its huge page.
            pub const fn huge_offset(self) -> u64 {
                self.0 & (HUGE_PAGE_SIZE - 1)
            }

            /// Address `bytes` after this one.
            pub const fn add(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }

            /// Signed distance in bytes from `other` to `self`.
            pub const fn offset_from(self, other: Self) -> i64 {
                self.0 as i64 - other.0 as i64
            }

            /// Applies a signed byte offset, as used by the EMA offset
            /// descriptors (`GPA = GVA - GuestOffset`).
            pub fn offset_by(self, offset: i64) -> Self {
                Self((self.0 as i64 - offset) as u64)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }
    };
}

define_address!(
    /// A guest virtual address: what an application inside a VM dereferences.
    Gva,
    "Gva"
);
define_address!(
    /// A guest physical address: what the guest OS manages as "RAM"; the
    /// key that the misaligned-huge-page scanner (MHPS) uses to correlate
    /// huge pages across layers.
    Gpa,
    "Gpa"
);
define_address!(
    /// A host physical address: an actual machine memory location.
    Hpa,
    "Hpa"
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{BASE_PAGE_SIZE, HUGE_PAGE_SIZE};

    #[test]
    fn frame_round_trips() {
        let a = Gva::from_frame(123);
        assert_eq!(a.raw(), 123 * BASE_PAGE_SIZE);
        assert_eq!(a.frame(), 123);
        let h = Gpa::from_huge_frame(7);
        assert_eq!(h.raw(), 7 * HUGE_PAGE_SIZE);
        assert_eq!(h.huge_frame(), 7);
    }

    #[test]
    fn alignment_helpers() {
        let a = Hpa(HUGE_PAGE_SIZE + 5000);
        assert_eq!(a.align_down_huge(), Hpa(HUGE_PAGE_SIZE));
        assert_eq!(a.align_down_base(), Hpa(HUGE_PAGE_SIZE + 4096));
        assert_eq!(a.align_up_huge(), Hpa(2 * HUGE_PAGE_SIZE));
        assert_eq!(a.align_up_base(), Hpa(HUGE_PAGE_SIZE + 8192));
        assert!(!a.is_huge_aligned());
        assert!(a.align_down_huge().is_huge_aligned());
        assert!(Hpa(8192).is_base_aligned());
        assert_eq!(a.huge_offset(), 5000);
    }

    #[test]
    fn align_up_is_identity_on_aligned() {
        let a = Gva(3 * HUGE_PAGE_SIZE);
        assert_eq!(a.align_up_huge(), a);
        assert_eq!(a.align_up_base(), a);
    }

    #[test]
    fn offsets_match_ema_arithmetic() {
        // GuestOffset = GVA1 - GPA1; GPA2 = GVA2 - GuestOffset (paper §4.2).
        let gva1 = Gva(10 * HUGE_PAGE_SIZE);
        let gpa1 = Gpa(4 * HUGE_PAGE_SIZE);
        let guest_offset = gva1.offset_from(Gva(gpa1.raw()));
        let gva2 = gva1.add(3 * BASE_PAGE_SIZE);
        let gpa2 = Gpa(gva2.offset_by(guest_offset).raw());
        assert_eq!(gpa2, Gpa(4 * HUGE_PAGE_SIZE + 3 * BASE_PAGE_SIZE));
        // The derived GPA preserves the huge-page-internal offset, which is
        // exactly the property that enables in-place promotion.
        assert_eq!(gva2.huge_offset(), gpa2.huge_offset());
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(format!("{}", Gva(0x1000)), "0x1000");
        assert_eq!(format!("{:?}", Gpa(0x1000)), "Gpa(0x1000)");
    }
}

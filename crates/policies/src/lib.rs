//! Baseline huge-page coalescing policies.
//!
//! These are the systems §6 of the paper compares Gemini against, each
//! implemented from its published description as a [`HugePolicy`] that can
//! be plugged into the guest layer, the host layer, or both:
//!
//! - [`BaseOnly`] — base pages only (`Host-B-VM-B` when used at both
//!   layers).
//! - [`HugeAlways`] — huge pages whenever legal (used at the host with
//!   [`BaseOnly`] in the guest, this is the paper's `Misalignment`
//!   scenario).
//! - [`LinuxThp`] — Linux transparent huge pages: synchronous huge
//!   allocation at fault time plus khugepaged background collapse.
//! - [`Ingens`] — asynchronous, utilization-gated promotion (≥ 90 % of the
//!   region populated).
//! - [`HawkEye`] — access-coverage-ranked asynchronous promotion with
//!   zero-page deduplication (which demotes huge pages it dedups, the
//!   behaviour behind the paper's Specjbb anomaly).
//! - [`CaPaging`] — contiguity-aware paging: per-extent offset
//!   reservations at first fault so later promotions are in-place.
//! - [`TranslationRanger`] — aggressive migration-based coalescing with a
//!   large per-pass budget and copy-always semantics.
//!
//! None of these coordinates across layers; well-aligned huge pages arise
//! only by chance — the misalignment problem Gemini fixes.

pub mod ca_paging;
pub mod hawkeye;
pub mod ingens;
pub mod ranger;
pub mod statics;
pub mod thp;

pub use ca_paging::CaPaging;
pub use hawkeye::HawkEye;
pub use ingens::Ingens;
pub use ranger::TranslationRanger;
pub use statics::{BaseOnly, HugeAlways};
pub use thp::LinuxThp;

use gemini_mm::HugePolicy;

/// Identifies a baseline policy for scenario construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Base pages only.
    Base,
    /// Huge pages whenever legal.
    HugeAlways,
    /// Linux transparent huge pages.
    Thp,
    /// Ingens.
    Ingens,
    /// HawkEye; `zero_heavy` marks workloads with many in-use zero pages
    /// (e.g. Specjbb) that its deduplicator will disturb.
    HawkEye {
        /// Workload has many in-use zero pages.
        zero_heavy: bool,
    },
    /// CA-paging (software component).
    CaPaging,
    /// Translation-ranger.
    Ranger,
}

/// Builds a fresh policy instance of `kind`.
pub fn build(kind: PolicyKind) -> Box<dyn HugePolicy> {
    match kind {
        PolicyKind::Base => Box::new(BaseOnly),
        PolicyKind::HugeAlways => Box::new(HugeAlways),
        PolicyKind::Thp => Box::new(LinuxThp::new()),
        PolicyKind::Ingens => Box::new(Ingens::new()),
        PolicyKind::HawkEye { zero_heavy } => Box::new(HawkEye::new(zero_heavy)),
        PolicyKind::CaPaging => Box::new(CaPaging::new()),
        PolicyKind::Ranger => Box::new(TranslationRanger::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        let kinds = [
            (PolicyKind::Base, "Base"),
            (PolicyKind::HugeAlways, "HugeAlways"),
            (PolicyKind::Thp, "THP"),
            (PolicyKind::Ingens, "Ingens"),
            (PolicyKind::HawkEye { zero_heavy: false }, "HawkEye"),
            (PolicyKind::CaPaging, "CA-paging"),
            (PolicyKind::Ranger, "Translation-ranger"),
        ];
        for (kind, name) in kinds {
            assert_eq!(build(kind).name(), name);
        }
    }
}

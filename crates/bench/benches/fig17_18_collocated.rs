//! Regenerates Figures 17–18: applicability and overhead — two 16-vCPU
//! VMs share the host, one TLB-sensitive and one not.

use gemini_bench::{bench_scale, header};
use gemini_harness::experiments::collocated;

fn main() {
    header("fig17_18_collocated", "Figures 17 + 18");
    let res = collocated::run(&bench_scale(), None).expect("grid succeeds");
    print!("{}", res.render_fig17());
    println!();
    print!("{}", res.render_fig18());
    println!(
        "GEMINI worst-case overhead on the non-TLB-sensitive VM: {:.1}% (paper: <= 3%)",
        res.gemini_nonsensitive_overhead() * 100.0
    );
}

//! Error type shared across the simulator.

use crate::addr::{Gpa, Gva, Hpa};
use crate::ids::VmId;
use core::fmt;

/// Errors surfaced by simulator components.
///
/// Memory-management code paths are written fallibly: allocation failure,
/// double mapping and walks over unmapped addresses are ordinary outcomes
/// that policies react to (e.g. falling back from a huge allocation to base
/// pages), not panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The allocator has no free block of the requested order.
    OutOfMemory {
        /// Buddy order of the failed request.
        order: u32,
    },
    /// A specifically targeted physical range is not free.
    RangeBusy,
    /// A guest virtual address is not covered by any VMA.
    NoVma(Gva),
    /// A guest virtual address is already mapped.
    AlreadyMappedGva(Gva),
    /// A guest physical address is already backed.
    AlreadyMappedGpa(Gpa),
    /// Attempt to operate on an unmapped guest virtual address.
    NotMappedGva(Gva),
    /// Attempt to operate on an unbacked guest physical address.
    NotMappedGpa(Gpa),
    /// A frame was freed that the allocator does not consider allocated.
    BadFree(Hpa),
    /// A huge-page operation was attempted on a misaligned address.
    Unaligned,
    /// Promotion failed because the region's mappings are not contiguous.
    NotContiguous,
    /// The requested region lies outside the configured address space.
    OutOfRange,
    /// An operation named a VM that was never registered.
    UnknownVm(VmId),
    /// A cache was configured with a set count that is not a power of
    /// two; set indexing would silently fall back to a `%` with
    /// different eviction behavior, so the geometry is rejected.
    BadCacheGeometry {
        /// The rejected set count (`entries / assoc`, min 1).
        num_sets: usize,
    },
    /// A virtual-time accounting window ended before it started.
    ClockRegression {
        /// The clock observed at the end of the window.
        now: crate::clock::Cycles,
        /// The clock recorded at the start of the window.
        start: crate::clock::Cycles,
    },
    /// A workload trace failed structural validation: malformed header,
    /// malformed event record, truncated stream (no end marker), or an
    /// event count that does not match the end marker. Carries the
    /// 1-based line number the problem was detected at.
    BadTrace {
        /// Line of the trace file (the header is line 1).
        line: u64,
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A workload trace was written by a format version this build does
    /// not understand. Version bumps are reserved for incompatible
    /// record changes, so the reader refuses rather than guessing.
    TraceVersion {
        /// The version declared in the trace header.
        found: u64,
        /// The newest version this build supports.
        supported: u64,
    },
    /// The underlying I/O stream failed while reading or writing a
    /// workload trace.
    TraceIo {
        /// The `std::io::Error` rendered as text (`io::Error` is
        /// neither `Clone` nor `Eq`, which this enum requires).
        detail: String,
    },
    /// An invariant was violated; carries a static description.
    Invariant(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { order } => {
                write!(f, "out of memory: no free order-{order} block")
            }
            SimError::RangeBusy => write!(f, "targeted physical range is busy"),
            SimError::NoVma(gva) => write!(f, "no VMA covers {gva}"),
            SimError::AlreadyMappedGva(gva) => write!(f, "GVA {gva} already mapped"),
            SimError::AlreadyMappedGpa(gpa) => write!(f, "GPA {gpa} already backed"),
            SimError::NotMappedGva(gva) => write!(f, "GVA {gva} not mapped"),
            SimError::NotMappedGpa(gpa) => write!(f, "GPA {gpa} not backed"),
            SimError::BadFree(hpa) => write!(f, "bad free of {hpa}"),
            SimError::Unaligned => write!(f, "address not aligned for the requested page size"),
            SimError::NotContiguous => write!(f, "region is not physically contiguous"),
            SimError::OutOfRange => write!(f, "address outside configured address space"),
            SimError::UnknownVm(vm) => write!(f, "{vm} is not registered"),
            SimError::BadCacheGeometry { num_sets } => {
                write!(f, "cache set count {num_sets} is not a power of two")
            }
            SimError::ClockRegression { now, start } => {
                write!(f, "clock went backwards: now {now} < start {start}")
            }
            SimError::BadTrace { line, reason } => {
                write!(f, "malformed trace at line {line}: {reason}")
            }
            SimError::TraceVersion { found, supported } => {
                write!(
                    f,
                    "trace format version {found} is newer than supported version {supported}"
                )
            }
            SimError::TraceIo { detail } => write!(f, "trace I/O failed: {detail}"),
            SimError::Invariant(msg) => write!(f, "invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_text() {
        assert_eq!(
            SimError::OutOfMemory { order: 9 }.to_string(),
            "out of memory: no free order-9 block"
        );
        assert!(SimError::NoVma(Gva(0x1000)).to_string().contains("0x1000"));
        assert!(SimError::BadFree(Hpa(0x2000))
            .to_string()
            .contains("0x2000"));
        assert_eq!(
            SimError::UnknownVm(VmId(7)).to_string(),
            "vm7 is not registered"
        );
        assert_eq!(
            SimError::BadTrace {
                line: 3,
                reason: "unknown record tag".into()
            }
            .to_string(),
            "malformed trace at line 3: unknown record tag"
        );
        assert_eq!(
            SimError::TraceVersion {
                found: 9,
                supported: 1
            }
            .to_string(),
            "trace format version 9 is newer than supported version 1"
        );
        assert!(SimError::TraceIo {
            detail: "broken pipe".into()
        }
        .to_string()
        .contains("broken pipe"));
    }
}

//! Regenerates Figure 2: the motivating microbenchmark — random accesses
//! over increasing dataset sizes under the four static page-size
//! configurations.

use gemini_bench::{bench_scale, header};
use gemini_harness::experiments::fig02;

fn main() {
    header("fig02_microbench", "Figure 2");
    let scale = bench_scale();
    let res = fig02::run(&scale).expect("sweep succeeds");
    print!("{}", res.render());
    println!(
        "aligned (Host-H-VM-H) speedup over Host-B-VM-B: {:.2}x at smallest, {:.2}x at largest dataset",
        res.aligned_speedup_at_min(),
        res.aligned_speedup_at_max()
    );
}

//! Figure 16 — Gemini performance breakdown (EMA/HB vs. huge bucket).
//!
//! The ablation runs each workload in the reused-VM scenario (where the
//! bucket matters) under three Gemini variants: full, bucket disabled
//! (EMA/HB only), and booking/promoter disabled (bucket only). The
//! per-component contribution is the share of the full system's speedup
//! over the baseline that each variant retains — the paper reports 66 %
//! EMA/HB, 34 % bucket on average.

use crate::exec::run_cells;
use crate::report::{fmt_pct, Table};
use crate::runner::run_workload_reused;
use crate::scale::Scale;
use gemini_sim_core::Result;
use gemini_vm_sim::{RunResult, SystemKind};
use gemini_workloads::spec_by_name;

/// Per-workload breakdown runs.
#[derive(Debug)]
pub struct BreakdownResults {
    /// Workload names.
    pub workloads: Vec<String>,
    /// (baseline, full Gemini, EMA/HB only, bucket only) per workload.
    pub runs: Vec<[RunResult; 4]>,
}

/// Default workload subset for the breakdown (spanning both behaviours
/// the paper discusses: chunk-allocating vs. churny).
pub const WORKLOADS: [&str; 4] = ["CG.D", "SVM", "Redis", "RocksDB"];

/// Runs the ablation grid.
pub fn run(scale: &Scale, workload_filter: Option<&[&str]>) -> Result<BreakdownResults> {
    let names: Vec<&str> = workload_filter
        .map(|f| f.to_vec())
        .unwrap_or(WORKLOADS.to_vec());
    const VARIANTS: [SystemKind; 4] = [
        SystemKind::HostBVmB,
        SystemKind::Gemini,
        SystemKind::GeminiNoBucket,
        SystemKind::GeminiBucketOnly,
    ];
    let mut cells = Vec::new();
    for (wi, name) in names.iter().enumerate() {
        let spec = spec_by_name(name).expect("breakdown workload in catalog");
        let seed = scale.seed_for("breakdown", wi as u64);
        for system in VARIANTS {
            let spec = spec.clone();
            cells.push(move || run_workload_reused(system, &spec, scale, seed));
        }
    }
    let mut results = run_cells(scale.jobs, cells).into_iter();
    let mut workloads = Vec::new();
    let mut runs = Vec::new();
    for name in &names {
        let base = results.next().expect("one result per cell")?;
        let full = results.next().expect("one result per cell")?;
        let ema_hb = results.next().expect("one result per cell")?;
        let bucket = results.next().expect("one result per cell")?;
        workloads.push(name.to_string());
        runs.push([base, full, ema_hb, bucket]);
    }
    Ok(BreakdownResults { workloads, runs })
}

impl BreakdownResults {
    /// Contribution shares `(ema_hb, bucket)` for one workload: the share
    /// of the full system's speedup-over-baseline each variant retains,
    /// normalized to sum to one.
    pub fn shares(&self, wi: usize) -> (f64, f64) {
        let [base, full, ema_hb, bucket] = &self.runs[wi];
        let gain = |r: &RunResult| (r.throughput() / base.throughput() - 1.0).max(0.0);
        let full_gain = gain(full);
        if full_gain <= 0.0 {
            return (0.5, 0.5);
        }
        let e = gain(ema_hb);
        let b = gain(bucket);
        if e + b == 0.0 {
            return (0.5, 0.5);
        }
        (e / (e + b), b / (e + b))
    }

    /// Renders Figure 16.
    pub fn render_fig16(&self) -> String {
        let mut t = Table::new(
            "Figure 16: Gemini performance breakdown (share of speedup)",
            &["workload", "EMA/HB", "huge bucket"],
        );
        for wi in 0..self.workloads.len() {
            let (e, b) = self.shares(wi);
            t.row(vec![self.workloads[wi].clone(), fmt_pct(e), fmt_pct(b)]);
        }
        let (me, mb) = self.mean_shares();
        t.row(vec!["average".into(), fmt_pct(me), fmt_pct(mb)]);
        t.render()
    }

    /// Mean shares over all workloads.
    pub fn mean_shares(&self) -> (f64, f64) {
        let n = self.workloads.len().max(1) as f64;
        let (mut se, mut sb) = (0.0, 0.0);
        for wi in 0..self.workloads.len() {
            let (e, b) = self.shares(wi);
            se += e;
            sb += b;
        }
        (se / n, sb / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shares_sum_to_one() {
        let scale = Scale {
            ops: 1_200,
            ..Scale::quick()
        };
        let res = run(&scale, Some(&["Redis"])).unwrap();
        let (e, b) = res.shares(0);
        assert!((e + b - 1.0).abs() < 1e-9);
        assert!(e >= 0.0 && b >= 0.0);
        let out = res.render_fig16();
        assert!(out.contains("Redis") && out.contains("average"));
    }
}

//! Algorithm 1 — booking-timeout adjustment.
//!
//! The booking timeout trades space for alignment: too long wastes memory
//! and can raise fragmentation; too short forfeits alignment
//! opportunities. The paper's Algorithm 1 probes ±10 % perturbations of
//! the desired timeout, keeping a change only when the measured TLB misses
//! *decreased* and memory fragmentation did *not increase* over an
//! observation period. TLB misses come from hardware counters (`perf`) and
//! fragmentation from the FMFI.
//!
//! [`TimeoutController`] is the sampled-feedback form of that loop: the
//! runtime calls [`TimeoutController::on_period`] once per period `P` with
//! that period's measurements, and applies the returned *effective*
//! timeout to new bookings.

use gemini_sim_core::Cycles;

/// One period's measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Sample {
    tlb_misses: u64,
    fragmentation: f64,
}

/// Where the controller is in Algorithm 1's probe cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Measuring with `T_e = T_d` before probing upward.
    Baseline,
    /// Measuring with `T_e = T_d × 1.1`.
    TestUp,
    /// Re-measuring the baseline before probing downward (line 8).
    ReBaseline,
    /// Measuring with `T_e = T_d × 0.9`.
    TestDown,
}

/// The adaptive booking-timeout controller (Algorithm 1).
#[derive(Debug, Clone)]
pub struct TimeoutController {
    /// `T_d`, the desired timeout the probes perturb.
    desired: Cycles,
    /// `T_e`, the timeout actually applied to bookings this period.
    effective: Cycles,
    phase: Phase,
    baseline: Option<Sample>,
    /// Lower clamp for `T_d`.
    pub min: Cycles,
    /// Upper clamp for `T_d`.
    pub max: Cycles,
    /// Upward adjustments accepted (stats).
    pub ups_accepted: u64,
    /// Downward adjustments accepted (stats).
    pub downs_accepted: u64,
}

impl TimeoutController {
    /// Creates the controller with initial timeout `T_init`.
    pub fn new(initial: Cycles) -> Self {
        Self {
            desired: initial,
            effective: initial,
            phase: Phase::Baseline,
            baseline: None,
            min: Cycles::from_millis(1.0),
            max: Cycles::from_secs(1.0),
            ups_accepted: 0,
            downs_accepted: 0,
        }
    }

    /// The timeout bookings should use right now.
    pub fn effective(&self) -> Cycles {
        self.effective
    }

    /// The current desired (converged) timeout `T_d`.
    pub fn desired(&self) -> Cycles {
        self.desired
    }

    /// Feeds the measurements of the period that just ended (taken under
    /// the previously returned effective timeout) and returns the
    /// effective timeout for the next period.
    pub fn on_period(&mut self, tlb_misses: u64, fragmentation: f64) -> Cycles {
        let sample = Sample {
            tlb_misses,
            fragmentation,
        };
        match self.phase {
            Phase::Baseline => {
                self.baseline = Some(sample);
                self.effective = self.clamp(self.desired.scale(1.1));
                self.phase = Phase::TestUp;
            }
            Phase::TestUp => {
                if self.improved(sample) {
                    self.desired = self.clamp(self.desired.scale(1.1));
                    self.ups_accepted += 1;
                    self.phase = Phase::Baseline;
                } else {
                    self.phase = Phase::ReBaseline;
                }
                self.effective = self.desired;
            }
            Phase::ReBaseline => {
                self.baseline = Some(sample);
                self.effective = self.clamp(self.desired.scale(0.9));
                self.phase = Phase::TestDown;
            }
            Phase::TestDown => {
                if self.improved(sample) {
                    self.desired = self.clamp(self.desired.scale(0.9));
                    self.downs_accepted += 1;
                }
                self.phase = Phase::Baseline;
                self.effective = self.desired;
            }
        }
        self.effective
    }

    /// `TestTimeout`'s acceptance rule: TLB misses decreased and memory
    /// fragmentation did not increase.
    fn improved(&self, sample: Sample) -> bool {
        match self.baseline {
            Some(base) => {
                sample.tlb_misses < base.tlb_misses
                    && sample.fragmentation <= base.fragmentation + 1e-9
            }
            None => false,
        }
    }

    fn clamp(&self, t: Cycles) -> Cycles {
        Cycles(t.0.clamp(self.min.0, self.max.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> TimeoutController {
        let mut c = TimeoutController::new(Cycles(1_000_000));
        // The tests use small round numbers below the production clamp.
        c.min = Cycles(1);
        c
    }

    #[test]
    fn longer_timeout_that_helps_is_kept() {
        let mut c = controller();
        // Baseline period: 1000 misses.
        let t1 = c.on_period(1000, 0.3);
        assert_eq!(t1, Cycles(1_100_000), "probing +10%");
        // Probe period: fewer misses, same fragmentation → accept.
        let t2 = c.on_period(900, 0.3);
        assert_eq!(t2, Cycles(1_100_000));
        assert_eq!(c.desired(), Cycles(1_100_000));
        assert_eq!(c.ups_accepted, 1);
    }

    #[test]
    fn longer_timeout_that_fragments_is_rejected_then_down_probed() {
        let mut c = controller();
        c.on_period(1000, 0.3); // Baseline; probe up next.
                                // Probe up: misses improved but fragmentation rose → reject.
        let t = c.on_period(900, 0.5);
        assert_eq!(t, Cycles(1_000_000), "back to desired");
        assert_eq!(c.ups_accepted, 0);
        // Re-baseline period.
        let t = c.on_period(1000, 0.3);
        assert_eq!(t, Cycles(900_000), "probing -10%");
        // Probe down helps → accept.
        let t = c.on_period(950, 0.3);
        assert_eq!(t, Cycles(900_000));
        assert_eq!(c.downs_accepted, 1);
    }

    #[test]
    fn no_improvement_either_way_leaves_timeout_stable() {
        let mut c = controller();
        for _ in 0..8 {
            c.on_period(1000, 0.3);
        }
        assert_eq!(c.desired(), Cycles(1_000_000));
        assert_eq!(c.ups_accepted + c.downs_accepted, 0);
    }

    #[test]
    fn timeout_is_clamped() {
        let mut c = TimeoutController::new(Cycles::from_millis(1.0));
        c.min = Cycles(100);
        c.max = Cycles(u64::MAX);
        // Drive downward repeatedly with a sequence that always accepts
        // the down-probe: up-probe must fail, down-probe must succeed.
        let mut misses = 10_000u64;
        for _ in 0..200 {
            {}
            // Baseline.
            c.on_period(misses, 0.2);
            // Up probe: worse.
            c.on_period(misses + 100, 0.2);
            // Re-baseline.
            c.on_period(misses, 0.2);
            // Down probe: better.
            c.on_period(misses - 50, 0.2);
            misses = misses.saturating_sub(50).max(1000);
        }
        assert!(c.desired() >= c.min);
        assert!(c.downs_accepted > 0);
    }

    #[test]
    fn effective_tracks_probe_schedule() {
        let mut c = controller();
        assert_eq!(c.effective(), Cycles(1_000_000));
        c.on_period(100, 0.1);
        assert_eq!(c.effective(), Cycles(1_100_000));
        c.on_period(200, 0.1); // Worse: reject, restore.
        assert_eq!(c.effective(), Cycles(1_000_000));
    }
}

//! Regenerates Figures 12–15 and Table 4: the reused-VM evaluation — an
//! SVM job with a large working set runs and exits, then each workload
//! runs in the same VM over the EPT state it left behind.

use gemini_bench::{bench_scale, header};
use gemini_harness::experiments::reused_vm;

fn main() {
    header("fig12_15_tab04_reused_vm", "Figures 12, 13, 14, 15 + Table 4");
    let res = reused_vm::run(&bench_scale(), None).expect("grid succeeds");
    print!("{}", res.render_fig12());
    println!();
    print!("{}", res.render_fig13());
    println!();
    print!("{}", res.render_fig14());
    println!();
    print!("{}", res.render_fig15());
    println!();
    print!("{}", res.render_tab04());
    println!(
        "GEMINI huge-bucket mean reuse rate: {:.0}% (paper: 88%)",
        res.mean_bucket_reuse() * 100.0
    );
}

//! Property-based tests for the buddy allocator.
//!
//! These drive random interleavings of `alloc`, `alloc_at` and `free` and
//! check the allocator's structural invariants after every step: free lists
//! and index agree, blocks are aligned/disjoint/coalesced, and frame
//! accounting conserves memory.

use gemini_buddy::{BuddyAllocator, MAX_ORDER};
use proptest::prelude::*;

/// One random allocator operation.
#[derive(Debug, Clone)]
enum Op {
    Alloc(u32),
    AllocAt { frame: u64, order: u32 },
    FreeIdx(usize),
}

fn op_strategy(num_frames: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..=MAX_ORDER).prop_map(Op::Alloc),
        (0u64..num_frames, 0u32..=9u32).prop_map(|(frame, order)| Op::AllocAt {
            frame: frame & !((1 << order) - 1),
            order,
        }),
        (any::<prop::sample::Index>()).prop_map(|i| Op::FreeIdx(i.index(1 << 16))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_ops_preserve_invariants(
        num_frames in 1u64..5000,
        ops in prop::collection::vec(op_strategy(4096), 1..200),
    ) {
        let mut a = BuddyAllocator::new(num_frames);
        let mut live: Vec<(u64, u32)> = Vec::new();
        let mut allocated = 0u64;
        for op in ops {
            match op {
                Op::Alloc(order) => {
                    if let Ok(start) = a.alloc(order) {
                        prop_assert_eq!(start % (1 << order), 0);
                        prop_assert!(start + (1u64 << order) <= num_frames);
                        live.push((start, order));
                        allocated += 1 << order;
                    }
                }
                Op::AllocAt { frame, order } => {
                    if a.alloc_at(frame, order).is_ok() {
                        live.push((frame, order));
                        allocated += 1 << order;
                    }
                }
                Op::FreeIdx(i) => {
                    if !live.is_empty() {
                        let (start, order) = live.swap_remove(i % live.len());
                        a.free(start, order).unwrap();
                        allocated -= 1 << order;
                    }
                }
            }
            a.check_invariants().unwrap();
            prop_assert_eq!(a.used_frames(), allocated);
        }
        // No two live blocks may overlap.
        let mut sorted = live.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            let (s0, o0) = w[0];
            let (s1, _) = w[1];
            prop_assert!(s0 + (1u64 << o0) <= s1, "live blocks overlap");
        }
    }

    #[test]
    fn free_everything_restores_pristine_state(
        num_frames in 512u64..4096,
        orders in prop::collection::vec(0u32..=MAX_ORDER, 1..64),
    ) {
        let mut a = BuddyAllocator::new(num_frames);
        let mut live = Vec::new();
        for order in orders {
            if let Ok(s) = a.alloc(order) {
                live.push((s, order));
            }
        }
        for (s, o) in live {
            a.free(s, o).unwrap();
        }
        prop_assert_eq!(a.free_frames(), num_frames);
        a.check_invariants().unwrap();
        // A single maximal run spanning all memory.
        prop_assert_eq!(a.free_runs(), vec![(0, num_frames)]);
    }

    #[test]
    fn alloc_at_never_hands_out_busy_frames(
        targets in prop::collection::vec((0u64..1024, 0u32..=9), 1..80),
    ) {
        let mut a = BuddyAllocator::new(1024);
        let mut owned: Vec<(u64, u32)> = Vec::new();
        for (frame, order) in targets {
            let frame = frame & !((1u64 << order) - 1);
            if frame + (1 << order) > 1024 {
                continue;
            }
            match a.alloc_at(frame, order) {
                Ok(()) => {
                    for &(s, o) in &owned {
                        let disjoint =
                            s + (1u64 << o) <= frame || frame + (1u64 << order) <= s;
                        prop_assert!(disjoint, "alloc_at returned an owned frame");
                    }
                    owned.push((frame, order));
                }
                Err(_) => {
                    // Failure must mean some frame in range is indeed busy,
                    // i.e. intersects an owned block.
                    let busy = owned.iter().any(|&(s, o)| {
                        s < frame + (1 << order) && frame < s + (1u64 << o)
                    });
                    prop_assert!(busy, "alloc_at refused a fully free range");
                }
            }
        }
    }

    #[test]
    fn is_range_free_matches_ownership(
        seed_allocs in prop::collection::vec((0u64..512, 0u32..=6), 0..32),
        query in (0u64..512, 1u64..64),
    ) {
        let mut a = BuddyAllocator::new(512);
        let mut owned: Vec<(u64, u32)> = Vec::new();
        for (frame, order) in seed_allocs {
            let frame = frame & !((1u64 << order) - 1);
            if frame + (1 << order) <= 512 && a.alloc_at(frame, order).is_ok() {
                owned.push((frame, order));
            }
        }
        let (qs, ql) = query;
        let ql = ql.min(512 - qs.min(512));
        if qs + ql <= 512 {
            let expect_free = !owned.iter().any(|&(s, o)| {
                s < qs + ql && qs < s + (1u64 << o)
            });
            prop_assert_eq!(a.is_range_free(qs, ql), expect_free);
        }
    }
}

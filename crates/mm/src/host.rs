//! The host/hypervisor memory manager: EPT-fault handling and host-side
//! huge-page backing for all VMs on the machine.

use crate::costs::CostModel;
use crate::mech;
use crate::policy::{Effects, FaultCtx, FaultOutcome, HugePolicy, LayerKind, LayerOps};
use gemini_buddy::BuddyAllocator;
use gemini_obs::{cat, EventKind, Layer, Recorder};
use gemini_page_table::AddressSpace;
use gemini_sim_core::{Cycles, SimError, VmId, HUGE_PAGE_ORDER};
use std::collections::{BTreeMap, HashMap};

/// Memory management of the host: one EPT per VM, one machine-wide
/// physical allocator.
#[derive(Debug)]
pub struct HostMm {
    /// The host physical allocator (HPA frames).
    pub buddy: BuddyAllocator,
    /// Per-VM EPT (GPA frame → HPA frame).
    epts: BTreeMap<VmId, AddressSpace>,
    /// Sampled touch counters per (VM, GPA 2 MiB region).
    touches: HashMap<VmId, HashMap<u64, u64>>,
    costs: CostModel,
    rec: Recorder,
}

impl HostMm {
    /// Creates a host with `hpa_frames` of machine memory.
    pub fn new(hpa_frames: u64, costs: CostModel) -> Self {
        Self {
            buddy: BuddyAllocator::new(hpa_frames),
            epts: BTreeMap::new(),
            touches: HashMap::new(),
            costs,
            rec: Recorder::off(),
        }
    }

    /// Attaches an observability recorder; host daemon promotions and
    /// demotions are traced through it.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Registers a VM (creates its empty EPT).
    pub fn register_vm(&mut self, vm: VmId) {
        self.epts.entry(vm).or_default();
        self.touches.entry(vm).or_default();
    }

    /// The EPT of `vm`, or [`SimError::UnknownVm`] if the VM was
    /// never registered.
    pub fn ept(&self, vm: VmId) -> Result<&AddressSpace, SimError> {
        self.epts.get(&vm).ok_or(SimError::UnknownVm(vm))
    }

    /// Registered VMs in id order.
    pub fn vms(&self) -> Vec<VmId> {
        self.epts.keys().copied().collect()
    }

    /// Records a sampled access for daemon heuristics.
    pub fn record_touch(&mut self, vm: VmId, gpa_frame: u64) {
        *self
            .touches
            .entry(vm)
            .or_default()
            .entry(gpa_frame >> HUGE_PAGE_ORDER)
            .or_insert(0) += 1;
    }

    /// Handles an EPT violation: `gpa_frame` of `vm` has no backing.
    pub fn handle_fault(
        &mut self,
        vm: VmId,
        gpa_frame: u64,
        policy: &mut dyn HugePolicy,
    ) -> Result<(FaultOutcome, Effects), SimError> {
        let table = self.epts.get_mut(&vm).ok_or(SimError::UnknownVm(vm))?;
        if table.translate(gpa_frame).is_some() {
            return Err(SimError::AlreadyMappedGpa(
                gemini_sim_core::Gpa::from_frame(gpa_frame),
            ));
        }
        let region = gpa_frame >> HUGE_PAGE_ORDER;
        let pop = table.region_population(region);
        let ctx = FaultCtx {
            layer: LayerKind::Host,
            vm,
            addr_frame: gpa_frame,
            vma: None,
            first_touch_in_vma: false,
            region_pop: pop,
            buddy: &self.buddy,
            table,
        };
        let huge_allowed = pop.present == 0;
        let decision = policy.fault_decision(&ctx);

        let (outcome, fx) = mech::resolve_fault(
            table,
            &mut self.buddy,
            &self.costs,
            LayerKind::Host,
            gpa_frame,
            decision,
            huge_allowed,
        )?;
        policy.after_fault(gpa_frame, &outcome);
        Ok((outcome, fx))
    }

    /// Runs one host daemon pass of `policy` over `vm`'s EPT.
    pub fn run_daemon(
        &mut self,
        vm: VmId,
        policy: &mut dyn HugePolicy,
        now: Cycles,
        vcpus: u32,
    ) -> Result<Effects, SimError> {
        let table = self.epts.get_mut(&vm).ok_or(SimError::UnknownVm(vm))?;
        let touches = self.touches.entry(vm).or_default();
        let mut ops_view = LayerOps {
            layer: LayerKind::Host,
            vm,
            table,
            buddy: &mut self.buddy,
            touches,
            now,
        };
        let requests = policy.daemon(&mut ops_view);
        let mut ops_view = LayerOps {
            layer: LayerKind::Host,
            vm,
            table,
            buddy: &mut self.buddy,
            touches,
            now,
        };
        let demotions = policy.select_demotions(&mut ops_view);
        let mut fx = Effects::cost(Cycles(
            self.costs.scan_per_region.0 * (requests.len() as u64 + 1),
        ));
        for op in requests {
            let region = op.region;
            let was_huge = table.huge_leaf(region).is_some();
            let opfx = mech::execute_promotion(
                table,
                &mut self.buddy,
                &self.costs,
                LayerKind::Host,
                op,
                vcpus,
            );
            if self.rec.wants(cat::PROMOTION) && !was_huge && table.huge_leaf(region).is_some() {
                let (copied, zeroed) = (opfx.pages_copied, opfx.pages_zeroed);
                self.rec
                    .emit(cat::PROMOTION, vm.0, Layer::Host, || EventKind::Promotion {
                        region,
                        mode: crate::guest::promo_mode(copied, zeroed),
                        pages_copied: copied,
                        pages_zeroed: zeroed,
                    });
                self.rec.counter_add("mm.host.promotions", 1);
                self.rec.counter_add("mm.host.promo_pages_copied", copied);
            }
            fx.merge(opfx);
        }
        for region in demotions {
            if let Ok(dfx) =
                mech::execute_demotion(table, &self.costs, LayerKind::Host, region, vcpus)
            {
                self.rec
                    .emit(cat::DEMOTION, vm.0, Layer::Host, || EventKind::Demotion {
                        region,
                    });
                self.rec.counter_add("mm.host.demotions", 1);
                fx.merge(dfx);
            }
        }
        Ok(fx)
    }

    /// Demotes (splits) one huge EPT leaf of `vm`.
    pub fn demote(&mut self, vm: VmId, region: u64, vcpus: u32) -> Result<Effects, SimError> {
        let table = self.epts.get_mut(&vm).ok_or(SimError::UnknownVm(vm))?;
        mech::execute_demotion(table, &self.costs, LayerKind::Host, region, vcpus)
    }

    /// The host-level fragmentation index at huge-page order.
    pub fn fragmentation_index(&self) -> f64 {
        self.buddy.fragmentation_index(HUGE_PAGE_ORDER)
    }
}

// Machines move across executor worker threads whole; the host MM
// (including its recorder handle) must stay `Send`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<HostMm>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BasePagesOnly, FaultDecision, PromotionKind, PromotionOp};
    use gemini_sim_core::page::PageSize;

    struct AlwaysHuge;
    impl HugePolicy for AlwaysHuge {
        fn name(&self) -> &'static str {
            "AlwaysHuge"
        }
        fn fault_decision(&mut self, _ctx: &FaultCtx<'_>) -> FaultDecision {
            FaultDecision::Huge
        }
    }

    fn host() -> HostMm {
        let mut h = HostMm::new(16384, CostModel::default());
        h.register_vm(VmId(1));
        h.register_vm(VmId(2));
        h
    }

    #[test]
    fn ept_fault_backs_with_base_page() {
        let mut h = host();
        let mut p = BasePagesOnly;
        let (out, fx) = h.handle_fault(VmId(1), 1000, &mut p).unwrap();
        assert_eq!(out.size, PageSize::Base);
        assert_eq!(fx.cycles, CostModel::default().ept_fault);
        assert!(h.ept(VmId(1)).unwrap().translate(1000).is_some());
        assert!(h.ept(VmId(2)).unwrap().translate(1000).is_none());
        assert!(h.handle_fault(VmId(1), 1000, &mut p).is_err());
    }

    #[test]
    fn ept_fault_backs_with_huge_page() {
        let mut h = host();
        let mut p = AlwaysHuge;
        let (out, _) = h.handle_fault(VmId(1), 515, &mut p).unwrap();
        assert_eq!(out.size, PageSize::Huge);
        // The whole GPA region is backed.
        assert!(h.ept(VmId(1)).unwrap().translate(512).is_some());
        assert!(h.ept(VmId(1)).unwrap().translate(1023).is_some());
        assert_eq!(h.ept(VmId(1)).unwrap().huge_mapped(), 1);
        // Backing is huge-aligned in HPA space.
        assert!(h.ept(VmId(1)).unwrap().huge_leaf(1).is_some());
    }

    #[test]
    fn vms_share_the_host_allocator() {
        let mut h = host();
        let mut p = AlwaysHuge;
        let (o1, _) = h.handle_fault(VmId(1), 0, &mut p).unwrap();
        let (o2, _) = h.handle_fault(VmId(2), 0, &mut p).unwrap();
        assert_ne!(o1.pa_frame, o2.pa_frame, "distinct machine frames");
        assert_eq!(h.buddy.used_frames(), 1024);
    }

    #[test]
    fn host_daemon_promotes_ept_regions() {
        let mut h = host();
        let mut p = BasePagesOnly;
        for gpa in 0..64u64 {
            h.handle_fault(VmId(1), gpa, &mut p).unwrap();
        }
        struct PromoteAll;
        impl HugePolicy for PromoteAll {
            fn name(&self) -> &'static str {
                "promote-all"
            }
            fn fault_decision(&mut self, _: &FaultCtx<'_>) -> FaultDecision {
                FaultDecision::Base
            }
            fn daemon(&mut self, ops: &mut LayerOps<'_>) -> Vec<PromotionOp> {
                ops.table
                    .iter_regions()
                    .filter(|&(_, huge)| !huge)
                    .map(|(r, _)| PromotionOp::new(r, PromotionKind::PreferInPlace))
                    .collect()
            }
        }
        let mut d = PromoteAll;
        let fx = h.run_daemon(VmId(1), &mut d, Cycles::ZERO, 2).unwrap();
        assert_eq!(h.ept(VmId(1)).unwrap().huge_mapped(), 1);
        assert_eq!(fx.gpa_regions_changed, vec![0]);
        // 64 of 512 pages present: khugepaged semantics collapse by copy.
        assert_eq!(fx.pages_copied, 64);
        assert_eq!(fx.pages_zeroed, 448);
    }

    #[test]
    fn unregistered_vm_is_an_error_not_a_panic() {
        let mut h = host();
        let ghost = VmId(99);
        assert_eq!(h.ept(ghost).unwrap_err(), SimError::UnknownVm(ghost));
        let mut p = BasePagesOnly;
        assert_eq!(
            h.handle_fault(ghost, 0, &mut p).unwrap_err(),
            SimError::UnknownVm(ghost)
        );
        assert_eq!(
            h.run_daemon(ghost, &mut p, Cycles::ZERO, 1).unwrap_err(),
            SimError::UnknownVm(ghost)
        );
        assert_eq!(
            h.demote(ghost, 0, 1).unwrap_err(),
            SimError::UnknownVm(ghost)
        );
    }

    #[test]
    fn touch_counters_are_per_vm() {
        let mut h = host();
        h.record_touch(VmId(1), 5);
        h.record_touch(VmId(2), 5);
        h.record_touch(VmId(1), 5);
        assert_eq!(h.touches[&VmId(1)][&0], 2);
        assert_eq!(h.touches[&VmId(2)][&0], 1);
    }

    #[test]
    fn demote_splits_ept_leaf() {
        let mut h = host();
        let mut p = AlwaysHuge;
        h.handle_fault(VmId(1), 0, &mut p).unwrap();
        let fx = h.demote(VmId(1), 0, 4).unwrap();
        assert_eq!(h.ept(VmId(1)).unwrap().huge_mapped(), 0);
        assert_eq!(h.ept(VmId(1)).unwrap().base_mapped(), 512);
        assert_eq!(fx.gpa_regions_changed, vec![0]);
    }
}

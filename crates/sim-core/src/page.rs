//! Page geometry constants for the simulated x86-64 machine.
//!
//! The simulator models the two page sizes the paper evaluates: 4 KiB base
//! pages and 2 MiB huge pages. 1 GiB pages exist on real hardware but are
//! out of scope for the paper and for this reproduction.

/// log2 of the base page size (4 KiB).
pub const BASE_PAGE_SHIFT: u32 = 12;

/// Size in bytes of a base page (4 KiB).
pub const BASE_PAGE_SIZE: u64 = 1 << BASE_PAGE_SHIFT;

/// log2 of the huge page size (2 MiB).
pub const HUGE_PAGE_SHIFT: u32 = 21;

/// Size in bytes of a huge page (2 MiB).
pub const HUGE_PAGE_SIZE: u64 = 1 << HUGE_PAGE_SHIFT;

/// Buddy-allocator order of a huge page: a huge page is an order-9 block of
/// base pages (512 × 4 KiB = 2 MiB).
pub const HUGE_PAGE_ORDER: u32 = HUGE_PAGE_SHIFT - BASE_PAGE_SHIFT;

/// Number of base pages that make up one huge page (512).
pub const PAGES_PER_HUGE_PAGE: u64 = 1 << HUGE_PAGE_ORDER;

/// The two page sizes supported by the simulated MMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PageSize {
    /// A 4 KiB base page.
    Base,
    /// A 2 MiB huge page.
    Huge,
}

impl PageSize {
    /// Returns the size of this page in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Base => BASE_PAGE_SIZE,
            PageSize::Huge => HUGE_PAGE_SIZE,
        }
    }

    /// Returns the log2 of the page size.
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Base => BASE_PAGE_SHIFT,
            PageSize::Huge => HUGE_PAGE_SHIFT,
        }
    }

    /// Returns the number of base pages covered by one page of this size.
    pub const fn base_pages(self) -> u64 {
        match self {
            PageSize::Base => 1,
            PageSize::Huge => PAGES_PER_HUGE_PAGE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_consistent() {
        assert_eq!(BASE_PAGE_SIZE, 4096);
        assert_eq!(HUGE_PAGE_SIZE, 2 * 1024 * 1024);
        assert_eq!(HUGE_PAGE_ORDER, 9);
        assert_eq!(PAGES_PER_HUGE_PAGE, 512);
        assert_eq!(BASE_PAGE_SIZE * PAGES_PER_HUGE_PAGE, HUGE_PAGE_SIZE);
    }

    #[test]
    fn page_size_accessors() {
        assert_eq!(PageSize::Base.bytes(), 4096);
        assert_eq!(PageSize::Huge.bytes(), HUGE_PAGE_SIZE);
        assert_eq!(PageSize::Base.base_pages(), 1);
        assert_eq!(PageSize::Huge.base_pages(), 512);
        assert_eq!(PageSize::Base.shift(), 12);
        assert_eq!(PageSize::Huge.shift(), 21);
        assert!(PageSize::Base < PageSize::Huge);
    }
}

//! Figure 2 — the motivating microbenchmark.
//!
//! Random accesses over a dataset of increasing size under the four static
//! page-size configurations (`Host-{B,H} × VM-{B,H}`). The paper's shape:
//! all four tie while the dataset fits TLB coverage; beyond it, only the
//! well-aligned configuration (`Host-H-VM-H`) keeps performance high, and
//! the two mis-aligned ones barely improve on base pages.

use crate::exec::run_cells;
use crate::report::Table;
use crate::scale::Scale;
use gemini_sim_core::Result;
use gemini_vm_sim::{Machine, RunResult, SystemKind};
use gemini_workloads::MicrobenchGen;

/// The four static configurations of Figure 2.
pub const CONFIGS: [SystemKind; 4] = [
    SystemKind::HostBVmB,
    SystemKind::HostBVmH,
    SystemKind::HostHVmB,
    SystemKind::HostHVmH,
];

/// Results: one row per dataset size, one [`RunResult`] per configuration.
#[derive(Debug)]
pub struct Fig02Results {
    /// (dataset bytes, results in [`CONFIGS`] order).
    pub rows: Vec<(u64, Vec<RunResult>)>,
}

/// Runs the microbenchmark sweep.
pub fn run(scale: &Scale) -> Result<Fig02Results> {
    let mut rows = Vec::new();
    // The sweep is the figure's x-axis: it is not scaled, only capped so
    // the largest dataset still fits comfortably inside the VM.
    let cap = scale.vm_frames * 4096 / 2;
    let sweep: Vec<u64> = MicrobenchGen::dataset_sweep()
        .into_iter()
        .filter(|&d| d <= cap)
        .collect();
    let mut cells = Vec::new();
    for (i, &dataset) in sweep.iter().enumerate() {
        for (j, &system) in CONFIGS.iter().enumerate() {
            let machine_seed = scale.seed_for("fig02", (i * 4 + j) as u64);
            let workload_seed = scale.seed_for("fig02-wl", i as u64);
            cells.push(move || {
                let cfg = scale.machine_config(false, false, machine_seed);
                let mut m = Machine::new(system, cfg);
                let vm = m.add_vm()?;
                let gen = MicrobenchGen::generator(dataset, scale.ops, workload_seed);
                m.run(vm, gen)
            });
        }
    }
    let mut results = run_cells(scale.jobs, cells).into_iter();
    for &dataset in &sweep {
        let mut per_cfg = Vec::new();
        for _ in CONFIGS {
            per_cfg.push(results.next().expect("one result per cell")?);
        }
        rows.push((dataset, per_cfg));
    }
    Ok(Fig02Results { rows })
}

impl Fig02Results {
    /// Renders throughput in million accesses per second per config.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 2: microbenchmark throughput (M accesses/s) vs dataset size",
            &[
                "dataset",
                "Host-B-VM-B",
                "Host-B-VM-H",
                "Host-H-VM-B",
                "Host-H-VM-H",
            ],
        );
        for (dataset, results) in &self.rows {
            let mut cells = vec![format!("{} MiB", dataset >> 20)];
            for r in results {
                let accesses = r.counters.accesses as f64;
                let maps = accesses / r.vtime.as_secs_f64() / 1e6;
                cells.push(format!("{maps:.1}"));
            }
            t.row(cells);
        }
        t.render()
    }

    /// The throughput ratio of `Host-H-VM-H` over `Host-B-VM-B` at the
    /// largest dataset (the paper's headline separation).
    pub fn aligned_speedup_at_max(&self) -> f64 {
        let (_, results) = self.rows.last().expect("sweep is non-empty");
        let base = results[0].vtime.0 as f64;
        let aligned = results[3].vtime.0 as f64;
        base / aligned
    }

    /// The ratio at the smallest dataset (should be near 1).
    pub fn aligned_speedup_at_min(&self) -> f64 {
        let (_, results) = self.rows.first().expect("sweep is non-empty");
        results[0].vtime.0 as f64 / results[3].vtime.0 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure_2() {
        let scale = Scale {
            ops: 2_000,
            ..Scale::quick()
        };
        let res = run(&scale).unwrap();
        // The sweep is capped by VM size; it must still straddle the
        // 6 MiB base-page TLB coverage.
        assert!(res.rows.len() >= 4);
        assert!(res.rows.first().unwrap().0 < 6 << 20);
        assert!(res.rows.last().unwrap().0 > 6 << 20);
        // Small dataset: no separation. Large: aligned wins clearly.
        assert!(
            res.aligned_speedup_at_min() < 1.35,
            "{}",
            res.aligned_speedup_at_min()
        );
        assert!(
            res.aligned_speedup_at_max() > 1.5,
            "{}",
            res.aligned_speedup_at_max()
        );
        // Misaligned configs barely beat base at the largest dataset.
        let (_, last) = res.rows.last().unwrap();
        let base = last[0].vtime.0 as f64;
        for mis in [&last[1], &last[2]] {
            let speedup = base / mis.vtime.0 as f64;
            assert!(
                speedup < res.aligned_speedup_at_max() * 0.8,
                "misaligned speedup {speedup} too close to aligned"
            );
        }
        let out = res.render();
        assert!(out.contains("Host-H-VM-H"));
    }
}

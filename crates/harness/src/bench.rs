//! In-tree benchmark harness (`gemini-sim bench`).
//!
//! Times real experiment cells with wall-clock instrumentation and emits
//! a `BENCH_*.json` trajectory entry through the hand-rolled
//! [`gemini_obs`] JSON writer, so every PR can extend a comparable
//! performance record. Three measurements per run:
//!
//! 1. the **demo-scale fig. 3 reference cell** (Canneal × GEMINI on
//!    fragmented memory) — the single-thread throughput yardstick,
//!    compared against the recorded pre-optimization baseline;
//! 2. **per-cell timings** of the fig. 3 grid at the chosen scale,
//!    sequentially (`jobs = 1`), one entry per system × workload;
//! 3. a **jobs sweep** of the same grid across `--jobs 1..N`, reporting
//!    wall time and speedup versus the sequential leg.
//!
//! Simulated results stay byte-identical across all of this — wall-clock
//! numbers live only here, never inside the deterministic exports.

use crate::exec::{effective_jobs, run_cells_hinted, run_cells_profiled};
use crate::experiments::motivation::WORKLOADS;
use crate::runner::{
    run_workload_batch_stats, run_workload_on, run_workload_profiled,
    run_workload_profiled_batch_stats, run_workload_sharded,
};
use crate::scale::Scale;
use gemini_obs::profile::{chrome_trace_json_with_counters, ProfileReport, TraceSpan};
use gemini_obs::{json_f64, json_str, Profiler, Recorder};
use gemini_sim_core::Result;
use gemini_vm_sim::SystemKind;
use gemini_workloads::spec_by_name;
use std::time::Instant;

/// Label of the reference cell every PR's bench reports.
pub const REFERENCE_CELL: &str = "motivation/Canneal/GEMINI/fragmented@demo";

/// Pre-PR baseline of the reference cell, measured on the tree at commit
/// `e3fa128` (before the hot-path overhaul) on the same container this
/// harness runs in (best of three): wall milliseconds for the cell.
pub const BASELINE_WALL_MS: f64 = 1043.0;

/// Pre-PR baseline simulator throughput of the reference cell
/// (workload operations per wall-clock second, best of three).
pub const BASELINE_OPS_PER_SEC: f64 = 7669.0;

/// Wall-clock self/cumulative time one phase accumulated in a cell.
#[derive(Debug, Clone)]
pub struct PhaseTiming {
    /// Stable phase name ([`gemini_obs::Phase::name`]).
    pub name: &'static str,
    /// Self wall time in milliseconds (child spans excluded) — phase
    /// self times are disjoint, so they sum to the covered wall time.
    pub wall_ms: f64,
    /// Cumulative wall time in milliseconds (child spans included).
    pub cum_ms: f64,
    /// Spans recorded for this phase.
    pub count: u64,
}

/// Converts a profiler report to phase rows.
fn phase_timings(report: &ProfileReport) -> Vec<PhaseTiming> {
    report
        .phases
        .iter()
        .map(|&(p, s)| PhaseTiming {
            name: p.name(),
            wall_ms: s.self_ns as f64 / 1e6,
            cum_ms: s.cum_ns as f64 / 1e6,
            count: s.count,
        })
        .collect()
}

/// Wall-clock timing of one experiment cell.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// Cell label (`workload/system`).
    pub label: String,
    /// Wall time of the cell in milliseconds.
    pub wall_ms: f64,
    /// Workload operations the cell simulated.
    pub ops: u64,
    /// Simulator throughput: operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Phase breakdown of the cell's wall time (empty when the cell ran
    /// unprofiled).
    pub phases: Vec<PhaseTiming>,
    /// Estimated profiler overhead inside `wall_ms` (spans recorded ×
    /// calibrated per-span cost), milliseconds.
    pub profiler_overhead_ms: f64,
}

/// One leg of the jobs sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Worker threads used for the grid.
    pub jobs: usize,
    /// Wall time of the whole grid in milliseconds.
    pub wall_ms: f64,
    /// Grid speedup versus the `jobs = 1` leg.
    pub speedup_vs_jobs1: f64,
    /// Per-cell wall times of this leg, in submission order (same cell
    /// order as `cells`). A flat sweep on a constrained CI machine shows
    /// up here as uniformly inflated cells, not a scheduling defect.
    pub cell_wall_ms: Vec<f64>,
    /// True when this leg ran more workers than the machine has
    /// hardware threads (`jobs > available_parallelism`): per-cell
    /// walls inflate roughly `jobs`-fold because workers time-share
    /// cores, so a flat speedup here is an artifact of the host, not a
    /// scheduling defect.
    pub oversubscribed: bool,
}

/// Fleet lifecycle smoke measurements: the long-horizon VM
/// arrival/departure grid run once at the report's scale. Additive in
/// the `gemini-bench-v3` schema — older reports simply lack the key,
/// and the perf diff matches cells by label, so comparisons against
/// pre-fleet reports stay valid.
#[derive(Debug, Clone)]
pub struct FleetBenchSection {
    /// VM lifecycles completed across every host and system.
    pub vms: u64,
    /// Lifecycle churn events (one arrival + one departure per VM).
    pub churn_events: u64,
    /// Wall time of the whole fleet grid, milliseconds.
    pub wall_ms: f64,
    /// Mean end-state host FMFI per system `(label, fmfi)`, after every
    /// VM was torn down through the leak-checked `remove_vm` path.
    pub end_host_fmfi: Vec<(String, f64)>,
}

/// Closed-form hit-run batching measurements of the reference cell:
/// a batched leg with its [`gemini_tlb::BatchStats`] next to a
/// `--no-batch` leg of the same cell. Additive in the
/// `gemini-bench-v3` schema (older reports simply lack the keys). The
/// batch counters are the proof that the fast path actually engaged on
/// the reference cell — a wall-clock delta with zero `batched_hits`
/// would be measuring noise, not batching.
#[derive(Debug, Clone)]
pub struct BatchedRefSection {
    /// Wall time of the batched (default) reference leg, milliseconds,
    /// best of three.
    pub batched_wall_ms: f64,
    /// Wall time of the same cell with `--no-batch`, milliseconds,
    /// best of three.
    pub no_batch_wall_ms: f64,
    /// Hit-only runs the closed-form path advanced in the batched leg.
    pub batch_runs: u64,
    /// Accesses those runs covered (each one elided a full per-access
    /// lookup/stamp/cost round-trip).
    pub batched_hits: u64,
    /// Runs declined (stability-epoch moved) or truncated (sampling
    /// deadline) in the batched leg.
    pub batch_breaks: u64,
    /// `batched_hits` over all translated accesses of the batched leg.
    pub batch_hit_rate: f64,
}

/// Everything one bench invocation measured.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Scale preset name the grid ran at (`quick` | `bench`).
    pub scale: String,
    /// Largest worker count the sweep covered.
    pub jobs_max: usize,
    /// `std::thread::available_parallelism()` of the measuring machine —
    /// the context that makes a flat jobs sweep interpretable.
    pub available_parallelism: usize,
    /// Wall time of the demo-scale reference cell, milliseconds
    /// (unprofiled run — the trajectory yardstick).
    pub reference_wall_ms: f64,
    /// Throughput of the demo-scale reference cell, ops per second
    /// (unprofiled run).
    pub reference_ops_per_sec: f64,
    /// Wall time of the reference cell through the intra-cell sharded
    /// runner at `sharded_jobs` workers, milliseconds (byte-identical
    /// simulated output; setup and workload generation overlap).
    pub reference_sharded_wall_ms: f64,
    /// Worker count the sharded reference leg used.
    pub sharded_jobs: usize,
    /// Wall time of the reference cell on a **same-host rebuild of the
    /// previous PR's tree**, milliseconds, measured interleaved with the
    /// current binary in the same time window (`--pr6-wall-ms`). `None`
    /// when no same-host rebuild was measured. This is the honest
    /// PR-over-PR comparator: the committed BENCH_pr*.json trajectory
    /// files come from different points in time on a noisy shared host,
    /// so cross-file wall-clock ratios conflate host drift with real
    /// changes.
    pub pr6_same_host_wall_ms: Option<f64>,
    /// Same as `pr6_same_host_wall_ms`, but against a same-host rebuild
    /// of the PR 9 tree (`--pr9-wall-ms`).
    pub pr9_same_host_wall_ms: Option<f64>,
    /// Batched vs `--no-batch` reference-cell legs with the batch
    /// counters of the batched leg.
    pub reference_batched: BatchedRefSection,
    /// Phase breakdown of a second, profiled run of the reference cell.
    pub reference_phases: Vec<PhaseTiming>,
    /// Wall time of the profiled reference run, milliseconds.
    pub reference_profiled_wall_ms: f64,
    /// Estimated profiler overhead of the profiled reference run, as a
    /// percentage of its wall time.
    pub reference_overhead_pct: f64,
    /// Per-cell timings of the fig. 3 grid at `scale`, `jobs = 1`.
    pub cells: Vec<CellTiming>,
    /// Grid wall times across `jobs = 1..=jobs_max`.
    pub sweep: Vec<SweepPoint>,
    /// Fleet lifecycle smoke run at the report's scale (`None` only in
    /// synthetic or legacy reports).
    pub fleet: Option<FleetBenchSection>,
}

/// Times `f`, returning its result and the elapsed milliseconds.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let started = Instant::now();
    let out = f();
    (out, started.elapsed().as_secs_f64() * 1e3)
}

/// Runs the demo-scale reference cell and returns its timing — best of
/// three runs, matching how [`BASELINE_WALL_MS`] was recorded, so one
/// scheduler hiccup on a shared host does not pollute the trajectory.
pub fn run_reference_cell() -> Result<CellTiming> {
    let scale = Scale::demo();
    let spec = spec_by_name("Canneal").expect("Canneal is in the catalog");
    let seed = scale.seed_for("motivation", 0);
    let mut best: Option<(gemini_vm_sim::RunResult, f64)> = None;
    for _ in 0..3 {
        let (r, wall_ms) = timed(|| run_workload_on(SystemKind::Gemini, &spec, &scale, true, seed));
        let r = r?;
        if best.as_ref().map_or(true, |(_, b)| wall_ms < *b) {
            best = Some((r, wall_ms));
        }
    }
    let (r, wall_ms) = best.expect("three runs produce a best");
    Ok(CellTiming {
        label: REFERENCE_CELL.to_string(),
        wall_ms,
        ops: r.ops,
        ops_per_sec: r.ops as f64 / (wall_ms / 1e3),
        phases: Vec::new(),
        profiler_overhead_ms: 0.0,
    })
}

/// Measures the reference cell batched vs `--no-batch`, best of three
/// each, and returns both walls plus the batched leg's
/// [`gemini_tlb::BatchStats`]. The two legs' simulated `RunResult`s are
/// asserted byte-identical here — a bench run doubles as a parity
/// check on the exact configuration the trajectory reports.
pub fn run_reference_cell_batched() -> Result<BatchedRefSection> {
    let batched_scale = Scale::demo();
    let no_batch_scale = Scale {
        no_batch: true,
        ..Scale::demo()
    };
    let spec = spec_by_name("Canneal").expect("Canneal is in the catalog");
    let seed = batched_scale.seed_for("motivation", 0);
    let mut best: Option<(gemini_vm_sim::RunResult, gemini_tlb::BatchStats, f64)> = None;
    for _ in 0..3 {
        let (out, wall_ms) = timed(|| {
            run_workload_batch_stats(SystemKind::Gemini, &spec, &batched_scale, true, seed)
        });
        let (r, stats) = out?;
        if best.as_ref().map_or(true, |&(_, _, b)| wall_ms < b) {
            best = Some((r, stats, wall_ms));
        }
    }
    let (batched_result, stats, batched_wall_ms) = best.expect("three runs produce a best");
    let mut best_off: Option<(gemini_vm_sim::RunResult, f64)> = None;
    for _ in 0..3 {
        let (r, wall_ms) =
            timed(|| run_workload_on(SystemKind::Gemini, &spec, &no_batch_scale, true, seed));
        let r = r?;
        if best_off.as_ref().map_or(true, |&(_, b)| wall_ms < b) {
            best_off = Some((r, wall_ms));
        }
    }
    let (no_batch_result, no_batch_wall_ms) = best_off.expect("three runs produce a best");
    assert_eq!(
        format!("{batched_result:?}"),
        format!("{no_batch_result:?}"),
        "batched and --no-batch reference legs must be byte-identical"
    );
    let accesses = batched_result.counters.accesses;
    Ok(BatchedRefSection {
        batched_wall_ms,
        no_batch_wall_ms,
        batch_runs: stats.runs,
        batched_hits: stats.hits,
        batch_breaks: stats.breaks,
        batch_hit_rate: if accesses == 0 {
            0.0
        } else {
            stats.hits as f64 / accesses as f64
        },
    })
}

/// Runs the demo-scale reference cell through the intra-cell sharded
/// runner (machine construction ∥ workload pre-generation on `jobs`
/// workers) and returns its timing. Simulated output is byte-identical
/// to [`run_reference_cell`]; only the wall clock moves.
pub fn run_reference_cell_sharded(jobs: usize) -> Result<CellTiming> {
    let scale = Scale {
        jobs,
        ..Scale::demo()
    };
    let spec = spec_by_name("Canneal").expect("Canneal is in the catalog");
    let seed = scale.seed_for("motivation", 0);
    let mut best: Option<(gemini_vm_sim::RunResult, f64)> = None;
    for _ in 0..3 {
        let (r, wall_ms) = timed(|| {
            run_workload_sharded(
                SystemKind::Gemini,
                &spec,
                &scale,
                true,
                seed,
                &Recorder::off(),
                &Profiler::off(),
            )
        });
        let r = r?;
        if best.as_ref().map_or(true, |(_, b)| wall_ms < *b) {
            best = Some((r, wall_ms));
        }
    }
    let (r, wall_ms) = best.expect("three runs produce a best");
    Ok(CellTiming {
        label: format!("{REFERENCE_CELL} [sharded, jobs={jobs}]"),
        wall_ms,
        ops: r.ops,
        ops_per_sec: r.ops as f64 / (wall_ms / 1e3),
        phases: Vec::new(),
        profiler_overhead_ms: 0.0,
    })
}

/// Runs the reference cell's workload/system pair (Canneal × GEMINI,
/// fragmented) at `scale` with span profiling on and returns
/// `(phase rows, profiled wall ms, overhead % of wall)`.
pub fn profile_canneal_gemini(scale: &Scale) -> Result<(Vec<PhaseTiming>, f64, f64)> {
    let spec = spec_by_name("Canneal").expect("Canneal is in the catalog");
    let seed = scale.seed_for("motivation", 0);
    let prof = Profiler::wall(false);
    let (r, wall_ms) =
        timed(|| run_workload_profiled(SystemKind::Gemini, &spec, scale, true, seed, prof.clone()));
    r?;
    let report = prof.report();
    let overhead_pct = if wall_ms > 0.0 {
        100.0 * (report.overhead_est_ns as f64 / 1e6) / wall_ms
    } else {
        0.0
    };
    Ok((phase_timings(&report), wall_ms, overhead_pct))
}

/// Runs the demo-scale reference cell once more with span profiling on
/// and returns `(phase rows, profiled wall ms, overhead % of wall)`.
pub fn profile_reference_cell() -> Result<(Vec<PhaseTiming>, f64, f64)> {
    profile_canneal_gemini(&Scale::demo())
}

/// Runs the full bench: reference cell, per-cell grid timings, jobs
/// sweep. `scale_name` is recorded verbatim in the report.
pub fn run_bench(scale: &Scale, scale_name: &str, jobs_max: usize) -> Result<BenchReport> {
    let reference = run_reference_cell()?;
    // The sharded leg overlaps setup with pre-generation; two workers
    // cover both shards (more would idle).
    let sharded_jobs = 2usize.min(jobs_max.max(1));
    let reference_sharded = run_reference_cell_sharded(sharded_jobs)?;
    let reference_batched = run_reference_cell_batched()?;
    let (reference_phases, reference_profiled_wall_ms, reference_overhead_pct) =
        profile_reference_cell()?;

    // Per-cell timings: the fig. 3 grid, sequentially, each cell under
    // its own profiler so the report carries a phase breakdown.
    let systems = SystemKind::evaluated();
    let mut cells = Vec::new();
    for (wi, name) in WORKLOADS.iter().enumerate() {
        let spec = spec_by_name(name).expect("motivation workload in catalog");
        let seed = scale.seed_for("motivation", wi as u64);
        for &system in &systems {
            let spec = spec.clone();
            let prof = Profiler::wall(false);
            let (r, wall_ms) =
                timed(|| run_workload_profiled(system, &spec, scale, true, seed, prof.clone()));
            let r = r?;
            let report = prof.report();
            cells.push(CellTiming {
                label: format!("{name}/{}", system.label()),
                wall_ms,
                ops: r.ops,
                ops_per_sec: r.ops as f64 / (wall_ms / 1e3),
                phases: phase_timings(&report),
                profiler_overhead_ms: report.overhead_est_ns as f64 / 1e6,
            });
        }
    }

    // Jobs sweep: the same grid through the parallel executor, with LPT
    // dispatch hints. Each cell times itself, so the sweep records the
    // per-cell wall times alongside the grid total.
    let jobs_max = jobs_max.max(1);
    let mut sweep = Vec::new();
    let mut jobs1_wall = 0.0f64;
    for jobs in 1..=jobs_max {
        let grid = || -> Result<Vec<f64>> {
            let mut grid_cells = Vec::new();
            for (wi, name) in WORKLOADS.iter().enumerate() {
                let spec = spec_by_name(name).expect("motivation workload in catalog");
                let seed = scale.seed_for("motivation", wi as u64);
                for &system in &systems {
                    let spec = spec.clone();
                    grid_cells.push((system.cost_hint(), move || {
                        let (r, cell_ms) =
                            timed(|| run_workload_on(system, &spec, scale, true, seed));
                        r.map(|_| cell_ms)
                    }));
                }
            }
            run_cells_hinted(jobs, &Recorder::off(), grid_cells)
                .into_iter()
                .collect()
        };
        let (res, wall_ms) = timed(grid);
        let cell_wall_ms = res?;
        if jobs == 1 {
            jobs1_wall = wall_ms;
        }
        sweep.push(SweepPoint {
            jobs,
            wall_ms,
            speedup_vs_jobs1: if wall_ms > 0.0 {
                jobs1_wall / wall_ms
            } else {
                0.0
            },
            cell_wall_ms,
            oversubscribed: jobs > effective_jobs(0),
        });
    }

    // Fleet lifecycle smoke: the arrival/departure grid at the same
    // scale, wall-timed as one unit (its cells already spread over the
    // scale's worker count internally).
    let (fleet_res, fleet_wall_ms) = timed(|| crate::experiments::fleet::run(scale));
    let fleet_res = fleet_res?;
    let fleet = Some(FleetBenchSection {
        vms: fleet_res.total_vms() as u64,
        churn_events: fleet_res.total_churn_events(),
        wall_ms: fleet_wall_ms,
        end_host_fmfi: crate::experiments::fleet::SYSTEMS
            .iter()
            .map(|s| (s.label().to_string(), fleet_res.end_fmfi(s.label())))
            .collect(),
    });

    Ok(BenchReport {
        scale: scale_name.to_string(),
        jobs_max,
        available_parallelism: effective_jobs(0),
        reference_wall_ms: reference.wall_ms,
        reference_ops_per_sec: reference.ops_per_sec,
        reference_sharded_wall_ms: reference_sharded.wall_ms,
        sharded_jobs,
        pr6_same_host_wall_ms: None,
        pr9_same_host_wall_ms: None,
        reference_batched,
        reference_phases,
        reference_profiled_wall_ms,
        reference_overhead_pct,
        cells,
        sweep,
        fleet,
    })
}

/// Runs the fig. 3 grid once at `jobs` workers with span-event capture
/// through `master` (which must have been built with event capture on)
/// and renders a Chrome-trace-event JSON document: one labelled track
/// per worker, one `cell` rectangle per grid cell, the cell's nested
/// phase spans inside it, and grid-total `tlb.batch_*` counter tracks
/// from the closed-form hit-run fast path. Open the file in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`.
pub fn grid_trace(scale: &Scale, jobs: usize, master: &Profiler) -> Result<String> {
    let systems = SystemKind::evaluated();
    let mut cells = Vec::new();
    for (wi, name) in WORKLOADS.iter().enumerate() {
        let spec = spec_by_name(name).expect("motivation workload in catalog");
        let seed = scale.seed_for("motivation", wi as u64);
        for &system in &systems {
            let spec = spec.clone();
            let label = format!("{name}/{}", system.label());
            cells.push((system.cost_hint(), move |wprof: &Profiler| {
                let start_ns = wprof.now_ns();
                let r = run_workload_profiled_batch_stats(
                    system,
                    &spec,
                    scale,
                    true,
                    seed,
                    wprof.clone(),
                );
                let dur_ns = wprof.now_ns().saturating_sub(start_ns);
                r.map(|(_, stats)| {
                    (
                        TraceSpan {
                            name: label,
                            cat: "cell",
                            start_ns,
                            dur_ns,
                            tid: wprof.tid(),
                        },
                        stats,
                    )
                })
            }));
        }
    }
    let workers = effective_jobs(jobs).min(cells.len().max(1));
    let cell_out: Result<Vec<(TraceSpan, gemini_tlb::BatchStats)>> =
        run_cells_profiled(jobs, &Recorder::off(), master, cells)
            .into_iter()
            .collect();
    let mut batch = gemini_tlb::BatchStats::default();
    let mut spans = Vec::new();
    for (span, stats) in cell_out? {
        batch = batch.merged(stats);
        spans.push(span);
    }
    spans.extend(master.events().iter().map(TraceSpan::from));
    let worker_names: Vec<String> = (0..workers).map(|w| format!("worker-{w}")).collect();
    let counters = vec![
        ("tlb.batch_breaks".to_string(), batch.breaks),
        ("tlb.batch_runs".to_string(), batch.runs),
        ("tlb.batched_hits".to_string(), batch.hits),
    ];
    Ok(chrome_trace_json_with_counters(
        "gemini-sim bench grid",
        &worker_names,
        &spans,
        &counters,
    ))
}

impl BenchReport {
    /// Single-thread throughput improvement of the reference cell over
    /// the recorded pre-PR baseline.
    pub fn speedup_vs_baseline(&self) -> f64 {
        self.reference_ops_per_sec / BASELINE_OPS_PER_SEC
    }

    /// Renders the report as one pretty-printed JSON object via the
    /// workspace's hand-rolled JSON writer.
    pub fn to_json(&self) -> String {
        let phases_json = |phases: &[PhaseTiming]| -> String {
            phases
                .iter()
                .map(|p| {
                    format!(
                        "{{\"name\": {}, \"wall_ms\": {}, \"cum_ms\": {}, \"count\": {}}}",
                        json_str(p.name),
                        json_f64(p.wall_ms),
                        json_f64(p.cum_ms),
                        p.count
                    )
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_str("gemini-bench-v3")));
        out.push_str(&format!("  \"scale\": {},\n", json_str(&self.scale)));
        out.push_str(&format!("  \"jobs_max\": {},\n", self.jobs_max));
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        out.push_str("  \"reference_cell\": {\n");
        out.push_str(&format!("    \"label\": {},\n", json_str(REFERENCE_CELL)));
        out.push_str(&format!(
            "    \"baseline_wall_ms\": {},\n",
            json_f64(BASELINE_WALL_MS)
        ));
        out.push_str(&format!(
            "    \"baseline_ops_per_sec\": {},\n",
            json_f64(BASELINE_OPS_PER_SEC)
        ));
        out.push_str(&format!(
            "    \"current_wall_ms\": {},\n",
            json_f64(self.reference_wall_ms)
        ));
        out.push_str(&format!(
            "    \"current_ops_per_sec\": {},\n",
            json_f64(self.reference_ops_per_sec)
        ));
        out.push_str(&format!(
            "    \"speedup_vs_baseline\": {},\n",
            json_f64(self.speedup_vs_baseline())
        ));
        out.push_str(&format!(
            "    \"sharded_wall_ms\": {},\n",
            json_f64(self.reference_sharded_wall_ms)
        ));
        out.push_str(&format!("    \"sharded_jobs\": {},\n", self.sharded_jobs));
        match self.pr6_same_host_wall_ms {
            Some(pr6_ms) => {
                out.push_str(&format!(
                    "    \"pr6_same_host_wall_ms\": {},\n",
                    json_f64(pr6_ms)
                ));
                let speedup = if self.reference_wall_ms > 0.0 {
                    pr6_ms / self.reference_wall_ms
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "    \"speedup_vs_pr6_same_host\": {},\n",
                    json_f64(speedup)
                ));
            }
            None => {
                out.push_str("    \"pr6_same_host_wall_ms\": null,\n");
                out.push_str("    \"speedup_vs_pr6_same_host\": null,\n");
            }
        }
        match self.pr9_same_host_wall_ms {
            Some(pr9_ms) => {
                out.push_str(&format!(
                    "    \"pr9_same_host_wall_ms\": {},\n",
                    json_f64(pr9_ms)
                ));
                let speedup = if self.reference_wall_ms > 0.0 {
                    pr9_ms / self.reference_wall_ms
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "    \"speedup_vs_pr9_same_host\": {},\n",
                    json_f64(speedup)
                ));
            }
            None => {
                out.push_str("    \"pr9_same_host_wall_ms\": null,\n");
                out.push_str("    \"speedup_vs_pr9_same_host\": null,\n");
            }
        }
        let b = &self.reference_batched;
        out.push_str(&format!(
            "    \"batched_wall_ms\": {},\n",
            json_f64(b.batched_wall_ms)
        ));
        out.push_str(&format!(
            "    \"no_batch_wall_ms\": {},\n",
            json_f64(b.no_batch_wall_ms)
        ));
        out.push_str(&format!("    \"batch_runs\": {},\n", b.batch_runs));
        out.push_str(&format!("    \"batched_hits\": {},\n", b.batched_hits));
        out.push_str(&format!("    \"batch_breaks\": {},\n", b.batch_breaks));
        out.push_str(&format!(
            "    \"batch_hit_rate\": {},\n",
            json_f64(b.batch_hit_rate)
        ));
        out.push_str(&format!(
            "    \"profiled_wall_ms\": {},\n",
            json_f64(self.reference_profiled_wall_ms)
        ));
        out.push_str(&format!(
            "    \"profiler_overhead_pct\": {},\n",
            json_f64(self.reference_overhead_pct)
        ));
        out.push_str(&format!(
            "    \"phases\": [{}]\n",
            phases_json(&self.reference_phases)
        ));
        out.push_str("  },\n");
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": {}, \"wall_ms\": {}, \"ops\": {}, \"ops_per_sec\": {}, \"profiler_overhead_ms\": {}, \"phases\": [{}]}}{}\n",
                json_str(&c.label),
                json_f64(c.wall_ms),
                c.ops,
                json_f64(c.ops_per_sec),
                json_f64(c.profiler_overhead_ms),
                phases_json(&c.phases),
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"jobs_sweep\": [\n");
        for (i, p) in self.sweep.iter().enumerate() {
            let per_cell = p
                .cell_wall_ms
                .iter()
                .map(|&ms| json_f64(ms))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"jobs\": {}, \"wall_ms\": {}, \"speedup_vs_jobs1\": {}, \"oversubscribed\": {}, \"cell_wall_ms\": [{}]}}{}\n",
                p.jobs,
                json_f64(p.wall_ms),
                json_f64(p.speedup_vs_jobs1),
                p.oversubscribed,
                per_cell,
                if i + 1 < self.sweep.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        match &self.fleet {
            Some(f) => {
                let fmfi = f
                    .end_host_fmfi
                    .iter()
                    .map(|(s, v)| {
                        format!(
                            "{{\"system\": {}, \"fmfi\": {}}}",
                            json_str(s),
                            json_f64(*v)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "  \"fleet\": {{\"vms\": {}, \"churn_events\": {}, \"wall_ms\": {}, \"end_host_fmfi\": [{}]}}\n",
                    f.vms,
                    f.churn_events,
                    json_f64(f.wall_ms),
                    fmfi
                ));
            }
            None => out.push_str("  \"fleet\": null\n"),
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> BenchReport {
        BenchReport {
            scale: "quick".into(),
            jobs_max: 2,
            available_parallelism: 4,
            reference_wall_ms: 500.0,
            reference_ops_per_sec: 16_000.0,
            reference_sharded_wall_ms: 470.0,
            sharded_jobs: 2,
            pr6_same_host_wall_ms: Some(1_000.0),
            pr9_same_host_wall_ms: Some(600.0),
            reference_batched: BatchedRefSection {
                batched_wall_ms: 495.0,
                no_batch_wall_ms: 520.0,
                batch_runs: 1_200,
                batched_hits: 9_000,
                batch_breaks: 40,
                batch_hit_rate: 0.31,
            },
            reference_phases: vec![PhaseTiming {
                name: "access",
                wall_ms: 450.0,
                cum_ms: 480.0,
                count: 10,
            }],
            reference_profiled_wall_ms: 505.0,
            reference_overhead_pct: 0.4,
            cells: vec![CellTiming {
                label: "Canneal/GEMINI".into(),
                wall_ms: 100.0,
                ops: 2_500,
                ops_per_sec: 25_000.0,
                phases: vec![PhaseTiming {
                    name: "fault_path",
                    wall_ms: 30.0,
                    cum_ms: 30.0,
                    count: 400,
                }],
                profiler_overhead_ms: 0.5,
            }],
            sweep: vec![SweepPoint {
                jobs: 1,
                wall_ms: 100.0,
                speedup_vs_jobs1: 1.0,
                cell_wall_ms: vec![100.0],
                oversubscribed: false,
            }],
            fleet: Some(FleetBenchSection {
                vms: 250,
                churn_events: 500,
                wall_ms: 1_200.0,
                end_host_fmfi: vec![("THP".into(), 0.12), ("GEMINI".into(), 0.03)],
            }),
        }
    }

    #[test]
    fn report_json_is_wellformed_and_complete() {
        let j = synthetic().to_json();
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        for key in [
            "\"schema\"",
            "\"scale\"",
            "\"jobs_max\"",
            "\"available_parallelism\"",
            "\"cell_wall_ms\"",
            "\"reference_cell\"",
            "\"baseline_wall_ms\"",
            "\"baseline_ops_per_sec\"",
            "\"current_wall_ms\"",
            "\"current_ops_per_sec\"",
            "\"speedup_vs_baseline\"",
            "\"sharded_wall_ms\"",
            "\"sharded_jobs\"",
            "\"pr6_same_host_wall_ms\"",
            "\"speedup_vs_pr6_same_host\"",
            "\"pr9_same_host_wall_ms\"",
            "\"speedup_vs_pr9_same_host\"",
            "\"batched_wall_ms\"",
            "\"no_batch_wall_ms\"",
            "\"batch_runs\"",
            "\"batched_hits\"",
            "\"batch_breaks\"",
            "\"batch_hit_rate\"",
            "\"profiled_wall_ms\"",
            "\"profiler_overhead_pct\"",
            "\"phases\"",
            "\"profiler_overhead_ms\"",
            "\"oversubscribed\"",
            "\"cells\"",
            "\"jobs_sweep\"",
            "\"fleet\"",
            "\"churn_events\"",
            "\"end_host_fmfi\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // And it parses back through the in-tree JSON reader.
        let v = gemini_obs::jsonread::parse(&j).expect("bench JSON parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("gemini-bench-v3")
        );
        let cell = &v.get("cells").and_then(|c| c.as_arr()).unwrap()[0];
        assert_eq!(
            cell.get("phases").and_then(|p| p.as_arr()).map(|p| p.len()),
            Some(1)
        );
    }

    #[test]
    fn same_host_pr6_comparison_is_optional() {
        // With a same-host rebuild measured, the speedup is the wall
        // ratio; without one, both fields render as JSON null rather
        // than a fabricated number.
        let with = synthetic().to_json();
        let v = gemini_obs::jsonread::parse(&with).unwrap();
        let rc = v.get("reference_cell").unwrap();
        assert_eq!(
            rc.get("speedup_vs_pr6_same_host").and_then(|s| s.as_f64()),
            Some(2.0)
        );
        let mut none = synthetic();
        none.pr6_same_host_wall_ms = None;
        let j = none.to_json();
        assert!(j.contains("\"pr6_same_host_wall_ms\": null"));
        assert!(j.contains("\"speedup_vs_pr6_same_host\": null"));
        gemini_obs::jsonread::parse(&j).expect("null fields still parse");
    }

    #[test]
    fn same_host_pr9_comparison_is_optional_and_batch_fields_are_numeric() {
        let with = synthetic().to_json();
        let v = gemini_obs::jsonread::parse(&with).unwrap();
        let rc = v.get("reference_cell").unwrap();
        assert_eq!(
            rc.get("speedup_vs_pr9_same_host").and_then(|s| s.as_f64()),
            Some(1.2)
        );
        assert_eq!(
            rc.get("batched_hits").and_then(|s| s.as_f64()),
            Some(9_000.0)
        );
        assert_eq!(rc.get("batch_runs").and_then(|s| s.as_f64()), Some(1_200.0));
        assert_eq!(
            rc.get("batch_hit_rate").and_then(|s| s.as_f64()),
            Some(0.31)
        );
        let mut none = synthetic();
        none.pr9_same_host_wall_ms = None;
        let j = none.to_json();
        assert!(j.contains("\"pr9_same_host_wall_ms\": null"));
        assert!(j.contains("\"speedup_vs_pr9_same_host\": null"));
        gemini_obs::jsonread::parse(&j).expect("null fields still parse");
    }

    #[test]
    fn fleet_section_is_schema_additive() {
        // Populated: parses back with the churn facts intact.
        let j = synthetic().to_json();
        let v = gemini_obs::jsonread::parse(&j).unwrap();
        let fleet = v.get("fleet").unwrap();
        assert_eq!(fleet.get("vms").and_then(|x| x.as_f64()), Some(250.0));
        assert_eq!(
            fleet
                .get("end_host_fmfi")
                .and_then(|x| x.as_arr())
                .map(|a| a.len()),
            Some(2)
        );
        // Absent (legacy shape): renders null and still parses.
        let mut none = synthetic();
        none.fleet = None;
        let j = none.to_json();
        assert!(j.contains("\"fleet\": null"));
        gemini_obs::jsonread::parse(&j).expect("null fleet still parses");
    }

    /// Regression pin for the trajectory's headline claim: the
    /// reference cell (Canneal × GEMINI on fragmented memory at demo
    /// scale) actually takes the closed-form hit-run fast path, and the
    /// engagement is visible on both observability surfaces — the
    /// machine's [`gemini_tlb::BatchStats`] and the recorder's
    /// `tlb.batch_*` registry counters (which `--json` and the trace
    /// renderer print). If a future change silently stops batching on
    /// this cell, BENCH_pr10-style reports would quietly measure the
    /// slow path; this test fails instead.
    #[test]
    fn reference_cell_engages_the_batched_path() {
        let scale = Scale::demo();
        let spec = spec_by_name("Canneal").expect("Canneal is in the catalog");
        let seed = scale.seed_for("motivation", 0);
        let (r, stats) =
            run_workload_batch_stats(SystemKind::Gemini, &spec, &scale, true, seed).unwrap();
        assert!(stats.runs > 0, "no hit-only runs batched: {stats:?}");
        assert!(stats.hits >= stats.runs, "each run covers >= 1 hit");
        assert!(
            stats.hits <= r.counters.l1_hits,
            "batched hits are a subset of L1 hits"
        );
        let (_, rec) = crate::runner::run_workload_traced(
            SystemKind::Gemini,
            &spec,
            &scale,
            true,
            seed,
            &gemini_obs::TraceConfig::all(),
        )
        .unwrap();
        let reg = rec.registry();
        assert_eq!(reg.counter("tlb.batch_runs"), stats.runs);
        assert_eq!(reg.counter("tlb.batched_hits"), stats.hits);
        assert_eq!(reg.counter("tlb.batch_breaks"), stats.breaks);
    }

    #[test]
    fn speedup_is_relative_to_recorded_baseline() {
        let r = synthetic();
        let expect = 16_000.0 / BASELINE_OPS_PER_SEC;
        assert!((r.speedup_vs_baseline() - expect).abs() < 1e-9);
    }
}

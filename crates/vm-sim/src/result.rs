//! Results of a workload run on the simulated machine.

use gemini_mm::AlignmentStats;
use gemini_sim_core::Cycles;
use gemini_tlb::PerfCounters;

/// Metrics of one workload run in one VM.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// System label the run executed under.
    pub system: &'static str,
    /// Workload name.
    pub workload: String,
    /// Operations completed.
    pub ops: u64,
    /// Virtual time consumed.
    pub vtime: Cycles,
    /// Mean request latency (zero when the workload does not track
    /// latency).
    pub mean_latency: Cycles,
    /// 99th-percentile request latency.
    pub p99_latency: Cycles,
    /// MMU performance counters at the end of the run (deltas since the
    /// run began).
    pub counters: PerfCounters,
    /// Cross-layer huge-page alignment at the end of the run.
    pub alignment: AlignmentStats,
    /// Guest-layer fragmentation index at the end of the run.
    pub guest_fmfi: f64,
    /// Host-layer fragmentation index at the end of the run.
    pub host_fmfi: f64,
    /// Huge-bucket reuse rate (Gemini only; 0 otherwise).
    pub bucket_reuse_rate: f64,
}

impl RunResult {
    /// Throughput in operations per simulated second.
    pub fn throughput(&self) -> f64 {
        if self.vtime == Cycles::ZERO {
            0.0
        } else {
            self.ops as f64 / self.vtime.as_secs_f64()
        }
    }

    /// The well-aligned huge page rate (Tables 1, 3, 4).
    pub fn aligned_rate(&self) -> f64 {
        self.alignment.aligned_rate()
    }

    /// TLB misses (page walks) observed during the run.
    pub fn tlb_misses(&self) -> u64 {
        self.counters.stlb_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let r = RunResult {
            system: "test",
            workload: "w".into(),
            ops: 2_100_000,
            vtime: Cycles::from_secs(1.0),
            mean_latency: Cycles::ZERO,
            p99_latency: Cycles::ZERO,
            counters: PerfCounters::default(),
            alignment: AlignmentStats::default(),
            guest_fmfi: 0.0,
            host_fmfi: 0.0,
            bucket_reuse_rate: 0.0,
        };
        assert!((r.throughput() - 2_100_000.0).abs() < 1.0);
        let empty = RunResult {
            vtime: Cycles::ZERO,
            ..r
        };
        assert_eq!(empty.throughput(), 0.0);
    }
}

//! The systems under comparison (paper §2.3 and §6.1).

use gemini::{GeminiPolicy, GeminiRuntime, GeminiShared};
use gemini_mm::{HugePolicy, LayerKind};
use gemini_policies::{build, PolicyKind};

/// One of the compared system configurations: a (guest policy, host
/// policy) pair, plus Gemini's cross-layer runtime where applicable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Base pages at both layers.
    HostBVmB,
    /// Guest huge pages over host base pages (every guest huge page
    /// mis-aligned; the paper's footnote-1 variant).
    HostBVmH,
    /// Host huge pages under guest base pages — the paper's
    /// `Misalignment` scenario.
    HostHVmB,
    /// Static huge pages at both layers (microbenchmark's aligned
    /// configuration).
    HostHVmH,
    /// Linux THP at both layers, uncoordinated.
    Thp,
    /// CA-paging (software component) at both layers.
    CaPaging,
    /// Translation-ranger at both layers.
    Ranger,
    /// HawkEye at both layers.
    HawkEye,
    /// Ingens at both layers.
    Ingens,
    /// Gemini (this paper).
    Gemini,
    /// Ablation: Gemini without the huge bucket (EMA/HB only, Fig. 16).
    GeminiNoBucket,
    /// Ablation: Gemini with booking/EMA disabled (bucket only, Fig. 16).
    GeminiBucketOnly,
}

impl SystemKind {
    /// The eight systems of the main evaluation, in the paper's order.
    pub fn evaluated() -> [SystemKind; 8] {
        [
            SystemKind::HostBVmB,
            SystemKind::HostHVmB,
            SystemKind::Thp,
            SystemKind::CaPaging,
            SystemKind::Ranger,
            SystemKind::HawkEye,
            SystemKind::Ingens,
            SystemKind::Gemini,
        ]
    }

    /// The six systems whose well-aligned rates the paper tabulates
    /// (Tables 1, 3, 4).
    pub fn tabulated() -> [SystemKind; 6] {
        [
            SystemKind::Thp,
            SystemKind::CaPaging,
            SystemKind::Ranger,
            SystemKind::HawkEye,
            SystemKind::Ingens,
            SystemKind::Gemini,
        ]
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::HostBVmB => "Host-B-VM-B",
            SystemKind::HostBVmH => "Host-B-VM-H",
            SystemKind::HostHVmB => "Misalignment",
            SystemKind::HostHVmH => "Host-H-VM-H",
            SystemKind::Thp => "THP",
            SystemKind::CaPaging => "CA-paging",
            SystemKind::Ranger => "Trans-ranger",
            SystemKind::HawkEye => "HawkEye",
            SystemKind::Ingens => "Ingens",
            SystemKind::Gemini => "GEMINI",
            SystemKind::GeminiNoBucket => "GEMINI-EMA/HB",
            SystemKind::GeminiBucketOnly => "GEMINI-bucket",
        }
    }

    /// True for the Gemini variants (they need the cross-layer runtime).
    pub fn is_gemini(self) -> bool {
        matches!(
            self,
            SystemKind::Gemini | SystemKind::GeminiNoBucket | SystemKind::GeminiBucketOnly
        )
    }

    /// Builds the guest-layer policy (per VM). `zero_heavy` flags the
    /// running workload for HawkEye's deduplicator.
    pub fn guest_policy(
        self,
        zero_heavy: bool,
        shared: Option<&GeminiShared>,
    ) -> Box<dyn HugePolicy> {
        match self {
            SystemKind::HostBVmB | SystemKind::HostHVmB => build(PolicyKind::Base),
            SystemKind::HostBVmH | SystemKind::HostHVmH => build(PolicyKind::HugeAlways),
            SystemKind::Thp => build(PolicyKind::Thp),
            SystemKind::CaPaging => build(PolicyKind::CaPaging),
            SystemKind::Ranger => build(PolicyKind::Ranger),
            SystemKind::HawkEye => build(PolicyKind::HawkEye { zero_heavy }),
            SystemKind::Ingens => build(PolicyKind::Ingens),
            SystemKind::Gemini | SystemKind::GeminiNoBucket | SystemKind::GeminiBucketOnly => {
                let shared = shared.expect("Gemini systems need shared state").clone();
                Box::new(GeminiPolicy::new(
                    LayerKind::Guest,
                    shared,
                    self.gemini_config(),
                ))
            }
        }
    }

    /// Builds the host-layer policy (shared by all VMs).
    pub fn host_policy(self, shared: Option<&GeminiShared>) -> Box<dyn HugePolicy> {
        match self {
            SystemKind::HostBVmB | SystemKind::HostBVmH => build(PolicyKind::Base),
            SystemKind::HostHVmB | SystemKind::HostHVmH => build(PolicyKind::HugeAlways),
            SystemKind::Thp => build(PolicyKind::Thp),
            SystemKind::CaPaging => build(PolicyKind::CaPaging),
            SystemKind::Ranger => build(PolicyKind::Ranger),
            SystemKind::HawkEye => build(PolicyKind::HawkEye { zero_heavy: false }),
            SystemKind::Ingens => build(PolicyKind::Ingens),
            SystemKind::Gemini | SystemKind::GeminiNoBucket | SystemKind::GeminiBucketOnly => {
                let shared = shared.expect("Gemini systems need shared state").clone();
                Box::new(GeminiPolicy::new(
                    LayerKind::Host,
                    shared,
                    self.gemini_config(),
                ))
            }
        }
    }

    /// The Gemini configuration for this variant (ablations flip flags).
    pub fn gemini_config(self) -> gemini::policy::GeminiConfig {
        let mut cfg = gemini::policy::GeminiConfig::default();
        match self {
            SystemKind::GeminiNoBucket => cfg.enable_bucket = false,
            SystemKind::GeminiBucketOnly => {
                cfg.enable_booking = false;
                cfg.enable_promoter = false;
            }
            _ => {}
        }
        cfg
    }

    /// Builds the cross-layer runtime for Gemini variants.
    pub fn runtime(self, shared: &GeminiShared) -> Option<GeminiRuntime> {
        self.is_gemini().then(|| GeminiRuntime::new(shared.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini::shared::new_shared;

    #[test]
    fn evaluated_set_matches_paper() {
        let labels: Vec<&str> = SystemKind::evaluated().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Host-B-VM-B",
                "Misalignment",
                "THP",
                "CA-paging",
                "Trans-ranger",
                "HawkEye",
                "Ingens",
                "GEMINI"
            ]
        );
    }

    #[test]
    fn policies_build_for_every_system() {
        let shared = new_shared();
        for s in SystemKind::evaluated() {
            let arg = s.is_gemini().then_some(&shared);
            let g = s.guest_policy(false, arg);
            let h = s.host_policy(arg);
            assert!(!g.name().is_empty());
            assert!(!h.name().is_empty());
            assert_eq!(s.runtime(&shared).is_some(), s.is_gemini());
        }
    }

    #[test]
    fn ablations_flip_config_flags() {
        assert!(!SystemKind::GeminiNoBucket.gemini_config().enable_bucket);
        assert!(!SystemKind::GeminiBucketOnly.gemini_config().enable_booking);
        assert!(SystemKind::Gemini.gemini_config().enable_bucket);
    }
}

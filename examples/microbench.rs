//! The paper's Figure 2 microbenchmark, at quick scale.
//!
//! Randomly accesses a growing dataset under the four static page-size
//! configurations. Watch the separation appear once the dataset exceeds
//! base-page TLB coverage — and note that the two *misaligned*
//! configurations (huge pages at only one layer) barely improve on base
//! pages.
//!
//! ```text
//! cargo run --release --example microbench
//! ```

use gemini_harness::experiments::fig02;
use gemini_harness::Scale;

fn main() {
    let scale = Scale::demo();
    let results = fig02::run(&scale).expect("sweep succeeds");
    print!("{}", results.render());
    println!(
        "\naligned speedup at smallest dataset: {:.2}x (should be ~1)",
        results.aligned_speedup_at_min()
    );
    println!(
        "aligned speedup at largest dataset:  {:.2}x (the paper's gap)",
        results.aligned_speedup_at_max()
    );
}

//! Regenerates Figure 3 and Table 1: the motivation experiment — four
//! applications under the eight systems with fragmented memory.

use gemini_bench::{bench_scale, header};
use gemini_harness::experiments::motivation;

fn main() {
    header("fig03_tab01_motivation", "Figure 3 + Table 1");
    let res = motivation::run(&bench_scale()).expect("grid succeeds");
    print!("{}", res.render_fig03());
    println!();
    print!("{}", res.render_tab01());
    println!(
        "GEMINI mean well-aligned rate: {:.0}%",
        res.gemini_mean_aligned() * 100.0
    );
}

//! Gemini: making dynamic page coalescing effective on virtualized clouds.
//!
//! This crate implements the paper's contribution (EuroSys '23): a
//! cross-layer system that turns *mis-aligned* huge pages — huge pages
//! formed at only one of the two translation layers — into *well-aligned*
//! huge pages, which are the only ones that actually reduce address
//! translation overhead under nested paging.
//!
//! The components mirror Figure 4 of the paper:
//!
//! - [`mhps`] — the **misaligned huge page scanner**, which periodically
//!   scans guest process page tables and VM (EPT) tables, labels every
//!   huge page with its layer, guest physical address and VM id, and
//!   classifies mis-aligned pages into *type-1* (no base pages mapped at
//!   the other layer) and *type-2* (some base pages mapped, promotion
//!   needs migration).
//! - [`booking`] — **huge booking**: temporary reservation of the
//!   huge-page-sized memory region corresponding to a type-1 mis-aligned
//!   huge page, so that only huge allocations or contiguous base
//!   allocations can use it.
//! - [`timeout`] — **Algorithm 1**, the booking-timeout controller that
//!   nudges the timeout ±10 % and keeps changes that reduce TLB misses
//!   without increasing memory fragmentation.
//! - [`ema`] — the **enhanced memory allocator**: per-VMA offset
//!   descriptors in a self-organizing (move-to-front) list, sub-VMA
//!   splitting when a target becomes unavailable, and huge-page-congruent
//!   placement so promotions are in-place.
//! - [`bucket`] — the **huge bucket**: freed well-aligned huge regions are
//!   held for a grace period and handed back wholesale to later huge
//!   allocations (the reused-VM win), returned to the OS on pressure.
//! - [`policy`] — [`GeminiPolicy`], the per-layer [`gemini_mm::HugePolicy`]
//!   that combines the above (the fault path, the preallocation-driven
//!   fill-then-promote, and the type-2 promoter MHPP).
//! - [`runtime`] — [`GeminiRuntime`], the host-resident coordinator that
//!   runs MHPS, publishes scan results to both layers' policies through
//!   [`shared::GeminiShared`], and drives the timeout controller from TLB
//!   and fragmentation telemetry.

//! # Examples
//!
//! The scanner and shared state alone demonstrate the cross-layer flow:
//!
//! ```
//! use gemini::mhps::scan_vm;
//! use gemini_page_table::AddressSpace;
//! use gemini_sim_core::VmId;
//!
//! let mut guest = AddressSpace::new();
//! let mut ept = AddressSpace::new();
//! // The guest formed a huge page at GPA region 7; the EPT has nothing
//! // there yet: a type-1 mis-aligned guest huge page the host can fix by
//! // backing region 7 with a (reserved) host huge page.
//! guest.map_huge(0, 7)?;
//! let scan = scan_vm(VmId(1), &guest, &ept);
//! assert_eq!(scan.guest_type1, vec![7]);
//! ept.map_huge(7, 3)?;
//! let scan = scan_vm(VmId(1), &guest, &ept);
//! assert!(scan.aligned_regions.contains(&7));
//! # Ok::<(), gemini_sim_core::SimError>(())
//! ```

pub mod booking;
pub mod bucket;
pub mod ema;
pub mod mhps;
pub mod policy;
pub mod runtime;
pub mod shared;
pub mod timeout;

pub use booking::BookingTable;
pub use bucket::HugeBucket;
pub use ema::{EmaList, OffsetDescriptor};
pub use mhps::{scan_vm, MisalignedType, VmScan};
pub use policy::GeminiPolicy;
pub use runtime::GeminiRuntime;
pub use shared::{GeminiShared, GeminiState};
pub use timeout::TimeoutController;

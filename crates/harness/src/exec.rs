//! Deterministic parallel execution of experiment cells.
//!
//! An experiment *cell* is one self-contained simulation: a closure
//! that builds a machine, runs a workload and returns its result.
//! Because every cell derives its seed up front (via
//! [`gemini_sim_core::derive_seed`] through [`Scale::seed_for`]) and
//! shares no mutable state with other cells, cells can execute in any
//! order on any number of threads — the executor reassembles results
//! in submission order, so rendered tables, JSON exports and traces
//! are byte-identical whether a grid ran on one thread or sixteen.
//!
//! [`Scale::seed_for`]: crate::scale::Scale::seed_for
//!
//! The pool is dependency-free: [`std::thread::scope`] workers pull
//! `(index, cell)` pairs from a shared queue and write each result
//! into its submission-indexed slot. Progress flows through the
//! [`Recorder`] as deterministic counters (`exec.cells_submitted`,
//! `exec.cells_finished`) — never wall-clock time, which would differ
//! between runs and break byte-identity of exported registries.

use gemini_obs::Recorder;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Resolves a jobs setting: `0` means "use the machine's available
/// parallelism", anything else is taken literally.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs `cells` across `jobs` worker threads (0 = auto) and returns
/// their results in submission order.
///
/// `jobs <= 1` runs the cells inline on the calling thread — the
/// sequential reference path the parallel one is checked against.
pub fn run_cells<T, F>(jobs: usize, cells: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_cells_traced(jobs, &Recorder::off(), cells)
}

/// Like [`run_cells`], but reports cell-level progress through `rec`:
/// `exec.cells_submitted` counts cells enqueued, `exec.cells_finished`
/// counts completions. Both are deterministic counts, so a traced
/// parallel run exports the same registry as a sequential one.
pub fn run_cells_traced<T, F>(jobs: usize, rec: &Recorder, cells: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = cells.len();
    rec.counter_add("exec.cells_submitted", n as u64);
    let jobs = effective_jobs(jobs).min(n.max(1));
    if jobs <= 1 {
        return cells
            .into_iter()
            .map(|cell| {
                let result = cell();
                rec.counter_add("exec.cells_finished", 1);
                result
            })
            .collect();
    }
    let queue: Mutex<VecDeque<(usize, F)>> = Mutex::new(cells.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                // Pop under the lock, run outside it: cells are the
                // expensive part and must not serialize.
                let next = queue.lock().unwrap().pop_front();
                let Some((idx, cell)) = next else {
                    break;
                };
                let result = cell();
                *slots[idx].lock().unwrap() = Some(result);
                rec.counter_add("exec.cells_finished", 1);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock cannot be poisoned after join")
                .expect("every queued cell stores its result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_jobs_is_positive() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for jobs in [1, 2, 7] {
            let cells: Vec<_> = (0..25u64).map(|i| move || i * i).collect();
            let out = run_cells(jobs, cells);
            assert_eq!(out, (0..25u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_workers_than_cells_is_fine() {
        let cells: Vec<_> = (0..2u64).map(|i| move || i).collect();
        assert_eq!(run_cells(16, cells), vec![0, 1]);
        let empty: Vec<fn() -> u64> = Vec::new();
        assert!(run_cells(4, empty).is_empty());
    }

    #[test]
    fn progress_counters_are_deterministic_across_jobs() {
        let registry_for = |jobs: usize| {
            let rec = Recorder::new(&gemini_obs::TraceConfig::all());
            let cells: Vec<_> = (0..10u64).map(|i| move || i).collect();
            run_cells_traced(jobs, &rec, cells);
            rec.registry()
        };
        let seq = registry_for(1);
        let par = registry_for(4);
        assert_eq!(seq.counter("exec.cells_submitted"), 10);
        assert_eq!(seq.counter("exec.cells_finished"), 10);
        assert_eq!(seq.to_json_lines(), par.to_json_lines());
    }

    #[test]
    fn errors_propagate_as_values() {
        let cells: Vec<_> = (0..4u64)
            .map(|i| move || if i == 2 { Err(i) } else { Ok(i) })
            .collect();
        let out = run_cells(2, cells);
        assert_eq!(out, vec![Ok(0), Ok(1), Err(2), Ok(3)]);
    }
}

//! Layer-independent mechanism helpers shared by guest and host managers.
//!
//! Fault resolution (with the fallback ladder of [`FaultDecision`]) and
//! promotion execution are identical at both layers up to which cost
//! constants apply and which invalidation list the effects land in; this
//! module implements them once.

use crate::costs::CostModel;
use crate::policy::{Effects, FaultDecision, FaultOutcome, LayerKind, PromotionKind, PromotionOp};
use gemini_buddy::BuddyAllocator;
use gemini_page_table::AddressSpace;
use gemini_sim_core::page::PageSize;
use gemini_sim_core::{Cycles, SimError, HUGE_PAGE_ORDER, PAGES_PER_HUGE_PAGE};

/// Resolves a fault decision against the table and allocator, walking the
/// fallback ladder: `HugeReserved`/`HugeAt` → `Huge` → `Base`, and
/// `BaseReserved`/`BaseAt` → `Base`.
///
/// `huge_allowed` must already encode the legality of a huge mapping here
/// (region empty and fully covered by the VMA at the guest layer).
pub fn resolve_fault(
    table: &mut AddressSpace,
    buddy: &mut BuddyAllocator,
    costs: &CostModel,
    layer: LayerKind,
    addr_frame: u64,
    decision: FaultDecision,
    huge_allowed: bool,
) -> Result<(FaultOutcome, Effects), SimError> {
    let region = addr_frame >> HUGE_PAGE_ORDER;
    let (base_cost, huge_extra) = layer.fault_costs(costs);

    // Huge-path attempts, in decreasing specificity.
    if huge_allowed {
        match decision {
            FaultDecision::HugeReserved { huge_frame } => {
                table.map_huge(region, huge_frame)?;
                return Ok((
                    FaultOutcome {
                        size: PageSize::Huge,
                        pa_frame: huge_frame << HUGE_PAGE_ORDER,
                        placement_honored: true,
                    },
                    Effects::cost(base_cost + huge_extra),
                ));
            }
            FaultDecision::HugeAt { huge_frame } => {
                if buddy
                    .alloc_at(huge_frame << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER)
                    .is_ok()
                {
                    table.map_huge(region, huge_frame)?;
                    return Ok((
                        FaultOutcome {
                            size: PageSize::Huge,
                            pa_frame: huge_frame << HUGE_PAGE_ORDER,
                            placement_honored: true,
                        },
                        Effects::cost(base_cost + huge_extra),
                    ));
                }
                // Fall through to an untargeted huge attempt.
                if let Ok(start) = buddy.alloc(HUGE_PAGE_ORDER) {
                    table.map_huge(region, start >> HUGE_PAGE_ORDER)?;
                    return Ok((
                        FaultOutcome {
                            size: PageSize::Huge,
                            pa_frame: start,
                            placement_honored: false,
                        },
                        Effects::cost(base_cost + huge_extra),
                    ));
                }
            }
            FaultDecision::Huge => {
                if let Ok(start) = buddy.alloc(HUGE_PAGE_ORDER) {
                    table.map_huge(region, start >> HUGE_PAGE_ORDER)?;
                    return Ok((
                        FaultOutcome {
                            size: PageSize::Huge,
                            pa_frame: start,
                            placement_honored: true,
                        },
                        Effects::cost(base_cost + huge_extra),
                    ));
                }
            }
            _ => {}
        }
    }

    // Base-page path.
    match decision {
        FaultDecision::BaseReserved { frame } => {
            table.map_base(addr_frame, frame)?;
            Ok((
                FaultOutcome {
                    size: PageSize::Base,
                    pa_frame: frame,
                    placement_honored: true,
                },
                Effects::cost(base_cost),
            ))
        }
        FaultDecision::BaseAt { frame } => {
            if buddy.alloc_at(frame, 0).is_ok() {
                table.map_base(addr_frame, frame)?;
                Ok((
                    FaultOutcome {
                        size: PageSize::Base,
                        pa_frame: frame,
                        placement_honored: true,
                    },
                    Effects::cost(base_cost),
                ))
            } else {
                let frame = buddy.alloc(0)?;
                table.map_base(addr_frame, frame)?;
                Ok((
                    FaultOutcome {
                        size: PageSize::Base,
                        pa_frame: frame,
                        placement_honored: false,
                    },
                    Effects::cost(base_cost),
                ))
            }
        }
        _ => {
            // Base, or any huge-path decision that fell all the way down.
            let frame = buddy.alloc(0)?;
            table.map_base(addr_frame, frame)?;
            let honored = decision == FaultDecision::Base;
            Ok((
                FaultOutcome {
                    size: PageSize::Base,
                    pa_frame: frame,
                    placement_honored: honored,
                },
                Effects::cost(base_cost),
            ))
        }
    }
}

/// Executes one promotion request; returns effects (empty if the request
/// could not be satisfied, e.g. no contiguity and no free huge block).
///
/// On success the affected input region is recorded in the right
/// invalidation list for `layer`, one shootdown round is charged, and the
/// foreground stall reflects pages copied/zeroed.
pub fn execute_promotion(
    table: &mut AddressSpace,
    buddy: &mut BuddyAllocator,
    costs: &CostModel,
    layer: LayerKind,
    op: PromotionOp,
    vcpus: u32,
) -> Effects {
    let pop = table.region_population(op.region);
    if pop.present == 0 || table.huge_leaf(op.region).is_some() {
        return Effects::none();
    }

    let full = pop.present == PAGES_PER_HUGE_PAGE as usize;
    let try_in_place = matches!(
        op.kind,
        PromotionKind::InPlaceOnly | PromotionKind::PreferInPlace | PromotionKind::FillThenPromote
    );

    // 1. Pure in-place promotion: free except for the remap.
    if try_in_place && full && pop.in_place_eligible && table.promote_in_place(op.region).is_ok() {
        return promotion_effects(layer, op.region, costs.daemon_stall(0, vcpus), 0, 0);
    }

    // 2. Fill-then-promote: allocate the missing tail of an eligible
    //    region at the exact frames, then promote in place.
    if op.kind == PromotionKind::FillThenPromote {
        if !pop.in_place_eligible {
            return Effects::none();
        }
        let Some(target_huge) = pop.target_huge_frame else {
            return Effects::none();
        };
        let pa0 = target_huge << HUGE_PAGE_ORDER;
        let present: std::collections::HashSet<u64> = table
            .iter_base_in(op.region)
            .into_iter()
            .map(|(va, _)| va % PAGES_PER_HUGE_PAGE)
            .collect();
        let missing: Vec<u64> = (0..PAGES_PER_HUGE_PAGE)
            .filter(|i| !present.contains(i))
            .collect();
        // All-or-nothing: the missing frames must all be free — unless the
        // policy already owns them (a booked region, `target_reserved`).
        if !op.target_reserved && !missing.iter().all(|&i| buddy.is_frame_free(pa0 + i)) {
            return Effects::none();
        }
        for &i in &missing {
            if !op.target_reserved {
                buddy
                    .alloc_at(pa0 + i, 0)
                    .expect("frame checked free above");
            }
            table
                .map_base((op.region << HUGE_PAGE_ORDER) + i, pa0 + i)
                .expect("entry checked absent above");
        }
        let zeroed = missing.len() as u64;
        table
            .promote_in_place(op.region)
            .expect("region is now full, contiguous and aligned");
        let mut fx = promotion_effects(layer, op.region, costs.daemon_stall(0, vcpus), 0, zeroed);
        fx.cycles += Cycles(costs.page_zero.0 * zeroed);
        return fx;
    }

    if op.kind == PromotionKind::InPlaceOnly {
        return Effects::none();
    }

    // 3. Copy-promotion (khugepaged collapse): new huge page, copy what is
    //    present, zero the rest.
    let target = if let Some(t) = op.copy_target {
        if op.target_reserved
            || buddy
                .alloc_at(t << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER)
                .is_ok()
        {
            Some(t)
        } else {
            buddy
                .alloc(HUGE_PAGE_ORDER)
                .ok()
                .map(|s| s >> HUGE_PAGE_ORDER)
        }
    } else {
        buddy
            .alloc(HUGE_PAGE_ORDER)
            .ok()
            .map(|s| s >> HUGE_PAGE_ORDER)
    };
    let Some(target) = target else {
        return Effects::none();
    };
    let displaced = table
        .promote_with_copy(op.region, target)
        .expect("region checked populated and not huge");
    // Old frames return to the allocator.
    for &(_, old) in &displaced {
        buddy.free(old, 0).expect("displaced frame was allocated");
    }
    let copied = displaced.len() as u64;
    let zeroed = PAGES_PER_HUGE_PAGE - copied;
    let stall = costs.daemon_stall(copied, vcpus);
    let mut fx = promotion_effects(layer, op.region, stall, copied, zeroed);
    fx.cycles += Cycles(costs.page_zero.0 * zeroed);
    fx
}

/// Splits a huge leaf back into base mappings, with accounting.
pub fn execute_demotion(
    table: &mut AddressSpace,
    costs: &CostModel,
    layer: LayerKind,
    region: u64,
    vcpus: u32,
) -> Result<Effects, SimError> {
    table.demote(region)?;
    Ok(promotion_effects(
        layer,
        region,
        costs.daemon_stall(0, vcpus),
        0,
        0,
    ))
}

fn promotion_effects(
    layer: LayerKind,
    region: u64,
    stall: Cycles,
    copied: u64,
    zeroed: u64,
) -> Effects {
    let mut fx = Effects::cost(stall);
    fx.shootdowns = 1;
    fx.pages_copied = copied;
    fx.pages_zeroed = zeroed;
    match layer {
        LayerKind::Guest => fx.gva_regions_invalidated.push(region),
        LayerKind::Host => fx.gpa_regions_changed.push(region),
    }
    fx
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_sim_core::page::PageSize;

    fn setup() -> (AddressSpace, BuddyAllocator, CostModel) {
        (
            AddressSpace::new(),
            BuddyAllocator::new(4096),
            CostModel::default(),
        )
    }

    #[test]
    fn base_decision_maps_one_page() {
        let (mut t, mut b, c) = setup();
        let (out, fx) = resolve_fault(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            100,
            FaultDecision::Base,
            true,
        )
        .unwrap();
        assert_eq!(out.size, PageSize::Base);
        assert!(out.placement_honored);
        assert_eq!(fx.cycles, c.minor_fault);
        assert_eq!(t.base_mapped(), 1);
        assert_eq!(b.used_frames(), 1);
    }

    #[test]
    fn huge_decision_maps_region_when_allowed() {
        let (mut t, mut b, c) = setup();
        let (out, fx) = resolve_fault(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            513,
            FaultDecision::Huge,
            true,
        )
        .unwrap();
        assert_eq!(out.size, PageSize::Huge);
        assert_eq!(t.huge_mapped(), 1);
        assert_eq!(b.used_frames(), 512);
        assert!(fx.cycles > c.minor_fault);
        // Host faults cost EPT rates.
        let (mut t2, mut b2, _) = setup();
        let (_, fx2) = resolve_fault(
            &mut t2,
            &mut b2,
            &c,
            LayerKind::Host,
            513,
            FaultDecision::Huge,
            true,
        )
        .unwrap();
        assert_eq!(fx2.cycles, c.ept_fault + c.ept_huge_fault_extra);
    }

    #[test]
    fn huge_disallowed_degrades_to_base() {
        let (mut t, mut b, c) = setup();
        let (out, _) = resolve_fault(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            0,
            FaultDecision::Huge,
            false,
        )
        .unwrap();
        assert_eq!(out.size, PageSize::Base);
        assert!(!out.placement_honored);
    }

    #[test]
    fn huge_at_honors_target_or_falls_back() {
        let (mut t, mut b, c) = setup();
        let (out, _) = resolve_fault(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            0,
            FaultDecision::HugeAt { huge_frame: 3 },
            true,
        )
        .unwrap();
        assert_eq!(out.pa_frame, 3 * 512);
        assert!(out.placement_honored);
        // Target busy now: next fault in another region falls back.
        let (out2, _) = resolve_fault(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            512,
            FaultDecision::HugeAt { huge_frame: 3 },
            true,
        )
        .unwrap();
        assert_eq!(out2.size, PageSize::Huge);
        assert!(!out2.placement_honored);
        assert_ne!(out2.pa_frame, 3 * 512);
    }

    #[test]
    fn base_at_falls_back_when_busy() {
        let (mut t, mut b, c) = setup();
        b.alloc_at(7, 0).unwrap();
        let (out, _) = resolve_fault(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            1,
            FaultDecision::BaseAt { frame: 7 },
            true,
        )
        .unwrap();
        assert!(!out.placement_honored);
        assert_ne!(out.pa_frame, 7);
    }

    #[test]
    fn reserved_variants_bypass_buddy() {
        let (mut t, mut b, c) = setup();
        // Carve frames out of the buddy first, as a booking would.
        b.alloc_at(512, gemini_sim_core::HUGE_PAGE_ORDER).unwrap();
        let used_before = b.used_frames();
        let (out, _) = resolve_fault(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            0,
            FaultDecision::BaseReserved { frame: 512 },
            true,
        )
        .unwrap();
        assert_eq!(out.pa_frame, 512);
        assert_eq!(b.used_frames(), used_before, "buddy untouched");
        let out2 = resolve_fault(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            512,
            FaultDecision::HugeReserved { huge_frame: 1 },
            true,
        );
        // Region 1's frames are partly the same; mapping still succeeds at
        // the table level because table and buddy are decoupled here.
        assert!(out2.is_ok());
    }

    #[test]
    fn oom_propagates() {
        let (mut t, mut b, c) = setup();
        while b.alloc(0).is_ok() {}
        let r = resolve_fault(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            0,
            FaultDecision::Base,
            true,
        );
        assert!(matches!(r, Err(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn in_place_promotion_via_op() {
        let (mut t, mut b, c) = setup();
        for i in 0..512u64 {
            let f = b.alloc(0).unwrap();
            assert_eq!(f, i); // Low-address-first keeps it contiguous.
            t.map_base(i, f).unwrap();
        }
        let fx = execute_promotion(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            PromotionOp::new(0, PromotionKind::InPlaceOnly),
            1,
        );
        assert_eq!(t.huge_mapped(), 1);
        assert_eq!(fx.pages_copied, 0);
        assert_eq!(fx.shootdowns, 1);
        assert_eq!(fx.gva_regions_invalidated, vec![0]);
    }

    #[test]
    fn in_place_only_refuses_scattered_regions() {
        let (mut t, mut b, c) = setup();
        // Scattered: allocate from high addresses via alloc_at.
        for i in 0..512u64 {
            let f = 2048 + i * 2;
            b.alloc_at(f, 0).unwrap();
            t.map_base(i, f).unwrap();
        }
        let fx = execute_promotion(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            PromotionOp::new(0, PromotionKind::InPlaceOnly),
            1,
        );
        assert_eq!(fx, Effects::none());
        assert_eq!(t.huge_mapped(), 0);
    }

    #[test]
    fn prefer_in_place_collapses_scattered_by_copy() {
        let (mut t, mut b, c) = setup();
        for i in 0..100u64 {
            let f = 1024 + i * 3;
            b.alloc_at(f, 0).unwrap();
            t.map_base(i, f).unwrap();
        }
        let used_before = b.used_frames();
        let fx = execute_promotion(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            PromotionOp::new(0, PromotionKind::PreferInPlace),
            4,
        );
        assert_eq!(t.huge_mapped(), 1);
        assert_eq!(fx.pages_copied, 100);
        assert_eq!(fx.pages_zeroed, 412);
        // Net frames: +512 (huge) -100 (displaced returned).
        assert_eq!(b.used_frames(), used_before + 512 - 100);
        b.check_invariants().unwrap();
    }

    #[test]
    fn copy_promotion_prefers_requested_target() {
        let (mut t, mut b, c) = setup();
        b.alloc_at(0, 0).unwrap();
        t.map_base(0, 0).unwrap();
        let fx = execute_promotion(
            &mut t,
            &mut b,
            &c,
            LayerKind::Host,
            PromotionOp {
                region: 0,
                kind: PromotionKind::Copy,
                copy_target: Some(5),
                target_reserved: false,
            },
            1,
        );
        assert_eq!(t.huge_leaf(0), Some(5));
        assert_eq!(fx.gpa_regions_changed, vec![0]);
    }

    #[test]
    fn fill_then_promote_fills_missing_frames() {
        let (mut t, mut b, c) = setup();
        // 300 pages present, contiguous from frame 512 (aligned).
        for i in 0..300u64 {
            b.alloc_at(512 + i, 0).unwrap();
            t.map_base(i, 512 + i).unwrap();
        }
        let fx = execute_promotion(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            PromotionOp::new(0, PromotionKind::FillThenPromote),
            1,
        );
        assert_eq!(t.huge_leaf(0), Some(1));
        assert_eq!(fx.pages_zeroed, 212);
        assert_eq!(fx.pages_copied, 0);
        b.check_invariants().unwrap();
    }

    #[test]
    fn fill_then_promote_requires_free_tail_and_eligibility() {
        let (mut t, mut b, c) = setup();
        for i in 0..300u64 {
            b.alloc_at(512 + i, 0).unwrap();
            t.map_base(i, 512 + i).unwrap();
        }
        // Occupy one missing frame: all-or-nothing must refuse.
        b.alloc_at(512 + 400, 0).unwrap();
        let fx = execute_promotion(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            PromotionOp::new(0, PromotionKind::FillThenPromote),
            1,
        );
        assert_eq!(fx, Effects::none());
        assert_eq!(t.huge_mapped(), 0);
        // Scattered region is ineligible regardless of free space.
        let (mut t2, mut b2, _) = setup();
        b2.alloc_at(512, 0).unwrap();
        b2.alloc_at(2000, 0).unwrap();
        t2.map_base(0, 512).unwrap();
        t2.map_base(1, 2000).unwrap();
        let fx2 = execute_promotion(
            &mut t2,
            &mut b2,
            &c,
            LayerKind::Guest,
            PromotionOp::new(0, PromotionKind::FillThenPromote),
            1,
        );
        assert_eq!(fx2, Effects::none());
    }

    #[test]
    fn promotion_skips_empty_and_already_huge() {
        let (mut t, mut b, c) = setup();
        let fx = execute_promotion(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            PromotionOp::new(9, PromotionKind::Copy),
            1,
        );
        assert_eq!(fx, Effects::none());
        t.map_huge(9, 2).unwrap();
        let fx = execute_promotion(
            &mut t,
            &mut b,
            &c,
            LayerKind::Guest,
            PromotionOp::new(9, PromotionKind::Copy),
            1,
        );
        assert_eq!(fx, Effects::none());
    }

    #[test]
    fn demotion_splits_and_accounts() {
        let (mut t, _b, c) = setup();
        t.map_huge(4, 7).unwrap();
        let fx = execute_demotion(&mut t, &c, LayerKind::Host, 4, 2).unwrap();
        assert_eq!(t.huge_mapped(), 0);
        assert_eq!(t.base_mapped(), 512);
        assert_eq!(fx.gpa_regions_changed, vec![4]);
        assert!(execute_demotion(&mut t, &c, LayerKind::Host, 4, 2).is_err());
    }
}

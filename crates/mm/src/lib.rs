//! Memory-management mechanisms for both layers of a virtualized system.
//!
//! This crate is the moral equivalent of the parts of `mm/` and KVM that
//! the paper modifies. It deliberately separates **mechanism** from
//! **policy**:
//!
//! - Mechanisms live here, implemented once in the generic
//!   [`LayerEngine`] and instantiated per layer: VMAs and demand paging
//!   in the guest ([`GuestMm`]), EPT-fault handling and host backing
//!   ([`HostMm`]), promotion (in-place, fill-and-promote, copy/migrate),
//!   demotion, unmapping, and the cycle/shootdown accounting for all of
//!   them.
//! - Policies (Linux THP, Ingens, HawkEye, CA-paging, Translation-ranger,
//!   and Gemini itself) implement the [`HugePolicy`] trait and are plugged
//!   into each layer independently — exactly the structure that produces
//!   the misalignment problem, and the seam Gemini's cross-layer
//!   coordination hooks into.
//!
//! Every mutating operation returns [`Effects`], the record of TLB
//! invalidations, shootdowns and cycle costs the whole-system simulator
//! must apply to its MMU model and clock.

pub mod aligned;
pub mod compaction;
pub mod costs;
pub mod engine;
pub mod frag;
pub mod guest;
pub mod host;
pub mod mech;
pub mod policy;
pub mod touch;
pub mod vma;

pub use aligned::{alignment_stats, AlignmentStats};
pub use compaction::Compactor;
pub use costs::CostModel;
pub use engine::{FaultSite, Layer, LayerEngine, LayerParts};
pub use frag::{fragment_to, TenantChurn};
pub use guest::{GuestLayer, GuestMm};
pub use host::{HostLayer, HostMm};
pub use policy::{
    Effects, FaultCtx, FaultDecision, FaultOutcome, HugePolicy, LayerKind, LayerOps, PromotionKind,
    PromotionOp,
};
pub use touch::TouchMap;
pub use vma::{Vma, VmaId, VmaSet};

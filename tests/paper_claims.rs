//! The paper's qualitative claims, checked end-to-end at test scale.
//!
//! These are *shape* assertions (who wins, roughly by how much, where the
//! crossovers fall), mirroring EXPERIMENTS.md. Absolute constants are
//! deliberately loose: the quick scale trades magnitude for speed.

use gemini_harness::experiments::{breakdown, clean_slate, collocated, fig02, motivation};
use gemini_harness::Scale;
use gemini_vm_sim::SystemKind;

fn scale(ops: u64) -> Scale {
    Scale {
        ops,
        ..Scale::quick()
    }
}

#[test]
fn claim_fig2_only_well_aligned_huge_pages_help() {
    let res = fig02::run(&scale(2_000)).unwrap();
    // Small dataset: all four configurations within ~35 %.
    assert!(res.aligned_speedup_at_min() < 1.35);
    // Large dataset: aligned huge pages clearly win.
    assert!(res.aligned_speedup_at_max() > 1.5);
    // Misaligned huge pages close less than half the gap the aligned
    // configuration opens, at every dataset size.
    for (_, row) in &res.rows {
        let base = row[0].vtime.0 as f64;
        let aligned_gain = base / row[3].vtime.0 as f64 - 1.0;
        for mis in [&row[1], &row[2]] {
            let gain = base / mis.vtime.0 as f64 - 1.0;
            assert!(
                gain < 0.5 * aligned_gain + 0.1,
                "misaligned gain {gain} vs aligned {aligned_gain}"
            );
        }
    }
}

#[test]
fn claim_tab1_gemini_aligns_most_huge_pages() {
    // Alignment formation is daemon-paced, so this claim needs runs long
    // enough for background coalescing to act: bench scale.
    let res = motivation::run(&Scale {
        ops: 5_000,
        ..Scale::bench()
    })
    .unwrap();
    let eval = SystemKind::evaluated();
    let idx = |s: SystemKind| eval.iter().position(|&e| e == s).unwrap();
    let gem = idx(SystemKind::Gemini);
    let mean_rate = |i: usize| -> f64 {
        res.runs.iter().map(|r| r[i].aligned_rate()).sum::<f64>() / res.runs.len() as f64
    };
    let pairs = |i: usize| -> u64 { res.runs.iter().map(|r| r[i].alignment.aligned_pairs).sum() };
    let gem_rate = mean_rate(gem);
    // Gemini must deliver the most well-aligned TLB coverage of any
    // system (total aligned pairs), and beat the rate of the systems that
    // coalesce eagerly. (At test scale, utilization-gated systems like
    // HawkEye/Ingens form very few — trivially all-aligned — huge pages,
    // so their *rate* can be high while their coverage is tiny; the
    // paper-scale rate dominance is checked in EXPERIMENTS.md's bench
    // runs.)
    for s in [
        SystemKind::Thp,
        SystemKind::CaPaging,
        SystemKind::Ranger,
        SystemKind::HawkEye,
        SystemKind::Ingens,
    ] {
        assert!(
            pairs(gem) >= pairs(idx(s)),
            "GEMINI pairs {} vs {} {}",
            pairs(gem),
            s.label(),
            pairs(idx(s))
        );
    }
    for s in [SystemKind::Thp, SystemKind::CaPaging, SystemKind::Ranger] {
        assert!(
            gem_rate > mean_rate(idx(s)),
            "GEMINI rate {gem_rate} vs {} {}",
            s.label(),
            mean_rate(idx(s))
        );
    }
    assert!(
        gem_rate > 0.4,
        "GEMINI should align roughly half+: {gem_rate}"
    );
}

#[test]
fn claim_fig8_gemini_has_best_mean_throughput() {
    let workloads = ["Masstree", "Redis", "CG.D", "Streamcluster"];
    let res = clean_slate::run(&scale(2_500), Some(&workloads)).unwrap();
    let gem = res.mean_speedup(SystemKind::Gemini, true);
    for s in [
        SystemKind::Thp,
        SystemKind::Ingens,
        SystemKind::HawkEye,
        SystemKind::CaPaging,
        SystemKind::Ranger,
    ] {
        let other = res.mean_speedup(s, true);
        assert!(
            gem >= other * 0.98,
            "GEMINI {gem:.3} should not lose to {} {other:.3}",
            s.label()
        );
    }
    assert!(gem > 1.0, "GEMINI must beat the base-page baseline: {gem}");
}

#[test]
fn claim_ranger_pays_for_its_migrations() {
    // Translation-ranger's copy-always coalescing makes it the slowest
    // coalescing system (the paper: the only one below Host-B-VM-B).
    let workloads = ["Redis", "Masstree"];
    let res = clean_slate::run(&scale(2_500), Some(&workloads)).unwrap();
    let ranger = res.mean_speedup(SystemKind::Ranger, true);
    let gem = res.mean_speedup(SystemKind::Gemini, true);
    assert!(ranger < gem, "ranger {ranger} must trail GEMINI {gem}");
    let ingens = res.mean_speedup(SystemKind::Ingens, true);
    assert!(
        ranger < ingens,
        "ranger {ranger} must trail Ingens {ingens}"
    );
}

#[test]
fn claim_fig16_both_components_contribute() {
    let res = breakdown::run(&scale(1_500), Some(&["Redis", "CG.D"])).unwrap();
    let (ema_hb, bucket) = res.mean_shares();
    assert!((ema_hb + bucket - 1.0).abs() < 1e-9);
    assert!(ema_hb > 0.2, "EMA/HB share {ema_hb}");
}

#[test]
fn claim_fig17_gemini_overhead_is_negligible() {
    let res = collocated::run(&scale(700), Some(&[("Redis", "SP.D")])).unwrap();
    let overhead = res.gemini_nonsensitive_overhead();
    assert!(overhead < 0.1, "paper: <=3%; measured {overhead}");
}

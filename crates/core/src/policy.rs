//! [`GeminiPolicy`] — the per-layer huge-page policy combining booking,
//! EMA, the huge bucket and the promoter (paper §3–§5).
//!
//! One instance drives the guest layer of one VM; another (shared across
//! VMs) drives the host layer. Both read MHPS scan results through
//! [`GeminiShared`]:
//!
//! **Guest fault path** — in priority order:
//! 1. reuse a whole region from the *huge bucket* when a huge mapping is
//!    legal (the region is still backed by a host huge page, so this is an
//!    instantly well-aligned huge page);
//! 2. consume a whole *booked* region (reserved under a mis-aligned host
//!    huge page) for a synchronous huge allocation;
//! 3. fall back to THP-style synchronous huge allocation;
//! 4. otherwise EMA: place the base page at `fault − offset`, preferring
//!    booked regions when establishing a VMA's offset descriptor, with
//!    sub-VMA re-establishment when a target is unavailable.
//!
//! **Guest daemon** — books the regions under type-1 mis-aligned host huge
//! pages, expires bookings/bucket entries, and emits promotions: huge
//! preallocation (fill-then-promote at ≥ 256 present pages and FMFI ≤
//! 0.5), free in-place promotions, and the MHPP promoter that prioritizes
//! GVA regions whose base pages sit under type-2 mis-aligned host huge
//! pages.
//!
//! **Host fault path / daemon** — mirror image: back guest-huge GPA
//! regions with (reserved) host huge pages first, keep EPT placement
//! congruent via per-VM offset descriptors, and promote the EPT regions
//! under mis-aligned guest huge pages first.

use crate::booking::BookingTable;
use crate::bucket::HugeBucket;
use crate::ema::{congruent_offset, EmaList, OffsetDescriptor};
use crate::mhps::VmScan;
use crate::shared::GeminiShared;
use gemini_mm::{
    FaultCtx, FaultDecision, FaultOutcome, HugePolicy, LayerKind, LayerOps, PromotionKind,
    PromotionOp,
};
use gemini_obs::{cat, EventKind, Layer, Recorder};
use gemini_sim_core::{Cycles, VmId, HUGE_PAGE_ORDER, PAGES_PER_HUGE_PAGE};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Tunables of one Gemini layer instance.
#[derive(Debug, Clone)]
pub struct GeminiConfig {
    /// Enable huge booking (HB).
    pub enable_booking: bool,
    /// Enable EMA offset placement.
    pub enable_ema: bool,
    /// Enable the huge bucket (guest layer only).
    pub enable_bucket: bool,
    /// Enable the MHPP promoter.
    pub enable_promoter: bool,
    /// Pages present before huge preallocation fires (paper: 256).
    pub prealloc_threshold: usize,
    /// Maximum FMFI for preallocation to fire (paper: 0.5).
    pub prealloc_max_fmfi: f64,
    /// Promotion ops per daemon pass.
    pub promo_budget: usize,
    /// Maximum simultaneous bookings/reservations.
    pub book_cap: usize,
    /// Allocate huge pages synchronously at fault time (THP-style). On by
    /// default: the prototype is built on Linux THP (`always`), so the
    /// fault path still takes huge pages when an aligned block is free;
    /// booking/EMA/bucket placement handles everything the fault path
    /// cannot. Disable for a purely asynchronous variant.
    pub sync_huge_faults: bool,
    /// Demote mis-aligned and infrequently-used huge pages when memory
    /// runs short (the paper's §8 pressure policy: "we only allow
    /// misaligned huge pages and infrequently used huge pages to be
    /// demoted when system is under memory pressure").
    pub pressure_demotion: bool,
    /// Free-memory ratio below which pressure demotion activates.
    pub pressure_watermark: f64,
}

impl Default for GeminiConfig {
    fn default() -> Self {
        Self {
            enable_booking: true,
            enable_ema: true,
            enable_bucket: true,
            enable_promoter: true,
            prealloc_threshold: 256,
            prealloc_max_fmfi: 0.5,
            promo_budget: 8,
            book_cap: 16,
            sync_huge_faults: true,
            pressure_demotion: true,
            pressure_watermark: 0.05,
        }
    }
}

/// Counters exposed for the breakdown experiments (Figure 16).
#[derive(Debug, Clone, Copy, Default)]
pub struct GeminiStats {
    /// Huge mappings served straight from the bucket.
    pub bucket_huge_allocs: u64,
    /// Huge mappings served from booked regions.
    pub booked_huge_allocs: u64,
    /// Base placements served from booked regions.
    pub booked_base_allocs: u64,
    /// Preallocation (fill-then-promote) ops emitted.
    pub prealloc_promotions: u64,
    /// Promoter (MHPP) ops emitted.
    pub mhpp_promotions: u64,
    /// Sub-VMA re-establishments.
    pub sub_vma_splits: u64,
}

/// Epoch-stamped snapshot of [`crate::shared::GeminiState`].
///
/// The hot fault path consults MHPS scan results on every access; reading
/// them through the shared mutex cost a lock round-trip per simulated
/// memory access. The state only changes on coarse daemon ticks, so each
/// policy instance caches this view and revalidates it with a single
/// relaxed atomic epoch load ([`SharedState::epoch`]
/// (crate::shared::SharedState::epoch)), re-reading under the lock only
/// when a writer has bumped the epoch. Scans are `Arc`-shared with the
/// publisher, so a refresh clones pointers, never scan lists.
#[derive(Debug)]
struct SharedView {
    /// Epoch the snapshot was taken at; `u64::MAX` = never refreshed.
    epoch: u64,
    booking_timeout: Cycles,
    bucket_hold: Cycles,
    scans: HashMap<VmId, Arc<VmScan>>,
}

impl SharedView {
    fn stale() -> Self {
        Self {
            epoch: u64::MAX,
            booking_timeout: Cycles::ZERO,
            bucket_hold: Cycles::ZERO,
            scans: HashMap::new(),
        }
    }
}

/// The Gemini policy for one layer.
#[derive(Debug)]
pub struct GeminiPolicy {
    layer: LayerKind,
    shared: GeminiShared,
    /// Cached epoch-validated snapshot of `shared`.
    view: SharedView,
    cfg: GeminiConfig,
    /// Reservations in this layer's physical space (guest: GPA regions
    /// under mis-aligned host huge pages; host: unused here).
    bookings: BookingTable,
    /// Host layer: free HPA blocks reserved per (vm, GPA region).
    host_reserve: HashMap<(u32, u64), (u64, Cycles)>,
    /// Freed well-aligned regions held for reuse (guest layer).
    bucket: HugeBucket,
    /// Offset descriptors, self-organizing.
    ema: EmaList,
    /// Extent keys whose placement broke (sub-VMA trigger).
    broken: HashSet<u64>,
    /// Next-fit cursor over the contiguity list.
    cursor: u64,
    /// Round-robin cursor for the generic khugepaged-style collapse pass.
    promo_cursor: u64,
    /// Key of the extent the last fault belonged to.
    last_key: Option<u64>,
    /// VM of the last fault (labels recorder events that lack a ctx).
    last_vm: u32,
    /// Observability recorder (off until attached).
    rec: Recorder,
    /// Counters for the breakdown experiment.
    pub stats: GeminiStats,
}

/// Maps the mm layer discriminator onto the obs event layer.
fn obs_layer(layer: LayerKind) -> Layer {
    match layer {
        LayerKind::Guest => Layer::Guest,
        LayerKind::Host => Layer::Host,
    }
}

impl GeminiPolicy {
    /// Creates the guest-layer policy of one VM.
    pub fn guest(shared: GeminiShared) -> Self {
        Self::new(LayerKind::Guest, shared, GeminiConfig::default())
    }

    /// Creates the host-layer policy (shared by all VMs).
    pub fn host(shared: GeminiShared) -> Self {
        Self::new(LayerKind::Host, shared, GeminiConfig::default())
    }

    /// Creates a policy with explicit configuration (ablations).
    pub fn new(layer: LayerKind, shared: GeminiShared, cfg: GeminiConfig) -> Self {
        Self {
            layer,
            shared,
            view: SharedView::stale(),
            cfg,
            bookings: BookingTable::new(),
            host_reserve: HashMap::new(),
            bucket: HugeBucket::new(),
            ema: EmaList::new(),
            broken: HashSet::new(),
            cursor: 0,
            promo_cursor: 0,
            last_key: None,
            last_vm: 0,
            rec: Recorder::off(),
            stats: GeminiStats::default(),
        }
    }

    /// Revalidates the cached [`SharedView`]: one relaxed atomic load on
    /// the fast path; the mutex is taken only when the epoch moved (i.e.
    /// after a runtime tick, a timeout adjustment or a test poking the
    /// shared state).
    fn refresh_view(&mut self) {
        let epoch = self.shared.epoch();
        if self.view.epoch == epoch {
            return;
        }
        // Read the epoch before the lock: a write racing in between makes
        // the snapshot newer than its stamp, which only causes one extra
        // refresh — never a stale read going unnoticed.
        let s = self.shared.read();
        self.view.booking_timeout = s.booking_timeout;
        self.view.bucket_hold = s.bucket_hold;
        self.view.scans.clear();
        self.view
            .scans
            .extend(s.scans.iter().map(|(&vm, scan)| (vm, Arc::clone(scan))));
        self.view.epoch = epoch;
    }

    /// Read access to the booking table (tests, harness metrics).
    pub fn bookings(&self) -> &BookingTable {
        &self.bookings
    }

    /// Read access to the bucket (tests, harness metrics).
    pub fn bucket(&self) -> &HugeBucket {
        &self.bucket
    }

    /// Extent key of a fault: VMA id in the guest, VM id at the host.
    fn key_of(ctx: &FaultCtx<'_>) -> u64 {
        match (ctx.layer, ctx.vma) {
            (LayerKind::Guest, Some(vma)) => vma.id.0,
            _ => ctx.vm.0 as u64,
        }
    }

    /// Replicates the mechanism's huge-legality predicate exactly, so a
    /// `HugeReserved` decision can never be silently downgraded (which
    /// would leak the reserved frames).
    fn huge_legal(ctx: &FaultCtx<'_>) -> bool {
        ctx.region_pop.present == 0 && ctx.region_within_vma()
    }

    /// Establishes a fresh offset descriptor for `(key, fault frame)`:
    /// prefer a booked region, then the contiguity list (next-fit), then
    /// the largest free run.
    ///
    /// Descriptors are clamped to the *whole regions* that fit the chosen
    /// placement, so a descriptor never spills past the end of its free
    /// run: when it is exhausted, the next fault re-establishes cleanly at
    /// a region boundary (the sub-VMA mechanism), keeping every covered
    /// 2 MiB region at a single congruent offset — the precondition for
    /// in-place promotion.
    fn establish(&mut self, ctx: &FaultCtx<'_>, key: u64) -> Option<i64> {
        let region_start = ctx.addr_frame - ctx.addr_frame % PAGES_PER_HUGE_PAGE;
        let extent_len = match ctx.vma {
            Some(vma) => (vma.start_frame() + vma.pages()).saturating_sub(region_start),
            None => PAGES_PER_HUGE_PAGE,
        }
        .max(PAGES_PER_HUGE_PAGE);

        // (a) A booked region: aligned placement under a mis-aligned host
        // huge page. Covers exactly one region.
        if self.cfg.enable_booking {
            if let Some(hf) = self
                .bookings
                .regions()
                .into_iter()
                .find(|&hf| self.bookings.frame_available(hf << HUGE_PAGE_ORDER))
            {
                let offset = region_start as i64 - ((hf << HUGE_PAGE_ORDER) as i64);
                self.ema.insert(OffsetDescriptor {
                    key,
                    start: region_start,
                    len: PAGES_PER_HUGE_PAGE,
                    offset,
                });
                self.broken.remove(&key);
                return Some(offset);
            }
        }

        // (b) The Gemini contiguity list: free runs sorted by address,
        // searched next-fit for a run holding at least one whole congruent
        // region; prefer runs that fit the whole extent. Each leg is one
        // query against the allocator's persistent run index: a run
        // `(start, rlen)` fits `need` congruent frames iff
        // `congruent_start(start) + need <= start + rlen`, and because
        // `region_start` is region-aligned, "fits the extent" is that
        // predicate with `need = extent_len` rounded up to whole regions
        // while "holds one region" is `need = 512`. After an at-cursor
        // leg missed, any remaining fit necessarily starts before the
        // cursor, so the wrap-around legs scan only below it.
        // Fast reject: a whole congruent region is a 512-aligned, fully
        // free range — by eager buddy merging, a single free block of
        // order ≥ 9. Without one, no run can fit and the queries are
        // futile (the common case under heavy fragmentation).
        if !ctx.buddy.has_suitable_block(HUGE_PAGE_ORDER) {
            return None;
        }
        let whole_regions = |(start, rlen): (u64, u64)| -> u64 {
            let out0 = (region_start as i64 - congruent_offset(region_start, start)) as u64;
            (start + rlen).saturating_sub(out0) / PAGES_PER_HUGE_PAGE
        };
        let extent_need = extent_len.div_ceil(PAGES_PER_HUGE_PAGE) * PAGES_PER_HUGE_PAGE;
        let cursor = self.cursor;
        let buddy = ctx.buddy;
        let pick = buddy
            .first_congruent_run(cursor, region_start, extent_need)
            .or_else(|| buddy.first_congruent_run_below(cursor, region_start, extent_need))
            .or_else(|| buddy.first_congruent_run(cursor, region_start, PAGES_PER_HUGE_PAGE))
            .or_else(|| buddy.first_congruent_run_below(cursor, region_start, PAGES_PER_HUGE_PAGE));

        // (c) No run holds even one congruent region: targeted placement
        // has no alignment value, so defer to the default allocator —
        // which also keeps EMA's pages out of the areas compaction is
        // trying to clear.
        let run = pick?;
        let (offset, len) = {
            self.cursor = run.0;
            let offset = congruent_offset(region_start, run.0);
            let len = (whole_regions(run) * PAGES_PER_HUGE_PAGE).min(extent_len);
            (offset, len)
        };

        self.ema.insert(OffsetDescriptor {
            key,
            start: region_start,
            len,
            offset,
        });
        self.broken.remove(&key);
        Some(offset)
    }

    fn guest_fault(&mut self, ctx: &FaultCtx<'_>) -> FaultDecision {
        let key = Self::key_of(ctx);
        self.last_key = Some(key);
        self.last_vm = ctx.vm.0;

        if Self::huge_legal(ctx) {
            // 1. Bucket reuse: whole well-aligned region, zero cost to
            //    re-align.
            if self.cfg.enable_bucket {
                if let Some(hf) = self.bucket.take() {
                    self.stats.bucket_huge_allocs += 1;
                    self.rec.emit(cat::BUCKET, ctx.vm.0, Layer::Guest, || {
                        EventKind::BucketReused { region: hf }
                    });
                    return FaultDecision::HugeReserved { huge_frame: hf };
                }
            }
            if self.cfg.sync_huge_faults {
                // 2. Booked region: huge allocation that matches a
                //    mis-aligned host huge page.
                if self.cfg.enable_booking {
                    if let Some(hf) = self.bookings.take_whole() {
                        self.stats.booked_huge_allocs += 1;
                        self.rec.emit(cat::BOOKING, ctx.vm.0, Layer::Guest, || {
                            EventKind::BookingConsumed {
                                region: hf,
                                whole: true,
                            }
                        });
                        return FaultDecision::HugeReserved { huge_frame: hf };
                    }
                }
                // 3. THP-style synchronous huge allocation.
                if ctx
                    .buddy
                    .free_area_counts()
                    .free_blocks_suitable(HUGE_PAGE_ORDER)
                    > 0
                {
                    return FaultDecision::Huge;
                }
            }
        }

        if !self.cfg.enable_ema {
            return FaultDecision::Base;
        }

        // 4. EMA placement. A region that already has congruent pages is
        //    continued at the same offset (derived from its population);
        //    a region whose placement is already scattered gets no
        //    targeted placement at all — spending contiguity on it cannot
        //    make it promotable in place.
        let pop = &ctx.region_pop;
        if pop.present > 0 {
            if !pop.in_place_eligible {
                return FaultDecision::Base;
            }
            let Some(t0) = pop.target_huge_frame else {
                return FaultDecision::Base;
            };
            let target = (t0 << HUGE_PAGE_ORDER) + ctx.addr_frame % PAGES_PER_HUGE_PAGE;
            return self.targeted_base(target);
        }

        // Empty region: follow the VMA's offset descriptor, establishing
        // one (or a sub-VMA) as needed.
        let needs_establish =
            self.broken.contains(&key) || self.ema.find(key, ctx.addr_frame).is_none();
        if needs_establish {
            if self.establish(ctx, key).is_none() {
                return FaultDecision::Base;
            }
            self.rec
                .emit(cat::EMA, ctx.vm.0, Layer::Guest, || EventKind::EmaMiss {
                    key,
                });
        } else {
            self.rec
                .emit(cat::EMA, ctx.vm.0, Layer::Guest, || EventKind::EmaHit {
                    key,
                });
        }
        let Some(desc) = self.ema.find(key, ctx.addr_frame) else {
            return FaultDecision::Base;
        };
        let target = {
            let t = desc.target(ctx.addr_frame) as i64;
            if t < 0 {
                return FaultDecision::Base;
            }
            t as u64
        };
        self.targeted_base(target)
    }

    /// Emits a targeted base placement, drawing from a booking when the
    /// target frame belongs to one.
    fn targeted_base(&mut self, target: u64) -> FaultDecision {
        if self.bookings.frame_available(target) {
            self.bookings.take_frame(target);
            self.stats.booked_base_allocs += 1;
            let (vm, layer) = (self.last_vm, obs_layer(self.layer));
            self.rec
                .emit(cat::BOOKING, vm, layer, || EventKind::BookingConsumed {
                    region: target >> HUGE_PAGE_ORDER,
                    whole: false,
                });
            FaultDecision::BaseReserved { frame: target }
        } else {
            FaultDecision::BaseAt { frame: target }
        }
    }

    fn host_fault(&mut self, ctx: &FaultCtx<'_>) -> FaultDecision {
        let key = Self::key_of(ctx);
        self.last_key = Some(key);
        self.last_vm = ctx.vm.0;
        let region = ctx.region();

        if Self::huge_legal(ctx) {
            // 1. A reserved HPA block set aside for this guest huge page.
            if let Some((hpa_huge, _)) = self.host_reserve.remove(&(ctx.vm.0, region)) {
                self.stats.booked_huge_allocs += 1;
                self.rec.emit(cat::BOOKING, ctx.vm.0, Layer::Host, || {
                    EventKind::BookingConsumed {
                        region,
                        whole: true,
                    }
                });
                return FaultDecision::HugeReserved {
                    huge_frame: hpa_huge,
                };
            }
            // 2. Guest maps this GPA region huge (or a free block exists):
            //    back it huge, THP-host style.
            self.refresh_view();
            let guest_wants_huge = self
                .view
                .scans
                .get(&ctx.vm)
                .map(|s| s.guest_huge_regions.contains(&region))
                .unwrap_or(false);
            let suitable = ctx
                .buddy
                .free_area_counts()
                .free_blocks_suitable(HUGE_PAGE_ORDER);
            // Cross-layer discipline: huge host pages that do not match a
            // guest huge page are mis-aligned by construction, so back
            // huge eagerly only where the guest maps huge. Only with
            // abundant free blocks fall back to greedy THP-host backing
            // (cheap walk savings, nothing displaced).
            if suitable > 0 && (guest_wants_huge || suitable >= 32) {
                return FaultDecision::Huge;
            }
        }

        if !self.cfg.enable_ema {
            return FaultDecision::Base;
        }

        // 3. EMA congruent placement (per-VM extent), continuing a
        //    region's established offset and skipping scattered regions,
        //    exactly as at the guest layer.
        let pop = &ctx.region_pop;
        if pop.present > 0 {
            if !pop.in_place_eligible {
                return FaultDecision::Base;
            }
            let Some(t0) = pop.target_huge_frame else {
                return FaultDecision::Base;
            };
            let target = (t0 << HUGE_PAGE_ORDER) + ctx.addr_frame % PAGES_PER_HUGE_PAGE;
            return FaultDecision::BaseAt { frame: target };
        }
        let needs_establish =
            self.broken.contains(&key) || self.ema.find(key, ctx.addr_frame).is_none();
        if needs_establish {
            if self.establish(ctx, key).is_none() {
                return FaultDecision::Base;
            }
            self.rec
                .emit(cat::EMA, ctx.vm.0, Layer::Host, || EventKind::EmaMiss {
                    key,
                });
        } else {
            self.rec
                .emit(cat::EMA, ctx.vm.0, Layer::Host, || EventKind::EmaHit {
                    key,
                });
        }
        let Some(desc) = self.ema.find(key, ctx.addr_frame) else {
            return FaultDecision::Base;
        };
        let t = desc.target(ctx.addr_frame) as i64;
        if t < 0 {
            return FaultDecision::Base;
        }
        FaultDecision::BaseAt { frame: t as u64 }
    }

    fn guest_daemon(&mut self, ops: &mut LayerOps<'_>) -> Vec<PromotionOp> {
        let now = ops.now;
        self.refresh_view();
        let (timeout, bucket_hold) = (self.view.booking_timeout, self.view.bucket_hold);
        // Pointer clone of this VM's scan: daemon passes iterate it while
        // mutating bookings/bucket without re-locking or copying lists.
        let scan: Option<Arc<VmScan>> = self.view.scans.get(&ops.vm).cloned();

        let vm = ops.vm.0;
        self.last_vm = vm;

        // Maintenance: expiry and pressure release.
        let expired = self.bookings.expire(ops.buddy, now);
        if expired > 0 {
            self.rec.emit(cat::BOOKING, vm, Layer::Guest, || {
                EventKind::BookingExpired {
                    regions: expired as u64,
                }
            });
        }
        let mut released = self.bucket.expire(ops.buddy, now, bucket_hold);
        let frag = ops.buddy.fragmentation_index(HUGE_PAGE_ORDER);
        let free_ratio = ops.buddy.free_frames() as f64 / ops.buddy.total_frames() as f64;
        if free_ratio < 0.08 || frag > 0.95 {
            released += self.bucket.release(ops.buddy, 4);
            if free_ratio < 0.04 {
                self.bookings.release_all(ops.buddy);
            }
        }
        if released > 0 {
            self.rec.emit(cat::BUCKET, vm, Layer::Guest, || {
                EventKind::BucketReleased {
                    regions: released as u64,
                }
            });
        }
        self.rec
            .gauge_set("gemini.guest.bucket_len", self.bucket.len() as f64);
        self.rec
            .gauge_set("gemini.guest.bookings_active", self.bookings.len() as f64);

        // Booking: reserve the regions under type-1 mis-aligned host huge
        // pages.
        if self.cfg.enable_booking {
            let host_type1 = scan
                .as_ref()
                .map(|s| s.host_type1.as_slice())
                .unwrap_or(&[]);
            for &gpa_region in host_type1 {
                if self.bookings.len() >= self.cfg.book_cap {
                    break;
                }
                if !self.bookings.contains(gpa_region) {
                    // Only type-1 regions that are still fully free book
                    // successfully; racing allocations make this a no-op.
                    if self
                        .bookings
                        .book(ops.buddy, gpa_region, now, timeout)
                        .is_ok()
                    {
                        self.rec
                            .emit(cat::BOOKING, vm, Layer::Guest, || EventKind::Booked {
                                region: gpa_region,
                            });
                        self.rec.counter_add("gemini.bookings_placed", 1);
                    }
                }
            }
        }

        let mut promos = Vec::new();

        // Preallocation (fill-then-promote) and free in-place promotions.
        for (region, is_huge) in ops.table.iter_regions() {
            if promos.len() >= self.cfg.promo_budget {
                break;
            }
            if is_huge {
                continue;
            }
            let pop = ops.table.region_population(region);
            if !pop.in_place_eligible || pop.present == 0 {
                continue;
            }
            if pop.present == PAGES_PER_HUGE_PAGE as usize {
                promos.push(PromotionOp::new(region, PromotionKind::InPlaceOnly));
                continue;
            }
            let Some(target_huge) = pop.target_huge_frame else {
                continue;
            };
            if pop.present >= self.cfg.prealloc_threshold {
                if self.bookings.contains(target_huge) {
                    // The missing frames belong to the booking: take them
                    // and promote with reserved frames.
                    let pa0 = target_huge << HUGE_PAGE_ORDER;
                    let all_available = (0..PAGES_PER_HUGE_PAGE).all(|i| {
                        let f = pa0 + i;
                        self.bookings.frame_available(f) || !ops.buddy.is_frame_free(f)
                    });
                    if all_available {
                        for i in 0..PAGES_PER_HUGE_PAGE {
                            self.bookings.take_frame(pa0 + i);
                        }
                        self.stats.prealloc_promotions += 1;
                        promos.push(PromotionOp {
                            region,
                            kind: PromotionKind::FillThenPromote,
                            copy_target: None,
                            target_reserved: true,
                        });
                    }
                } else if frag <= self.cfg.prealloc_max_fmfi
                    || pop.present >= (PAGES_PER_HUGE_PAGE as usize * 3 / 4)
                {
                    // Filling a >= half-populated region only consumes
                    // sub-huge free fragments, so it cannot reduce order-9
                    // contiguity; under extreme fragmentation the FMFI
                    // gate still applies as a bloat guard until the region
                    // is 3/4 populated.
                    self.stats.prealloc_promotions += 1;
                    promos.push(PromotionOp::new(region, PromotionKind::FillThenPromote));
                }
            }
        }

        // Promoter (MHPP): collapse the GVA regions whose base pages sit
        // under type-2 mis-aligned host huge pages, first.
        if self.cfg.enable_promoter {
            let host_type2 = scan
                .as_ref()
                .map(|s| s.host_type2.as_slice())
                .unwrap_or(&[]);
            for &(gpa_region, ref gva_regions) in host_type2 {
                for &gva_region in gva_regions {
                    if promos.len() >= 2 * self.cfg.promo_budget {
                        break;
                    }
                    if ops.table.huge_leaf(gva_region).is_some() {
                        continue;
                    }
                    if ops.table.region_population(gva_region).present == 0 {
                        continue;
                    }
                    if promos.iter().any(|p| p.region == gva_region) {
                        continue;
                    }
                    self.stats.mhpp_promotions += 1;
                    promos.push(PromotionOp {
                        region: gva_region,
                        kind: PromotionKind::PreferInPlace,
                        copy_target: Some(gpa_region),
                        target_reserved: false,
                    });
                }
            }
        }

        // Gemini rides on the stock THP machinery, and its own daemon
        // (the prototype's kgeminid) adds promotion capacity on top of
        // khugepaged's: populated-but-scattered regions are collapsed by
        // copy, round-robin.
        let leftover = self.cfg.promo_budget / 2;
        self.generic_collapse(ops, &mut promos, leftover);

        promos
    }

    /// khugepaged-style collapse of populated regions that in-place
    /// promotion cannot fix (scattered placement), bounded by `budget`.
    fn generic_collapse(
        &mut self,
        ops: &LayerOps<'_>,
        promos: &mut Vec<PromotionOp>,
        budget: usize,
    ) {
        let candidates: Vec<u64> = ops
            .table
            .iter_regions()
            .filter(|&(_, huge)| !huge)
            .map(|(r, _)| r)
            .collect();
        if candidates.is_empty() {
            return;
        }
        let start = candidates.partition_point(|&r| r <= self.promo_cursor);
        let mut picked = 0usize;
        for idx in 0..candidates.len() {
            if picked >= budget {
                break;
            }
            let region = candidates[(start + idx) % candidates.len()];
            if promos.iter().any(|p| p.region == region) {
                continue;
            }
            let pop = ops.table.region_population(region);
            if pop.present == 0 || pop.in_place_eligible {
                // Eligible regions are the fill/in-place paths' job.
                continue;
            }
            promos.push(PromotionOp::new(region, PromotionKind::PreferInPlace));
            self.promo_cursor = region;
            picked += 1;
        }
    }

    fn host_daemon(&mut self, ops: &mut LayerOps<'_>) -> Vec<PromotionOp> {
        let now = ops.now;
        self.refresh_view();
        let timeout = self.view.booking_timeout;

        // Expire HPA reservations.
        let expired: Vec<(u32, u64)> = self
            .host_reserve
            .iter()
            .filter(|(_, &(_, exp))| exp <= now)
            .map(|(&k, _)| k)
            .collect();
        let n_expired = expired.len() as u64;
        for k in expired {
            let (hpa_huge, _) = self.host_reserve.remove(&k).expect("key listed above");
            ops.buddy
                .free(hpa_huge << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER)
                .expect("reservation owned this block");
        }
        if n_expired > 0 {
            let vm = ops.vm.0;
            self.rec.emit(cat::BOOKING, vm, Layer::Host, || {
                EventKind::BookingExpired { regions: n_expired }
            });
        }

        // Pointer clone, not a copy of the scan lists.
        let Some(scan) = self.view.scans.get(&ops.vm).cloned() else {
            return Vec::new();
        };

        // Reserve HPA blocks for type-1 mis-aligned guest huge pages —
        // but never the last free block: the synchronous backing path
        // must keep working, or reservations starve the very alignment
        // they exist to create.
        if self.cfg.enable_booking {
            for &gpa_region in &scan.guest_type1 {
                if self.host_reserve.len() >= self.cfg.book_cap {
                    break;
                }
                if ops
                    .buddy
                    .free_area_counts()
                    .free_blocks_suitable(HUGE_PAGE_ORDER)
                    < 2
                {
                    break;
                }
                let k = (ops.vm.0, gpa_region);
                if let std::collections::hash_map::Entry::Vacant(e) = self.host_reserve.entry(k) {
                    if let Ok(start) = ops.buddy.alloc(HUGE_PAGE_ORDER) {
                        e.insert((start >> HUGE_PAGE_ORDER, now + timeout));
                        let vm = ops.vm.0;
                        self.rec
                            .emit(cat::BOOKING, vm, Layer::Host, || EventKind::Booked {
                                region: gpa_region,
                            });
                        self.rec.counter_add("gemini.reservations_placed", 1);
                    }
                }
            }
        }

        let mut promos = Vec::new();

        // Promoter: EPT regions under type-2 mis-aligned guest huge pages
        // first.
        if self.cfg.enable_promoter {
            for &gpa_region in &scan.guest_type2 {
                if promos.len() >= self.cfg.promo_budget {
                    break;
                }
                if ops.table.huge_leaf(gpa_region).is_some() {
                    continue;
                }
                if ops.table.region_population(gpa_region).present == 0 {
                    continue;
                }
                self.stats.mhpp_promotions += 1;
                promos.push(PromotionOp::new(gpa_region, PromotionKind::PreferInPlace));
            }
        }

        // Free in-place promotions and host-side preallocation.
        let frag = ops.buddy.fragmentation_index(HUGE_PAGE_ORDER);
        for (region, is_huge) in ops.table.iter_regions() {
            if promos.len() >= 2 * self.cfg.promo_budget {
                break;
            }
            if is_huge || promos.iter().any(|p| p.region == region) {
                continue;
            }
            let pop = ops.table.region_population(region);
            if !pop.in_place_eligible || pop.present == 0 {
                continue;
            }
            if pop.present == PAGES_PER_HUGE_PAGE as usize {
                promos.push(PromotionOp::new(region, PromotionKind::InPlaceOnly));
            } else if pop.present >= self.cfg.prealloc_threshold
                && (frag <= self.cfg.prealloc_max_fmfi
                    || pop.present >= (PAGES_PER_HUGE_PAGE as usize * 3 / 4))
            {
                self.stats.prealloc_promotions += 1;
                promos.push(PromotionOp::new(region, PromotionKind::FillThenPromote));
            }
        }

        // Host THP's khugepaged equivalent keeps collapsing scattered EPT
        // regions underneath Gemini.
        let leftover = self.cfg.promo_budget / 2;
        self.generic_collapse(ops, &mut promos, leftover);

        promos
    }
}

impl HugePolicy for GeminiPolicy {
    fn name(&self) -> &'static str {
        "Gemini"
    }

    fn attach_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    fn fault_decision(&mut self, ctx: &FaultCtx<'_>) -> FaultDecision {
        match self.layer {
            LayerKind::Guest => self.guest_fault(ctx),
            LayerKind::Host => self.host_fault(ctx),
        }
    }

    fn after_fault(&mut self, _addr_frame: u64, outcome: &FaultOutcome) {
        if !outcome.placement_honored {
            if let Some(key) = self.last_key {
                // Sub-VMA: the remainder of the extent re-establishes with
                // a fresh offset on the next fault.
                self.broken.insert(key);
                self.stats.sub_vma_splits += 1;
                let (vm, layer) = (self.last_vm, obs_layer(self.layer));
                self.rec
                    .emit(cat::EMA, vm, layer, || EventKind::SubVmaSplit { key });
            }
        }
    }

    fn daemon_period(&self) -> Cycles {
        Cycles::from_millis(20.0)
    }

    fn daemon(&mut self, ops: &mut LayerOps<'_>) -> Vec<PromotionOp> {
        match self.layer {
            LayerKind::Guest => self.guest_daemon(ops),
            LayerKind::Host => self.host_daemon(ops),
        }
    }

    fn select_demotions(&mut self, ops: &mut LayerOps<'_>) -> Vec<u64> {
        // §8 pressure policy: when memory runs short, split mis-aligned
        // huge pages first (they were not earning their keep anyway) and
        // then the coldest ones; well-aligned hot huge pages survive.
        if !self.cfg.pressure_demotion || self.layer != LayerKind::Guest {
            return Vec::new();
        }
        let free_ratio = ops.buddy.free_frames() as f64 / ops.buddy.total_frames() as f64;
        if free_ratio >= self.cfg.pressure_watermark {
            return Vec::new();
        }
        self.refresh_view();
        let scan = self.view.scans.get(&ops.vm).cloned();
        // Rank demotion candidates: mis-aligned before aligned, cold
        // before hot; take a small budget per pass. Aligned pages are
        // demoted only while completely cold.
        let mut candidates: Vec<(bool, u64, u64)> = ops
            .table
            .iter_huge()
            .map(|(va_region, pa_region)| {
                let is_aligned = scan
                    .as_ref()
                    .is_some_and(|s| s.aligned_regions.contains(&pa_region));
                let touches = ops.touches.get(va_region);
                (is_aligned, touches, va_region)
            })
            .collect();
        candidates.sort_unstable();
        candidates
            .into_iter()
            .take_while(|&(is_aligned, touches, _)| !is_aligned || touches == 0)
            .take(2)
            .map(|(_, _, region)| region)
            .collect()
    }

    fn intercept_huge_free(&mut self, pa_huge_frame: u64, now: Cycles) -> bool {
        if self.layer != LayerKind::Guest || !self.cfg.enable_bucket {
            return false;
        }
        // Keep only regions MHPS last saw as well-aligned: their host
        // backing is huge and worth preserving. Set membership is
        // order-independent, so the snapshot's hash-map iteration order
        // cannot influence the outcome.
        self.refresh_view();
        let aligned = self
            .view
            .scans
            .values()
            .any(|s| s.aligned_regions.contains(&pa_huge_frame));
        if aligned {
            self.bucket.offer(pa_huge_frame, now);
            let vm = self.last_vm;
            self.rec
                .emit(cat::BUCKET, vm, Layer::Guest, || EventKind::BucketOffered {
                    region: pa_huge_frame,
                });
            true
        } else {
            false
        }
    }

    fn on_region_unmapped(&mut self, _region: u64) {}

    fn bucket_reuse_rate(&self) -> f64 {
        self.bucket.reuse_rate()
    }

    fn debug_stats(&self) -> String {
        format!(
            "{:?} bookings(active={} total={} consumed={} expired={}) bucket(len={} offered={} reused={}) ema(len={} hits={} misses={})",
            self.stats,
            self.bookings.len(),
            self.bookings.booked_total,
            self.bookings.consumed_total,
            self.bookings.expired_total,
            self.bucket.len(),
            self.bucket.offered_total,
            self.bucket.reused_total,
            self.ema.len(),
            self.ema.hits,
            self.ema.misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mhps::VmScan;
    use crate::shared::new_shared;
    use gemini_mm::{CostModel, GuestMm, HostMm};
    use gemini_sim_core::page::PageSize;
    use gemini_sim_core::{VmId, HUGE_PAGE_SIZE};

    const VM: VmId = VmId(1);

    fn async_cfg() -> GeminiConfig {
        GeminiConfig {
            sync_huge_faults: false,
            ..GeminiConfig::default()
        }
    }

    fn guest_with_policy() -> (GuestMm, GeminiPolicy) {
        let shared = new_shared();
        (
            GuestMm::new(VM, 1 << 14, CostModel::default()),
            GeminiPolicy::new(LayerKind::Guest, shared, async_cfg()),
        )
    }

    #[test]
    fn default_fault_path_places_contiguous_base_pages() {
        let (mut g, mut p) = guest_with_policy();
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let (first, _) = g.handle_fault(vma.start_frame(), &mut p).unwrap();
        assert_eq!(
            first.size,
            PageSize::Base,
            "async Gemini avoids sync huge faults"
        );
        let (second, _) = g.handle_fault(vma.start_frame() + 1, &mut p).unwrap();
        assert_eq!(second.pa_frame, first.pa_frame + 1, "EMA keeps contiguity");
        assert_eq!(first.pa_frame % 512, vma.start_frame() % 512, "congruent");
    }

    #[test]
    fn sync_mode_uses_thp_style_huge_fault() {
        let shared = new_shared();
        let mut g = GuestMm::new(VM, 1 << 14, CostModel::default());
        let cfg = GeminiConfig {
            sync_huge_faults: true,
            ..GeminiConfig::default()
        };
        let mut p = GeminiPolicy::new(LayerKind::Guest, Arc::clone(&shared), cfg);
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let (out, _) = g.handle_fault(vma.start_frame(), &mut p).unwrap();
        assert_eq!(out.size, PageSize::Huge);
    }

    #[test]
    fn booked_region_feeds_huge_allocation_in_sync_mode() {
        let shared = new_shared();
        let mut g = GuestMm::new(VM, 1 << 14, CostModel::default());
        let cfg = GeminiConfig {
            sync_huge_faults: true,
            ..GeminiConfig::default()
        };
        let mut p = GeminiPolicy::new(LayerKind::Guest, Arc::clone(&shared), cfg);
        // Book GPA region 9 by hand (as the daemon would after a scan).
        p.bookings
            .book(g.buddy_mut(), 9, Cycles::ZERO, Cycles(1 << 40))
            .unwrap();
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let (out, _) = g.handle_fault(vma.start_frame(), &mut p).unwrap();
        assert_eq!(out.size, PageSize::Huge);
        assert_eq!(
            out.pa_frame,
            9 << HUGE_PAGE_ORDER,
            "placed in the booked region"
        );
        assert_eq!(p.stats.booked_huge_allocs, 1);
    }

    #[test]
    fn bucket_reuse_takes_priority_over_booking() {
        let (mut g, mut p) = guest_with_policy();
        g.buddy_mut()
            .alloc_at(5 << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER)
            .unwrap();
        p.bucket.offer(5, Cycles::ZERO);
        p.bookings
            .book(g.buddy_mut(), 9, Cycles::ZERO, Cycles(1 << 40))
            .unwrap();
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let (out, _) = g.handle_fault(vma.start_frame(), &mut p).unwrap();
        assert_eq!(out.pa_frame, 5 << HUGE_PAGE_ORDER);
        assert_eq!(p.stats.bucket_huge_allocs, 1);
        assert_eq!(p.stats.booked_huge_allocs, 0);
    }

    #[test]
    fn ema_places_base_pages_into_booked_region() {
        let (mut g, mut p) = guest_with_policy();
        p.bookings
            .book(g.buddy_mut(), 9, Cycles::ZERO, Cycles(1 << 40))
            .unwrap();
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        for i in 0..512 {
            let (out, _) = g.handle_fault(vma.start_frame() + i, &mut p).unwrap();
            assert_eq!(out.size, PageSize::Base);
            assert_eq!(
                out.pa_frame,
                (9 << HUGE_PAGE_ORDER) + i,
                "congruent placement"
            );
        }
        assert_eq!(p.stats.booked_base_allocs, 512);
        // The region is fully populated and in-place eligible.
        let region = vma.start_frame() >> HUGE_PAGE_ORDER;
        let pop = g.table().region_population(region);
        assert_eq!(pop.present, 512);
        assert!(pop.in_place_eligible);
    }

    #[test]
    fn guest_daemon_books_type1_regions_from_scan() {
        let shared = new_shared();
        let mut g = GuestMm::new(VM, 1 << 14, CostModel::default());
        let mut p = GeminiPolicy::new(
            LayerKind::Guest,
            Arc::clone(&shared),
            GeminiConfig::default(),
        );
        let scan = VmScan {
            host_type1: vec![3, 7],
            ..Default::default()
        };
        shared.write().scans.insert(VM, Arc::new(scan));
        g.run_daemon(&mut p, Cycles::ZERO, 1);
        assert!(p.bookings.contains(3));
        assert!(p.bookings.contains(7));
        // Booked regions are protected from ordinary allocation.
        assert!(g.buddy_mut().alloc_at(3 << HUGE_PAGE_ORDER, 0).is_err());
    }

    use std::sync::Arc;

    #[test]
    fn booking_expires_and_returns_frames() {
        let shared = new_shared();
        shared.write().booking_timeout = Cycles(100);
        let mut g = GuestMm::new(VM, 1 << 14, CostModel::default());
        let mut p = GeminiPolicy::new(
            LayerKind::Guest,
            Arc::clone(&shared),
            GeminiConfig::default(),
        );
        let scan = VmScan {
            host_type1: vec![3],
            ..Default::default()
        };
        shared.write().scans.insert(VM, Arc::new(scan));
        g.run_daemon(&mut p, Cycles(0), 1);
        assert!(p.bookings.contains(3));
        let free_before = g.buddy().free_frames();
        // Remove the scan so the daemon does not immediately re-book.
        shared.write().scans.insert(VM, Arc::new(VmScan::default()));
        g.run_daemon(&mut p, Cycles(200), 1);
        assert!(!p.bookings.contains(3));
        assert_eq!(g.buddy().free_frames(), free_before + 512);
    }

    #[test]
    fn preallocation_fills_booked_region_and_promotes() {
        let shared = new_shared();
        let mut g = GuestMm::new(VM, 1 << 14, CostModel::default());
        let mut p = GeminiPolicy::new(LayerKind::Guest, Arc::clone(&shared), async_cfg());
        p.bookings
            .book(g.buddy_mut(), 9, Cycles::ZERO, Cycles(1 << 40))
            .unwrap();
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        for i in 0..300 {
            g.handle_fault(vma.start_frame() + i, &mut p).unwrap();
        }
        let fx = g.run_daemon(&mut p, Cycles::ZERO, 1);
        let region = vma.start_frame() >> HUGE_PAGE_ORDER;
        assert_eq!(
            g.table().huge_leaf(region),
            Some(9),
            "promoted onto the booking"
        );
        assert_eq!(fx.pages_copied, 0, "no migration");
        assert_eq!(fx.pages_zeroed, 212);
        assert!(p.stats.prealloc_promotions >= 1);
    }

    #[test]
    fn promoter_targets_type2_regions() {
        let shared = new_shared();
        let mut g = GuestMm::new(VM, 1 << 14, CostModel::default());
        let mut p = GeminiPolicy::new(LayerKind::Guest, Arc::clone(&shared), async_cfg());
        // Scatter 60 base pages of GVA region R; MHPS reports they sit
        // under a type-2 mis-aligned host huge page at GPA region 4.
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let gva_region = vma.start_frame() >> HUGE_PAGE_ORDER;
        for i in 0..60 {
            g.handle_fault(vma.start_frame() + i * 5, &mut p).unwrap();
        }
        let scan = VmScan {
            host_type2: vec![(4, vec![gva_region])],
            ..Default::default()
        };
        shared.write().scans.insert(VM, Arc::new(scan));
        let before = g.table().huge_mapped();
        g.run_daemon(&mut p, Cycles::ZERO, 1);
        assert!(
            g.table().huge_mapped() > before,
            "promoter collapsed the region"
        );
        assert!(p.stats.mhpp_promotions >= 1);
        // The collapse landed on the requested GPA region, aligning it.
        assert_eq!(g.table().huge_leaf(gva_region), Some(4));
    }

    #[test]
    fn bucket_intercepts_only_aligned_frees() {
        let shared = new_shared();
        let mut scan = VmScan::default();
        scan.aligned_regions.insert(5);
        shared.write().scans.insert(VM, Arc::new(scan));
        let mut p = GeminiPolicy::new(
            LayerKind::Guest,
            Arc::clone(&shared),
            GeminiConfig::default(),
        );
        assert!(p.intercept_huge_free(5, Cycles::ZERO));
        assert!(!p.intercept_huge_free(6, Cycles::ZERO));
        assert_eq!(p.bucket().len(), 1);
        // Host-layer instances never intercept.
        let mut hp = GeminiPolicy::new(
            LayerKind::Host,
            Arc::clone(&shared),
            GeminiConfig::default(),
        );
        assert!(!hp.intercept_huge_free(5, Cycles::ZERO));
    }

    #[test]
    fn host_fault_uses_reserved_block_for_guest_huge_region() {
        let shared = new_shared();
        let mut h = HostMm::new(1 << 14, CostModel::default());
        h.register_vm(VM);
        let mut p = GeminiPolicy::new(
            LayerKind::Host,
            Arc::clone(&shared),
            GeminiConfig::default(),
        );
        // Scan says: guest huge page at GPA region 2, EPT empty (type-1).
        let mut scan = VmScan {
            guest_type1: vec![2],
            ..Default::default()
        };
        scan.guest_huge_regions.insert(2);
        shared.write().scans.insert(VM, Arc::new(scan));
        // Daemon reserves an HPA block.
        h.run_daemon(VM, &mut p, Cycles::ZERO, 1).unwrap();
        assert_eq!(p.host_reserve.len(), 1);
        // EPT fault at the region: backed huge from the reservation.
        let (out, _) = h.handle_fault(VM, 2 * 512 + 7, &mut p).unwrap();
        assert_eq!(out.size, PageSize::Huge);
        assert!(p.host_reserve.is_empty());
        assert!(h.ept(VM).unwrap().huge_leaf(2).is_some());
    }

    #[test]
    fn host_daemon_promotes_type2_ept_regions() {
        let shared = new_shared();
        let mut h = HostMm::new(1 << 14, CostModel::default());
        h.register_vm(VM);
        let mut base = gemini_policies::BaseOnly;
        // Partially back GPA region 0 with base pages.
        for gpa in 0..50u64 {
            h.handle_fault(VM, gpa, &mut base).unwrap();
        }
        let mut scan = VmScan {
            guest_type2: vec![0],
            ..Default::default()
        };
        scan.guest_huge_regions.insert(0);
        shared.write().scans.insert(VM, Arc::new(scan));
        let mut p = GeminiPolicy::new(
            LayerKind::Host,
            Arc::clone(&shared),
            GeminiConfig::default(),
        );
        let fx = h.run_daemon(VM, &mut p, Cycles::ZERO, 1).unwrap();
        assert!(
            h.ept(VM).unwrap().huge_leaf(0).is_some(),
            "EPT region collapsed"
        );
        assert_eq!(fx.gpa_regions_changed, vec![0]);
    }

    #[test]
    fn sub_vma_reestablishes_after_broken_placement() {
        let (mut g, mut p) = guest_with_policy();
        // Fragmented memory forces EMA base placement.
        let mut rng = gemini_sim_core::DetRng::new(11);
        gemini_mm::fragment_to(g.buddy_mut(), 0.9, 0.3, &mut rng);
        let vma = g.mmap(2 * HUGE_PAGE_SIZE).unwrap();
        let (first, _) = g.handle_fault(vma.start_frame(), &mut p).unwrap();
        // Steal the next target frame.
        if g.buddy().is_frame_free(first.pa_frame + 1) {
            g.buddy_mut().alloc_at(first.pa_frame + 1, 0).unwrap();
        }
        let (second, _) = g.handle_fault(vma.start_frame() + 1, &mut p).unwrap();
        if !second.placement_honored {
            assert!(p.stats.sub_vma_splits >= 1);
            // The extent recovers: the next two faults are contiguous.
            let (a, _) = g.handle_fault(vma.start_frame() + 2, &mut p).unwrap();
            let (b, _) = g.handle_fault(vma.start_frame() + 3, &mut p).unwrap();
            assert_eq!(b.pa_frame, a.pa_frame + 1);
        }
    }

    #[test]
    fn pressure_demotion_splits_misaligned_and_cold_first() {
        let shared = new_shared();
        let mut g = GuestMm::new(VM, 4 * 512, CostModel::default());
        let mut p = GeminiPolicy::new(LayerKind::Guest, Arc::clone(&shared), async_cfg());
        // Two huge mappings: GPA region 0 (aligned per scan), 1 (misaligned).
        let vma = g.mmap(2 * gemini_sim_core::HUGE_PAGE_SIZE).unwrap();
        g.table_mut().map_huge(vma.start_frame() >> 9, 0).unwrap();
        g.table_mut()
            .map_huge((vma.start_frame() >> 9) + 1, 1)
            .unwrap();
        g.buddy_mut().alloc_at(0, HUGE_PAGE_ORDER).unwrap();
        g.buddy_mut().alloc_at(512, HUGE_PAGE_ORDER).unwrap();
        let mut scan = VmScan::default();
        scan.aligned_regions.insert(0);
        shared.write().scans.insert(VM, Arc::new(scan));
        // The aligned region is hot.
        g.record_touch(vma.start_frame());
        // Memory pressure: leave less than 5 % free.
        while g.buddy().free_frames() > 4 * 512 / 25 {
            g.buddy_mut().alloc(0).unwrap();
        }
        g.run_daemon(&mut p, Cycles::ZERO, 1);
        // Only the mis-aligned huge page was demoted.
        assert!(
            g.table().huge_leaf(vma.start_frame() >> 9).is_some(),
            "aligned+hot survives"
        );
        assert!(
            g.table().huge_leaf((vma.start_frame() >> 9) + 1).is_none(),
            "misaligned demoted"
        );
    }

    #[test]
    fn no_pressure_means_no_demotion() {
        let shared = new_shared();
        let mut g = GuestMm::new(VM, 1 << 14, CostModel::default());
        let mut p = GeminiPolicy::new(LayerKind::Guest, Arc::clone(&shared), async_cfg());
        let vma = g.mmap(gemini_sim_core::HUGE_PAGE_SIZE).unwrap();
        g.table_mut().map_huge(vma.start_frame() >> 9, 3).unwrap();
        g.buddy_mut().alloc_at(3 * 512, HUGE_PAGE_ORDER).unwrap();
        g.run_daemon(&mut p, Cycles::ZERO, 1);
        assert!(g.table().huge_leaf(vma.start_frame() >> 9).is_some());
    }

    #[test]
    fn ablation_flags_disable_components() {
        let shared = new_shared();
        let cfg = GeminiConfig {
            enable_bucket: false,
            enable_booking: false,
            ..GeminiConfig::default()
        };
        let mut p = GeminiPolicy::new(LayerKind::Guest, Arc::clone(&shared), cfg);
        // Bucket disabled: frees pass through even for aligned regions.
        let mut scan = VmScan::default();
        scan.aligned_regions.insert(5);
        shared.write().scans.insert(VM, Arc::new(scan));
        assert!(!p.intercept_huge_free(5, Cycles::ZERO));
        // Booking disabled: daemon books nothing.
        let mut g = GuestMm::new(VM, 1 << 14, CostModel::default());
        let scan2 = VmScan {
            host_type1: vec![3],
            ..Default::default()
        };
        shared.write().scans.insert(VM, Arc::new(scan2));
        g.run_daemon(&mut p, Cycles::ZERO, 1);
        assert!(p.bookings().is_empty());
    }
}

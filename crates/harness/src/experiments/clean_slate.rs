//! Figures 8–11 and Table 3 — the main clean-slate evaluation.
//!
//! Sixteen workloads × eight systems, with and without memory
//! fragmentation. One grid of runs feeds all five artefacts:
//!
//! - Fig. 8 — throughput normalized to `Host-B-VM-B`,
//! - Fig. 9 — mean latency normalized to `Host-B-VM-B`,
//! - Fig. 10 — 99th-percentile latency normalized to `Host-B-VM-B`,
//! - Fig. 11 — TLB misses normalized to GEMINI (fragmented runs),
//! - Table 3 — rates of well-aligned huge pages (fragmented runs).

use crate::exec::run_cells;
use crate::report::{fmt_pct, fmt_ratio, Table};
use crate::runner::run_workload_on;
use crate::scale::Scale;
use gemini_sim_core::stats::geometric_mean;
use gemini_sim_core::Result;
use gemini_vm_sim::{RunResult, SystemKind};
use gemini_workloads::catalog;

/// The full grid of runs.
#[derive(Debug)]
pub struct CleanSlateResults {
    /// Workload names, in catalog order.
    pub workloads: Vec<String>,
    /// `grid[frag][workload][system]`, `frag` 0 = unfragmented, 1 =
    /// fragmented; systems in [`SystemKind::evaluated`] order.
    pub grid: Vec<Vec<Vec<RunResult>>>,
}

/// Runs the grid. `workload_filter` restricts to named workloads (used by
/// quick modes); `None` runs the whole catalog.
pub fn run(scale: &Scale, workload_filter: Option<&[&str]>) -> Result<CleanSlateResults> {
    let specs: Vec<_> = catalog()
        .into_iter()
        .filter(|s| workload_filter.map(|f| f.contains(&s.name)).unwrap_or(true))
        .collect();
    // One cell per (frag, workload, system); seeds derived up front so
    // every cell is a pure function of its parameters, then executed on
    // the worker pool and reassembled in submission order.
    let systems = SystemKind::evaluated();
    let mut cells = Vec::new();
    for frag in [false, true] {
        for (wi, spec) in specs.iter().enumerate() {
            // The seed is shared across systems within a row: each
            // system sees the identical workload stream, so rows stay
            // paired comparisons.
            let seed = scale.seed_for("clean", (wi * 2 + frag as usize) as u64);
            for &system in &systems {
                let spec = spec.clone();
                cells.push(move || run_workload_on(system, &spec, scale, frag, seed));
            }
        }
    }
    let mut results = run_cells(scale.jobs, cells).into_iter();
    let mut grid = Vec::new();
    for _frag in [false, true] {
        let mut per_wl = Vec::new();
        for _ in &specs {
            let mut per_sys = Vec::new();
            for _ in &systems {
                per_sys.push(results.next().expect("one result per cell")?);
            }
            per_wl.push(per_sys);
        }
        grid.push(per_wl);
    }
    Ok(CleanSlateResults {
        workloads: specs.iter().map(|s| s.name.to_string()).collect(),
        grid,
    })
}

impl CleanSlateResults {
    fn system_labels() -> Vec<&'static str> {
        SystemKind::evaluated().iter().map(|s| s.label()).collect()
    }

    fn render_normalized(
        &self,
        title: &str,
        frag: usize,
        metric: impl Fn(&RunResult) -> f64,
        invert: bool,
    ) -> String {
        let mut headers = vec!["workload"];
        headers.extend(Self::system_labels());
        let mut t = Table::new(title, &headers);
        for (wi, name) in self.workloads.iter().enumerate() {
            let row = &self.grid[frag][wi];
            let base = metric(&row[0]);
            let mut cells = vec![name.clone()];
            for r in row {
                let v = metric(r);
                let norm = if base == 0.0 || v == 0.0 {
                    0.0
                } else if invert {
                    base / v
                } else {
                    v / base
                };
                cells.push(fmt_ratio(norm));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Fig. 8: throughput normalized to `Host-B-VM-B`.
    pub fn render_fig08(&self, fragmented: bool) -> String {
        let frag = fragmented as usize;
        let suffix = if fragmented {
            "fragmented"
        } else {
            "unfragmented"
        };
        self.render_normalized(
            &format!("Figure 8: normalized throughput, clean-slate VM ({suffix})"),
            frag,
            |r| r.throughput(),
            false,
        )
    }

    /// Fig. 9: mean latency normalized to `Host-B-VM-B` (lower is better;
    /// reported as the paper does, latency relative to baseline).
    pub fn render_fig09(&self, fragmented: bool) -> String {
        let frag = fragmented as usize;
        let suffix = if fragmented {
            "fragmented"
        } else {
            "unfragmented"
        };
        self.render_normalized(
            &format!("Figure 9: normalized mean latency, clean-slate VM ({suffix})"),
            frag,
            |r| r.mean_latency.0 as f64,
            false,
        )
    }

    /// Fig. 10: p99 latency normalized to `Host-B-VM-B`.
    pub fn render_fig10(&self, fragmented: bool) -> String {
        let frag = fragmented as usize;
        let suffix = if fragmented {
            "fragmented"
        } else {
            "unfragmented"
        };
        self.render_normalized(
            &format!("Figure 10: normalized 99th-percentile latency, clean-slate VM ({suffix})"),
            frag,
            |r| r.p99_latency.0 as f64,
            false,
        )
    }

    /// Fig. 11: TLB misses normalized to GEMINI (fragmented runs).
    pub fn render_fig11(&self) -> String {
        let mut headers = vec!["workload"];
        headers.extend(Self::system_labels());
        let mut t = Table::new(
            "Figure 11: TLB misses normalized to GEMINI, clean-slate VM (fragmented)",
            &headers,
        );
        for (wi, name) in self.workloads.iter().enumerate() {
            let row = &self.grid[1][wi];
            let gemini = row.last().expect("GEMINI is last").tlb_misses().max(1) as f64;
            let mut cells = vec![name.clone()];
            for r in row {
                cells.push(fmt_ratio(r.tlb_misses() as f64 / gemini));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Table 3: rates of well-aligned huge pages (fragmented runs).
    pub fn render_tab03(&self) -> String {
        let mut headers = vec!["workload"];
        headers.extend(SystemKind::tabulated().iter().map(|s| s.label()));
        let mut t = Table::new(
            "Table 3: rates of well-aligned huge pages, clean-slate VM (fragmented)",
            &headers,
        );
        let tab_idx: Vec<usize> = SystemKind::tabulated()
            .iter()
            .map(|s| {
                SystemKind::evaluated()
                    .iter()
                    .position(|e| e == s)
                    .expect("tabulated ⊂ evaluated")
            })
            .collect();
        for (wi, name) in self.workloads.iter().enumerate() {
            let row = &self.grid[1][wi];
            let mut cells = vec![name.clone()];
            for &i in &tab_idx {
                cells.push(fmt_pct(row[i].aligned_rate()));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Geometric-mean throughput speedup of one system over the baseline.
    pub fn mean_speedup(&self, system: SystemKind, fragmented: bool) -> f64 {
        let idx = SystemKind::evaluated()
            .iter()
            .position(|&s| s == system)
            .expect("system is evaluated");
        let frag = fragmented as usize;
        let ratios: Vec<f64> = self.grid[frag]
            .iter()
            .map(|row| row[idx].throughput() / row[0].throughput())
            .collect();
        geometric_mean(&ratios)
    }

    /// Mean well-aligned rate of one system over the fragmented runs.
    pub fn mean_aligned_rate(&self, system: SystemKind) -> f64 {
        let idx = SystemKind::evaluated()
            .iter()
            .position(|&s| s == system)
            .expect("system is evaluated");
        let rates: Vec<f64> = self.grid[1]
            .iter()
            .map(|row| row[idx].aligned_rate())
            .collect();
        rates.iter().sum::<f64>() / rates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_grid_reproduces_orderings() {
        // Daemon periods are calibrated for full-scale working sets; with
        // smaller ones the runs are too short for any background
        // coalescing to act on fragmented memory, so this ordering check
        // needs the full working-set factor. Memory sizing stays at bench
        // scale and the grid is reduced to keep the test tractable.
        let scale = Scale {
            ws_factor: 1.0,
            ops: 6_000,
            ..Scale::bench()
        };
        let res = run(&scale, Some(&["Masstree", "Redis"])).unwrap();
        assert_eq!(res.workloads, vec!["Masstree", "Redis"]);
        assert_eq!(res.grid.len(), 2);
        assert_eq!(res.grid[0][0].len(), 8);
        // Gemini aligns better than THP on fragmented memory.
        let gem = res.mean_aligned_rate(SystemKind::Gemini);
        let thp = res.mean_aligned_rate(SystemKind::Thp);
        assert!(gem > thp, "Gemini {gem} vs THP {thp}");
        // All renders produce the full row set.
        for s in [
            res.render_fig08(true),
            res.render_fig09(true),
            res.render_fig10(true),
            res.render_fig11(),
            res.render_tab03(),
        ] {
            assert!(s.contains("Masstree") && s.contains("Redis"), "{s}");
        }
    }
}

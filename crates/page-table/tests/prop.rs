//! Randomized property tests for the mixed-size address space, driven
//! by the workspace's own deterministic RNG (no external
//! test-framework dependency so the suite builds offline).

use gemini_page_table::{AddressSpace, LeafSize};
use gemini_sim_core::DetRng;
use std::collections::{BTreeMap, BTreeSet};

const CASES: u64 = 64;

#[derive(Debug, Clone)]
enum Op {
    MapBase { va: u64, pa: u64 },
    MapHuge { va_h: u64, pa_h: u64 },
    UnmapBase { va: u64 },
    UnmapHuge { va_h: u64 },
    Demote { va_h: u64 },
}

// A small VA universe (8 huge regions) so operations collide often.
fn random_op(rng: &mut DetRng) -> Op {
    match rng.below(5) {
        0 => Op::MapBase {
            va: rng.below(4096),
            pa: rng.below(1 << 20),
        },
        1 => Op::MapHuge {
            va_h: rng.below(8),
            pa_h: rng.below(2048),
        },
        2 => Op::UnmapBase {
            va: rng.below(4096),
        },
        3 => Op::UnmapHuge { va_h: rng.below(8) },
        _ => Op::Demote { va_h: rng.below(8) },
    }
}

/// A shadow model (flat map va_frame -> pa_frame) must always agree
/// with the radix structure, whatever the interleaving.
#[test]
fn matches_flat_shadow_model() {
    let mut seeds = DetRng::new(0x9A6E_7AB1);
    for _ in 0..CASES {
        let mut rng = seeds.fork();
        let n_ops = rng.range(1, 300);
        let mut a = AddressSpace::new();
        let mut shadow: BTreeMap<u64, u64> = BTreeMap::new();
        let mut huge_regions: BTreeMap<u64, u64> = BTreeMap::new();

        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::MapBase { va, pa } => {
                    let ok = a.map_base(va, pa).is_ok();
                    let expect =
                        !shadow.contains_key(&va) && !huge_regions.contains_key(&(va / 512));
                    assert_eq!(ok, expect);
                    if ok {
                        shadow.insert(va, pa);
                    }
                }
                Op::MapHuge { va_h, pa_h } => {
                    let ok = a.map_huge(va_h, pa_h).is_ok();
                    let region_busy = huge_regions.contains_key(&va_h)
                        || shadow.range(va_h * 512..(va_h + 1) * 512).next().is_some();
                    assert_eq!(ok, !region_busy);
                    if ok {
                        huge_regions.insert(va_h, pa_h);
                    }
                }
                Op::UnmapBase { va } => {
                    let r = a.unmap_base(va);
                    match shadow.remove(&va) {
                        Some(pa) => assert_eq!(r, Ok(pa)),
                        None => assert!(r.is_err()),
                    }
                }
                Op::UnmapHuge { va_h } => {
                    let r = a.unmap_huge(va_h);
                    match huge_regions.remove(&va_h) {
                        Some(pa) => assert_eq!(r, Ok(pa)),
                        None => assert!(r.is_err()),
                    }
                }
                Op::Demote { va_h } => {
                    let r = a.demote(va_h);
                    match huge_regions.remove(&va_h) {
                        Some(pa_h) => {
                            assert!(r.is_ok());
                            for i in 0..512 {
                                shadow.insert(va_h * 512 + i, pa_h * 512 + i);
                            }
                        }
                        None => assert!(r.is_err()),
                    }
                }
            }

            a.check_invariants().unwrap();
            assert_eq!(a.base_mapped(), shadow.len() as u64);
            assert_eq!(a.huge_mapped(), huge_regions.len() as u64);
        }

        // Final translation sweep.
        for (&va, &pa) in &shadow {
            let t = a.translate(va).unwrap();
            assert_eq!(t.pa_frame, pa);
            assert_eq!(t.size, LeafSize::Base);
        }
        for (&va_h, &pa_h) in &huge_regions {
            for i in [0u64, 17, 511] {
                let t = a.translate(va_h * 512 + i).unwrap();
                assert_eq!(t.pa_frame, pa_h * 512 + i);
                assert_eq!(t.size, LeafSize::Huge);
            }
        }
    }
}

/// promote_in_place succeeds exactly when the region is fully populated
/// with contiguous, huge-aligned backing — and never alters translation.
#[test]
fn promotion_preserves_translation() {
    let mut seeds = DetRng::new(0x9A6E_7AB2);
    for _ in 0..CASES {
        let mut rng = seeds.fork();
        let pa0_huge = rng.below(64);
        let mut holes: BTreeSet<usize> = BTreeSet::new();
        for _ in 0..rng.below(3) {
            holes.insert(rng.below(512) as usize);
        }
        let scatter = rng.chance(0.5);

        let mut a = AddressSpace::new();
        for i in 0..512usize {
            if holes.contains(&i) {
                continue;
            }
            let pa = if scatter && i == 100 {
                999_999
            } else {
                pa0_huge * 512 + i as u64
            };
            a.map_base(i as u64, pa).unwrap();
        }
        let before: Vec<_> = (0..512u64)
            .map(|i| a.translate(i).map(|t| t.pa_frame))
            .collect();
        let should_succeed = holes.is_empty() && !scatter;
        let result = a.promote_in_place(0);
        assert_eq!(result.is_ok(), should_succeed);
        let after: Vec<_> = (0..512u64)
            .map(|i| a.translate(i).map(|t| t.pa_frame))
            .collect();
        assert_eq!(before, after);
        a.check_invariants().unwrap();
    }
}

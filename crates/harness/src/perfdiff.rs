//! Perf-regression gate: diff two `BENCH_*.json` trajectory files.
//!
//! `gemini-sim bench --compare OLD.json --against NEW.json` parses both
//! reports with the in-tree JSON reader, matches cells by label (and
//! phases by name inside matching cells), and flags every wall-time
//! increase beyond a threshold as a regression. The CLI exits nonzero
//! on regressions unless `--warn-only` is set, which is how ci.sh keeps
//! a perf record without making a noisy demo-scale container a hard
//! gate.
//!
//! v2 files (no phase breakdowns, no profiled reference fields) diff
//! fine: only the entries both files carry are compared, so the gate
//! works across the schema migration.

use gemini_obs::jsonread::{parse, Value};

/// Default regression threshold: wall-time increases under this many
/// percent are treated as noise. Demo-scale cells jitter by a few
/// percent run-to-run; 10% separates drift from damage without a
/// dedicated quiet benchmarking host.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// One compared wall-time entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// What was compared: `reference`, `cell:<label>` or
    /// `phase:<label>/<name>`.
    pub label: String,
    /// Old wall milliseconds.
    pub old_ms: f64,
    /// New wall milliseconds.
    pub new_ms: f64,
    /// Relative change in percent (positive = slower).
    pub delta_pct: f64,
}

/// Outcome of comparing two bench reports.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Threshold used, percent.
    pub threshold_pct: f64,
    /// Entries slower by more than the threshold, worst first.
    pub regressions: Vec<DiffEntry>,
    /// Entries faster by more than the threshold, best first.
    pub improvements: Vec<DiffEntry>,
    /// Entries within the threshold either way.
    pub unchanged: usize,
    /// Labels present in only one of the files (not comparable).
    pub unmatched: Vec<String>,
}

impl DiffReport {
    /// True when at least one entry regressed beyond the threshold.
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Renders the ranked comparison table (worst regression first).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf diff (threshold {:.1}%): {} regression(s), {} improvement(s), {} unchanged\n",
            self.threshold_pct,
            self.regressions.len(),
            self.improvements.len(),
            self.unchanged
        ));
        let row = |e: &DiffEntry, tag: &str| {
            format!(
                "  {tag}  {:<44} {:>9.1} ms -> {:>9.1} ms  {:>+7.1}%\n",
                e.label, e.old_ms, e.new_ms, e.delta_pct
            )
        };
        for e in &self.regressions {
            out.push_str(&row(e, "SLOWER"));
        }
        for e in &self.improvements {
            out.push_str(&row(e, "faster"));
        }
        if !self.unmatched.is_empty() {
            out.push_str(&format!(
                "  not comparable (present in one file only): {}\n",
                self.unmatched.join(", ")
            ));
        }
        out
    }
}

/// Pulls `(label suffix, wall_ms)` pairs out of one parsed report:
/// the reference cell, every grid cell, and every phase of every cell.
fn wall_entries(report: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(ms) = report
        .get("reference_cell")
        .and_then(|r| r.get("current_wall_ms"))
        .and_then(Value::as_f64)
    {
        out.push(("reference".to_string(), ms));
    }
    for cell in report
        .get("cells")
        .and_then(Value::as_arr)
        .unwrap_or_default()
    {
        let Some(label) = cell.get("label").and_then(Value::as_str) else {
            continue;
        };
        if let Some(ms) = cell.get("wall_ms").and_then(Value::as_f64) {
            out.push((format!("cell:{label}"), ms));
        }
        // v2 cells have no phases array; this loop is simply empty.
        for phase in cell
            .get("phases")
            .and_then(Value::as_arr)
            .unwrap_or_default()
        {
            if let (Some(name), Some(ms)) = (
                phase.get("name").and_then(Value::as_str),
                phase.get("wall_ms").and_then(Value::as_f64),
            ) {
                out.push((format!("phase:{label}/{name}"), ms));
            }
        }
    }
    out
}

/// Wall times under this are timer noise at millisecond resolution; a
/// 10% swing on a 2 ms phase is not a signal worth failing CI over.
const MIN_COMPARABLE_MS: f64 = 5.0;

/// Compares two bench report JSON documents (old, new). Errors carry
/// enough context to name the file that failed to parse.
pub fn compare_reports(
    old_json: &str,
    new_json: &str,
    threshold_pct: f64,
) -> std::result::Result<DiffReport, String> {
    let old = parse(old_json).map_err(|e| format!("old report: {e}"))?;
    let new = parse(new_json).map_err(|e| format!("new report: {e}"))?;
    let old_entries = wall_entries(&old);
    let new_entries: std::collections::BTreeMap<String, f64> =
        wall_entries(&new).into_iter().collect();
    let mut seen = std::collections::BTreeSet::new();
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    let mut unchanged = 0usize;
    let mut unmatched = Vec::new();
    for (label, old_ms) in old_entries {
        seen.insert(label.clone());
        let Some(&new_ms) = new_entries.get(&label) else {
            unmatched.push(label);
            continue;
        };
        if old_ms < MIN_COMPARABLE_MS || new_ms < MIN_COMPARABLE_MS {
            // Either side below the floor makes the ratio meaningless:
            // a 2 ms phase "doubling" to 6 ms (or collapsing from 6 ms
            // to 2 ms) is timer noise, not a signal, so entries that
            // straddle the floor classify as unchanged in both
            // directions rather than as a regression or improvement.
            unchanged += 1;
            continue;
        }
        let delta_pct = if old_ms > 0.0 {
            (new_ms - old_ms) / old_ms * 100.0
        } else {
            100.0
        };
        let entry = DiffEntry {
            label,
            old_ms,
            new_ms,
            delta_pct,
        };
        if delta_pct > threshold_pct {
            regressions.push(entry);
        } else if delta_pct < -threshold_pct {
            improvements.push(entry);
        } else {
            unchanged += 1;
        }
    }
    for label in new_entries.keys() {
        if !seen.contains(label) {
            unmatched.push(label.clone());
        }
    }
    let by_severity =
        |a: &DiffEntry, b: &DiffEntry| b.delta_pct.abs().total_cmp(&a.delta_pct.abs());
    regressions.sort_by(by_severity);
    improvements.sort_by(by_severity);
    Ok(DiffReport {
        threshold_pct,
        regressions,
        improvements,
        unchanged,
        unmatched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ref_ms: f64, cell_ms: f64, fault_ms: f64) -> String {
        format!(
            r#"{{
  "schema": "gemini-bench-v3",
  "reference_cell": {{"label": "ref", "current_wall_ms": {ref_ms}}},
  "cells": [
    {{"label": "Canneal/GEMINI", "wall_ms": {cell_ms},
      "phases": [{{"name": "fault_path", "wall_ms": {fault_ms}, "cum_ms": {fault_ms}, "count": 5}}]}}
  ]
}}"#
        )
    }

    #[test]
    fn detects_injected_regression_and_ranks_it() {
        let old = report(500.0, 100.0, 30.0);
        let new = report(505.0, 180.0, 95.0); // cell +80%, phase +217%
        let diff = compare_reports(&old, &new, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(diff.regressed());
        assert_eq!(diff.regressions.len(), 2);
        // Worst first: the phase blew up harder than the cell.
        assert_eq!(diff.regressions[0].label, "phase:Canneal/GEMINI/fault_path");
        assert_eq!(diff.regressions[1].label, "cell:Canneal/GEMINI");
        // Reference moved 1%: inside the threshold.
        assert_eq!(diff.unchanged, 1);
        let table = diff.render();
        assert!(table.contains("SLOWER"), "{table}");
        assert!(table.contains("fault_path"), "{table}");
    }

    #[test]
    fn improvements_and_noise_do_not_regress() {
        let old = report(500.0, 100.0, 30.0);
        let new = report(495.0, 60.0, 28.0);
        let diff = compare_reports(&old, &new, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(!diff.regressed());
        assert_eq!(diff.improvements.len(), 1);
        assert_eq!(diff.improvements[0].label, "cell:Canneal/GEMINI");
    }

    #[test]
    fn v2_reports_without_phases_are_comparable() {
        let v2 = r#"{
  "schema": "gemini-bench-v2",
  "reference_cell": {"label": "ref", "current_wall_ms": 500},
  "cells": [{"label": "Canneal/GEMINI", "wall_ms": 100, "ops": 2500, "ops_per_sec": 25000}]
}"#;
        let v3 = report(490.0, 150.0, 40.0);
        let diff = compare_reports(v2, &v3, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(diff.regressed());
        assert_eq!(diff.regressions[0].label, "cell:Canneal/GEMINI");
        // The v3-only phase entry is reported as unmatched, not an error.
        assert_eq!(
            diff.unmatched,
            vec!["phase:Canneal/GEMINI/fault_path".to_string()]
        );
    }

    #[test]
    fn tiny_walls_are_noise_not_signals() {
        let old = report(500.0, 100.0, 1.0);
        let new = report(500.0, 100.0, 2.0); // phase +100% but 2 ms
        let diff = compare_reports(&old, &new, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(!diff.regressed());
    }

    #[test]
    fn straddling_the_floor_upward_is_unchanged_not_a_regression() {
        // 3 ms -> 8 ms is +167%, but the old measurement is below the
        // 5 ms floor: millisecond-resolution noise, not damage.
        let old = report(500.0, 100.0, 3.0);
        let new = report(500.0, 100.0, 8.0);
        let diff = compare_reports(&old, &new, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(!diff.regressed(), "{}", diff.render());
        assert!(diff.improvements.is_empty());
        // reference + cell + phase all inside the floor/threshold.
        assert_eq!(diff.unchanged, 3);
    }

    #[test]
    fn straddling_the_floor_downward_is_unchanged_not_an_improvement() {
        // The mirror image: 8 ms -> 3 ms must not be celebrated as a
        // -62% win either; classification is sign-symmetric.
        let old = report(500.0, 100.0, 8.0);
        let new = report(500.0, 100.0, 3.0);
        let diff = compare_reports(&old, &new, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(!diff.regressed());
        assert!(diff.improvements.is_empty(), "{}", diff.render());
        assert_eq!(diff.unchanged, 3);
    }

    #[test]
    fn malformed_input_names_the_side() {
        let err = compare_reports("{nope", &report(1.0, 1.0, 1.0), 10.0).unwrap_err();
        assert!(err.starts_with("old report:"), "{err}");
    }
}

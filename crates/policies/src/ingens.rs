//! Ingens (OSDI '16): coordinated, utilization-based huge-page promotion.
//!
//! Ingens removes THP's synchronous fault-path allocation (which inflates
//! tail latency and bloats memory) and instead promotes asynchronously,
//! only once a region's *utilization* crosses a threshold (90 % of its 512
//! base pages populated). Promotion is performed by a background thread
//! with a bounded budget, fair-shared across address spaces.

use gemini_mm::{FaultCtx, FaultDecision, HugePolicy, LayerOps, PromotionKind, PromotionOp};
use gemini_sim_core::{Cycles, PAGES_PER_HUGE_PAGE};

/// Ingens: async utilization-gated promotion.
#[derive(Debug, Clone)]
pub struct Ingens {
    /// Utilization threshold in present pages (Ingens' 90 % ≈ 461).
    pub util_threshold: usize,
    /// Regions promoted per daemon pass.
    pub regions_per_pass: usize,
}

impl Ingens {
    /// Creates Ingens with the paper's parameters.
    pub fn new() -> Self {
        Self {
            util_threshold: (PAGES_PER_HUGE_PAGE as f64 * 0.9).ceil() as usize,
            regions_per_pass: 2,
        }
    }
}

impl Default for Ingens {
    fn default() -> Self {
        Self::new()
    }
}

impl HugePolicy for Ingens {
    fn name(&self) -> &'static str {
        "Ingens"
    }

    fn fault_decision(&mut self, _ctx: &FaultCtx<'_>) -> FaultDecision {
        // Asynchronous-only: the fault path never allocates huge pages.
        FaultDecision::Base
    }

    fn daemon_period(&self) -> Cycles {
        Cycles::from_millis(20.0)
    }

    fn daemon(&mut self, ops: &mut LayerOps<'_>) -> Vec<PromotionOp> {
        // Highest-utilization regions first; ties by address for
        // determinism.
        let mut candidates: Vec<(usize, u64)> = ops
            .table
            .iter_regions()
            .filter(|&(_, huge)| !huge)
            .map(|(r, _)| (ops.table.region_population(r).present, r))
            .filter(|&(present, _)| present >= self.util_threshold)
            .collect();
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        candidates
            .into_iter()
            .take(self.regions_per_pass)
            .map(|(_, r)| PromotionOp::new(r, PromotionKind::PreferInPlace))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_mm::{CostModel, GuestMm};
    use gemini_sim_core::page::PageSize;
    use gemini_sim_core::{VmId, HUGE_PAGE_SIZE};

    #[test]
    fn fault_path_is_always_base() {
        let mut g = GuestMm::new(VmId(1), 4096, CostModel::default());
        let mut ingens = Ingens::new();
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let (out, _) = g.handle_fault(vma.start_frame(), &mut ingens).unwrap();
        assert_eq!(out.size, PageSize::Base);
    }

    #[test]
    fn promotes_only_above_utilization_threshold() {
        let mut g = GuestMm::new(VmId(1), 1 << 14, CostModel::default());
        let mut ingens = Ingens::new();
        let vma = g.mmap(2 * HUGE_PAGE_SIZE).unwrap();
        // Region 0: 460 pages (just below 461); region 1: 470 pages.
        for i in 0..460 {
            g.handle_fault(vma.start_frame() + i, &mut ingens).unwrap();
        }
        for i in 0..470 {
            g.handle_fault(vma.start_frame() + 512 + i, &mut ingens)
                .unwrap();
        }
        g.run_daemon(&mut ingens, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 1, "only the 470-page region");
        // Top the first region up; it promotes on the next pass.
        g.handle_fault(vma.start_frame() + 460, &mut ingens)
            .unwrap();
        g.run_daemon(&mut ingens, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 2);
    }

    #[test]
    fn budget_limits_promotions_per_pass() {
        let mut g = GuestMm::new(VmId(1), 1 << 15, CostModel::default());
        let mut ingens = Ingens {
            regions_per_pass: 8,
            ..Ingens::new()
        };
        let vma = g.mmap(12 * HUGE_PAGE_SIZE).unwrap();
        for r in 0..12u64 {
            for i in 0..490 {
                g.handle_fault(vma.start_frame() + r * 512 + i, &mut ingens)
                    .unwrap();
            }
        }
        g.run_daemon(&mut ingens, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 8);
        g.run_daemon(&mut ingens, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 12);
    }
}

//! An in-tree FxHash-style hasher for hot-path hash maps.
//!
//! `std`'s default `RandomState`/SipHash is DoS-resistant but costs tens
//! of cycles per lookup — measurable in the simulator's per-access loop
//! (translation chunk lookups, touch bookkeeping). This module provides
//! the multiply-fold hash used by rustc (`FxHasher`), reimplemented here
//! because the workspace is built offline with no external deps.
//!
//! Determinism note: the hash (unlike `RandomState`) is stable across
//! processes, but **no simulator output may depend on hash-map iteration
//! order either way** — the golden tables already pin byte-identical
//! output across runs with randomized SipHash keys, which proves every
//! exported artefact is iteration-order-independent. Swapping the hasher
//! therefore cannot change results, only speed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply constant from FxHash (also splitmix64's golden-ratio
/// increment).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher: rotate, xor, multiply per word.
///
/// Not DoS-resistant — use only for keys the simulator itself generates
/// (frame numbers, region indices, VM ids), never for external input.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized, no per-map seed.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — drop-in for hot-path maps keyed by
/// simulator-internal integers.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_integers() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..1_000u64 {
            m.insert(k * 7, k);
        }
        assert_eq!(m.len(), 1_000);
        for k in 0..1_000u64 {
            assert_eq!(m.get(&(k * 7)), Some(&k));
        }
    }

    #[test]
    fn hash_is_stable_across_hasher_instances() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let one = |v: u64| b.hash_one(v);
        assert_eq!(one(42), one(42));
        assert_ne!(one(42), one(43));
    }

    #[test]
    fn distinct_small_keys_spread() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..4096 {
            seen.insert(b.hash_one(k));
        }
        assert_eq!(seen.len(), 4096, "no collisions on sequential keys");
    }
}

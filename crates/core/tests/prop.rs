//! Randomized property tests for Gemini's core data structures — the
//! booking table, the huge bucket and the EMA descriptor list — driven
//! by the workspace's own deterministic RNG (no external
//! test-framework dependency so the suite builds offline).

use gemini::booking::BookingTable;
use gemini::bucket::HugeBucket;
use gemini::ema::{congruent_offset, EmaList, OffsetDescriptor};
use gemini_buddy::BuddyAllocator;
use gemini_sim_core::{Cycles, DetRng, HUGE_PAGE_ORDER, PAGES_PER_HUGE_PAGE};

const CASES: u64 = 64;

#[derive(Debug, Clone)]
enum BookOp {
    Book { region: u64 },
    TakeFrame { frame: u64 },
    TakeWhole,
    Expire { at: u64 },
}

fn random_book_op(rng: &mut DetRng) -> BookOp {
    match rng.below(4) {
        0 => BookOp::Book {
            region: rng.below(8),
        },
        1 => BookOp::TakeFrame {
            frame: rng.below(8 * 512),
        },
        2 => BookOp::TakeWhole,
        _ => BookOp::Expire {
            at: rng.below(1000),
        },
    }
}

/// Frame conservation: whatever interleaving of bookings, frame
/// draws, whole-region draws and expirations happens, every frame is
/// owned by exactly one party and releasing everything restores the
/// allocator.
#[test]
fn booking_conserves_frames() {
    let mut seeds = DetRng::new(0xC04E_0001);
    for _ in 0..CASES {
        let mut rng = seeds.fork();
        let n_ops = rng.range(1, 120);
        let mut buddy = BuddyAllocator::new(8 * 512);
        let mut table = BookingTable::new();
        let mut drawn: Vec<u64> = Vec::new(); // Frames handed to mappings.
        let mut whole_regions: Vec<u64> = Vec::new();
        for _ in 0..n_ops {
            match random_book_op(&mut rng) {
                BookOp::Book { region } => {
                    let _ = table.book(&mut buddy, region, Cycles(0), Cycles(500));
                }
                BookOp::TakeFrame { frame } => {
                    if table.take_frame(frame) {
                        drawn.push(frame);
                    }
                }
                BookOp::TakeWhole => {
                    if let Some(hf) = table.take_whole() {
                        whole_regions.push(hf);
                    }
                }
                BookOp::Expire { at } => {
                    table.expire(&mut buddy, Cycles(at));
                }
            }
            buddy.check_invariants().unwrap();
        }
        // Drain: expire everything, then return the drawn frames and
        // whole regions; memory must be whole again.
        table.expire(&mut buddy, Cycles(u64::MAX));
        for f in drawn {
            buddy.free(f, 0).unwrap();
        }
        for hf in whole_regions {
            buddy.free(hf << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER).unwrap();
        }
        assert_eq!(buddy.free_frames(), 8 * 512);
        assert_eq!(buddy.free_runs(), vec![(0, 8 * 512)]);
    }
}

/// The bucket never loses or duplicates a region.
#[test]
fn bucket_conserves_regions() {
    let mut seeds = DetRng::new(0xC04E_0002);
    for _ in 0..CASES {
        let mut rng = seeds.fork();
        let n_offers = rng.range(1, 40);
        let takes = rng.below(40) as usize;
        let releases = rng.below(40) as usize;
        let mut buddy = BuddyAllocator::new(16 * 512);
        let mut bucket = HugeBucket::new();
        let mut offered = Vec::new();
        for i in 0..n_offers {
            let region = rng.below(16);
            // Regions must be distinct allocations.
            if buddy
                .alloc_at(region << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER)
                .is_ok()
            {
                bucket.offer(region, Cycles(i));
                offered.push(region);
            }
        }
        let mut taken = Vec::new();
        for _ in 0..takes {
            if let Some(hf) = bucket.take() {
                taken.push(hf);
            }
        }
        let released = bucket.release(&mut buddy, releases);
        assert_eq!(taken.len() + released + bucket.len(), offered.len());
        // Everything the bucket still holds or handed out is allocated.
        for hf in &taken {
            assert!(!buddy.is_frame_free(hf << HUGE_PAGE_ORDER));
        }
        // Drain and verify full restoration.
        bucket.release(&mut buddy, usize::MAX >> 1);
        for hf in taken {
            buddy.free(hf << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER).unwrap();
        }
        assert_eq!(buddy.free_frames(), 16 * 512);
    }
}

/// EMA list: after any insert sequence, lookups agree with a naive
/// interval model using the same sub-VMA truncation rule (new
/// descriptors own their range; older same-key overlaps keep only
/// their prefix). Post-truncation ranges are disjoint per key, so the
/// covering descriptor is unique — the property checks that the
/// move-to-front list preserves exactly that coverage.
#[test]
fn ema_find_matches_interval_model() {
    let mut seeds = DetRng::new(0xC04E_0003);
    for _ in 0..CASES {
        let mut rng = seeds.fork();
        let n_descs = rng.range(1, 30);
        let n_queries = rng.range(1, 30);
        let mut list = EmaList::new();
        let mut naive: Vec<OffsetDescriptor> = Vec::new();
        for _ in 0..n_descs {
            let key = rng.below(4);
            let start_region = rng.below(16);
            let len_regions = rng.range(1, 8);
            let raw_off = rng.below(4096) as i64 - 2048;
            let d = OffsetDescriptor {
                key,
                start: start_region * 512,
                len: len_regions * 512,
                offset: raw_off * 512,
            };
            list.insert(d.clone());
            for o in naive.iter_mut() {
                if o.key == d.key && o.start < d.start + d.len && d.start < o.start + o.len {
                    o.len = d.start.saturating_sub(o.start);
                }
            }
            naive.retain(|o| o.len > 0);
            naive.push(d);
        }
        for _ in 0..n_queries {
            let key = rng.below(4);
            let frame = rng.below(8192);
            let got = list.find(key, frame).map(|d| d.offset);
            let expect = naive
                .iter()
                .find(|d| d.key == key && frame >= d.start && frame < d.start + d.len)
                .map(|d| d.offset);
            assert_eq!(got, expect, "key {key} frame {frame}");
        }
        // Per-key disjointness invariant of the truncation rule.
        let mut by_key: std::collections::BTreeMap<u64, Vec<(u64, u64)>> = Default::default();
        for d in &naive {
            by_key.entry(d.key).or_default().push((d.start, d.len));
        }
        for ranges in by_key.values_mut() {
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                assert!(w[0].0 + w[0].1 <= w[1].0, "overlapping survivors");
            }
        }
    }
}

/// congruent_offset always returns a 512-multiple-preserving target at
/// or above the minimum.
#[test]
fn congruent_offset_properties() {
    let mut seeds = DetRng::new(0xC04E_0004);
    for _ in 0..256 {
        let mut rng = seeds.fork();
        let in0 = rng.below(1 << 20);
        let out_min = rng.below(1 << 20);
        let off = congruent_offset(in0, out_min);
        let out = (in0 as i64 - off) as u64;
        assert!(out >= out_min);
        assert!(out < out_min + PAGES_PER_HUGE_PAGE);
        assert_eq!(out % PAGES_PER_HUGE_PAGE, in0 % PAGES_PER_HUGE_PAGE);
        // Derived placements preserve in-region offsets for any frame.
        let frame = in0 + 37;
        let target = (frame as i64 - off) as u64;
        assert_eq!(target % PAGES_PER_HUGE_PAGE, frame % PAGES_PER_HUGE_PAGE);
    }
}

//! Rendering and export of recorded traces.
//!
//! Turns a [`Recorder`] snapshot into the same plain-text tables the
//! experiments print (event summary, metrics, sampled time series) and
//! into JSON Lines for offline analysis. All output is deterministic:
//! identical seeded runs serialize byte-identically.

use crate::report::Table;
use gemini_obs::{json_f64, json_str, Recorder};
use gemini_vm_sim::RunResult;
use std::io::Write as _;
use std::path::Path;

/// Maximum time-series rows rendered as text; longer series are
/// evenly thinned (the JSON export always carries every point).
const MAX_SERIES_ROWS: usize = 48;

/// Renders per-(kind, layer) event counts, with a drop note when the
/// ring overflowed.
pub fn render_event_summary(rec: &Recorder) -> String {
    let mut t = Table::new("event summary", &["event", "layer", "count"]);
    for (label, layer, n) in rec.event_summary() {
        t.row(vec![
            label.to_string(),
            layer.label().to_string(),
            n.to_string(),
        ]);
    }
    let mut out = t.render();
    if rec.dropped() > 0 {
        out.push_str(&format!("({} events dropped by the ring)\n", rec.dropped()));
    }
    out
}

/// Renders the sampled time series (FMFI, alignment, TLB-miss rate,
/// free 2 MiB blocks) as a text table.
pub fn render_series(rec: &Recorder) -> String {
    let samples = rec.samples();
    let mut t = Table::new(
        "time series",
        &[
            "cycle",
            "host FMFI",
            "guest FMFI",
            "aligned",
            "TLB miss",
            "free 2MiB",
        ],
    );
    let step = samples.len().div_ceil(MAX_SERIES_ROWS).max(1);
    for s in samples.iter().step_by(step) {
        t.row(vec![
            s.cycle.to_string(),
            format!("{:.3}", s.host_fmfi),
            format!("{:.3}", s.guest_fmfi),
            format!("{:.3}", s.aligned_rate),
            format!("{:.4}", s.tlb_miss_rate),
            s.free_order9.to_string(),
        ]);
    }
    let mut out = t.render();
    if step > 1 {
        out.push_str(&format!(
            "(showing every {step}th of {} samples; the JSON export has all)\n",
            samples.len()
        ));
    }
    out
}

/// Renders the metrics registry: counters, gauges, then histograms.
pub fn render_registry(rec: &Recorder) -> String {
    let reg = rec.registry();
    let mut out = String::new();
    let counters = reg.counters();
    if !counters.is_empty() {
        let mut t = Table::new("counters", &["name", "value"]);
        for (name, v) in counters {
            t.row(vec![name.to_string(), v.to_string()]);
        }
        out.push_str(&t.render());
    }
    let gauges = reg.gauges();
    if !gauges.is_empty() {
        let mut t = Table::new("gauges", &["name", "value"]);
        for (name, v) in gauges {
            t.row(vec![name.to_string(), format!("{v:.4}")]);
        }
        out.push_str(&t.render());
    }
    let histograms = reg.histograms();
    if !histograms.is_empty() {
        let mut t = Table::new("histograms", &["name", "count", "mean", "log2 buckets"]);
        for (name, h) in histograms {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .into_iter()
                .map(|(floor, n)| format!("{floor}:{n}"))
                .collect();
            t.row(vec![
                name.to_string(),
                h.count().to_string(),
                format!("{:.1}", h.mean()),
                buckets.join(" "),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// One experiment result as a JSON Lines row (`{"type":"run",...}`).
pub fn result_json(r: &RunResult) -> String {
    format!(
        concat!(
            "{{\"type\":\"run\",\"system\":{},\"workload\":{},\"ops\":{},",
            "\"vtime_cycles\":{},\"throughput\":{},\"mean_latency_us\":{},",
            "\"p99_latency_us\":{},\"tlb_misses\":{},\"aligned_rate\":{},",
            "\"guest_fmfi\":{},\"host_fmfi\":{},\"bucket_reuse_rate\":{}}}"
        ),
        json_str(r.system),
        json_str(&r.workload),
        r.ops,
        r.vtime.0,
        json_f64(r.throughput()),
        json_f64(r.mean_latency.as_micros_f64()),
        json_f64(r.p99_latency.as_micros_f64()),
        r.tlb_misses(),
        json_f64(r.aligned_rate()),
        json_f64(r.guest_fmfi),
        json_f64(r.host_fmfi),
        json_f64(r.bucket_reuse_rate),
    )
}

/// Serializes results plus the recorder's events, samples and registry
/// as one JSON Lines document.
pub fn trace_json_lines(results: &[RunResult], rec: &Recorder) -> Vec<String> {
    let mut out: Vec<String> = results.iter().map(result_json).collect();
    out.extend(rec.to_json_lines());
    out
}

/// Writes JSON Lines rows to `path` (one object per line, newline
/// terminated).
pub fn write_json_lines(path: &Path, lines: &[String]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for line in lines {
        writeln!(f, "{line}")?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_obs::{cat, EventKind, Layer, SamplePoint, TraceConfig};
    use gemini_sim_core::Cycles;

    fn demo_recorder() -> Recorder {
        let rec = Recorder::new(&TraceConfig::all());
        rec.set_cycle(Cycles(5));
        rec.emit(cat::FAULT, 1, Layer::Guest, || EventKind::Fault {
            frame: 7,
            huge: false,
            honored: true,
        });
        rec.counter_add("demo.counter", 3);
        rec.record_sample(SamplePoint {
            cycle: 5,
            host_fmfi: 0.5,
            guest_fmfi: 0.25,
            aligned_rate: 0.75,
            tlb_miss_rate: 0.01,
            free_order9: 12,
        });
        rec
    }

    #[test]
    fn renders_summary_series_and_registry() {
        let rec = demo_recorder();
        let summary = render_event_summary(&rec);
        assert!(
            summary.contains("fault") && summary.contains("guest"),
            "{summary}"
        );
        let series = render_series(&rec);
        assert!(
            series.contains("0.750") && series.contains("12"),
            "{series}"
        );
        let reg = render_registry(&rec);
        assert!(reg.contains("demo.counter") && reg.contains('3'), "{reg}");
    }

    #[test]
    fn long_series_are_thinned_in_text_only() {
        let rec = Recorder::new(&TraceConfig::all());
        for i in 0..(MAX_SERIES_ROWS as u64 * 3) {
            rec.record_sample(SamplePoint {
                cycle: i,
                host_fmfi: 0.0,
                guest_fmfi: 0.0,
                aligned_rate: 0.0,
                tlb_miss_rate: 0.0,
                free_order9: i,
            });
        }
        let text = render_series(&rec);
        assert!(text.contains("showing every 3th of 144 samples"), "{text}");
        assert!(text.lines().count() < 60);
        // JSON export keeps every point.
        let json = rec.to_json_lines();
        assert_eq!(json.len(), 144);
    }
}

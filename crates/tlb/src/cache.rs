//! A generic set-associative cache with LRU replacement.
//!
//! Used for every translation structure in the MMU model: L1 TLBs, the
//! unified L2 STLB, the nested TLB and the page-walk caches. Keys are
//! opaque 128-bit values built by the caller (page number + VM tag + size
//! tag packed together).

/// A set-associative LRU cache of opaque keys.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<u128>>,
    num_sets: usize,
    assoc: usize,
}

impl SetAssocCache {
    /// Creates a cache with `entries` total capacity and `assoc` ways.
    ///
    /// The number of sets is `entries / assoc`, rounded up to at least one.
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0`.
    pub fn new(entries: usize, assoc: usize) -> Self {
        assert!(assoc > 0, "associativity must be positive");
        let num_sets = (entries / assoc).max(1);
        Self {
            sets: vec![Vec::with_capacity(assoc); num_sets],
            num_sets,
            assoc,
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.num_sets * self.assoc
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    fn set_of(&self, key: u128) -> usize {
        // Mix the key so that consecutive page numbers spread over sets,
        // then index. A fixed multiplicative hash keeps runs deterministic.
        let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((key >> 64) as u64);
        (h % self.num_sets as u64) as usize
    }

    /// Looks `key` up; on hit, refreshes its LRU position and returns true.
    pub fn lookup(&mut self, key: u128) -> bool {
        let set = self.set_of(key);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&k| k == key) {
            // Move to the back: most recently used.
            let k = ways.remove(pos);
            ways.push(k);
            true
        } else {
            false
        }
    }

    /// Checks for `key` without updating recency.
    pub fn probe(&self, key: u128) -> bool {
        self.sets[self.set_of(key)].contains(&key)
    }

    /// Inserts `key`, evicting the LRU way of its set when full.
    pub fn insert(&mut self, key: u128) {
        let set = self.set_of(key);
        let assoc = self.assoc;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&k| k == key) {
            let k = ways.remove(pos);
            ways.push(k);
            return;
        }
        if ways.len() == assoc {
            ways.remove(0);
        }
        ways.push(key);
    }

    /// Removes `key` if present; returns whether it was resident.
    pub fn invalidate(&mut self, key: u128) -> bool {
        let set = self.set_of(key);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&k| k == key) {
            ways.remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes every entry matched by `pred`; returns how many were evicted.
    pub fn invalidate_matching(&mut self, mut pred: impl FnMut(u128) -> bool) -> usize {
        let mut evicted = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|&k| !pred(k));
            evicted += before - set.len();
        }
        evicted
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_after_invalidate() {
        let mut c = SetAssocCache::new(64, 4);
        assert!(!c.lookup(42));
        c.insert(42);
        assert!(c.lookup(42));
        assert!(c.probe(42));
        assert!(c.invalidate(42));
        assert!(!c.invalidate(42));
        assert!(!c.lookup(42));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct-ish: 1 set, 2 ways.
        let mut c = SetAssocCache::new(2, 2);
        c.insert(1);
        c.insert(2);
        assert!(c.lookup(1)); // 1 becomes MRU; LRU is 2.
        c.insert(3); // Evicts 2.
        assert!(c.probe(1));
        assert!(!c.probe(2));
        assert!(c.probe(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(1);
        c.insert(1);
        assert_eq!(c.len(), 1);
        c.insert(2);
        c.insert(1); // Refresh 1; LRU is 2.
        c.insert(3); // Evicts 2.
        assert!(c.probe(1));
        assert!(!c.probe(2));
    }

    #[test]
    fn capacity_bounds_are_respected() {
        let mut c = SetAssocCache::new(1536, 12);
        assert_eq!(c.capacity(), 1536);
        for k in 0..10_000u128 {
            c.insert(k);
        }
        assert!(c.len() <= 1536);
        assert!(!c.is_empty());
        c.flush();
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_matching_filters_by_predicate() {
        let mut c = SetAssocCache::new(64, 4);
        for k in 0..32u128 {
            c.insert(k);
        }
        let evicted = c.invalidate_matching(|k| k % 2 == 0);
        assert_eq!(evicted, 16);
        assert!(!c.probe(0));
        assert!(c.probe(1));
    }
}

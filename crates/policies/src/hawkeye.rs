//! HawkEye (ASPLOS '19): MMU-overhead-driven, access-ranked promotion.
//!
//! HawkEye improves on Ingens in two ways the simulator models:
//!
//! 1. **Promotion ordering by access coverage**: instead of promoting by
//!    region address or bare utilization, HawkEye promotes *hot* regions
//!    first, ranked by sampled access frequency × population — so the
//!    pages that cause MMU overhead get TLB coverage soonest. It also
//!    promotes at a lower utilization bar than Ingens (it values hotness
//!    over bloat when MMU overhead is high).
//! 2. **Zero-page deduplication**: HawkEye scans huge pages for
//!    fully-zero base pages and dedups them, which requires *demoting* the
//!    huge page. For workloads with many in-use zero pages (the paper's
//!    Specjbb case) this breaks well-formed huge pages and adds
//!    copy-on-write churn, raising latency — reproduced here by demoting a
//!    slice of existing huge mappings each pass when `zero_heavy` is set.

use gemini_mm::{FaultCtx, FaultDecision, HugePolicy, LayerOps, PromotionKind, PromotionOp};
use gemini_sim_core::{Cycles, PAGES_PER_HUGE_PAGE};

/// HawkEye: hotness-ranked async promotion with zero-page dedup.
#[derive(Debug, Clone)]
pub struct HawkEye {
    /// Minimum present pages before a region is considered (lower than
    /// Ingens: HawkEye trusts its hotness signal).
    pub min_present: usize,
    /// Regions promoted per daemon pass.
    pub regions_per_pass: usize,
    /// Workload keeps many zero pages in use; dedup will disturb it.
    pub zero_heavy: bool,
    /// Of the huge mappings present, how many the deduplicator demotes
    /// per pass when `zero_heavy`.
    pub dedup_per_pass: usize,
    /// Alternating-pass flag so dedup runs at half the promotion rate.
    dedup_phase: bool,
}

impl HawkEye {
    /// Creates HawkEye; set `zero_heavy` for workloads like Specjbb.
    pub fn new(zero_heavy: bool) -> Self {
        Self {
            min_present: (PAGES_PER_HUGE_PAGE as f64 * 0.5) as usize,
            regions_per_pass: 2,
            zero_heavy,
            dedup_per_pass: 2,
            dedup_phase: false,
        }
    }
}

impl HugePolicy for HawkEye {
    fn name(&self) -> &'static str {
        "HawkEye"
    }

    fn fault_decision(&mut self, _ctx: &FaultCtx<'_>) -> FaultDecision {
        FaultDecision::Base
    }

    fn daemon_period(&self) -> Cycles {
        Cycles::from_millis(20.0)
    }

    fn daemon(&mut self, ops: &mut LayerOps<'_>) -> Vec<PromotionOp> {
        // Rank candidates by sampled hotness (touches) × population.
        let mut candidates: Vec<(u64, usize, u64)> = ops
            .table
            .iter_regions()
            .filter(|&(_, huge)| !huge)
            .map(|(r, _)| {
                let present = ops.table.region_population(r).present;
                let touches = ops.touches.get(r);
                (touches, present, r)
            })
            .filter(|&(_, present, _)| present >= self.min_present)
            .collect();
        candidates.sort_by(|a, b| {
            let score_a = a.0 * a.1 as u64;
            let score_b = b.0 * b.1 as u64;
            score_b.cmp(&score_a).then(a.2.cmp(&b.2))
        });
        candidates
            .into_iter()
            .take(self.regions_per_pass)
            .map(|(_, _, r)| PromotionOp::new(r, PromotionKind::PreferInPlace))
            .collect()
    }

    fn select_demotions(&mut self, ops: &mut LayerOps<'_>) -> Vec<u64> {
        if !self.zero_heavy {
            return Vec::new();
        }
        self.dedup_phase = !self.dedup_phase;
        if !self.dedup_phase {
            return Vec::new();
        }
        // Dedup the *coldest* huge mappings first (fewest sampled touches),
        // which is where zero pages accumulate.
        let mut huge: Vec<(u64, u64)> = ops
            .table
            .iter_huge()
            .map(|(r, _)| (ops.touches.get(r), r))
            .collect();
        huge.sort();
        huge.into_iter()
            .take(self.dedup_per_pass)
            .map(|(_, r)| r)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_mm::{CostModel, GuestMm};
    use gemini_sim_core::{VmId, HUGE_PAGE_SIZE};

    #[test]
    fn promotes_hottest_regions_first() {
        let mut g = GuestMm::new(VmId(1), 1 << 14, CostModel::default());
        let mut he = HawkEye::new(false);
        he.regions_per_pass = 1;
        let vma = g.mmap(2 * HUGE_PAGE_SIZE).unwrap();
        for r in 0..2u64 {
            for i in 0..300 {
                g.handle_fault(vma.start_frame() + r * 512 + i, &mut he)
                    .unwrap();
            }
        }
        // Region 1 is hotter.
        let region1 = (vma.start_frame() >> 9) + 1;
        for _ in 0..100 {
            g.record_touch(region1 << 9);
        }
        g.run_daemon(&mut he, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 1);
        assert!(g.table().huge_leaf(region1).is_some(), "hot region first");
    }

    #[test]
    fn respects_min_present_threshold() {
        let mut g = GuestMm::new(VmId(1), 4096, CostModel::default());
        let mut he = HawkEye::new(false);
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        for i in 0..100 {
            g.handle_fault(vma.start_frame() + i, &mut he).unwrap();
        }
        g.run_daemon(&mut he, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 0, "100 < 256 present");
    }

    #[test]
    fn zero_heavy_dedup_demotes_huge_pages() {
        let mut g = GuestMm::new(VmId(1), 1 << 14, CostModel::default());
        let mut he = HawkEye::new(true);
        let vma = g.mmap(4 * HUGE_PAGE_SIZE).unwrap();
        for r in 0..4u64 {
            for i in 0..512 {
                g.handle_fault(vma.start_frame() + r * 512 + i, &mut he)
                    .unwrap();
            }
        }
        // First pass: promotes up to 4 (dedup phase off on pass 1 demotes
        // after toggling — phase starts true on first call).
        g.run_daemon(&mut he, Cycles::ZERO, 1);
        let after_first = g.table().huge_mapped();
        assert!(after_first >= 2, "promotions happened: {after_first}");
        // Run several passes; dedup keeps knocking huge pages back down,
        // so the count oscillates rather than monotonically growing.
        let mut saw_demotion = false;
        let mut prev = after_first;
        for _ in 0..6 {
            g.run_daemon(&mut he, Cycles::ZERO, 1);
            let now = g.table().huge_mapped();
            if now < prev {
                saw_demotion = true;
            }
            prev = now;
        }
        assert!(saw_demotion, "zero-page dedup never demoted anything");
    }

    #[test]
    fn non_zero_heavy_never_demotes() {
        let mut g = GuestMm::new(VmId(1), 1 << 14, CostModel::default());
        let mut he = HawkEye::new(false);
        let vma = g.mmap(2 * HUGE_PAGE_SIZE).unwrap();
        for r in 0..2u64 {
            for i in 0..512 {
                g.handle_fault(vma.start_frame() + r * 512 + i, &mut he)
                    .unwrap();
            }
        }
        for _ in 0..4 {
            g.run_daemon(&mut he, Cycles::ZERO, 1);
        }
        assert_eq!(g.table().huge_mapped(), 2);
    }
}

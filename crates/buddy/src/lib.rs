//! A binary buddy page-frame allocator modeled on Linux's `page_alloc`.
//!
//! Free memory is grouped into order-*x* free lists, where an order-*x*
//! block holds 2^x contiguous, 2^x-aligned base frames. Allocation splits
//! larger blocks; freeing eagerly merges buddies back together, so a fully
//! free, naturally aligned 2^x range is always represented by a single block
//! of order ≥ x — an invariant this crate's targeted allocation relies on
//! and the property tests check.
//!
//! Beyond the classic interface, the allocator supports what Gemini's
//! mechanisms need:
//!
//! - [`BuddyAllocator::alloc_at`] — targeted allocation of a specific
//!   aligned block, used by the enhanced memory allocator (EMA) to place a
//!   page at `GVA - GuestOffset`, and by huge booking to reserve the region
//!   under a mis-aligned huge page;
//! - [`BuddyAllocator::free_runs`] — enumeration of maximal free contiguous
//!   runs, feeding the Gemini contiguity list;
//! - [`BuddyAllocator::free_area_counts`] — per-order free-block counts for
//!   the fragmentation index (FMFI) that Ingens and Algorithm 1 consume.
//!
//! All addresses here are *frame numbers* (base-page indices); callers
//! convert to/from [`gemini_sim_core::Gpa`]/[`gemini_sim_core::Hpa`].
//!
//! # Examples
//!
//! ```
//! use gemini_buddy::BuddyAllocator;
//! use gemini_sim_core::HUGE_PAGE_ORDER;
//!
//! let mut buddy = BuddyAllocator::new(4096);
//! // A 2 MiB huge page is an aligned order-9 block.
//! let huge = buddy.alloc(HUGE_PAGE_ORDER)?;
//! assert_eq!(huge % 512, 0);
//! // Targeted allocation: reserve the specific region a booking needs.
//! buddy.alloc_at(1024, HUGE_PAGE_ORDER)?;
//! buddy.free(huge, HUGE_PAGE_ORDER)?;
//! buddy.free(1024, HUGE_PAGE_ORDER)?;
//! assert_eq!(buddy.free_frames(), 4096);
//! # Ok::<(), gemini_sim_core::SimError>(())
//! ```

use gemini_sim_core::{FreeAreaCounts, SimError};

/// Largest allocatable order (inclusive): order-10 blocks are 4 MiB, the
/// Linux `MAX_ORDER` limit the paper cites when explaining why the stock
/// buddy allocator cannot hand out arbitrarily large contiguous regions.
pub const MAX_ORDER: u32 = 10;

/// Marks a frame that is not the start of a free block in
/// [`BuddyAllocator::order_of`].
const NO_BLOCK: u8 = u8::MAX;

/// A binary buddy allocator over a contiguous range of page frames.
///
/// Free blocks are tracked in one flat byte array indexed by frame:
/// `order_of[f]` is the order of the free block starting at `f`, or a
/// `NO_BLOCK` sentinel. Because a block of order `o` can only start at an
/// `o`-aligned frame, "which free block contains frame `f`" is answered by
/// probing the 11 aligned predecessors of `f` — no tree walk — and the
/// buddy-merge step in [`BuddyAllocator::free`] is a single array read.
/// Address-ordered allocation keeps a per-order minimum-start hint that
/// insertions lower and scans advance, so finding the lowest free block of
/// an order amortizes to a moving cursor.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    /// Per-frame free-block-start marker (see type docs).
    order_of: Vec<u8>,
    /// Number of free blocks per order `0..=MAX_ORDER`.
    counts: Vec<u64>,
    /// Lower bound on the lowest start of a free block per order; never
    /// above the true minimum (insertions lower it, removals leave it).
    min_start: Vec<u64>,
    /// Total frames managed.
    total_frames: u64,
    /// Currently free frames.
    free_frames: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing frames `[0, num_frames)`, all free.
    pub fn new(num_frames: u64) -> Self {
        let mut alloc = Self {
            order_of: vec![NO_BLOCK; num_frames as usize],
            counts: vec![0; (MAX_ORDER + 1) as usize],
            min_start: vec![0; (MAX_ORDER + 1) as usize],
            total_frames: num_frames,
            free_frames: 0,
        };
        // Carve the range greedily into maximal aligned blocks.
        let mut frame = 0u64;
        while frame < num_frames {
            let align_order = if frame == 0 {
                MAX_ORDER
            } else {
                frame.trailing_zeros().min(MAX_ORDER)
            };
            let mut order = align_order;
            while frame + (1 << order) > num_frames {
                order -= 1;
            }
            alloc.insert_free(frame, order);
            frame += 1 << order;
        }
        alloc.free_frames = num_frames;
        alloc
    }

    /// Total number of frames managed.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Number of currently allocated frames.
    pub fn used_frames(&self) -> u64 {
        self.total_frames - self.free_frames
    }

    /// Allocates a block of `order`, returning its start frame.
    ///
    /// Splits the smallest sufficient block at the lowest address, like
    /// Linux's allocator under the "address-ordered" heuristic.
    pub fn alloc(&mut self, order: u32) -> Result<u64, SimError> {
        if order > MAX_ORDER {
            return Err(SimError::OutOfMemory { order });
        }
        let mut found = None;
        for o in order..=MAX_ORDER {
            if self.counts[o as usize] > 0 {
                found = Some((self.lowest_block_of_order(o), o));
                break;
            }
        }
        let (start, mut o) = found.ok_or(SimError::OutOfMemory { order })?;
        self.remove_free(start, o);
        // Split down, freeing the upper halves.
        while o > order {
            o -= 1;
            self.insert_free(start + (1 << o), o);
        }
        self.free_frames -= 1 << order;
        Ok(start)
    }

    /// Allocates the specific block `[start, start + 2^order)`.
    ///
    /// Fails with [`SimError::Unaligned`] if `start` is not order-aligned,
    /// [`SimError::OutOfRange`] if the block exceeds the managed range, and
    /// [`SimError::RangeBusy`] if any frame in the block is allocated.
    pub fn alloc_at(&mut self, start: u64, order: u32) -> Result<(), SimError> {
        if order > MAX_ORDER {
            return Err(SimError::OutOfRange);
        }
        if start & ((1 << order) - 1) != 0 {
            return Err(SimError::Unaligned);
        }
        if start + (1 << order) > self.total_frames {
            return Err(SimError::OutOfRange);
        }
        // Eager merging guarantees a fully free aligned range lives inside
        // a single free block of order >= `order`.
        let (block_start, block_order) = self
            .containing_free_block(start)
            .ok_or(SimError::RangeBusy)?;
        if block_start + (1 << block_order) < start + (1 << order) {
            return Err(SimError::RangeBusy);
        }
        self.remove_free(block_start, block_order);
        // Descend toward the target, freeing the sibling half each split.
        let (mut cur_start, mut cur_order) = (block_start, block_order);
        while cur_order > order {
            cur_order -= 1;
            let half = 1u64 << cur_order;
            if start >= cur_start + half {
                self.insert_free(cur_start, cur_order);
                cur_start += half;
            } else {
                self.insert_free(cur_start + half, cur_order);
            }
        }
        debug_assert_eq!(cur_start, start);
        self.free_frames -= 1 << order;
        Ok(())
    }

    /// Frees the block `[start, start + 2^order)`, merging buddies eagerly.
    ///
    /// Fails with [`SimError::BadFree`] when any frame of the block is
    /// already free (double free) or out of range.
    pub fn free(&mut self, start: u64, order: u32) -> Result<(), SimError> {
        if order > MAX_ORDER
            || start & ((1 << order) - 1) != 0
            || start + (1 << order) > self.total_frames
        {
            return Err(SimError::BadFree(gemini_sim_core::Hpa::from_frame(start)));
        }
        // Detect overlap with an existing free block.
        if self.range_overlaps_free(start, 1 << order) {
            return Err(SimError::BadFree(gemini_sim_core::Hpa::from_frame(start)));
        }
        let (mut cur, mut o) = (start, order);
        while o < MAX_ORDER {
            let buddy = cur ^ (1 << o);
            if buddy + (1 << o) <= self.total_frames && self.order_of[buddy as usize] == o as u8 {
                self.order_of[buddy as usize] = NO_BLOCK;
                self.counts[o as usize] -= 1;
                cur = cur.min(buddy);
                o += 1;
            } else {
                break;
            }
        }
        self.insert_free(cur, o);
        self.free_frames += 1 << order;
        Ok(())
    }

    /// Returns true when every frame of `[start, start + len)` is free.
    pub fn is_range_free(&self, start: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        if start + len > self.total_frames {
            return false;
        }
        let mut cursor = start;
        // Walk free blocks covering the range.
        while cursor < start + len {
            match self.containing_free_block(cursor) {
                Some((bs, bo)) => cursor = bs + (1 << bo),
                None => return false,
            }
        }
        true
    }

    /// Returns true when frame `frame` is free.
    pub fn is_frame_free(&self, frame: u64) -> bool {
        self.containing_free_block(frame).is_some()
    }

    /// Per-order free block counts, for FMFI computation.
    pub fn free_area_counts(&self) -> FreeAreaCounts {
        FreeAreaCounts::new(&self.counts)
    }

    /// Current fragmentation index at `order` (see [`gemini_sim_core::fmfi`]).
    pub fn fragmentation_index(&self, order: u32) -> f64 {
        gemini_sim_core::fragmentation_index(&self.free_area_counts(), order)
    }

    /// Enumerates maximal runs of free frames as `(start, len)` pairs in
    /// address order, merging adjacent free blocks that are not buddies.
    ///
    /// This is the raw material of the Gemini contiguity list.
    pub fn free_runs(&self) -> Vec<(u64, u64)> {
        self.free_runs_iter().collect()
    }

    /// Lazy form of [`BuddyAllocator::free_runs`]: yields the same maximal
    /// runs in address order without materialising a `Vec`, so searches
    /// that stop at the first fit (next-fit placement) touch only a prefix
    /// of the free list.
    pub fn free_runs_iter(&self) -> FreeRuns<'_> {
        FreeRuns {
            order_of: &self.order_of,
            pos: 0,
        }
    }

    /// Like [`BuddyAllocator::free_runs_iter`], but yields only the maximal
    /// runs whose *start* is `>= frame` — exactly the suffix a next-fit
    /// cursor scan wants. A run that merely straddles `frame` (it began
    /// below it) is excluded, matching
    /// `free_runs().filter(|r| r.0 >= frame)`.
    pub fn free_runs_from(&self, frame: u64) -> FreeRuns<'_> {
        let mut pos = frame;
        // If the frame just below the cursor is free, its run extends at
        // least to the cursor and started before it; skip that whole run
        // (which may chain on through blocks at or after the cursor).
        if frame > 0 && frame <= self.total_frames {
            if let Some((start, o)) = self.containing_free_block(frame - 1) {
                let mut end = start + (1u64 << o);
                while end < self.total_frames && self.order_of[end as usize] != NO_BLOCK {
                    end += 1u64 << self.order_of[end as usize];
                }
                pos = end;
            }
        }
        FreeRuns {
            order_of: &self.order_of,
            pos,
        }
    }

    /// Length of the largest maximal free run, in frames.
    pub fn largest_free_run(&self) -> u64 {
        self.free_runs_iter().map(|(_, l)| l).max().unwrap_or(0)
    }

    /// True when any free block of order `>= order` exists — an O(orders)
    /// check with no allocation. By eager merging this is equivalent to
    /// "some naturally aligned, fully free `2^order` range exists", which
    /// lets callers reject whole-region searches before walking runs.
    pub fn has_suitable_block(&self, order: u32) -> bool {
        self.counts[order.min(MAX_ORDER) as usize..]
            .iter()
            .any(|&c| c > 0)
    }

    /// Count of free blocks of exactly `order`.
    pub fn free_blocks_of_order(&self, order: u32) -> usize {
        self.counts
            .get(order as usize)
            .map(|&c| c as usize)
            .unwrap_or(0)
    }

    /// The free block containing `frame`, if any, as `(start, order)`.
    ///
    /// A block of order `o` can only start at the `2^o`-aligned frame at or
    /// below `frame`, so eleven probes cover every possibility.
    fn containing_free_block(&self, frame: u64) -> Option<(u64, u32)> {
        if frame >= self.total_frames {
            return None;
        }
        for o in 0..=MAX_ORDER {
            let start = frame & !((1u64 << o) - 1);
            if self.order_of[start as usize] == o as u8 {
                return Some((start, o));
            }
        }
        None
    }

    /// The lowest start frame among free blocks of exactly `order`.
    ///
    /// Callers must ensure `counts[order] > 0`. Starts the scan at the
    /// order's min-start hint and advances it past exhausted ground.
    fn lowest_block_of_order(&mut self, order: u32) -> u64 {
        debug_assert!(self.counts[order as usize] > 0);
        let step = 1u64 << order;
        let mut s = self.min_start[order as usize];
        while self.order_of[s as usize] != order as u8 {
            s += step;
        }
        self.min_start[order as usize] = s;
        s
    }

    /// True when `[start, start+len)` intersects any free block.
    fn range_overlaps_free(&self, start: u64, len: u64) -> bool {
        if self.containing_free_block(start).is_some() {
            return true;
        }
        // A block starting exactly at `start` was already caught above, so
        // only longer ranges need the interior scan. `len` is at most
        // `2^MAX_ORDER`, bounding the scan.
        self.order_of[start as usize + 1..(start + len) as usize]
            .iter()
            .any(|&o| o != NO_BLOCK)
    }

    fn insert_free(&mut self, start: u64, order: u32) {
        self.order_of[start as usize] = order as u8;
        self.counts[order as usize] += 1;
        if start < self.min_start[order as usize] {
            self.min_start[order as usize] = start;
        }
    }

    fn remove_free(&mut self, start: u64, order: u32) {
        debug_assert_eq!(self.order_of[start as usize], order as u8);
        self.order_of[start as usize] = NO_BLOCK;
        self.counts[order as usize] -= 1;
    }

    /// Verifies internal invariants; used by tests.
    ///
    /// Checks that free lists and the block index agree, blocks are aligned
    /// and disjoint, the free-frame count matches, and no two free buddies
    /// coexist unmerged.
    pub fn check_invariants(&self) -> Result<(), SimError> {
        let mut counted = 0u64;
        let mut prev_end = 0u64;
        let mut per_order = vec![0u64; (MAX_ORDER + 1) as usize];
        for (f, &marker) in self.order_of.iter().enumerate() {
            if marker == NO_BLOCK {
                continue;
            }
            let (start, order) = (f as u64, marker as u32);
            if order > MAX_ORDER {
                return Err(SimError::Invariant("free block order out of range"));
            }
            per_order[order as usize] += 1;
            if start & ((1 << order) - 1) != 0 {
                return Err(SimError::Invariant("free block misaligned"));
            }
            if start < prev_end {
                return Err(SimError::Invariant("free blocks overlap"));
            }
            prev_end = start + (1 << order);
            if prev_end > self.total_frames {
                return Err(SimError::Invariant("free block out of range"));
            }
            counted += 1 << order;
            if order < MAX_ORDER {
                let buddy = start ^ (1u64 << order);
                if buddy < self.total_frames && self.order_of[buddy as usize] == order as u8 {
                    return Err(SimError::Invariant("unmerged free buddies"));
                }
            }
        }
        if per_order != self.counts {
            return Err(SimError::Invariant("per-order block counts out of sync"));
        }
        for o in 0..=MAX_ORDER as usize {
            if self.counts[o] > 0 {
                let lowest = self
                    .order_of
                    .iter()
                    .position(|&m| m == o as u8)
                    .expect("count > 0 implies a block exists") as u64;
                if self.min_start[o] > lowest {
                    return Err(SimError::Invariant("min-start hint above true minimum"));
                }
            }
        }
        let listed: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(o, &c)| c << o as u64)
            .sum();
        if counted != self.free_frames || listed != self.free_frames {
            return Err(SimError::Invariant("free frame accounting mismatch"));
        }
        Ok(())
    }
}

/// Lazy iterator over maximal free runs; see
/// [`BuddyAllocator::free_runs_iter`].
///
/// `pos` always sits on an allocated frame, a run start, or the end of the
/// range — never strictly inside a free block — so scanning forward for
/// the next block-start marker finds the next run's first block.
#[derive(Debug)]
pub struct FreeRuns<'a> {
    order_of: &'a [u8],
    pos: u64,
}

impl Iterator for FreeRuns<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        let n = self.order_of.len() as u64;
        let mut start = self.pos;
        // Skip allocated ground to the next run, a word at a time where
        // aligned (NO_BLOCK is 0xFF, so a fully-allocated word is all-ones).
        while start < n {
            if start % 8 == 0 && start + 8 <= n {
                let bytes: [u8; 8] = self.order_of[start as usize..start as usize + 8]
                    .try_into()
                    .unwrap();
                if u64::from_ne_bytes(bytes) == u64::MAX {
                    start += 8;
                    continue;
                }
            }
            if self.order_of[start as usize] != NO_BLOCK {
                break;
            }
            start += 1;
        }
        if start >= n {
            self.pos = n;
            return None;
        }
        // Accumulate the chain of abutting free blocks.
        let mut end = start;
        while end < n && self.order_of[end as usize] != NO_BLOCK {
            end += 1u64 << self.order_of[end as usize];
        }
        self.pos = end;
        Some((start, end - start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_sim_core::HUGE_PAGE_ORDER;

    #[test]
    fn new_allocator_is_fully_free_and_coalesced() {
        let a = BuddyAllocator::new(4096);
        assert_eq!(a.free_frames(), 4096);
        assert_eq!(a.used_frames(), 0);
        assert_eq!(a.free_blocks_of_order(MAX_ORDER), 4);
        a.check_invariants().unwrap();
        assert_eq!(a.free_runs(), vec![(0, 4096)]);
        assert_eq!(a.largest_free_run(), 4096);
    }

    #[test]
    fn odd_sized_memory_is_carved_correctly() {
        // 1000 frames: not a power of two.
        let a = BuddyAllocator::new(1000);
        assert_eq!(a.free_frames(), 1000);
        a.check_invariants().unwrap();
        assert_eq!(a.free_runs(), vec![(0, 1000)]);
    }

    #[test]
    fn alloc_splits_and_free_merges() {
        let mut a = BuddyAllocator::new(1024);
        let f = a.alloc(0).unwrap();
        assert_eq!(f, 0);
        assert_eq!(a.free_frames(), 1023);
        a.check_invariants().unwrap();
        a.free(f, 0).unwrap();
        assert_eq!(a.free_frames(), 1024);
        // Fully merged back into one max-order block.
        assert_eq!(a.free_blocks_of_order(MAX_ORDER), 1);
        a.check_invariants().unwrap();
    }

    #[test]
    fn alloc_prefers_low_addresses() {
        let mut a = BuddyAllocator::new(2048);
        let f1 = a.alloc(0).unwrap();
        let f2 = a.alloc(0).unwrap();
        assert!(f1 < f2);
        assert_eq!(f2, 1);
    }

    #[test]
    fn huge_order_allocation() {
        let mut a = BuddyAllocator::new(2048);
        let h = a.alloc(HUGE_PAGE_ORDER).unwrap();
        assert_eq!(h % 512, 0);
        assert_eq!(a.free_frames(), 2048 - 512);
        a.free(h, HUGE_PAGE_ORDER).unwrap();
        assert_eq!(a.free_frames(), 2048);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut a = BuddyAllocator::new(4);
        assert!(a.alloc(9).is_err());
        for _ in 0..4 {
            a.alloc(0).unwrap();
        }
        assert_eq!(a.alloc(0), Err(SimError::OutOfMemory { order: 0 }));
    }

    #[test]
    fn alloc_at_carves_the_exact_block() {
        let mut a = BuddyAllocator::new(4096);
        a.alloc_at(512, HUGE_PAGE_ORDER).unwrap();
        assert!(!a.is_frame_free(512));
        assert!(!a.is_frame_free(1023));
        assert!(a.is_frame_free(511));
        assert!(a.is_frame_free(1024));
        assert_eq!(a.free_frames(), 4096 - 512);
        a.check_invariants().unwrap();
        a.free(512, HUGE_PAGE_ORDER).unwrap();
        a.check_invariants().unwrap();
        assert_eq!(a.free_runs(), vec![(0, 4096)]);
    }

    #[test]
    fn alloc_at_rejects_busy_and_misaligned() {
        let mut a = BuddyAllocator::new(1024);
        a.alloc_at(0, 9).unwrap();
        assert_eq!(a.alloc_at(0, 9), Err(SimError::RangeBusy));
        assert_eq!(a.alloc_at(0, 0), Err(SimError::RangeBusy));
        assert_eq!(a.alloc_at(3, 9), Err(SimError::Unaligned));
        assert_eq!(a.alloc_at(1024, 0), Err(SimError::OutOfRange));
        // Partially busy huge range.
        assert_eq!(a.alloc_at(512, 9), Ok(()));
        assert_eq!(a.alloc_at(512, 9), Err(SimError::RangeBusy));
    }

    #[test]
    fn double_free_detected() {
        let mut a = BuddyAllocator::new(64);
        let f = a.alloc(2).unwrap();
        a.free(f, 2).unwrap();
        assert!(matches!(a.free(f, 2), Err(SimError::BadFree(_))));
        // Freeing a sub-block of a free block is also a bad free.
        assert!(matches!(a.free(f, 0), Err(SimError::BadFree(_))));
    }

    #[test]
    fn partial_free_of_targeted_block() {
        // EMA books an order-9 block, allocates pages inside it, then the
        // booking times out and the *unused* pages return one by one.
        let mut a = BuddyAllocator::new(1024);
        a.alloc_at(0, 9).unwrap();
        // Return frames 10..512 individually.
        for f in 10..512 {
            a.free(f, 0).unwrap();
        }
        assert_eq!(a.free_frames(), 1024 - 10);
        a.check_invariants().unwrap();
        // Frames 0..10 are still allocated.
        assert!(!a.is_frame_free(0));
        assert!(!a.is_frame_free(9));
        assert!(a.is_frame_free(10));
        // Now free the head; everything must merge back.
        for f in 0..10 {
            a.free(f, 0).unwrap();
        }
        assert_eq!(a.free_runs(), vec![(0, 1024)]);
        a.check_invariants().unwrap();
    }

    #[test]
    fn is_range_free_spans_blocks() {
        let mut a = BuddyAllocator::new(2048);
        assert!(a.is_range_free(0, 2048));
        assert!(a.is_range_free(0, 0));
        assert!(!a.is_range_free(0, 4096));
        a.alloc_at(100, 0).unwrap();
        assert!(!a.is_range_free(0, 512));
        assert!(a.is_range_free(0, 100));
        assert!(a.is_range_free(101, 512));
    }

    #[test]
    fn fragmentation_index_reflects_layout() {
        let mut a = BuddyAllocator::new(1024);
        assert_eq!(a.fragmentation_index(9), 0.0);
        // Allocate everything, then free every other frame: classic
        // checkerboard fragmentation.
        let mut frames = Vec::new();
        while let Ok(f) = a.alloc(0) {
            frames.push(f);
        }
        for &f in frames.iter().step_by(2) {
            a.free(f, 0).unwrap();
        }
        let idx = a.fragmentation_index(9);
        assert!(idx > 0.9, "checkerboard should be highly fragmented: {idx}");
        a.check_invariants().unwrap();
    }

    #[test]
    fn free_runs_merge_non_buddy_neighbors() {
        let mut a = BuddyAllocator::new(1024);
        // Allocate frames 0 and 3; frees leave runs [1,2] and [4..1024)
        // where 1,2 are adjacent but not buddies (1 is odd).
        a.alloc_at(0, 0).unwrap();
        a.alloc_at(3, 0).unwrap();
        let runs = a.free_runs();
        assert_eq!(runs, vec![(1, 2), (4, 1020)]);
        assert_eq!(a.largest_free_run(), 1020);
    }

    /// Reference semantics `free_runs_from` must reproduce: full
    /// enumeration filtered on run start.
    fn runs_from_reference(a: &BuddyAllocator, frame: u64) -> Vec<(u64, u64)> {
        a.free_runs().into_iter().filter(|r| r.0 >= frame).collect()
    }

    #[test]
    fn free_runs_iter_matches_eager_enumeration() {
        let mut a = BuddyAllocator::new(1024);
        for f in [0, 3, 100, 513, 700] {
            a.alloc_at(f, 0).unwrap();
        }
        assert_eq!(a.free_runs_iter().collect::<Vec<_>>(), a.free_runs());
    }

    #[test]
    fn free_runs_from_skips_straddling_run() {
        let mut a = BuddyAllocator::new(2048);
        a.alloc_at(100, 0).unwrap();
        a.alloc_at(1000, 0).unwrap();
        // Runs: (0,100), (101,899), (1001,1047).
        for cursor in [0, 1, 100, 101, 102, 500, 999, 1000, 1001, 1002, 2047, 2048] {
            assert_eq!(
                a.free_runs_from(cursor).collect::<Vec<_>>(),
                runs_from_reference(&a, cursor),
                "cursor {cursor}"
            );
        }
    }

    #[test]
    fn free_runs_from_with_abutting_block_boundary() {
        // Craft a run whose interior contains a block boundary exactly at
        // the cursor: blocks (1,len 1) and (2,len 2) chain into run (1,3);
        // a cursor of 2 sits on the second block's start and must still
        // skip the whole run.
        let mut a = BuddyAllocator::new(64);
        a.alloc_at(0, 0).unwrap();
        a.alloc_at(4, 0).unwrap();
        assert_eq!(a.free_runs(), vec![(1, 3), (5, 59)]);
        for cursor in 0..=8 {
            assert_eq!(
                a.free_runs_from(cursor).collect::<Vec<_>>(),
                runs_from_reference(&a, cursor),
                "cursor {cursor}"
            );
        }
    }

    #[test]
    fn free_runs_from_on_empty_allocator() {
        let mut a = BuddyAllocator::new(8);
        for _ in 0..8 {
            a.alloc(0).unwrap();
        }
        assert_eq!(a.free_runs_from(0).next(), None);
        assert_eq!(a.free_runs_iter().next(), None);
    }
}

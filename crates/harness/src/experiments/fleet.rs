//! The fleet experiment family — long-horizon VM arrival/departure
//! churn (ROADMAP open item 1).
//!
//! Every other experiment runs against a pre-fragmented snapshot; this
//! one lets fragmentation *emerge*: a deterministic
//! [`FleetPlan`] draws ≥100 VM lifecycles
//! (demo scale) and first-fit packs them onto a small cluster of
//! simulated hosts, each host one executor cell. The per-host driver
//! ([`Machine::run_fleet`]) admits queued VMs under a residency cap,
//! interleaves residents by virtual time, and destroys each VM through
//! the leak-checked `remove_vm` path when its lifetime ends. A
//! sampling-only recorder captures the long-horizon FMFI /
//! aligned-rate time series per host.

use crate::exec::run_cells;
use crate::report::Table;
use crate::scale::Scale;
use gemini_obs::{SamplePoint, TraceConfig};
use gemini_sim_core::{derive_seed, Cycles, Result};
use gemini_vm_sim::{FleetArrival, FleetOutcome, Machine, SystemKind};
use gemini_workloads::{FleetPlan, FleetSpec, HostPlan, WorkloadGen};

/// Hosts the fleet is packed onto (one executor cell each, per system).
pub const HOSTS: u32 = 4;

/// Systems the fleet is run under: the kernel default and the paper's
/// system. The full registry would multiply a long-horizon grid for
/// little contrast — lifecycle effects separate along this axis.
pub const SYSTEMS: [SystemKind; 2] = [SystemKind::Thp, SystemKind::Gemini];

/// The fleet sizing for `scale`: ≥100 VM lifecycles at demo scale,
/// arrivals fast enough relative to lifetimes that the residency cap
/// binds and hosts queue admissions.
pub fn fleet_spec(scale: &Scale) -> FleetSpec {
    let mean_ops = (scale.ops / 32).max(40);
    FleetSpec {
        vm_count: ((scale.ops / 64).max(24)) as u32,
        hosts: HOSTS,
        host_frames: scale.host_frames,
        resident_frac: 0.35,
        mean_ops,
        arrival_gap: (mean_ops / (4 * HOSTS as u64)).max(2),
        ws_factor: scale.ws_factor,
    }
}

/// One host's completed fleet run.
#[derive(Debug)]
pub struct HostRun {
    /// System label the host ran under.
    pub system: &'static str,
    /// Host ordinal inside its system's fleet.
    pub host: u32,
    /// VMs planned onto this host (admitted over the whole horizon).
    pub planned_vms: usize,
    /// The driver's outcome: per-VM lifecycles, churn count, end state.
    pub outcome: FleetOutcome,
    /// Long-horizon FMFI / aligned-rate time series (sampling-only
    /// recorder; one point per 0.25 ms of simulated time).
    pub samples: Vec<SamplePoint>,
}

/// Results of the whole fleet grid, host-major within each system.
#[derive(Debug)]
pub struct FleetResults {
    /// One entry per (system, host) cell.
    pub runs: Vec<HostRun>,
}

/// Runs the fleet grid: for each system, one deterministic plan split
/// over [`HOSTS`] executor cells.
pub fn run(scale: &Scale) -> Result<FleetResults> {
    let spec = fleet_spec(scale);
    let scale = *scale;
    let mut cells = Vec::new();
    for (si, &system) in SYSTEMS.iter().enumerate() {
        let plan_seed = scale.seed_for("fleet", si as u64);
        let plan = FleetPlan::generate(&spec, plan_seed);
        let cap = plan.resident_cap_frames;
        for host_plan in plan.hosts {
            let seed = derive_seed(plan_seed, "fleet-host", host_plan.host as u64);
            cells.push(move || run_host_cell(system, &scale, host_plan, cap, seed));
        }
    }
    let runs = run_cells(scale.jobs, cells)
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
    Ok(FleetResults { runs })
}

/// Runs one host of `system`'s fleet plan in isolation (fast-forward
/// parity checks and CI smoke cells). The host sees exactly the
/// arrival sequence, cap and seed it would get inside [`run`].
pub fn run_host(system: SystemKind, scale: &Scale, host: u32) -> Result<HostRun> {
    let spec = fleet_spec(scale);
    let si = SYSTEMS.iter().position(|&s| s == system).unwrap_or(0) as u64;
    let plan_seed = scale.seed_for("fleet", si);
    let plan = FleetPlan::generate(&spec, plan_seed);
    let cap = plan.resident_cap_frames;
    let host_plan = plan.hosts.into_iter().find(|h| h.host == host).ok_or(
        gemini_sim_core::SimError::Invariant("fleet host out of range"),
    )?;
    let seed = derive_seed(plan_seed, "fleet-host", host as u64);
    run_host_cell(system, scale, host_plan, cap, seed)
}

/// Runs one host's arrival sequence to completion and collects its
/// outcome plus the sampled time series.
fn run_host_cell(
    system: SystemKind,
    scale: &Scale,
    host_plan: HostPlan,
    resident_cap_frames: u64,
    seed: u64,
) -> Result<HostRun> {
    // Moderately fragmented hosts, clean guests: the multi-tenant
    // cloud the paper models keeps *host* memory fragmented around the
    // churning VMs (tenant-churn daemon active), while each arriving
    // VM boots a fresh guest — its guest-side fragmentation is what
    // the lifecycle produces, not an injected precondition. A
    // clean-slate fleet this small never pressures the allocator and
    // samples a flat-zero FMFI series; the full `frag_target` (0.9)
    // instead starves both systems of order-9 blocks for these short
    // lifetimes. Two-thirds of the target leaves the allocator
    // genuinely contended but recoverable.
    let mut cfg = scale.machine_config(false, false, seed);
    cfg.fragment_host = Some(scale.frag_target * 2.0 / 3.0);
    // Sampling-only tracing: no event ring, just the time series the
    // fleet exists to produce. Samples are taken at virtual-time
    // boundaries, so the series is byte-identical at any --jobs. The
    // interval is denser than `TraceConfig::all()`'s 2 ms because a
    // quick-scale fleet horizon is itself only a few milliseconds.
    cfg.trace = TraceConfig {
        mask: gemini_obs::cat::NONE,
        ring_capacity: 0,
        sample_interval: Some(Cycles::from_millis(0.25)),
    };
    let mut m = Machine::new(system, cfg);
    let planned_vms = host_plan.vms.len();
    let arrivals: Vec<FleetArrival<WorkloadGen>> = host_plan
        .vms
        .iter()
        .map(|v| FleetArrival {
            index: v.index,
            footprint_frames: v.footprint_frames,
            gen: WorkloadGen::new(v.spec.clone(), v.ops, v.seed),
        })
        .collect();
    let outcome = m.run_fleet(arrivals, resident_cap_frames)?;
    let samples = m.recorder().samples();
    Ok(HostRun {
        system: system.label(),
        host: host_plan.host,
        planned_vms,
        outcome,
        samples,
    })
}

impl FleetResults {
    /// Total VM lifecycles completed across every host and system.
    pub fn total_vms(&self) -> usize {
        self.runs.iter().map(|r| r.outcome.vms.len()).sum()
    }

    /// Total churn events (arrivals + departures) across the grid.
    pub fn total_churn_events(&self) -> u64 {
        self.runs.iter().map(|r| r.outcome.churn_events).sum()
    }

    /// Mean end-state host FMFI across one system's hosts.
    pub fn end_fmfi(&self, system: &str) -> f64 {
        let hosts: Vec<&HostRun> = self.runs.iter().filter(|r| r.system == system).collect();
        if hosts.is_empty() {
            return 0.0;
        }
        hosts.iter().map(|r| r.outcome.end_host_fmfi).sum::<f64>() / hosts.len() as f64
    }

    /// Renders the per-host fleet table plus a per-system summary of
    /// the sampled long-horizon series.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fleet: VM lifecycle churn per host",
            &[
                "system", "host", "VMs", "churn", "peak res", "end FMFI", "aligned", "samples",
            ],
        );
        for r in &self.runs {
            t.row(vec![
                r.system.to_string(),
                r.host.to_string(),
                r.outcome.vms.len().to_string(),
                r.outcome.churn_events.to_string(),
                r.outcome.peak_resident.to_string(),
                format!("{:.3}", r.outcome.end_host_fmfi),
                format!("{:.3}", r.outcome.mean_aligned_rate()),
                r.samples.len().to_string(),
            ]);
        }
        let mut out = t.render();
        for &system in &SYSTEMS {
            let label = system.label();
            let (first, last) = self.fmfi_span(label);
            out.push_str(&format!(
                "{label}: {} lifecycles, host FMFI {first:.3} -> {last:.3} over the horizon\n",
                self.runs
                    .iter()
                    .filter(|r| r.system == label)
                    .map(|r| r.outcome.vms.len())
                    .sum::<usize>(),
            ));
        }
        out
    }

    /// (earliest, latest) sampled host FMFI across one system's hosts;
    /// zeros when sampling produced no points.
    fn fmfi_span(&self, system: &str) -> (f64, f64) {
        let mut first = None;
        let mut last = None;
        for r in self.runs.iter().filter(|r| r.system == system) {
            if let Some(s) = r.samples.first() {
                let f = first.get_or_insert((s.cycle, s.host_fmfi));
                if s.cycle < f.0 {
                    *f = (s.cycle, s.host_fmfi);
                }
            }
            if let Some(s) = r.samples.last() {
                let l = last.get_or_insert((s.cycle, s.host_fmfi));
                if s.cycle > l.0 {
                    *l = (s.cycle, s.host_fmfi);
                }
            }
        }
        (first.map_or(0.0, |(_, f)| f), last.map_or(0.0, |(_, f)| f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_grid_runs_small_and_renders() {
        let scale = Scale {
            ops: 1_600,
            ..Scale::quick()
        };
        let res = run(&scale).unwrap();
        assert_eq!(res.runs.len(), (SYSTEMS.len() as u32 * HOSTS) as usize);
        let spec = fleet_spec(&scale);
        assert_eq!(
            res.total_vms(),
            spec.vm_count as usize * SYSTEMS.len(),
            "every planned VM completes its lifecycle"
        );
        assert_eq!(
            res.total_churn_events(),
            2 * spec.vm_count as u64 * SYSTEMS.len() as u64
        );
        let rendered = res.render();
        assert!(rendered.contains("Fleet"));
        assert!(rendered.contains("GEMINI") || rendered.contains("Gemini"));
        // The sampler produced a real long-horizon series.
        assert!(res.runs.iter().any(|r| r.samples.len() > 4));
    }
}

//! Shared run helpers used by every experiment.

use crate::scale::Scale;
use gemini_obs::{Profiler, Recorder, TraceConfig};
use gemini_sim_core::{derive_seed, Result};
use gemini_vm_sim::{Machine, RunResult, SystemKind};
use gemini_workloads::{WorkloadGen, WorkloadSpec};

/// Runs `spec` under `system` on a fresh (clean-slate) machine.
pub fn run_workload_on(
    system: SystemKind,
    spec: &WorkloadSpec,
    scale: &Scale,
    fragmented: bool,
    seed: u64,
) -> Result<RunResult> {
    let cfg = scale.machine_config(fragmented, spec.zero_heavy, seed);
    let mut machine = Machine::new(system, cfg);
    let vm = machine.add_vm();
    let gen = WorkloadGen::new(spec.scaled(scale.ws_factor), scale.ops, seed);
    machine.run(vm, gen)
}

/// Like [`run_workload_on`], but with event tracing, metrics and
/// time-series sampling enabled per `trace`; returns the machine's
/// recorder alongside the result.
pub fn run_workload_traced(
    system: SystemKind,
    spec: &WorkloadSpec,
    scale: &Scale,
    fragmented: bool,
    seed: u64,
    trace: &TraceConfig,
) -> Result<(RunResult, Recorder)> {
    let mut cfg = scale.machine_config(fragmented, spec.zero_heavy, seed);
    cfg.trace = trace.clone();
    let mut machine = Machine::new(system, cfg);
    let vm = machine.add_vm();
    let gen = WorkloadGen::new(spec.scaled(scale.ws_factor), scale.ops, seed);
    let result = machine.run(vm, gen)?;
    let recorder = machine.recorder().clone();
    Ok((result, recorder))
}

/// Like [`run_workload_on`], but with phase-level span profiling: the
/// whole cell (machine build, workload generation, event processing,
/// daemons) records spans into `prof`. The simulated result is
/// identical to the unprofiled run — the profiler only observes
/// wall-clock time, it never touches simulated state.
pub fn run_workload_profiled(
    system: SystemKind,
    spec: &WorkloadSpec,
    scale: &Scale,
    fragmented: bool,
    seed: u64,
    prof: Profiler,
) -> Result<RunResult> {
    let mut cfg = scale.machine_config(fragmented, spec.zero_heavy, seed);
    cfg.profiler = prof;
    let mut machine = Machine::new(system, cfg);
    let vm = machine.add_vm();
    let gen = WorkloadGen::new(spec.scaled(scale.ws_factor), scale.ops, seed);
    machine.run(vm, gen)
}

/// Runs `spec` under `system` in a *reused* VM: a large-working-set SVM
/// job runs first, exits, and the target workload follows in the same VM
/// (paper §6.3).
pub fn run_workload_reused(
    system: SystemKind,
    spec: &WorkloadSpec,
    scale: &Scale,
    seed: u64,
) -> Result<RunResult> {
    let cfg = scale.machine_config(false, spec.zero_heavy, seed);
    let mut machine = Machine::new(system, cfg);
    let vm = machine.add_vm();
    let svm = gemini_workloads::spec_by_name("SVM")
        .expect("SVM is in the catalog")
        .scaled(scale.ws_factor);
    // The predecessor gets its own derived stream; XOR-ing a small
    // constant onto the seed would correlate it with the main run.
    machine.run(
        vm,
        WorkloadGen::new(svm, scale.ops / 2, derive_seed(seed, "reused-pred", 0)),
    )?;
    machine.clear_workload(vm)?;
    let gen = WorkloadGen::new(spec.scaled(scale.ws_factor), scale.ops, seed);
    machine.run(vm, gen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_slate_runner_completes() {
        let scale = Scale {
            ops: 400,
            ..Scale::quick()
        };
        let spec = gemini_workloads::spec_by_name("Silo").expect("Silo workload registered");
        let r = run_workload_on(SystemKind::Thp, &spec, &scale, false, 1).unwrap();
        assert_eq!(r.ops, 400);
        assert_eq!(r.system, "THP");
    }

    #[test]
    fn reused_runner_runs_predecessor_first() {
        let scale = Scale {
            ops: 400,
            ..Scale::quick()
        };
        let spec = gemini_workloads::spec_by_name("Xapian").expect("Xapian workload registered");
        let r = run_workload_reused(SystemKind::Ingens, &spec, &scale, 2).unwrap();
        assert_eq!(r.ops, 400);
        assert_eq!(r.workload, "Xapian");
        // vtime is the run's own delta, not the VM's cumulative clock.
        let cold = run_workload_on(SystemKind::Ingens, &spec, &scale, false, 2).unwrap();
        // Saturating: `cold.vtime * 4` would wrap for large cycle counts.
        assert!(
            r.vtime.0 < cold.vtime.0.saturating_mul(4),
            "reused vtime is per-run"
        );
    }
}

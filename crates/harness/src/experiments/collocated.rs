//! Figures 17–18 — applicability and overhead with collocated VMs (§6.5).
//!
//! Two VMs share the server, 16 vCPUs each; one runs a TLB-sensitive
//! application, the other a non-TLB-sensitive one (Shore or NPB SP.D).
//! The questions: does Gemini still win when VMs contend for host memory,
//! and does it cost anything when there is nothing to win (overhead on
//! the non-sensitive workload must be ≈ 0, the paper measures ≤ 3 %)?

use crate::exec::run_cells;
use crate::report::{fmt_ratio, Table};
use crate::scale::Scale;
use gemini_sim_core::{derive_seed, Result};
use gemini_vm_sim::{Machine, RunResult, SystemKind};
use gemini_workloads::{spec_by_name, WorkloadGen};

/// The VM pairs of the experiment: (TLB-sensitive, non-sensitive).
pub const PAIRS: [(&str, &str); 4] = [
    ("Masstree", "Shore"),
    ("Redis", "SP.D"),
    ("Specjbb", "Shore"),
    ("Canneal", "SP.D"),
];

/// Results per pair per system: the two VMs' run results.
#[derive(Debug)]
pub struct CollocatedResults {
    /// (sensitive name, non-sensitive name) per pair.
    pub pairs: Vec<(String, String)>,
    /// `runs[pair][system] = [sensitive result, non-sensitive result]`.
    pub runs: Vec<Vec<[RunResult; 2]>>,
}

/// Runs the collocation grid.
pub fn run(scale: &Scale, pair_filter: Option<&[(&str, &str)]>) -> Result<CollocatedResults> {
    let pairs: Vec<(&str, &str)> = pair_filter.map(|f| f.to_vec()).unwrap_or(PAIRS.to_vec());
    let systems = SystemKind::evaluated();
    let mut cells = Vec::new();
    for (pi, &(sens, nonsens)) in pairs.iter().enumerate() {
        let sens_spec = spec_by_name(sens).expect("pair workload in catalog");
        let non_spec = spec_by_name(nonsens).expect("pair workload in catalog");
        let seed = scale.seed_for("collocated", pi as u64);
        // The second VM gets an independently derived stream; XOR-ing a
        // small constant onto the seed would correlate the two VMs.
        let seed2 = derive_seed(seed, "collocated-nonsens", pi as u64);
        for &system in &systems {
            let sens_spec = sens_spec.clone();
            let non_spec = non_spec.clone();
            cells.push(move || -> Result<[RunResult; 2]> {
                let cfg = scale.collocated_config(seed);
                let mut m = Machine::new(system, cfg);
                let vm1 = m.add_vm()?;
                let vm2 = m.add_vm()?;
                let g1 = WorkloadGen::new(sens_spec.scaled(scale.ws_factor), scale.ops, seed);
                let g2 = WorkloadGen::new(non_spec.scaled(scale.ws_factor), scale.ops, seed2);
                let mut results = m.run_collocated(vec![(vm1, g1), (vm2, g2)])?;
                let second = results.pop().expect("two results");
                let first = results.pop().expect("two results");
                Ok([first, second])
            });
        }
    }
    let mut results = run_cells(scale.jobs, cells).into_iter();
    let mut out_pairs = Vec::new();
    let mut runs = Vec::new();
    for &(sens, nonsens) in &pairs {
        let mut per_sys = Vec::new();
        for _ in &systems {
            per_sys.push(results.next().expect("one result per cell")?);
        }
        out_pairs.push((sens.to_string(), nonsens.to_string()));
        runs.push(per_sys);
    }
    Ok(CollocatedResults {
        pairs: out_pairs,
        runs,
    })
}

impl CollocatedResults {
    fn render(&self, title: &str, metric: impl Fn(&RunResult) -> f64, which: usize) -> String {
        let mut headers = vec!["pair (VM shown)"];
        headers.extend(SystemKind::evaluated().iter().map(|s| s.label()));
        let mut t = Table::new(title, &headers);
        for (pi, (sens, non)) in self.pairs.iter().enumerate() {
            let shown = if which == 0 { sens } else { non };
            let row = &self.runs[pi];
            let base = metric(&row[0][which]);
            let mut cells = vec![format!("{sens}+{non} ({shown})")];
            for per_sys in row {
                let v = metric(&per_sys[which]);
                cells.push(fmt_ratio(if base == 0.0 { 0.0 } else { v / base }));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Fig. 17: throughput of both VMs, normalized to `Host-B-VM-B`.
    pub fn render_fig17(&self) -> String {
        let a = self.render(
            "Figure 17: normalized throughput, collocated VMs (TLB-sensitive VM)",
            |r| r.throughput(),
            0,
        );
        let b = self.render(
            "Figure 17 (cont.): normalized throughput, collocated VMs (non-sensitive VM)",
            |r| r.throughput(),
            1,
        );
        format!("{a}\n{b}")
    }

    /// Fig. 18: mean latency of the latency-reporting VMs, normalized.
    pub fn render_fig18(&self) -> String {
        self.render(
            "Figure 18: normalized mean latency, collocated VMs (TLB-sensitive VM)",
            |r| r.mean_latency.0 as f64,
            0,
        )
    }

    /// Gemini's worst-case slowdown on the non-sensitive VMs relative to
    /// the baseline (the paper's ≤ 3 % overhead claim).
    pub fn gemini_nonsensitive_overhead(&self) -> f64 {
        let gi = SystemKind::evaluated()
            .iter()
            .position(|&s| s == SystemKind::Gemini)
            .expect("Gemini evaluated");
        let mut worst: f64 = 0.0;
        for row in &self.runs {
            let base = row[0][1].throughput();
            let gem = row[gi][1].throughput();
            if base > 0.0 {
                worst = worst.max(1.0 - gem / base);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collocated_pair_runs_and_checks_overhead() {
        let scale = Scale {
            ops: 800,
            ..Scale::quick()
        };
        let res = run(&scale, Some(&[("Masstree", "Shore")])).unwrap();
        assert_eq!(res.pairs.len(), 1);
        assert!(res.render_fig17().contains("Masstree+Shore"));
        assert!(res.render_fig18().contains("Masstree"));
        // Gemini must not meaningfully slow the non-sensitive workload.
        let overhead = res.gemini_nonsensitive_overhead();
        assert!(overhead < 0.15, "overhead {overhead} too high");
    }
}

//! Radix page tables with mixed 4 KiB / 2 MiB leaves.
//!
//! An [`AddressSpace`] models one layer of translation — either a guest
//! process page table (GVA → GPA) or a VM/EPT page table (GPA → HPA). The
//! huge-page misalignment problem of the paper is a *relation between two
//! `AddressSpace`s*: a 2 MiB leaf in one layer is only useful if the
//! corresponding 2 MiB region in the other layer is also mapped by a single
//! 2 MiB leaf (at a huge-page-aligned target).
//!
//! The representation is organized around 2 MiB regions, mirroring x86-64
//! structure: each naturally aligned 2 MiB span of the input space is either
//! unmapped, mapped by one huge leaf, or covered by a last-level table of
//! 512 base-page entries. Upper directory levels are implicit — the TLB
//! crate derives page-walk steps and walk-cache keys from address bits, so
//! only leaf state needs to be materialized here.
//!
//! All addresses at this interface are *frame numbers* (base-page index for
//! base mappings, huge-page index for huge mappings); the `mm` crate wraps
//! them in typed [`gemini_sim_core::Gva`]/[`Gpa`]/[`Hpa`] addresses.
//!
//! [`Gpa`]: gemini_sim_core::Gpa
//! [`Hpa`]: gemini_sim_core::Hpa
//!
//! # Examples
//!
//! ```
//! use gemini_page_table::{AddressSpace, LeafSize};
//!
//! let mut table = AddressSpace::new();
//! // Demand-page 512 contiguous, aligned frames, then promote in place.
//! for i in 0..512 {
//!     table.map_base(i, 512 + i)?;
//! }
//! let huge_frame = table.promote_in_place(0)?;
//! assert_eq!(huge_frame, 1);
//! let t = table.translate(100).expect("still mapped");
//! assert_eq!(t.size, LeafSize::Huge);
//! assert_eq!(t.pa_frame, 612);
//! # Ok::<(), gemini_sim_core::SimError>(())
//! ```

use gemini_sim_core::{SimError, HUGE_PAGE_ORDER, PAGES_PER_HUGE_PAGE};

/// Number of entries in a last-level table (512 for x86-64).
pub const ENTRIES_PER_TABLE: usize = PAGES_PER_HUGE_PAGE as usize;

/// The size of the leaf that translated an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeafSize {
    /// Translated by a 4 KiB PTE (4 directory levels walked).
    Base,
    /// Translated by a 2 MiB PDE (3 directory levels walked).
    Huge,
}

impl LeafSize {
    /// Number of page-table levels a hardware walk traverses to reach a
    /// leaf of this size (x86-64: 4 for base pages, 3 for huge pages).
    pub const fn walk_levels(self) -> u32 {
        match self {
            LeafSize::Base => 4,
            LeafSize::Huge => 3,
        }
    }
}

/// Result of translating one input frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Output base-page frame backing the input frame.
    pub pa_frame: u64,
    /// Size of the leaf that produced the translation.
    pub size: LeafSize,
}

/// State of one aligned 2 MiB region of the input address space.
#[derive(Debug, Clone)]
enum Region {
    /// The whole region is mapped by a single 2 MiB leaf to this output
    /// huge-frame.
    Huge(u64),
    /// The region is covered by a last-level table of base-page entries.
    Table(Table),
}

/// A last-level table plus incrementally maintained population metadata,
/// so the per-fault [`AddressSpace::region_population`] query is O(1)
/// instead of a 512-entry scan.
#[derive(Debug, Clone)]
struct Table {
    entries: Box<[Option<u64>; ENTRIES_PER_TABLE]>,
    /// Present entries (0–512).
    present: u32,
    /// Distinct in-place promotion targets voted for by congruent entries:
    /// entry `i` mapping to `pa` votes for huge frame `(pa - i) >> 9` when
    /// `pa - i` is huge-aligned. `(target, votes)` pairs; placement policy
    /// keeps this at one pair for well-behaved regions, so a linear scan
    /// beats any map.
    targets: Vec<(u64, u32)>,
    /// Present entries congruent to no huge-aligned target at all.
    incongruent: u32,
}

impl Table {
    fn new() -> Self {
        Self {
            entries: Box::new([None; ENTRIES_PER_TABLE]),
            present: 0,
            targets: Vec::new(),
            incongruent: 0,
        }
    }

    /// A fully populated table mapping every entry `i` to
    /// `(pa_huge << HUGE_PAGE_ORDER) + i` — the shape `demote` produces.
    /// All 512 entries vote for `pa_huge`.
    fn full(pa_huge: u64) -> Self {
        let mut entries = Box::new([None; ENTRIES_PER_TABLE]);
        for (i, slot) in entries.iter_mut().enumerate() {
            *slot = Some((pa_huge << HUGE_PAGE_ORDER) + i as u64);
        }
        Self {
            entries,
            present: ENTRIES_PER_TABLE as u32,
            targets: vec![(pa_huge, ENTRIES_PER_TABLE as u32)],
            incongruent: 0,
        }
    }

    /// The vote entry `idx → pa` casts: `Some(target)` when congruent to a
    /// huge-aligned backing, `None` otherwise.
    fn vote_of(idx: usize, pa: u64) -> Option<u64> {
        let pa0 = pa.wrapping_sub(idx as u64);
        (pa0 % PAGES_PER_HUGE_PAGE == 0).then_some(pa0 >> HUGE_PAGE_ORDER)
    }

    /// Records entry `idx → pa` in the metadata (entry already stored).
    fn note_add(&mut self, idx: usize, pa: u64) {
        self.present += 1;
        match Self::vote_of(idx, pa) {
            Some(target) => match self.targets.iter_mut().find(|(t, _)| *t == target) {
                Some((_, votes)) => *votes += 1,
                None => self.targets.push((target, 1)),
            },
            None => self.incongruent += 1,
        }
    }

    /// Removes entry `idx → pa` from the metadata (entry already taken).
    fn note_remove(&mut self, idx: usize, pa: u64) {
        self.present -= 1;
        match Self::vote_of(idx, pa) {
            Some(target) => {
                let pos = self
                    .targets
                    .iter()
                    .position(|(t, _)| *t == target)
                    .expect("tracked vote must exist");
                self.targets[pos].1 -= 1;
                if self.targets[pos].1 == 0 {
                    self.targets.swap_remove(pos);
                }
            }
            None => self.incongruent -= 1,
        }
    }

    /// The population summary the full 512-entry scan would produce: the
    /// region is in-place eligible iff every present entry votes for one
    /// common huge-aligned target.
    fn population(&self) -> RegionPopulation {
        let eligible = self.incongruent == 0 && self.targets.len() <= 1;
        RegionPopulation {
            present: self.present as usize,
            in_place_eligible: eligible,
            target_huge_frame: if eligible {
                self.targets.first().map(|&(t, _)| t)
            } else {
                None
            },
        }
    }
}

/// Summary of a 2 MiB region's population, used by promotion policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionPopulation {
    /// Number of present base entries (0–512); 512 means fully populated.
    pub present: usize,
    /// True when the present entries are placed such that an in-place
    /// promotion is possible *if* the region were fully populated: every
    /// present entry `i` maps to `pa0 + i` for a huge-aligned `pa0`.
    pub in_place_eligible: bool,
    /// The would-be huge output frame for in-place promotion, when eligible
    /// and at least one entry is present.
    pub target_huge_frame: Option<u64>,
}

/// One layer of address translation with mixed page sizes.
///
/// Regions are stored in a flat vector indexed by input huge-frame — the
/// input spaces here are dense and bounded (VMAs come from a bump
/// allocator, GPAs from the VM's frame range), so a direct index beats a
/// tree walk on the per-access translate path. The vector grows on demand
/// to the highest populated region.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    /// Input huge-frame index → region state (`None` = unmapped region).
    regions: Vec<Option<Region>>,
    /// Count of present base-page leaves.
    base_mapped: u64,
    /// Count of present huge-page leaves.
    huge_mapped: u64,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// The region slot at `huge`, if populated.
    #[inline]
    fn region(&self, huge: u64) -> Option<&Region> {
        self.regions.get(huge as usize).and_then(Option::as_ref)
    }

    /// Stores a region at `huge`, growing the vector as needed.
    fn set_region(&mut self, huge: u64, r: Region) {
        let i = huge as usize;
        if i >= self.regions.len() {
            self.regions.resize_with(i + 1, || None);
        }
        self.regions[i] = Some(r);
    }

    /// Empties the region slot at `huge`.
    fn clear_region(&mut self, huge: u64) {
        if let Some(slot) = self.regions.get_mut(huge as usize) {
            *slot = None;
        }
    }

    /// Number of base-page leaves currently mapped.
    pub fn base_mapped(&self) -> u64 {
        self.base_mapped
    }

    /// Number of huge-page leaves currently mapped.
    pub fn huge_mapped(&self) -> u64 {
        self.huge_mapped
    }

    /// Total mapped memory in base pages.
    pub fn mapped_base_page_equiv(&self) -> u64 {
        self.base_mapped + self.huge_mapped * PAGES_PER_HUGE_PAGE
    }

    /// Maps one base frame `va_frame` → `pa_frame`.
    ///
    /// Fails if the frame is already translated (by a base or huge leaf).
    pub fn map_base(&mut self, va_frame: u64, pa_frame: u64) -> Result<(), SimError> {
        let (huge, idx) = split_frame(va_frame);
        let i = huge as usize;
        if i >= self.regions.len() {
            self.regions.resize_with(i + 1, || None);
        }
        match &mut self.regions[i] {
            Some(Region::Huge(_)) => Err(SimError::AlreadyMappedGva(gva_of(va_frame))),
            Some(Region::Table(t)) => {
                if t.entries[idx].is_some() {
                    return Err(SimError::AlreadyMappedGva(gva_of(va_frame)));
                }
                t.entries[idx] = Some(pa_frame);
                t.note_add(idx, pa_frame);
                self.base_mapped += 1;
                Ok(())
            }
            slot @ None => {
                let mut t = Table::new();
                t.entries[idx] = Some(pa_frame);
                t.note_add(idx, pa_frame);
                *slot = Some(Region::Table(t));
                self.base_mapped += 1;
                Ok(())
            }
        }
    }

    /// Maps one huge frame `va_huge_frame` → `pa_huge_frame`.
    ///
    /// Fails if any base entry already exists in the region or the region
    /// is already huge-mapped.
    pub fn map_huge(&mut self, va_huge_frame: u64, pa_huge_frame: u64) -> Result<(), SimError> {
        let occupied = match self.region(va_huge_frame) {
            Some(Region::Huge(_)) => true,
            Some(Region::Table(t)) => t.present > 0,
            None => false,
        };
        if occupied {
            return Err(SimError::AlreadyMappedGva(gva_of(
                va_huge_frame << HUGE_PAGE_ORDER,
            )));
        }
        self.set_region(va_huge_frame, Region::Huge(pa_huge_frame));
        self.huge_mapped += 1;
        Ok(())
    }

    /// Unmaps one base frame, returning the output frame it mapped to.
    pub fn unmap_base(&mut self, va_frame: u64) -> Result<u64, SimError> {
        let (huge, idx) = split_frame(va_frame);
        match self.regions.get_mut(huge as usize).and_then(Option::as_mut) {
            Some(Region::Table(t)) => {
                let pa = t.entries[idx]
                    .take()
                    .ok_or(SimError::NotMappedGva(gva_of(va_frame)))?;
                t.note_remove(idx, pa);
                self.base_mapped -= 1;
                if t.present == 0 {
                    self.clear_region(huge);
                }
                Ok(pa)
            }
            _ => Err(SimError::NotMappedGva(gva_of(va_frame))),
        }
    }

    /// Unmaps one huge leaf, returning the output huge frame.
    pub fn unmap_huge(&mut self, va_huge_frame: u64) -> Result<u64, SimError> {
        match self.region(va_huge_frame) {
            Some(Region::Huge(pa)) => {
                let pa = *pa;
                self.clear_region(va_huge_frame);
                self.huge_mapped -= 1;
                Ok(pa)
            }
            _ => Err(SimError::NotMappedGva(gva_of(
                va_huge_frame << HUGE_PAGE_ORDER,
            ))),
        }
    }

    /// Translates one input base frame to its output base frame, if mapped.
    #[inline]
    pub fn translate(&self, va_frame: u64) -> Option<Translation> {
        let (huge, idx) = split_frame(va_frame);
        match self.region(huge)? {
            Region::Huge(pa_huge) => Some(Translation {
                pa_frame: (pa_huge << HUGE_PAGE_ORDER) + idx as u64,
                size: LeafSize::Huge,
            }),
            Region::Table(t) => t.entries[idx].map(|pa_frame| Translation {
                pa_frame,
                size: LeafSize::Base,
            }),
        }
    }

    /// Returns the huge leaf covering `va_huge_frame`, if any.
    pub fn huge_leaf(&self, va_huge_frame: u64) -> Option<u64> {
        match self.region(va_huge_frame)? {
            Region::Huge(pa) => Some(*pa),
            Region::Table(_) => None,
        }
    }

    /// Describes the population of the region at `va_huge_frame`.
    ///
    /// A region mapped by a huge leaf reports 512 present entries and
    /// in-place eligibility (it is already promoted).
    pub fn region_population(&self, va_huge_frame: u64) -> RegionPopulation {
        match self.region(va_huge_frame) {
            None => RegionPopulation {
                present: 0,
                in_place_eligible: true,
                target_huge_frame: None,
            },
            Some(Region::Huge(pa)) => RegionPopulation {
                present: ENTRIES_PER_TABLE,
                in_place_eligible: true,
                target_huge_frame: Some(*pa),
            },
            // In-place eligible iff every present entry i maps to
            // pa0 + i with one common huge-aligned pa0 — answered from
            // the table's incrementally maintained vote counts.
            Some(Region::Table(t)) => t.population(),
        }
    }

    /// Promotes a fully populated, physically contiguous, aligned region to
    /// a single huge leaf without moving data.
    ///
    /// Returns the output huge frame. Fails with
    /// [`SimError::NotContiguous`] when entries are missing, scattered, or
    /// the target is not huge-aligned.
    pub fn promote_in_place(&mut self, va_huge_frame: u64) -> Result<u64, SimError> {
        let pop = self.region_population(va_huge_frame);
        if pop.present != ENTRIES_PER_TABLE || !pop.in_place_eligible {
            return Err(SimError::NotContiguous);
        }
        match self.region(va_huge_frame) {
            Some(Region::Huge(_)) => Err(SimError::AlreadyMappedGva(gva_of(
                va_huge_frame << HUGE_PAGE_ORDER,
            ))),
            Some(Region::Table(_)) => {
                let target = pop
                    .target_huge_frame
                    .ok_or(SimError::Invariant("eligible full region without target"))?;
                self.set_region(va_huge_frame, Region::Huge(target));
                self.base_mapped -= ENTRIES_PER_TABLE as u64;
                self.huge_mapped += 1;
                Ok(target)
            }
            None => Err(SimError::NotContiguous),
        }
    }

    /// Promotes a region by *moving* its contents to a fresh huge frame.
    ///
    /// Replaces whatever base entries exist with one huge leaf pointing at
    /// `new_pa_huge_frame`, and returns the displaced `(index, old_frame)`
    /// pairs so the caller can free them and charge per-page copy costs.
    /// Fails if the region is empty or already huge.
    pub fn promote_with_copy(
        &mut self,
        va_huge_frame: u64,
        new_pa_huge_frame: u64,
    ) -> Result<Vec<(usize, u64)>, SimError> {
        match self.region(va_huge_frame) {
            Some(Region::Huge(_)) => Err(SimError::AlreadyMappedGva(gva_of(
                va_huge_frame << HUGE_PAGE_ORDER,
            ))),
            None => Err(SimError::NotMappedGva(gva_of(
                va_huge_frame << HUGE_PAGE_ORDER,
            ))),
            Some(Region::Table(t)) => {
                let displaced: Vec<(usize, u64)> = t
                    .entries
                    .iter()
                    .enumerate()
                    .filter_map(|(i, e)| e.map(|pa| (i, pa)))
                    .collect();
                if displaced.is_empty() {
                    return Err(SimError::NotMappedGva(gva_of(
                        va_huge_frame << HUGE_PAGE_ORDER,
                    )));
                }
                self.base_mapped -= displaced.len() as u64;
                self.huge_mapped += 1;
                self.set_region(va_huge_frame, Region::Huge(new_pa_huge_frame));
                Ok(displaced)
            }
        }
    }

    /// Splits a huge leaf back into 512 base entries covering the same
    /// output frames (the inverse of in-place promotion).
    pub fn demote(&mut self, va_huge_frame: u64) -> Result<(), SimError> {
        let pa_huge = self.unmap_huge(va_huge_frame)?;
        self.set_region(va_huge_frame, Region::Table(Table::full(pa_huge)));
        self.base_mapped += ENTRIES_PER_TABLE as u64;
        Ok(())
    }

    /// Iterates all huge leaves as `(va_huge_frame, pa_huge_frame)` in
    /// input-address order — the MHPS scan.
    pub fn iter_huge(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.regions
            .iter()
            .enumerate()
            .filter_map(|(va, r)| match r {
                Some(Region::Huge(pa)) => Some((va as u64, *pa)),
                _ => None,
            })
    }

    /// Iterates present base entries inside one region as
    /// `(va_frame, pa_frame)` pairs.
    pub fn iter_base_in(&self, va_huge_frame: u64) -> Vec<(u64, u64)> {
        match self.region(va_huge_frame) {
            Some(Region::Table(t)) => t
                .entries
                .iter()
                .enumerate()
                .filter_map(|(i, e)| {
                    e.map(|pa| ((va_huge_frame << HUGE_PAGE_ORDER) + i as u64, pa))
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Iterates every populated region's input huge-frame index together
    /// with whether it is huge-mapped.
    pub fn iter_regions(&self) -> impl Iterator<Item = (u64, bool)> + '_ {
        self.regions.iter().enumerate().filter_map(|(va, r)| {
            r.as_ref()
                .map(|r| (va as u64, matches!(r, Region::Huge(_))))
        })
    }

    /// Iterates every base-mapped `(va_frame, pa_frame)` pair across all
    /// regions, in input-address order.
    pub fn iter_base(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.regions.iter().enumerate().flat_map(|(va_huge, r)| {
            let table = match r {
                Some(Region::Table(t)) => Some(t),
                _ => None,
            };
            table.into_iter().flat_map(move |t| {
                t.entries.iter().enumerate().filter_map(move |(i, e)| {
                    e.map(|pa| (((va_huge as u64) << HUGE_PAGE_ORDER) + i as u64, pa))
                })
            })
        })
    }

    /// Checks internal accounting invariants; used by tests.
    pub fn check_invariants(&self) -> Result<(), SimError> {
        let mut base = 0u64;
        let mut huge = 0u64;
        for r in self.regions.iter().flatten() {
            match r {
                Region::Huge(_) => huge += 1,
                Region::Table(t) => {
                    let n = t.entries.iter().filter(|e| e.is_some()).count() as u64;
                    if n == 0 {
                        return Err(SimError::Invariant("empty table region retained"));
                    }
                    if n != t.present as u64 {
                        return Err(SimError::Invariant("table present count out of sync"));
                    }
                    // Re-derive the vote metadata from scratch and compare:
                    // the incremental counts must answer region_population
                    // exactly as a full rescan would.
                    let mut rescan = Table::new();
                    for (i, e) in t.entries.iter().enumerate() {
                        if let Some(pa) = e {
                            rescan.note_add(i, *pa);
                        }
                    }
                    let (a, b) = (t.population(), rescan.population());
                    if a != b || t.incongruent != rescan.incongruent {
                        return Err(SimError::Invariant("table vote metadata out of sync"));
                    }
                    base += n;
                }
            }
        }
        if base != self.base_mapped || huge != self.huge_mapped {
            return Err(SimError::Invariant("mapping counters out of sync"));
        }
        Ok(())
    }
}

/// Splits a base-frame number into (huge-frame index, index within region).
fn split_frame(va_frame: u64) -> (u64, usize) {
    (
        va_frame >> HUGE_PAGE_ORDER,
        (va_frame % PAGES_PER_HUGE_PAGE) as usize,
    )
}

/// Helper to build a typed GVA from a frame for error reporting.
fn gva_of(frame: u64) -> gemini_sim_core::Gva {
    gemini_sim_core::Gva::from_frame(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_map_translate_unmap() {
        let mut a = AddressSpace::new();
        a.map_base(1000, 77).unwrap();
        assert_eq!(
            a.translate(1000),
            Some(Translation {
                pa_frame: 77,
                size: LeafSize::Base
            })
        );
        assert_eq!(a.translate(1001), None);
        assert_eq!(a.base_mapped(), 1);
        assert_eq!(a.unmap_base(1000).unwrap(), 77);
        assert_eq!(a.translate(1000), None);
        assert_eq!(a.base_mapped(), 0);
        a.check_invariants().unwrap();
    }

    #[test]
    fn huge_map_translates_every_subframe() {
        let mut a = AddressSpace::new();
        a.map_huge(2, 5).unwrap();
        let t = a.translate(2 * 512 + 13).unwrap();
        assert_eq!(t.size, LeafSize::Huge);
        assert_eq!(t.pa_frame, 5 * 512 + 13);
        assert_eq!(a.huge_mapped(), 1);
        assert_eq!(a.huge_leaf(2), Some(5));
        assert_eq!(a.huge_leaf(3), None);
        assert_eq!(a.mapped_base_page_equiv(), 512);
        assert_eq!(a.unmap_huge(2).unwrap(), 5);
        a.check_invariants().unwrap();
    }

    #[test]
    fn conflicting_mappings_rejected() {
        let mut a = AddressSpace::new();
        a.map_base(512, 1).unwrap();
        assert!(matches!(
            a.map_base(512, 2),
            Err(SimError::AlreadyMappedGva(_))
        ));
        // Huge over a populated region.
        assert!(matches!(
            a.map_huge(1, 9),
            Err(SimError::AlreadyMappedGva(_))
        ));
        let mut b = AddressSpace::new();
        b.map_huge(1, 9).unwrap();
        // Base under a huge leaf.
        assert!(matches!(
            b.map_base(512, 1),
            Err(SimError::AlreadyMappedGva(_))
        ));
        assert!(matches!(
            b.map_huge(1, 10),
            Err(SimError::AlreadyMappedGva(_))
        ));
    }

    #[test]
    fn unmap_missing_fails() {
        let mut a = AddressSpace::new();
        assert!(matches!(a.unmap_base(4), Err(SimError::NotMappedGva(_))));
        assert!(matches!(a.unmap_huge(4), Err(SimError::NotMappedGva(_))));
        a.map_huge(4, 4).unwrap();
        assert!(matches!(
            a.unmap_base(4 * 512),
            Err(SimError::NotMappedGva(_))
        ));
    }

    #[test]
    fn walk_levels_match_x86() {
        assert_eq!(LeafSize::Base.walk_levels(), 4);
        assert_eq!(LeafSize::Huge.walk_levels(), 3);
    }

    #[test]
    fn in_place_promotion_happy_path() {
        let mut a = AddressSpace::new();
        // Region va_huge 3, contiguous aligned backing at pa0 = 7*512.
        for i in 0..512 {
            a.map_base(3 * 512 + i, 7 * 512 + i).unwrap();
        }
        let pop = a.region_population(3);
        assert_eq!(pop.present, 512);
        assert!(pop.in_place_eligible);
        assert_eq!(pop.target_huge_frame, Some(7));
        let pa = a.promote_in_place(3).unwrap();
        assert_eq!(pa, 7);
        assert_eq!(a.huge_mapped(), 1);
        assert_eq!(a.base_mapped(), 0);
        // Translation is preserved exactly.
        assert_eq!(a.translate(3 * 512 + 99).unwrap().pa_frame, 7 * 512 + 99);
        a.check_invariants().unwrap();
    }

    #[test]
    fn in_place_promotion_rejects_holes_and_scatter() {
        let mut a = AddressSpace::new();
        for i in 0..511 {
            a.map_base(i, 512 + i).unwrap();
        }
        // Hole at entry 511.
        assert_eq!(a.promote_in_place(0), Err(SimError::NotContiguous));
        a.map_base(511, 9999).unwrap(); // Scattered last entry.
        assert_eq!(a.promote_in_place(0), Err(SimError::NotContiguous));
        let pop = a.region_population(0);
        assert!(!pop.in_place_eligible);
        assert_eq!(pop.target_huge_frame, None);
        // Unaligned but contiguous backing also fails.
        let mut b = AddressSpace::new();
        for i in 0..512 {
            b.map_base(i, 100 + i).unwrap(); // pa0 = 100, not 512-aligned.
        }
        assert_eq!(b.promote_in_place(0), Err(SimError::NotContiguous));
        assert!(!b.region_population(0).in_place_eligible);
    }

    #[test]
    fn empty_region_population_is_trivially_eligible() {
        let mut a = AddressSpace::new();
        let pop = a.region_population(9);
        assert_eq!(pop.present, 0);
        assert!(pop.in_place_eligible);
        assert_eq!(pop.target_huge_frame, None);
        assert_eq!(a.promote_in_place(9), Err(SimError::NotContiguous));
    }

    #[test]
    fn copy_promotion_returns_displaced_frames() {
        let mut a = AddressSpace::new();
        a.map_base(0, 40).unwrap();
        a.map_base(5, 99).unwrap();
        let displaced = a.promote_with_copy(0, 77).unwrap();
        assert_eq!(displaced, vec![(0, 40), (5, 99)]);
        assert_eq!(a.huge_leaf(0), Some(77));
        assert_eq!(a.translate(5).unwrap().pa_frame, 77 * 512 + 5);
        a.check_invariants().unwrap();
        // Copy-promoting an empty or huge region fails.
        assert!(a.promote_with_copy(0, 1).is_err());
        assert!(a.promote_with_copy(1, 1).is_err());
    }

    #[test]
    fn demote_restores_identical_translations() {
        let mut a = AddressSpace::new();
        a.map_huge(6, 2).unwrap();
        let before: Vec<_> = (0..512)
            .map(|i| a.translate(6 * 512 + i).unwrap().pa_frame)
            .collect();
        a.demote(6).unwrap();
        assert_eq!(a.huge_mapped(), 0);
        assert_eq!(a.base_mapped(), 512);
        for (i, &pa) in before.iter().enumerate() {
            let t = a.translate(6 * 512 + i as u64).unwrap();
            assert_eq!(t.pa_frame, pa);
            assert_eq!(t.size, LeafSize::Base);
        }
        // A demoted region can be promoted back in place.
        assert_eq!(a.promote_in_place(6).unwrap(), 2);
        a.check_invariants().unwrap();
    }

    #[test]
    fn iterators_scan_in_address_order() {
        let mut a = AddressSpace::new();
        a.map_huge(9, 1).unwrap();
        a.map_huge(2, 3).unwrap();
        a.map_base(512, 7).unwrap(); // Region 1.
        let huges: Vec<_> = a.iter_huge().collect();
        assert_eq!(huges, vec![(2, 3), (9, 1)]);
        let regions: Vec<_> = a.iter_regions().collect();
        assert_eq!(regions, vec![(1, false), (2, true), (9, true)]);
        assert_eq!(a.iter_base_in(1), vec![(512, 7)]);
        assert_eq!(a.iter_base_in(2), Vec::new());
        let all_base: Vec<_> = a.iter_base().collect();
        assert_eq!(all_base, vec![(512, 7)]);
    }
}

//! Translation-ranger (ISCA '19): migration-based contiguity coalescing.
//!
//! Translation-ranger continuously migrates pages to assemble large
//! contiguous ranges (for range TLBs and huge pages). Its defining cost
//! profile in the paper's evaluation is *aggressive page migration*: it
//! coalesces more eagerly than khugepaged, with a much larger per-pass
//! budget and copy-always semantics, and the resulting TLB shootdowns and
//! copy bandwidth frequently make it *slower* than base pages despite
//! forming huge pages (Figures 8–10 and the −7 % average throughput).

use gemini_mm::{FaultCtx, FaultDecision, HugePolicy, LayerOps, PromotionKind, PromotionOp};
use gemini_obs::{cat, EventKind, Layer, Recorder};
use gemini_sim_core::{Cycles, PAGES_PER_HUGE_PAGE};

/// Translation-ranger: copy-always coalescing with a large budget.
#[derive(Debug, Clone)]
pub struct TranslationRanger {
    /// Regions migrated per daemon pass (much larger than khugepaged).
    pub regions_per_pass: usize,
    /// Minimum present pages to bother migrating.
    pub min_present: usize,
    /// Round-robin cursor so every region is eventually visited.
    cursor: u64,
    rec: Recorder,
}

impl TranslationRanger {
    /// Creates the ranger with its aggressive defaults.
    pub fn new() -> Self {
        Self {
            regions_per_pass: 48,
            min_present: 1,
            cursor: 0,
            rec: Recorder::off(),
        }
    }
}

impl Default for TranslationRanger {
    fn default() -> Self {
        Self::new()
    }
}

impl HugePolicy for TranslationRanger {
    fn name(&self) -> &'static str {
        "Translation-ranger"
    }

    fn attach_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    fn fault_decision(&mut self, _ctx: &FaultCtx<'_>) -> FaultDecision {
        FaultDecision::Base
    }

    fn daemon_period(&self) -> Cycles {
        // Runs much more often than khugepaged.
        Cycles::from_millis(8.0)
    }

    fn daemon(&mut self, ops: &mut LayerOps<'_>) -> Vec<PromotionOp> {
        // Migrate-everything, round-robin over populated regions, by
        // copy, regardless of utilization.
        let candidates: Vec<u64> = ops
            .table
            .iter_regions()
            .filter(|&(_, huge)| !huge)
            .filter(|&(r, _)| ops.table.region_population(r).present >= self.min_present)
            .map(|(r, _)| r)
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let start = candidates.partition_point(|&r| r <= self.cursor);
        let picked: Vec<PromotionOp> = (0..candidates.len())
            .take(self.regions_per_pass)
            .map(|i| candidates[(start + i) % candidates.len()])
            .map(|r| PromotionOp::new(r, PromotionKind::Copy))
            .collect();
        if let Some(last) = picked.last() {
            self.cursor = last.region;
        }
        if !picked.is_empty() {
            // The defining cost of the ranger is its migration traffic:
            // surface each pass's copy-migration batch (an upper bound of
            // one region's worth of pages per op; the mm layer's
            // promotion events carry the exact per-region copy counts).
            let vm = ops.vm.0;
            let queued = picked.len() as u64;
            self.rec
                .emit(cat::MIGRATION, vm, Layer::Guest, || EventKind::Migration {
                    pages: queued * PAGES_PER_HUGE_PAGE,
                });
            self.rec.counter_add("ranger.regions_queued", queued);
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_mm::{CostModel, GuestMm};
    use gemini_sim_core::{VmId, HUGE_PAGE_SIZE};

    #[test]
    fn migrates_sparse_regions_by_copy() {
        let mut g = GuestMm::new(VmId(1), 1 << 14, CostModel::default());
        let mut ranger = TranslationRanger::new();
        let vma = g.mmap(4 * HUGE_PAGE_SIZE).unwrap();
        for r in 0..4u64 {
            for i in 0..50 {
                g.handle_fault(vma.start_frame() + r * 512 + i * 7, &mut ranger)
                    .unwrap();
            }
        }
        let fx = g.run_daemon(&mut ranger, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 4);
        assert_eq!(fx.pages_copied, 200, "copy-always migration");
        assert_eq!(fx.shootdowns, 4);
        assert!(fx.cycles > Cycles(4 * CostModel::default().shootdown_per_vcpu.0));
    }

    #[test]
    fn ranger_cost_exceeds_khugepaged_for_same_work() {
        // Same initial state; ranger's copies vs THP's single budgeted
        // pass. Ranger converts everything immediately and pays for it.
        let build = || {
            let mut g = GuestMm::new(VmId(1), 1 << 15, CostModel::default());
            let mut base = crate::BaseOnly;
            let vma = g.mmap(16 * HUGE_PAGE_SIZE).unwrap();
            for r in 0..16u64 {
                for i in 0..30 {
                    g.handle_fault(vma.start_frame() + r * 512 + i, &mut base)
                        .unwrap();
                }
            }
            g
        };
        let mut g1 = build();
        let mut ranger = TranslationRanger::new();
        let fx_ranger = g1.run_daemon(&mut ranger, Cycles::ZERO, 1);
        let mut g2 = build();
        let mut thp = crate::LinuxThp::new();
        let fx_thp = g2.run_daemon(&mut thp, Cycles::ZERO, 1);
        assert!(g1.table().huge_mapped() > g2.table().huge_mapped());
        assert!(fx_ranger.cycles > fx_thp.cycles);
        assert!(fx_ranger.pages_copied > fx_thp.pages_copied);
    }
}

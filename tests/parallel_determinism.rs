//! Parallel execution must be invisible in the output: the same grid
//! run at `jobs = 1` and `jobs = 4` (and across repeated `jobs = 4`
//! runs) must produce byte-identical rendered tables and JSON Lines
//! rows. Every cell derives its seed up front, so nothing about a
//! result can depend on which worker ran it or in which order cells
//! finished.

use gemini_harness::bench::{
    BatchedRefSection, BenchReport, CellTiming, FleetBenchSection, PhaseTiming, SweepPoint,
    REFERENCE_CELL,
};
use gemini_harness::experiments::{clean_slate, motivation, reused_vm};
use gemini_harness::{run_cells_traced, trace, Scale};
use gemini_obs::{Recorder, TraceConfig};
use gemini_vm_sim::{Machine, MachineConfig, SystemKind};

fn scale_with_jobs(jobs: usize) -> Scale {
    Scale {
        ops: 800,
        jobs,
        ..Scale::quick()
    }
}

/// Jobs count for the parallel side of each comparison. Defaults to 4;
/// `GEMINI_JOBS` overrides it so CI can exercise other counts (ci.sh
/// runs this suite again at 2).
fn parallel_jobs() -> usize {
    std::env::var("GEMINI_JOBS")
        .ok()
        .and_then(|j| j.parse().ok())
        .filter(|&j| j > 1)
        .unwrap_or(4)
}

/// Renders the clean-slate grid's full artefact set plus its JSON rows
/// into one byte string.
fn clean_slate_artefacts(jobs: usize) -> String {
    let scale = scale_with_jobs(jobs);
    let res = clean_slate::run(&scale, Some(&["Redis", "Xapian"])).unwrap();
    let mut out = String::new();
    out.push_str(&res.render_fig08(true));
    out.push_str(&res.render_fig09(false));
    out.push_str(&res.render_fig11());
    out.push_str(&res.render_tab03());
    for per_wl in &res.grid {
        for per_sys in per_wl {
            for r in per_sys {
                out.push_str(&trace::result_json(r));
                out.push('\n');
            }
        }
    }
    out
}

/// Same, for the reused-VM grid.
fn reused_vm_artefacts(jobs: usize) -> String {
    let scale = scale_with_jobs(jobs);
    let res = reused_vm::run(&scale, Some(&["Redis"])).unwrap();
    let mut out = String::new();
    out.push_str(&res.render_fig12());
    out.push_str(&res.render_fig15());
    out.push_str(&res.render_tab04());
    for per_sys in &res.runs {
        for r in per_sys {
            out.push_str(&trace::result_json(r));
            out.push('\n');
        }
    }
    out
}

/// Same, for the fig. 3 motivation grid — the grid the hot-path
/// overhaul optimizes hardest (flat buddy/page-table/TLB storage), so
/// it gets its own post-optimization byte-identity regression.
fn motivation_artefacts(jobs: usize) -> String {
    let scale = scale_with_jobs(jobs);
    let res = motivation::run(&scale).unwrap();
    let mut out = String::new();
    out.push_str(&res.render_fig03());
    out.push_str(&res.render_tab01());
    for per_sys in &res.runs {
        for r in per_sys {
            out.push_str(&trace::result_json(r));
            out.push('\n');
        }
    }
    out
}

#[test]
fn motivation_grid_is_byte_identical_across_jobs() {
    let jobs = parallel_jobs();
    let sequential = motivation_artefacts(1);
    let parallel = motivation_artefacts(jobs);
    assert_eq!(sequential, parallel, "jobs=1 vs jobs={jobs} diverged");
    let parallel_again = motivation_artefacts(jobs);
    assert_eq!(parallel, parallel_again, "repeated jobs={jobs} diverged");
}

#[test]
fn bench_report_schema_is_pinned() {
    // BENCH_pr6.json is a trajectory artefact: later PRs append
    // comparable entries, so the field set must not drift silently.
    // Pin the exact rendering of a synthetic report (wall-clock values
    // are inputs here, so the output is reproducible).
    let report = BenchReport {
        scale: "quick".into(),
        jobs_max: 2,
        available_parallelism: 8,
        reference_wall_ms: 500.0,
        reference_ops_per_sec: 15338.0,
        reference_sharded_wall_ms: 450.0,
        sharded_jobs: 2,
        pr6_same_host_wall_ms: Some(1000.0),
        pr9_same_host_wall_ms: Some(750.0),
        reference_batched: BatchedRefSection {
            batched_wall_ms: 495.0,
            no_batch_wall_ms: 520.0,
            batch_runs: 1200,
            batched_hits: 9000,
            batch_breaks: 40,
            batch_hit_rate: 0.25,
        },
        reference_phases: vec![PhaseTiming {
            name: "access",
            wall_ms: 400.0,
            cum_ms: 480.0,
            count: 8,
        }],
        reference_profiled_wall_ms: 505.0,
        reference_overhead_pct: 0.5,
        cells: vec![CellTiming {
            label: "Canneal/GEMINI".into(),
            wall_ms: 250.0,
            ops: 2500,
            ops_per_sec: 10000.0,
            phases: vec![PhaseTiming {
                name: "fault_path",
                wall_ms: 60.0,
                cum_ms: 75.0,
                count: 120,
            }],
            profiler_overhead_ms: 0.25,
        }],
        sweep: vec![
            SweepPoint {
                jobs: 1,
                wall_ms: 250.0,
                speedup_vs_jobs1: 1.0,
                cell_wall_ms: vec![250.0],
                oversubscribed: false,
            },
            SweepPoint {
                jobs: 2,
                wall_ms: 125.0,
                speedup_vs_jobs1: 2.0,
                cell_wall_ms: vec![125.0],
                oversubscribed: true,
            },
        ],
        fleet: Some(FleetBenchSection {
            vms: 250,
            churn_events: 500,
            wall_ms: 4000.0,
            end_host_fmfi: vec![("THP".into(), 0.25), ("GEMINI".into(), 0.125)],
        }),
    };
    let expected = format!(
        r#"{{
  "schema": "gemini-bench-v3",
  "scale": "quick",
  "jobs_max": 2,
  "available_parallelism": 8,
  "reference_cell": {{
    "label": "{REFERENCE_CELL}",
    "baseline_wall_ms": 1043,
    "baseline_ops_per_sec": 7669,
    "current_wall_ms": 500,
    "current_ops_per_sec": 15338,
    "speedup_vs_baseline": 2,
    "sharded_wall_ms": 450,
    "sharded_jobs": 2,
    "pr6_same_host_wall_ms": 1000,
    "speedup_vs_pr6_same_host": 2,
    "pr9_same_host_wall_ms": 750,
    "speedup_vs_pr9_same_host": 1.5,
    "batched_wall_ms": 495,
    "no_batch_wall_ms": 520,
    "batch_runs": 1200,
    "batched_hits": 9000,
    "batch_breaks": 40,
    "batch_hit_rate": 0.25,
    "profiled_wall_ms": 505,
    "profiler_overhead_pct": 0.5,
    "phases": [{{"name": "access", "wall_ms": 400, "cum_ms": 480, "count": 8}}]
  }},
  "cells": [
    {{"label": "Canneal/GEMINI", "wall_ms": 250, "ops": 2500, "ops_per_sec": 10000, "profiler_overhead_ms": 0.25, "phases": [{{"name": "fault_path", "wall_ms": 60, "cum_ms": 75, "count": 120}}]}}
  ],
  "jobs_sweep": [
    {{"jobs": 1, "wall_ms": 250, "speedup_vs_jobs1": 1, "oversubscribed": false, "cell_wall_ms": [250]}},
    {{"jobs": 2, "wall_ms": 125, "speedup_vs_jobs1": 2, "oversubscribed": true, "cell_wall_ms": [125]}}
  ],
  "fleet": {{"vms": 250, "churn_events": 500, "wall_ms": 4000, "end_host_fmfi": [{{"system": "THP", "fmfi": 0.25}}, {{"system": "GEMINI", "fmfi": 0.125}}]}}
}}
"#
    );
    assert_eq!(report.to_json(), expected);
}

#[test]
fn clean_slate_grid_is_byte_identical_across_jobs() {
    let jobs = parallel_jobs();
    let sequential = clean_slate_artefacts(1);
    let parallel = clean_slate_artefacts(jobs);
    assert_eq!(sequential, parallel, "jobs=1 vs jobs={jobs} diverged");
    // Two parallel runs must also agree with each other: thread
    // scheduling varies between runs even at the same jobs count.
    let parallel_again = clean_slate_artefacts(jobs);
    assert_eq!(parallel, parallel_again, "repeated jobs={jobs} diverged");
}

#[test]
fn reused_vm_grid_is_byte_identical_across_jobs() {
    let jobs = parallel_jobs();
    let sequential = reused_vm_artefacts(1);
    let parallel = reused_vm_artefacts(jobs);
    assert_eq!(sequential, parallel, "jobs=1 vs jobs={jobs} diverged");
    let parallel_again = reused_vm_artefacts(jobs);
    assert_eq!(parallel, parallel_again, "repeated jobs={jobs} diverged");
}

#[test]
fn merged_recorders_are_deterministic_across_jobs() {
    // Cells carry their own recorders; merging them in submission
    // order after the barrier must yield the same registry JSON no
    // matter how many workers ran the cells.
    let merged_registry = |jobs: usize| {
        let master = Recorder::new(&TraceConfig::all());
        let cells: Vec<_> = (0..6u64)
            .map(|i| {
                move || {
                    let rec = Recorder::new(&TraceConfig::all());
                    rec.counter_add("cell.index_sum", i);
                    rec.counter_add("cell.runs", 1);
                    rec
                }
            })
            .collect();
        for rec in run_cells_traced(jobs, &master, cells) {
            master.merge_from(&rec);
        }
        master.registry().to_json_lines().join("\n")
    };
    let sequential = merged_registry(1);
    let parallel = merged_registry(4);
    assert_eq!(sequential, parallel);
}

#[test]
fn unknown_vm_is_an_error_not_a_panic() {
    let mut m = Machine::new(SystemKind::Gemini, MachineConfig::default());
    let vm = m.add_vm().unwrap();
    let bogus = gemini_sim_core::VmId(vm.0 + 17);
    let err = m.ept(bogus).unwrap_err();
    assert!(
        matches!(err, gemini_sim_core::SimError::UnknownVm(v) if v == bogus),
        "{err}"
    );
    assert!(matches!(
        m.clear_workload(bogus),
        Err(gemini_sim_core::SimError::UnknownVm(_))
    ));
    // The registered VM still resolves.
    assert!(m.ept(vm).is_ok());
}

//! The guest OS memory manager: VMAs, demand paging and the promotion
//! daemon mechanism for one VM.

use crate::costs::CostModel;
use crate::mech;
use crate::policy::{Effects, FaultCtx, FaultOutcome, HugePolicy, LayerKind, LayerOps};
use crate::vma::{Vma, VmaId, VmaSet};
use gemini_buddy::BuddyAllocator;
use gemini_obs::{cat, EventKind, Layer, PromoMode, Recorder};
use gemini_page_table::{AddressSpace, Translation};
use gemini_sim_core::{
    Cycles, SimError, VmId, HUGE_PAGE_ORDER, HUGE_PAGE_SIZE, PAGES_PER_HUGE_PAGE,
};
use std::collections::{HashMap, HashSet};

/// Classifies a completed promotion by its data movement.
pub(crate) fn promo_mode(pages_copied: u64, pages_zeroed: u64) -> PromoMode {
    if pages_copied > 0 {
        PromoMode::Copy
    } else if pages_zeroed > 0 {
        PromoMode::Fill
    } else {
        PromoMode::InPlace
    }
}

/// Memory management of one guest OS (one workload address space, as in
/// the paper's one-workload-per-VM setup).
#[derive(Debug)]
pub struct GuestMm {
    /// VM this guest belongs to.
    pub vm: VmId,
    /// The workload's virtual memory areas.
    pub vmas: VmaSet,
    /// The process page table (GVA frame → GPA frame).
    pub table: AddressSpace,
    /// The guest physical allocator (GPA frames).
    pub buddy: BuddyAllocator,
    /// Sampled touch counters per GVA 2 MiB region.
    touches: HashMap<u64, u64>,
    /// VMAs that have taken at least one fault.
    touched_vmas: HashSet<VmaId>,
    costs: CostModel,
    rec: Recorder,
}

impl GuestMm {
    /// Creates a guest with `gpa_frames` of guest-physical memory.
    pub fn new(vm: VmId, gpa_frames: u64, costs: CostModel) -> Self {
        Self {
            vm,
            vmas: VmaSet::new(HUGE_PAGE_SIZE),
            table: AddressSpace::new(),
            buddy: BuddyAllocator::new(gpa_frames),
            touches: HashMap::new(),
            touched_vmas: HashSet::new(),
            costs,
            rec: Recorder::off(),
        }
    }

    /// Attaches an observability recorder; daemon promotions and
    /// demotions of this guest are traced through it.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Maps a new VMA of `len` bytes.
    pub fn mmap(&mut self, len: u64) -> Result<Vma, SimError> {
        self.vmas.mmap(len)
    }

    /// Translates a GVA frame, if mapped.
    pub fn translate(&self, gva_frame: u64) -> Option<Translation> {
        self.table.translate(gva_frame)
    }

    /// Records a sampled access for daemon heuristics.
    pub fn record_touch(&mut self, gva_frame: u64) {
        *self
            .touches
            .entry(gva_frame >> HUGE_PAGE_ORDER)
            .or_insert(0) += 1;
    }

    /// Handles a demand fault at `gva_frame` under `policy`.
    pub fn handle_fault(
        &mut self,
        gva_frame: u64,
        policy: &mut dyn HugePolicy,
    ) -> Result<(FaultOutcome, Effects), SimError> {
        let gva = gemini_sim_core::Gva::from_frame(gva_frame);
        let vma = self.vmas.find(gva).ok_or(SimError::NoVma(gva))?.clone();
        let first_touch = !self.touched_vmas.contains(&vma.id);
        let region = gva_frame >> HUGE_PAGE_ORDER;
        let pop = self.table.region_population(region);
        if self.table.translate(gva_frame).is_some() {
            return Err(SimError::AlreadyMappedGva(gva));
        }

        let ctx = FaultCtx {
            layer: LayerKind::Guest,
            vm: self.vm,
            addr_frame: gva_frame,
            vma: Some(&vma),
            first_touch_in_vma: first_touch,
            region_pop: pop,
            buddy: &self.buddy,
            table: &self.table,
        };
        let huge_allowed = pop.present == 0 && ctx.region_within_vma();
        let decision = policy.fault_decision(&ctx);

        let (outcome, fx) = mech::resolve_fault(
            &mut self.table,
            &mut self.buddy,
            &self.costs,
            LayerKind::Guest,
            gva_frame,
            decision,
            huge_allowed,
        )?;
        self.touched_vmas.insert(vma.id);
        policy.after_fault(gva_frame, &outcome);
        Ok((outcome, fx))
    }

    /// Runs one daemon pass of `policy`, executing the promotions it
    /// requests.
    pub fn run_daemon(&mut self, policy: &mut dyn HugePolicy, now: Cycles, vcpus: u32) -> Effects {
        let mut ops_view = LayerOps {
            layer: LayerKind::Guest,
            vm: self.vm,
            table: &self.table,
            buddy: &mut self.buddy,
            touches: &self.touches,
            now,
        };
        let requests = policy.daemon(&mut ops_view);
        let mut ops_view = LayerOps {
            layer: LayerKind::Guest,
            vm: self.vm,
            table: &self.table,
            buddy: &mut self.buddy,
            touches: &self.touches,
            now,
        };
        let demotions = policy.select_demotions(&mut ops_view);
        let mut fx = Effects::cost(Cycles(
            self.costs.scan_per_region.0 * (requests.len() as u64 + 1),
        ));
        for op in requests {
            let region = op.region;
            let was_huge = self.table.huge_leaf(region).is_some();
            let opfx = mech::execute_promotion(
                &mut self.table,
                &mut self.buddy,
                &self.costs,
                LayerKind::Guest,
                op,
                vcpus,
            );
            if self.rec.wants(cat::PROMOTION) && !was_huge && self.table.huge_leaf(region).is_some()
            {
                let vm = self.vm.0;
                let (copied, zeroed) = (opfx.pages_copied, opfx.pages_zeroed);
                self.rec
                    .emit(cat::PROMOTION, vm, Layer::Guest, || EventKind::Promotion {
                        region,
                        mode: promo_mode(copied, zeroed),
                        pages_copied: copied,
                        pages_zeroed: zeroed,
                    });
                self.rec.counter_add("mm.guest.promotions", 1);
                self.rec.counter_add("mm.guest.promo_pages_copied", copied);
            }
            fx.merge(opfx);
        }
        for region in demotions {
            if let Ok(dfx) = mech::execute_demotion(
                &mut self.table,
                &self.costs,
                LayerKind::Guest,
                region,
                vcpus,
            ) {
                let vm = self.vm.0;
                self.rec
                    .emit(cat::DEMOTION, vm, Layer::Guest, || EventKind::Demotion {
                        region,
                    });
                self.rec.counter_add("mm.guest.demotions", 1);
                fx.merge(dfx);
            }
        }
        fx
    }

    /// Demotes (splits) one huge mapping.
    pub fn demote(&mut self, region: u64, vcpus: u32) -> Result<Effects, SimError> {
        mech::execute_demotion(
            &mut self.table,
            &self.costs,
            LayerKind::Guest,
            region,
            vcpus,
        )
    }

    /// Unmaps a VMA, freeing its guest-physical memory.
    ///
    /// Freed huge pages are first offered to the policy (Gemini's huge
    /// bucket hooks here); guest-physical memory returns to the guest
    /// buddy, while host-side EPT backing is deliberately *not* touched —
    /// the paper's reused-VM scenario depends on the host keeping the
    /// memory assigned to the VM.
    pub fn munmap(
        &mut self,
        id: VmaId,
        policy: &mut dyn HugePolicy,
        now: Cycles,
    ) -> Result<Effects, SimError> {
        let vma = self.vmas.munmap(id)?;
        let start_region = vma.start_frame() >> HUGE_PAGE_ORDER;
        let end_region =
            (vma.start_frame() + vma.pages() + PAGES_PER_HUGE_PAGE - 1) >> HUGE_PAGE_ORDER;
        let mut fx = Effects::cost(self.costs.remap_fixed);
        fx.shootdowns = 1;
        for region in start_region..end_region {
            let mut any = false;
            if self.table.huge_leaf(region).is_some() {
                let pa_huge = self.table.unmap_huge(region)?;
                if !policy.intercept_huge_free(pa_huge, now) {
                    self.buddy
                        .free(pa_huge << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER)?;
                }
                any = true;
            } else {
                for (va, pa) in self.table.iter_base_in(region) {
                    self.table.unmap_base(va)?;
                    self.buddy.free(pa, 0)?;
                    any = true;
                }
            }
            if any {
                fx.gva_regions_invalidated.push(region);
                policy.on_region_unmapped(region);
                self.touches.remove(&region);
            }
        }
        self.touched_vmas.remove(&vma.id);
        Ok(fx)
    }

    /// The guest-level fragmentation index at huge-page order.
    pub fn fragmentation_index(&self) -> f64 {
        self.buddy.fragmentation_index(HUGE_PAGE_ORDER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BasePagesOnly, FaultDecision};
    use gemini_sim_core::page::PageSize;

    /// A policy that always asks for huge mappings.
    struct AlwaysHuge;
    impl HugePolicy for AlwaysHuge {
        fn name(&self) -> &'static str {
            "AlwaysHuge"
        }
        fn fault_decision(&mut self, _ctx: &FaultCtx<'_>) -> FaultDecision {
            FaultDecision::Huge
        }
    }

    fn guest() -> GuestMm {
        GuestMm::new(VmId(1), 8192, CostModel::default())
    }

    #[test]
    fn fault_maps_base_page_in_vma() {
        let mut g = guest();
        let mut p = BasePagesOnly;
        let vma = g.mmap(16 * 4096).unwrap();
        let f = vma.start_frame();
        let (out, fx) = g.handle_fault(f, &mut p).unwrap();
        assert_eq!(out.size, PageSize::Base);
        assert!(fx.cycles > Cycles::ZERO);
        assert!(g.translate(f).is_some());
        // Double fault on the same frame is a bug.
        assert!(g.handle_fault(f, &mut p).is_err());
        // Fault outside any VMA is a segfault.
        assert!(matches!(g.handle_fault(0, &mut p), Err(SimError::NoVma(_))));
    }

    #[test]
    fn huge_fault_covers_region_and_respects_vma_bounds() {
        let mut g = guest();
        let mut p = AlwaysHuge;
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let f = vma.start_frame() + 5;
        let (out, _) = g.handle_fault(f, &mut p).unwrap();
        assert_eq!(out.size, PageSize::Huge);
        // All 512 frames are now translated.
        assert!(g.translate(vma.start_frame()).is_some());
        assert!(g.translate(vma.start_frame() + 511).is_some());
        // A short VMA cannot take a huge mapping.
        let small = g.mmap(4096).unwrap();
        let (out2, _) = g.handle_fault(small.start_frame(), &mut p).unwrap();
        assert_eq!(out2.size, PageSize::Base);
    }

    #[test]
    fn partially_populated_region_cannot_go_huge() {
        let mut g = guest();
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let mut base = BasePagesOnly;
        g.handle_fault(vma.start_frame(), &mut base).unwrap();
        let mut huge = AlwaysHuge;
        let (out, _) = g.handle_fault(vma.start_frame() + 1, &mut huge).unwrap();
        assert_eq!(out.size, PageSize::Base);
    }

    #[test]
    fn munmap_frees_everything_and_invalidates() {
        let mut g = guest();
        let mut p = AlwaysHuge;
        let vma = g.mmap(2 * HUGE_PAGE_SIZE).unwrap();
        g.handle_fault(vma.start_frame(), &mut p).unwrap();
        g.handle_fault(vma.start_frame() + 512, &mut p).unwrap();
        let free_before = g.buddy.free_frames();
        let fx = g.munmap(vma.id, &mut p, Cycles::ZERO).unwrap();
        assert_eq!(g.buddy.free_frames(), free_before + 1024);
        assert_eq!(fx.gva_regions_invalidated.len(), 2);
        assert_eq!(g.table.huge_mapped(), 0);
        g.buddy.check_invariants().unwrap();
        g.table.check_invariants().unwrap();
    }

    #[test]
    fn munmap_respects_bucket_interception() {
        /// Intercepts every freed huge page.
        struct Bucket(Vec<u64>);
        impl HugePolicy for Bucket {
            fn name(&self) -> &'static str {
                "bucket"
            }
            fn fault_decision(&mut self, _: &FaultCtx<'_>) -> FaultDecision {
                FaultDecision::Huge
            }
            fn intercept_huge_free(&mut self, pa: u64, _now: Cycles) -> bool {
                self.0.push(pa);
                true
            }
        }
        let mut g = guest();
        let mut p = Bucket(Vec::new());
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        g.handle_fault(vma.start_frame(), &mut p).unwrap();
        let used_before = g.buddy.used_frames();
        g.munmap(vma.id, &mut p, Cycles::ZERO).unwrap();
        // The huge page's frames did NOT return to the buddy.
        assert_eq!(g.buddy.used_frames(), used_before);
        assert_eq!(p.0.len(), 1);
    }

    #[test]
    fn daemon_runs_policy_promotions() {
        /// Promotes every populated region by copy.
        struct Collapse;
        impl HugePolicy for Collapse {
            fn name(&self) -> &'static str {
                "collapse"
            }
            fn fault_decision(&mut self, _: &FaultCtx<'_>) -> FaultDecision {
                FaultDecision::Base
            }
            fn daemon(&mut self, ops: &mut LayerOps<'_>) -> Vec<crate::policy::PromotionOp> {
                ops.table
                    .iter_regions()
                    .filter(|&(_, huge)| !huge)
                    .map(|(r, _)| {
                        crate::policy::PromotionOp::new(r, crate::policy::PromotionKind::Copy)
                    })
                    .collect()
            }
        }
        let mut g = guest();
        let mut p = Collapse;
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        for i in 0..40 {
            g.handle_fault(vma.start_frame() + i, &mut p).unwrap();
        }
        let fx = g.run_daemon(&mut p, Cycles::ZERO, 1);
        assert_eq!(g.table.huge_mapped(), 1);
        assert_eq!(fx.pages_copied, 40);
        assert_eq!(fx.shootdowns, 1);
    }

    #[test]
    fn touch_recording_feeds_daemon_view() {
        let mut g = guest();
        g.record_touch(100 * 512);
        g.record_touch(100 * 512 + 1);
        assert_eq!(g.touches.get(&100), Some(&2));
    }

    #[test]
    fn demote_splits_huge_mapping() {
        let mut g = guest();
        let mut p = AlwaysHuge;
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        g.handle_fault(vma.start_frame(), &mut p).unwrap();
        let region = vma.start_frame() >> HUGE_PAGE_ORDER;
        let fx = g.demote(region, 1).unwrap();
        assert_eq!(g.table.huge_mapped(), 0);
        assert_eq!(g.table.base_mapped(), 512);
        assert_eq!(fx.gva_regions_invalidated, vec![region]);
    }
}

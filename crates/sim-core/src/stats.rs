//! Statistics used by the experiment harness.
//!
//! The paper reports throughput (normalized), mean latency, and 99th
//! percentile latency per workload. [`RunningStats`] computes streaming
//! mean/variance (Welford), and [`LatencySamples`] retains request latencies
//! to extract exact percentiles, as the harness runs are small enough to
//! keep every sample.

use crate::clock::Cycles;

/// Streaming mean and variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance of the observations (0 when fewer than two).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A collection of per-request latencies with exact percentile queries.
#[derive(Debug, Clone, Default)]
pub struct LatencySamples {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencySamples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request latency.
    pub fn record(&mut self, latency: Cycles) {
        self.samples.push(latency.0);
        self.sorted = false;
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no requests have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in cycles (zero when empty).
    pub fn mean(&self) -> Cycles {
        if self.samples.is_empty() {
            return Cycles::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        Cycles((sum / self.samples.len() as u128) as u64)
    }

    /// Exact percentile by the nearest-rank method; `p` in `[0, 100]`.
    ///
    /// Returns zero when empty.
    pub fn percentile(&mut self, p: f64) -> Cycles {
        if self.samples.is_empty() {
            return Cycles::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        let idx = rank.clamp(1, self.samples.len()) - 1;
        Cycles(self.samples[idx])
    }

    /// The 99th-percentile (tail) latency the paper reports.
    pub fn p99(&mut self) -> Cycles {
        self.percentile(99.0)
    }

    /// Maximum latency observed.
    pub fn max(&self) -> Cycles {
        Cycles(self.samples.iter().copied().max().unwrap_or(0))
    }
}

/// Geometric mean of a slice of positive values; 0 when empty.
///
/// The harness uses geometric means to aggregate normalized speedups across
/// workloads, which is the standard way to average ratios.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_mean_and_variance() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn running_stats_degenerate_cases() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut one = RunningStats::new();
        one.push(42.0);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut l = LatencySamples::new();
        for i in 1..=100 {
            l.record(Cycles(i));
        }
        assert_eq!(l.percentile(50.0), Cycles(50));
        assert_eq!(l.p99(), Cycles(99));
        assert_eq!(l.percentile(100.0), Cycles(100));
        assert_eq!(l.percentile(1.0), Cycles(1));
        assert_eq!(l.max(), Cycles(100));
        assert_eq!(l.mean(), Cycles(50)); // (5050/100) truncated.
    }

    #[test]
    fn percentile_unsorted_input() {
        let mut l = LatencySamples::new();
        for v in [90u64, 10, 50, 70, 30] {
            l.record(Cycles(v));
        }
        assert_eq!(l.percentile(50.0), Cycles(50));
        // Recording after a query invalidates the sorted cache.
        l.record(Cycles(1));
        assert_eq!(l.percentile(1.0), Cycles(1));
    }

    #[test]
    fn empty_latencies() {
        let mut l = LatencySamples::new();
        assert!(l.is_empty());
        assert_eq!(l.mean(), Cycles::ZERO);
        assert_eq!(l.p99(), Cycles::ZERO);
        assert_eq!(l.max(), Cycles::ZERO);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}

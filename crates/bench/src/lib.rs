//! Shared helpers for the benchmark binaries.
//!
//! Every `benches/` target regenerates one or more of the paper's tables
//! and figures (see DESIGN.md's per-experiment index) and prints the rows
//! the paper reports. Scale is controlled by `GEMINI_SCALE`
//! (`quick` | `bench` | `full`, default `bench`) and op count by
//! `GEMINI_BENCH_OPS`.

use gemini_harness::Scale;

/// Resolves the scale for a bench binary from the environment.
pub fn bench_scale() -> Scale {
    let mut scale = Scale::from_env();
    if let Ok(ops) = std::env::var("GEMINI_BENCH_OPS") {
        match ops.parse::<u64>() {
            Ok(ops) => scale.ops = ops,
            Err(_) => eprintln!(
                "warning: GEMINI_BENCH_OPS={ops:?} is not a number; using the scale default"
            ),
        }
    }
    scale
}

/// Frames of 4 KiB pages expressed in MiB, without precedence surprises.
fn frames_to_mib(frames: u64) -> u64 {
    frames.saturating_mul(4096) >> 20
}

/// Prints a standard bench header.
pub fn header(name: &str, artefacts: &str) {
    let scale = bench_scale();
    println!("================================================================");
    println!("{name} — regenerates {artefacts}");
    println!(
        "scale: ws_factor={:.3}, ops={}, host={} MiB, vm={} MiB (set GEMINI_SCALE/GEMINI_BENCH_OPS to change)",
        scale.ws_factor,
        scale.ops,
        frames_to_mib(scale.host_frames),
        frames_to_mib(scale.vm_frames),
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scale_defaults_to_bench() {
        let s = bench_scale();
        assert!(s.ops > 0);
        assert!(s.ws_factor > 0.0);
    }
}

//! The whole-system simulator.
//!
//! A [`Machine`] owns the host memory manager, one or more VMs (each with
//! its guest memory manager and its own MMU/TLB state), the per-layer
//! huge-page policies of the selected [`SystemKind`], and — for Gemini —
//! the cross-layer runtime (MHPS + Algorithm 1). Workload event streams
//! from `gemini-workloads` execute against a VM: touches translate through
//! both page-table layers with demand faults, every translation is charged
//! through the `gemini-tlb` cost model, and background daemons run on the
//! VM's virtual clock, exactly interleaved with foreground progress.

//! # Examples
//!
//! ```
//! use gemini_vm_sim::{Machine, MachineConfig, SystemKind};
//! use gemini_workloads::{spec_by_name, WorkloadGen};
//!
//! let cfg = MachineConfig {
//!     host_frames: 1 << 15,
//!     vm_frames: 1 << 14,
//!     ..MachineConfig::default()
//! };
//! let mut machine = Machine::new(SystemKind::Gemini, cfg);
//! let vm = machine.add_vm().unwrap();
//! let spec = spec_by_name("Masstree")
//!     .expect("Masstree workload registered")
//!     .scaled(1.0 / 32.0);
//! let result = machine.run(vm, WorkloadGen::new(spec, 500, 42)).unwrap();
//! assert_eq!(result.ops, 500);
//! assert!(result.throughput() > 0.0);
//! ```

pub mod machine;
pub mod result;
pub mod system;

pub use machine::{FleetArrival, Machine, MachineConfig};
pub use result::{FleetOutcome, FleetVmRecord, RunResult};
pub use system::{PolicyCtor, ScenarioSpec, SystemKind, REGISTRY};

//! The huge bucket (paper §5).
//!
//! When a well-aligned huge page is freed by the guest, its guest-physical
//! region is still backed by a host huge page — returning it to the buddy
//! allocator would let small allocations splinter it, destroying the
//! alignment that was expensive to build (the reused-VM problem, §6.3).
//! The huge bucket intercepts such frees, holds the whole region for a
//! grace period, and hands regions back *wholesale* to later huge
//! allocations. Held regions are returned to the OS when they time out,
//! when memory runs short, or when fragmentation pressure demands it.

use gemini_buddy::BuddyAllocator;
use gemini_sim_core::{Cycles, HUGE_PAGE_ORDER};
use std::collections::VecDeque;

/// FIFO of freed, still-aligned huge regions.
#[derive(Debug, Default)]
pub struct HugeBucket {
    /// (huge-frame, time the region entered the bucket), oldest first.
    entries: VecDeque<(u64, Cycles)>,
    /// Regions handed back to allocations (stats: the paper's 88 % reuse).
    pub reused_total: u64,
    /// Regions accepted into the bucket (stats).
    pub offered_total: u64,
    /// Regions returned to the OS unreused (stats).
    pub released_total: u64,
}

impl HugeBucket {
    /// Creates an empty bucket.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of regions currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no regions are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accepts a freed well-aligned region into the bucket.
    pub fn offer(&mut self, huge_frame: u64, now: Cycles) {
        self.entries.push_back((huge_frame, now));
        self.offered_total += 1;
    }

    /// Hands out the oldest held region for a huge allocation.
    pub fn take(&mut self) -> Option<u64> {
        let (hf, _) = self.entries.pop_front()?;
        self.reused_total += 1;
        Some(hf)
    }

    /// Hands out a specific held region, if present.
    pub fn take_at(&mut self, huge_frame: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|&(hf, _)| hf == huge_frame) {
            self.entries.remove(pos);
            self.reused_total += 1;
            true
        } else {
            false
        }
    }

    /// True when `huge_frame` is currently held.
    pub fn contains(&self, huge_frame: u64) -> bool {
        self.entries.iter().any(|&(hf, _)| hf == huge_frame)
    }

    /// Returns regions held longer than `hold` to `buddy`.
    pub fn expire(&mut self, buddy: &mut BuddyAllocator, now: Cycles, hold: Cycles) -> usize {
        let mut released = 0;
        while let Some(&(hf, t)) = self.entries.front() {
            if now.saturating_sub(t) < hold {
                break;
            }
            self.entries.pop_front();
            buddy
                .free(hf << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER)
                .expect("bucket owned this region");
            released += 1;
        }
        self.released_total += released as u64;
        released as usize
    }

    /// Returns up to `count` regions immediately (memory-pressure or
    /// fragmentation path: "Gemini also returns some well-aligned huge
    /// pages when memory becomes scarce or fragmentation becomes severe").
    pub fn release(&mut self, buddy: &mut BuddyAllocator, count: usize) -> usize {
        let mut released = 0;
        for _ in 0..count {
            let Some((hf, _)) = self.entries.pop_front() else {
                break;
            };
            buddy
                .free(hf << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER)
                .expect("bucket owned this region");
            released += 1;
        }
        self.released_total += released as u64;
        released
    }

    /// Fraction of offered regions that were reused (0 when none offered).
    pub fn reuse_rate(&self) -> f64 {
        if self.offered_total == 0 {
            0.0
        } else {
            self.reused_total as f64 / self.offered_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_take_order() {
        let mut b = HugeBucket::new();
        b.offer(5, Cycles(0));
        b.offer(9, Cycles(1));
        assert_eq!(b.len(), 2);
        assert!(b.contains(5));
        assert_eq!(b.take(), Some(5));
        assert_eq!(b.take(), Some(9));
        assert_eq!(b.take(), None);
        assert_eq!(b.reused_total, 2);
        assert_eq!(b.reuse_rate(), 1.0);
    }

    #[test]
    fn take_at_specific_region() {
        let mut b = HugeBucket::new();
        b.offer(1, Cycles(0));
        b.offer(2, Cycles(0));
        assert!(b.take_at(2));
        assert!(!b.take_at(2));
        assert_eq!(b.take(), Some(1));
    }

    #[test]
    fn expire_respects_hold_time() {
        // The bucket owns regions carved from this buddy.
        let mut buddy = BuddyAllocator::new(4096);
        buddy.alloc_at(0, HUGE_PAGE_ORDER).unwrap();
        buddy.alloc_at(512, HUGE_PAGE_ORDER).unwrap();
        let mut b = HugeBucket::new();
        b.offer(0, Cycles(0));
        b.offer(1, Cycles(50));
        assert_eq!(b.expire(&mut buddy, Cycles(99), Cycles(100)), 0);
        assert_eq!(b.expire(&mut buddy, Cycles(100), Cycles(100)), 1);
        assert!(buddy.is_frame_free(0));
        assert!(!buddy.is_frame_free(512));
        assert_eq!(b.expire(&mut buddy, Cycles(150), Cycles(100)), 1);
        assert_eq!(b.released_total, 2);
        buddy.check_invariants().unwrap();
    }

    #[test]
    fn pressure_release_returns_oldest_first() {
        let mut buddy = BuddyAllocator::new(4096);
        for hf in 0..3 {
            buddy
                .alloc_at(hf << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER)
                .unwrap();
        }
        let mut b = HugeBucket::new();
        for hf in 0..3 {
            b.offer(hf, Cycles(hf));
        }
        assert_eq!(b.release(&mut buddy, 2), 2);
        assert!(buddy.is_frame_free(0));
        assert!(buddy.is_frame_free(512));
        assert!(!buddy.is_frame_free(1024));
        assert_eq!(b.len(), 1);
        // Releasing more than held is safe.
        assert_eq!(b.release(&mut buddy, 10), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn reuse_rate_counts_only_reuses() {
        let mut buddy = BuddyAllocator::new(2048);
        buddy.alloc_at(0, HUGE_PAGE_ORDER).unwrap();
        buddy.alloc_at(512, HUGE_PAGE_ORDER).unwrap();
        let mut b = HugeBucket::new();
        b.offer(0, Cycles(0));
        b.offer(1, Cycles(0));
        b.take();
        b.release(&mut buddy, 1);
        assert!((b.reuse_rate() - 0.5).abs() < 1e-12);
    }
}

//! Static page-size policies: the `Host-B-VM-B` and `Misalignment`
//! baselines.

use gemini_mm::{FaultCtx, FaultDecision, HugePolicy};
use gemini_sim_core::HUGE_PAGE_ORDER;

/// Always uses base pages.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaseOnly;

impl HugePolicy for BaseOnly {
    fn name(&self) -> &'static str {
        "Base"
    }

    fn fault_decision(&mut self, _ctx: &FaultCtx<'_>) -> FaultDecision {
        FaultDecision::Base
    }
}

/// Uses a huge page whenever the region is empty and a huge block exists;
/// never coalesces afterwards.
///
/// At the host layer with [`BaseOnly`] in the guest, this constructs the
/// paper's `Misalignment` scenario: every host huge page is mis-aligned by
/// construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct HugeAlways;

impl HugePolicy for HugeAlways {
    fn name(&self) -> &'static str {
        "HugeAlways"
    }

    fn fault_decision(&mut self, ctx: &FaultCtx<'_>) -> FaultDecision {
        if ctx
            .buddy
            .free_area_counts()
            .free_blocks_suitable(HUGE_PAGE_ORDER)
            > 0
        {
            FaultDecision::Huge
        } else {
            FaultDecision::Base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_mm::{CostModel, HostMm};
    use gemini_sim_core::VmId;

    #[test]
    fn huge_always_backs_huge_until_memory_runs_short() {
        let mut h = HostMm::new(1024 + 16, CostModel::default());
        h.register_vm(VmId(1));
        let mut p = HugeAlways;
        let (o1, _) = h.handle_fault(VmId(1), 0, &mut p).unwrap();
        let (o2, _) = h.handle_fault(VmId(1), 512, &mut p).unwrap();
        assert_eq!(o1.size, gemini_sim_core::page::PageSize::Huge);
        assert_eq!(o2.size, gemini_sim_core::page::PageSize::Huge);
        // Only 16 loose frames left: falls back to base.
        let (o3, _) = h.handle_fault(VmId(1), 1024, &mut p).unwrap();
        assert_eq!(o3.size, gemini_sim_core::page::PageSize::Base);
    }
}

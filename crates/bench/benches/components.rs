#![allow(missing_docs)]
//! Criterion microbenchmarks of the core components: buddy allocation,
//! page-table mapping and promotion, the two-dimensional MMU walk, EMA's
//! self-organizing descriptor list, and the MHPS scan.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gemini::ema::{EmaList, OffsetDescriptor};
use gemini::mhps::scan_vm;
use gemini_buddy::BuddyAllocator;
use gemini_page_table::{AddressSpace, LeafSize};
use gemini_sim_core::{DetRng, VmId};
use gemini_tlb::{MmuConfig, MmuSim, ResolvedTranslation};

fn bench_buddy(c: &mut Criterion) {
    let mut g = c.benchmark_group("buddy");
    g.bench_function("alloc_free_base", |b| {
        let mut buddy = BuddyAllocator::new(1 << 16);
        b.iter(|| {
            let f = buddy.alloc(0).expect("memory available");
            buddy.free(f, 0).expect("frame owned");
        });
    });
    g.bench_function("alloc_free_huge", |b| {
        let mut buddy = BuddyAllocator::new(1 << 16);
        b.iter(|| {
            let f = buddy.alloc(9).expect("memory available");
            buddy.free(f, 9).expect("block owned");
        });
    });
    g.bench_function("alloc_at_targeted", |b| {
        let mut buddy = BuddyAllocator::new(1 << 16);
        b.iter(|| {
            buddy.alloc_at(12_288, 9).expect("range free");
            buddy.free(12_288, 9).expect("block owned");
        });
    });
    g.bench_function("free_runs_fragmented", |b| {
        let mut buddy = BuddyAllocator::new(1 << 14);
        let mut rng = DetRng::new(1);
        gemini_mm::fragment_to(&mut buddy, 0.9, 0.1, &mut rng);
        b.iter(|| buddy.free_runs().len());
    });
    g.finish();
}

fn bench_page_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_table");
    g.bench_function("map_unmap_base", |b| {
        let mut t = AddressSpace::new();
        b.iter(|| {
            t.map_base(1000, 7).expect("unmapped");
            t.unmap_base(1000).expect("mapped");
        });
    });
    g.bench_function("translate_hit", |b| {
        let mut t = AddressSpace::new();
        t.map_huge(3, 9).expect("empty");
        b.iter(|| t.translate(3 * 512 + 100));
    });
    g.bench_function("promote_in_place", |b| {
        b.iter_batched(
            || {
                let mut t = AddressSpace::new();
                for i in 0..512 {
                    t.map_base(i, 512 + i).expect("unmapped");
                }
                t
            },
            |mut t| t.promote_in_place(0).expect("eligible"),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_mmu(c: &mut Criterion) {
    let mut g = c.benchmark_group("mmu");
    let vm = VmId(1);
    g.bench_function("access_tlb_hit", |b| {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        let t = ResolvedTranslation {
            gpa_frame: 7,
            guest_leaf: LeafSize::Base,
            host_leaf: LeafSize::Base,
        };
        mmu.access(vm, 7, t);
        b.iter(|| mmu.access(vm, 7, t));
    });
    g.bench_function("access_walk_2d_cold", |b| {
        let mut mmu = MmuSim::new(MmuConfig::tiny()).unwrap();
        let mut frame = 0u64;
        b.iter(|| {
            frame = frame.wrapping_add(1 << 18); // Defeat all caches.
            mmu.access(
                vm,
                frame,
                ResolvedTranslation {
                    gpa_frame: frame,
                    guest_leaf: LeafSize::Base,
                    host_leaf: LeafSize::Base,
                },
            )
        });
    });
    g.finish();
}

fn bench_ema(c: &mut Criterion) {
    let mut g = c.benchmark_group("ema");
    g.bench_function("self_organizing_find_hot", |b| {
        let mut list = EmaList::new();
        for k in 0..64 {
            list.insert(OffsetDescriptor {
                key: k,
                start: k * 4096,
                len: 4096,
                offset: 0,
            });
        }
        // The hot key migrates to the front: steady-state find is O(1).
        b.iter(|| list.find(63, 63 * 4096 + 5).is_some());
    });
    g.finish();
}

fn bench_mhps(c: &mut Criterion) {
    let mut g = c.benchmark_group("mhps");
    g.bench_function("scan_mixed_vm", |b| {
        let mut guest = AddressSpace::new();
        let mut ept = AddressSpace::new();
        for r in 0..128u64 {
            if r % 3 == 0 {
                guest.map_huge(r, r).expect("empty");
                ept.map_huge(r, r).expect("empty");
            } else if r % 3 == 1 {
                guest.map_huge(r, 1000 + r).expect("empty");
            } else {
                for i in 0..64 {
                    guest.map_base(r * 512 + i, 2000 * 512 + r * 64 + i).expect("unmapped");
                }
                ept.map_huge(2000 + (r * 64 >> 9), 3000 + r).ok();
            }
        }
        b.iter(|| scan_vm(VmId(1), &guest, &ept).misaligned_total());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_buddy,
    bench_page_table,
    bench_mmu,
    bench_ema,
    bench_mhps
);
criterion_main!(benches);

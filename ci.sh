#!/usr/bin/env bash
# Repo CI gate: formatting, lints (warnings are errors), full test suite.
# Runs fully offline; the bench crate is a standalone workspace and is
# covered only when its registry dependencies are available.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace --offline -q

echo "CI gate passed."

//! MMU geometry and timing configuration.

/// Geometry and latencies of the simulated translation hardware.
///
/// Defaults follow the paper's testbed (Intel Xeon E5-2620 v4 class):
/// 64-entry L1 dTLB for 4 KiB pages, 32-entry L1 dTLB for 2 MiB pages, a
/// unified 1536-entry L2 STLB holding 4 KiB and 2 MiB entries, small
/// paging-structure caches, and a nested TLB for GPA → HPA translations.
#[derive(Debug, Clone)]
pub struct MmuConfig {
    /// L1 data-TLB entries for 4 KiB pages.
    pub l1_4k_entries: usize,
    /// L1 data-TLB associativity for 4 KiB pages.
    pub l1_4k_assoc: usize,
    /// L1 data-TLB entries for 2 MiB pages.
    pub l1_2m_entries: usize,
    /// L1 data-TLB associativity for 2 MiB pages.
    pub l1_2m_assoc: usize,
    /// Unified L2 STLB entries (4 KiB and 2 MiB share it).
    pub stlb_entries: usize,
    /// L2 STLB associativity.
    pub stlb_assoc: usize,
    /// Nested-TLB entries (GPA → HPA translations used inside walks).
    pub ntlb_entries: usize,
    /// Nested-TLB associativity.
    pub ntlb_assoc: usize,
    /// Guest paging-structure-cache entries per cached level (L4, L3, L2).
    pub gpwc_entries: [usize; 3],
    /// EPT paging-structure-cache entries per cached level (L4, L3, L2).
    pub epwc_entries: [usize; 3],
    /// Cycles for an access whose translation hits the L1 TLB.
    pub l1_hit_cycles: u64,
    /// Additional cycles when the translation is found in the L2 STLB.
    pub stlb_hit_cycles: u64,
    /// Cycles per memory reference made by the page walker.
    pub walk_ref_cycles: u64,
    /// Fixed overhead cycles to start the walker on an STLB miss.
    pub walk_setup_cycles: u64,
}

impl Default for MmuConfig {
    fn default() -> Self {
        Self {
            l1_4k_entries: 64,
            l1_4k_assoc: 4,
            l1_2m_entries: 32,
            l1_2m_assoc: 4,
            stlb_entries: 1536,
            stlb_assoc: 12,
            ntlb_entries: 512,
            ntlb_assoc: 8,
            gpwc_entries: [16, 16, 32],
            epwc_entries: [16, 16, 32],
            l1_hit_cycles: 1,
            stlb_hit_cycles: 7,
            walk_ref_cycles: 60,
            walk_setup_cycles: 10,
        }
    }
}

impl MmuConfig {
    /// A down-scaled configuration for fast unit tests: tiny TLBs so that
    /// miss behaviour appears with small working sets.
    pub fn tiny() -> Self {
        Self {
            l1_4k_entries: 4,
            l1_4k_assoc: 2,
            l1_2m_entries: 2,
            l1_2m_assoc: 2,
            stlb_entries: 16,
            stlb_assoc: 4,
            ntlb_entries: 8,
            ntlb_assoc: 2,
            gpwc_entries: [2, 2, 4],
            epwc_entries: [2, 2, 4],
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_testbed_geometry() {
        let c = MmuConfig::default();
        assert_eq!(c.stlb_entries, 1536);
        assert_eq!(c.l1_4k_entries, 64);
        assert!(c.walk_ref_cycles > c.stlb_hit_cycles);
    }

    #[test]
    fn tiny_is_smaller_but_same_latencies() {
        let t = MmuConfig::tiny();
        let d = MmuConfig::default();
        assert!(t.stlb_entries < d.stlb_entries);
        assert_eq!(t.walk_ref_cycles, d.walk_ref_cycles);
    }
}

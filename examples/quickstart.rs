//! Quickstart: run one workload under Linux THP and under Gemini on a
//! fragmented virtualized host, and compare what the paper cares about —
//! well-aligned huge pages, TLB misses and throughput.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gemini_harness::{run_workload_on, Scale};
use gemini_vm_sim::SystemKind;
use gemini_workloads::spec_by_name;

fn main() {
    let scale = Scale::demo();
    let spec = spec_by_name("Masstree").expect("Masstree is in the catalog");
    println!(
        "Running {} (working set {} MiB scaled) on fragmented memory...\n",
        spec.name,
        (spec.working_set as f64 * scale.ws_factor) as u64 >> 20
    );

    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>12}",
        "system", "ops/s", "TLB misses", "aligned rate", "p99 (µs)"
    );
    for system in [
        SystemKind::HostBVmB,
        SystemKind::Thp,
        SystemKind::Ingens,
        SystemKind::Gemini,
    ] {
        let r = run_workload_on(system, &spec, &scale, true, 7).expect("run succeeds");
        println!(
            "{:<14} {:>12.0} {:>12} {:>13.0}% {:>12.1}",
            r.system,
            r.throughput(),
            r.tlb_misses(),
            r.aligned_rate() * 100.0,
            r.p99_latency.as_micros_f64(),
        );
    }
    println!(
        "\nOnly huge pages aligned across BOTH translation layers cut TLB\n\
         misses; Gemini coordinates the layers, the baselines align by luck."
    );
}

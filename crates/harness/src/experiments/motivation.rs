//! Figure 3 and Table 1 — the motivation experiment.
//!
//! Two throughput-oriented PARSEC applications (Canneal, Streamcluster)
//! and two latency-sensitive TailBench applications (Img-dnn, Specjbb),
//! under the eight systems with fragmented memory. The point of the
//! figure: uncoordinated coalescing leaves well-aligned rates low and the
//! effort largely wasted; Gemini aligns the majority.

use crate::exec::run_cells_hinted;
use crate::report::{fmt_pct, fmt_ratio, Table};
use crate::runner::run_workload_on;
use crate::scale::Scale;
use gemini_sim_core::Result;
use gemini_vm_sim::{RunResult, SystemKind};
use gemini_workloads::spec_by_name;

/// The four motivation workloads, in the paper's order.
pub const WORKLOADS: [&str; 4] = ["Canneal", "Streamcluster", "Img-dnn", "Specjbb"];

/// Results: `runs[workload][system]`.
#[derive(Debug)]
pub struct MotivationResults {
    /// Per-workload, per-system results.
    pub runs: Vec<Vec<RunResult>>,
}

/// Runs the motivation grid (fragmented memory, like §2.3).
pub fn run(scale: &Scale) -> Result<MotivationResults> {
    let systems = SystemKind::evaluated();
    let mut cells = Vec::new();
    for (wi, name) in WORKLOADS.iter().enumerate() {
        let spec = spec_by_name(name).expect("motivation workload in catalog");
        let seed = scale.seed_for("motivation", wi as u64);
        for &system in &systems {
            let spec = spec.clone();
            // LPT dispatch: the hint steers which pending cell a worker
            // takes first; results reassemble in submission order.
            cells.push((system.cost_hint(), move || {
                run_workload_on(system, &spec, scale, true, seed)
            }));
        }
    }
    let mut results = run_cells_hinted(scale.jobs, &gemini_obs::Recorder::off(), cells).into_iter();
    let mut runs = Vec::new();
    for _ in WORKLOADS {
        let mut per_sys = Vec::new();
        for _ in &systems {
            per_sys.push(results.next().expect("one result per cell")?);
        }
        runs.push(per_sys);
    }
    Ok(MotivationResults { runs })
}

impl MotivationResults {
    /// Fig. 3: throughputs (Canneal, Streamcluster) and mean latencies
    /// (Img-dnn, Specjbb), normalized to `Host-B-VM-B`.
    pub fn render_fig03(&self) -> String {
        let mut headers = vec!["workload (metric)"];
        headers.extend(SystemKind::evaluated().iter().map(|s| s.label()));
        let mut t = Table::new(
            "Figure 3: motivation — normalized performance under fragmented memory",
            &headers,
        );
        for (wi, name) in WORKLOADS.iter().enumerate() {
            let row = &self.runs[wi];
            let latency = row[0].mean_latency.0 > 0;
            let mut cells = vec![format!(
                "{name} ({})",
                if latency { "latency" } else { "throughput" }
            )];
            for r in row {
                let norm = if latency {
                    r.mean_latency.0 as f64 / row[0].mean_latency.0 as f64
                } else {
                    r.throughput() / row[0].throughput()
                };
                cells.push(fmt_ratio(norm));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Table 1: rates of well-aligned huge pages.
    pub fn render_tab01(&self) -> String {
        let mut headers = vec!["workload"];
        headers.extend(SystemKind::tabulated().iter().map(|s| s.label()));
        let mut t = Table::new("Table 1: rates of well-aligned huge pages", &headers);
        let eval = SystemKind::evaluated();
        for (wi, name) in WORKLOADS.iter().enumerate() {
            let mut cells = vec![name.to_string()];
            for s in SystemKind::tabulated() {
                let i = eval.iter().position(|&e| e == s).expect("subset");
                cells.push(fmt_pct(self.runs[wi][i].aligned_rate()));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Gemini's aligned rate averaged over the four workloads.
    pub fn gemini_mean_aligned(&self) -> f64 {
        let i = SystemKind::evaluated()
            .iter()
            .position(|&s| s == SystemKind::Gemini)
            .expect("Gemini evaluated");
        self.runs.iter().map(|r| r[i].aligned_rate()).sum::<f64>() / self.runs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivation_grid_runs_and_renders() {
        let scale = Scale {
            ops: 1_200,
            ..Scale::quick()
        };
        let res = run(&scale).unwrap();
        assert_eq!(res.runs.len(), 4);
        let fig = res.render_fig03();
        assert!(fig.contains("Canneal (throughput)"));
        assert!(fig.contains("Img-dnn (latency)"));
        let tab = res.render_tab01();
        assert!(tab.contains("GEMINI"));
        assert!(res.gemini_mean_aligned() >= 0.0);
    }
}

//! [`GeminiRuntime`] — the host-resident coordinator (the prototype's
//! `kgeminid` kernel thread).
//!
//! Periodically:
//!
//! 1. runs MHPS over every VM's two page-table layers and publishes the
//!    per-VM scan results into [`GeminiShared`], making each layer aware
//!    of the mis-aligned huge pages formed at the other layer;
//! 2. feeds TLB-miss and fragmentation telemetry into the Algorithm 1
//!    [`TimeoutController`] and publishes the adjusted booking timeout.

use crate::mhps::scan_vm;
use crate::shared::GeminiShared;
use crate::timeout::TimeoutController;
use gemini_obs::{cat, EventKind, Layer, Phase, Profiler, Recorder};
use gemini_page_table::AddressSpace;
use gemini_sim_core::{Cycles, VmId};

/// The scan-and-adjust coordinator.
#[derive(Debug)]
pub struct GeminiRuntime {
    shared: GeminiShared,
    controller: TimeoutController,
    /// How often MHPS scans.
    pub scan_period: Cycles,
    /// How often the timeout controller samples (Algorithm 1's `P`).
    pub adjust_period: Cycles,
    next_scan: Cycles,
    next_adjust: Cycles,
    /// TLB-miss counter value at the last adjustment.
    last_tlb_misses: u64,
    /// Completed scans (stats).
    pub scans_done: u64,
    /// When false, Algorithm 1 is frozen and the published timeout stays
    /// fixed (the fixed-vs-adaptive ablation).
    pub adaptive: bool,
    rec: Recorder,
    prof: Profiler,
}

impl GeminiRuntime {
    /// Creates a runtime publishing into `shared`.
    pub fn new(shared: GeminiShared) -> Self {
        let initial = shared.read().booking_timeout;
        Self {
            shared,
            controller: TimeoutController::new(initial),
            scan_period: Cycles::from_millis(2.0),
            adjust_period: Cycles::from_millis(20.0),
            next_scan: Cycles::ZERO,
            next_adjust: Cycles::from_millis(20.0),
            last_tlb_misses: 0,
            scans_done: 0,
            adaptive: true,
            rec: Recorder::off(),
            prof: Profiler::off(),
        }
    }

    /// Attaches an observability recorder; Algorithm 1's timeout
    /// decisions are traced through it.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Attaches a span profiler; MHPS scan passes record
    /// contiguity-scan spans through it.
    pub fn set_profiler(&mut self, prof: Profiler) {
        self.prof = prof;
    }

    /// The current booking timeout (for tests/telemetry).
    pub fn booking_timeout(&self) -> Cycles {
        self.controller.effective()
    }

    /// The earliest instant at which [`GeminiRuntime::tick`] has due
    /// work. A tick strictly before this deadline performs no scan and
    /// no adjustment, mutates nothing, and returns zero cost — the
    /// machine's fast-forward gate relies on that to elide the call
    /// (and the telemetry gather feeding it) during quiescent spans.
    pub fn next_deadline(&self) -> Cycles {
        if self.adaptive {
            self.next_scan.min(self.next_adjust)
        } else {
            self.next_scan
        }
    }

    /// Runs due work at time `now`. `tables` provides, per VM, the guest
    /// process table and the EPT; `tlb_misses` is the machine-wide
    /// cumulative TLB-miss counter and `fmfi` the current host
    /// fragmentation index.
    ///
    /// Returns the cycle cost of the scan work performed (charged to the
    /// background, not the workload).
    pub fn tick(
        &mut self,
        now: Cycles,
        tables: &[(VmId, &AddressSpace, &AddressSpace)],
        tlb_misses: u64,
        fmfi: f64,
    ) -> Cycles {
        let mut cost = Cycles::ZERO;
        if now >= self.next_scan {
            let _scan_span = self.prof.span(Phase::ContiguityScan);
            for &(vm, guest, ept) in tables {
                let scan = scan_vm(vm, guest, ept);
                // Scan cost is linear in mapped regions.
                let regions = guest.huge_mapped()
                    + ept.huge_mapped()
                    + guest.base_mapped() / 64
                    + ept.base_mapped() / 64;
                cost += Cycles(200 + regions * 20);
                self.shared
                    .write()
                    .scans
                    .insert(vm, std::sync::Arc::new(scan));
            }
            self.scans_done += 1;
            self.rec.counter_add("gemini.mhps_scans", 1);
            self.next_scan = now + self.scan_period;
        }
        if self.adaptive && now >= self.next_adjust {
            let delta = tlb_misses.saturating_sub(self.last_tlb_misses);
            self.last_tlb_misses = tlb_misses;
            let new_timeout = self.controller.on_period(delta, fmfi);
            self.shared.write().booking_timeout = new_timeout;
            self.rec.set_cycle(now);
            self.rec
                .emit(cat::RUNTIME, 0, Layer::Sys, || EventKind::TimeoutAdjusted {
                    timeout_cycles: new_timeout.0,
                });
            self.rec
                .gauge_set("gemini.booking_timeout_cycles", new_timeout.0 as f64);
            self.next_adjust = now + self.adjust_period;
            cost += Cycles(500);
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::new_shared;
    use std::sync::Arc;

    #[test]
    fn scan_publishes_results_per_vm() {
        let shared = new_shared();
        let mut rt = GeminiRuntime::new(Arc::clone(&shared));
        let mut guest = AddressSpace::new();
        let ept = AddressSpace::new();
        guest.map_huge(0, 4).unwrap();
        let cost = rt.tick(Cycles::ZERO, &[(VmId(1), &guest, &ept)], 0, 0.0);
        assert!(cost > Cycles::ZERO);
        let s = shared.read();
        let scan = &s.scans[&VmId(1)];
        assert_eq!(scan.guest_type1, vec![4]);
        assert_eq!(rt.scans_done, 1);
    }

    #[test]
    fn scan_respects_period() {
        let shared = new_shared();
        let mut rt = GeminiRuntime::new(Arc::clone(&shared));
        let guest = AddressSpace::new();
        let ept = AddressSpace::new();
        rt.tick(Cycles::ZERO, &[(VmId(1), &guest, &ept)], 0, 0.0);
        // Immediately again: not due.
        rt.tick(Cycles(1), &[(VmId(1), &guest, &ept)], 0, 0.0);
        assert_eq!(rt.scans_done, 1);
        rt.tick(
            rt.scan_period + Cycles(1),
            &[(VmId(1), &guest, &ept)],
            0,
            0.0,
        );
        assert_eq!(rt.scans_done, 2);
    }

    #[test]
    fn timeout_adjustment_publishes_to_shared() {
        let shared = new_shared();
        let initial = shared.read().booking_timeout;
        let mut rt = GeminiRuntime::new(Arc::clone(&shared));
        let guest = AddressSpace::new();
        let ept = AddressSpace::new();
        // First adjustment period: baseline sample, probe up published.
        rt.tick(rt.adjust_period, &[(VmId(1), &guest, &ept)], 1000, 0.2);
        let probed = shared.read().booking_timeout;
        assert_eq!(probed, initial.scale(1.1));
        // Second period with fewer misses: probe accepted.
        rt.tick(
            rt.adjust_period * 2 + Cycles(1),
            &[(VmId(1), &guest, &ept)],
            1500, // Cumulative: delta 500 < baseline delta 1000.
            0.2,
        );
        assert_eq!(shared.read().booking_timeout, initial.scale(1.1));
        assert_eq!(rt.booking_timeout(), initial.scale(1.1));
    }
}

//! Deterministic fleet plans: VM arrivals, lifetimes and first-fit
//! host placement.
//!
//! The paper's premise is that host memory fragments over *time* under
//! tenant churn. A [`FleetPlan`] models that regime as data: a pure
//! function of `(spec, seed)` that draws a workload, a lifetime and a
//! footprint for every VM from a [`DetRng`] and bin-packs the VMs onto
//! hosts first-fit over their planned residency intervals. The plan
//! carries no machine state — the vm-sim fleet driver replays each
//! host's arrival sequence against a real `Machine`, re-enforcing the
//! capacity limit at admission time — so the same plan drives identical
//! trajectories at any `--jobs` setting.

use crate::spec::{catalog, WorkloadSpec};
use gemini_sim_core::{derive_seed, DetRng, BASE_PAGE_SIZE};

/// Parameters of a fleet: how many VMs arrive, onto how many hosts, and
/// how big/long-lived each VM is.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Total VMs that arrive over the horizon.
    pub vm_count: u32,
    /// Hosts the fleet is packed onto (one simulated machine each).
    pub hosts: u32,
    /// Host physical memory in base frames (per host).
    pub host_frames: u64,
    /// Fraction of a host's frames resident VMs may collectively plan
    /// to occupy; the rest is headroom for metadata drift and the
    /// host-side daemons.
    pub resident_frac: f64,
    /// Mean VM lifetime in operations; actual lifetimes are drawn
    /// uniformly from `[mean/2, 3*mean/2)`.
    pub mean_ops: u64,
    /// Upper bound on the (uniform) arrival gap between consecutive
    /// VMs, in the same op units as lifetimes. Small gaps relative to
    /// `mean_ops` keep many VMs alive at once, which is what makes the
    /// residency cap bind and first-fit spill across hosts.
    pub arrival_gap: u64,
    /// Working-set scale factor applied to every drawn workload (fleet
    /// VMs are deliberately small so many fit one host).
    pub ws_factor: f64,
}

/// One planned VM: what it runs, for how long, and under which seed.
#[derive(Debug, Clone)]
pub struct VmPlan {
    /// Fleet-wide arrival ordinal (0-based).
    pub index: u32,
    /// The scaled workload the VM runs for its whole lifetime.
    pub spec: WorkloadSpec,
    /// Lifetime in operations; the VM departs when they complete.
    pub ops: u64,
    /// Seed of the VM's workload event stream.
    pub seed: u64,
    /// Planned host-frame footprint (working set in base frames),
    /// charged against the host's residency cap at admission.
    pub footprint_frames: u64,
}

/// The arrival sequence routed to one host, in arrival order.
#[derive(Debug, Clone)]
pub struct HostPlan {
    /// Host ordinal (0-based).
    pub host: u32,
    /// VMs in arrival order.
    pub vms: Vec<VmPlan>,
}

/// A whole fleet's placement: per-host arrival sequences plus the
/// residency cap the driver enforces at admission.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// Per-host arrival sequences.
    pub hosts: Vec<HostPlan>,
    /// Maximum planned frames resident on one host at once.
    pub resident_cap_frames: u64,
}

impl FleetPlan {
    /// Draws a fleet from `seed`: per-VM workload, lifetime and arrival
    /// gap, then first-fit placement over planned residency intervals
    /// (a VM occupies its host from its arrival tick until its lifetime
    /// elapses, in the same op-units lifetimes are drawn in). When no
    /// host has room at a VM's arrival, the least-loaded host takes it;
    /// the driver's admission queue absorbs the overflow at run time.
    pub fn generate(spec: &FleetSpec, seed: u64) -> FleetPlan {
        let cap = ((spec.host_frames as f64) * spec.resident_frac) as u64;
        let names: Vec<&'static str> = catalog().iter().map(|w| w.name).collect();
        // Per-host live intervals: (departure tick, planned frames).
        let mut live: Vec<Vec<(u64, u64)>> = vec![Vec::new(); spec.hosts as usize];
        let mut hosts: Vec<HostPlan> = (0..spec.hosts)
            .map(|host| HostPlan {
                host,
                vms: Vec::new(),
            })
            .collect();
        let mut now = 0u64;
        for index in 0..spec.vm_count {
            let mut rng = DetRng::new(derive_seed(seed, "fleet-vm", index as u64));
            now += rng.range(1, spec.arrival_gap.max(2));
            let name = names[rng.below(names.len() as u64) as usize];
            let wspec = catalog()
                .into_iter()
                .find(|w| w.name == name)
                .expect("name came from the catalog")
                .scaled(spec.ws_factor);
            let ops = spec.mean_ops / 2 + rng.below(spec.mean_ops.max(1));
            let plan = VmPlan {
                index,
                footprint_frames: wspec.working_set / BASE_PAGE_SIZE,
                spec: wspec,
                ops,
                seed: derive_seed(seed, "fleet-stream", index as u64),
            };
            let depart = now + ops.max(1);
            let host = Self::place(&mut live, plan.footprint_frames, now, cap);
            live[host].push((depart, plan.footprint_frames));
            hosts[host].vms.push(plan);
        }
        FleetPlan {
            hosts,
            resident_cap_frames: cap,
        }
    }

    /// First host with room at tick `now` (after expiring departed
    /// intervals), else the least-loaded host.
    fn place(live: &mut [Vec<(u64, u64)>], frames: u64, now: u64, cap: u64) -> usize {
        let mut loads = Vec::with_capacity(live.len());
        for intervals in live.iter_mut() {
            intervals.retain(|&(depart, _)| depart > now);
            loads.push(intervals.iter().map(|&(_, f)| f).sum::<u64>());
        }
        loads
            .iter()
            .position(|&load| load + frames <= cap)
            .unwrap_or_else(|| {
                loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &load)| load)
                    .map(|(i, _)| i)
                    .expect("at least one host")
            })
    }

    /// Total VMs across all hosts.
    pub fn vm_count(&self) -> usize {
        self.hosts.iter().map(|h| h.vms.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FleetSpec {
        FleetSpec {
            vm_count: 120,
            hosts: 4,
            host_frames: 1 << 16,
            // Tight cap + fast arrivals: ~10 VMs fit one host while
            // ~60 are alive fleet-wide, so placement must spill.
            resident_frac: 0.2,
            mean_ops: 200,
            arrival_gap: 6,
            ws_factor: 1.0 / 32.0,
        }
    }

    #[test]
    fn plan_is_deterministic_and_complete() {
        let a = FleetPlan::generate(&spec(), 42);
        let b = FleetPlan::generate(&spec(), 42);
        assert_eq!(a.vm_count(), 120);
        assert_eq!(a.hosts.len(), 4);
        for (ha, hb) in a.hosts.iter().zip(&b.hosts) {
            assert_eq!(ha.vms.len(), hb.vms.len());
            for (va, vb) in ha.vms.iter().zip(&hb.vms) {
                assert_eq!(va.index, vb.index);
                assert_eq!(va.spec.name, vb.spec.name);
                assert_eq!(va.ops, vb.ops);
                assert_eq!(va.seed, vb.seed);
                assert_eq!(va.footprint_frames, vb.footprint_frames);
            }
        }
    }

    #[test]
    fn different_seeds_draw_different_fleets() {
        let a = FleetPlan::generate(&spec(), 1);
        let b = FleetPlan::generate(&spec(), 2);
        let sig = |p: &FleetPlan| -> Vec<(u32, u64)> {
            p.hosts
                .iter()
                .flat_map(|h| h.vms.iter().map(|v| (v.index, v.ops)))
                .collect()
        };
        assert_ne!(sig(&a), sig(&b));
    }

    #[test]
    fn placement_respects_the_cap_when_it_can() {
        let plan = FleetPlan::generate(&spec(), 7);
        // Every planned footprint alone fits the cap at this scale, so
        // first-fit never had to overflow a host: replaying intervals
        // per host stays under the cap.
        for host in &plan.hosts {
            assert!(
                !host.vms.is_empty(),
                "first-fit should spread 120 VMs over 4 hosts"
            );
            for vm in &host.vms {
                assert!(vm.footprint_frames <= plan.resident_cap_frames);
                assert!(vm.ops >= 100 && vm.ops < 300);
            }
        }
    }

    #[test]
    fn lifetimes_and_workloads_vary_within_one_fleet() {
        let plan = FleetPlan::generate(&spec(), 9);
        let all: Vec<&VmPlan> = plan.hosts.iter().flat_map(|h| h.vms.iter()).collect();
        let names: std::collections::BTreeSet<&str> = all.iter().map(|v| v.spec.name).collect();
        assert!(names.len() > 4, "fleet draws from the whole catalog");
        let ops: std::collections::BTreeSet<u64> = all.iter().map(|v| v.ops).collect();
        assert!(ops.len() > 10, "lifetimes are drawn, not constant");
    }
}

//! A generic set-associative cache with LRU replacement.
//!
//! Used for every translation structure in the MMU model: L1 TLBs, the
//! unified L2 STLB, the nested TLB and the page-walk caches. Keys are
//! opaque 128-bit values built by the caller (page number + VM tag + size
//! tag packed together).
//!
//! Storage is one flat slot array (`num_sets * assoc` keys) plus a
//! parallel last-use stamp per slot and a per-set occupancy count. The
//! lookup path runs on every simulated memory access; recency is tracked
//! by writing a strictly increasing stamp on each hit or insert instead
//! of rotating the set's slots, so a hit costs one store rather than a
//! memmove of up to `assoc - 1` keys. Eviction picks the minimum stamp —
//! stamps are unique, so the victim is exactly the entry an LRU-ordered
//! list would evict.

use gemini_sim_core::SimError;

/// A set-associative LRU cache of opaque keys.
///
/// Keys are stored split into low/high u64 halves in parallel arrays:
/// the way scan compares the low half first (page number bits — the
/// discriminating ones) and confirms the high half only on a match,
/// so the common probe touches half the bytes a `u128` scan would.
///
/// `PartialEq`/`Eq` compare the full slot arrays byte-for-byte (stale
/// slots beyond the occupied prefixes included) — the deferred-stamp
/// equivalence tests rely on that strictness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetAssocCache {
    /// Low 64 bits of each key; set `s` owns `lo[s*assoc..(s+1)*assoc]`
    /// and only its first `lens[s]` slots are meaningful.
    lo: Vec<u64>,
    /// High 64 bits of each key, parallel to `lo`.
    hi: Vec<u64>,
    /// Last-use stamp per slot, parallel to `lo`.
    stamps: Vec<u64>,
    /// Occupied way count per set.
    lens: Vec<u32>,
    /// Strictly increasing use counter; uniqueness makes LRU order total.
    tick: u64,
    num_sets: usize,
    assoc: usize,
}

impl SetAssocCache {
    /// Creates a cache with `entries` total capacity and `assoc` ways.
    ///
    /// The number of sets is `entries / assoc`, rounded up to at least
    /// one, and must come out a power of two: `set_of` indexes with a
    /// mask, and a `%` fallback would silently change which keys share
    /// a set (and therefore eviction behavior) between geometries.
    /// Non-power-of-two set counts are rejected with
    /// [`SimError::BadCacheGeometry`] instead of being debug-asserted,
    /// so release builds cannot drift onto a different replacement
    /// policy unnoticed.
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0`.
    pub fn new(entries: usize, assoc: usize) -> Result<Self, SimError> {
        assert!(assoc > 0, "associativity must be positive");
        let num_sets = (entries / assoc).max(1);
        if !num_sets.is_power_of_two() {
            return Err(SimError::BadCacheGeometry { num_sets });
        }
        Ok(Self {
            lo: vec![0; num_sets * assoc],
            hi: vec![0; num_sets * assoc],
            stamps: vec![0; num_sets * assoc],
            lens: vec![0; num_sets],
            tick: 0,
            num_sets,
            assoc,
        })
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.num_sets * self.assoc
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.lens.iter().all(|&l| l == 0)
    }

    #[inline]
    fn set_of(&self, key: u128) -> usize {
        // Mix the key so that consecutive page numbers spread over sets,
        // then index. A fixed multiplicative hash keeps runs deterministic.
        // Construction guarantees a power-of-two set count, so the mask
        // is exact.
        let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((key >> 64) as u64);
        (h & (self.num_sets as u64 - 1)) as usize
    }

    /// The occupied prefix of `set`'s ways, with its base slot index.
    #[inline]
    fn set_range(&self, set: usize) -> (usize, usize) {
        let base = set * self.assoc;
        (base, base + self.lens[set] as usize)
    }

    /// Index of `key` within `base..end`, if resident.
    #[inline]
    fn find(&self, key: u128, base: usize, end: usize) -> Option<usize> {
        let (klo, khi) = (key as u64, (key >> 64) as u64);
        let los = &self.lo[base..end];
        let his = &self.hi[base..end];
        los.iter()
            .zip(his)
            .position(|(&l, &h)| l == klo && h == khi)
            .map(|p| base + p)
    }

    /// Looks `key` up; on hit, refreshes its LRU position and returns true.
    ///
    /// Deferred-stamp rule (DESIGN.md §16): when the hit slot already
    /// holds the globally newest stamp, re-stamping it cannot change any
    /// relative recency order — the entry is the cache-wide MRU and stays
    /// so — hence the tick bump is skipped entirely. This makes `k`
    /// consecutive hits on one resident key byte-identical to a single
    /// hit (only the last touch matters under rotation LRU), which is the
    /// invariant the closed-form hit-run batch path relies on.
    #[inline]
    pub fn lookup(&mut self, key: u128) -> bool {
        let (base, end) = self.set_range(self.set_of(key));
        match self.find(key, base, end) {
            Some(pos) => {
                if self.stamps[pos] != self.tick {
                    self.tick += 1;
                    self.stamps[pos] = self.tick;
                }
                true
            }
            None => false,
        }
    }

    /// Checks for `key` without updating recency.
    pub fn probe(&self, key: u128) -> bool {
        let (base, end) = self.set_range(self.set_of(key));
        self.find(key, base, end).is_some()
    }

    /// Inserts `key`, evicting the LRU way of its set when full.
    pub fn insert(&mut self, key: u128) {
        let set = self.set_of(key);
        let (base, end) = self.set_range(set);
        let (klo, khi) = (key as u64, (key >> 64) as u64);
        self.tick += 1;
        // One pass: find the key (refresh) while tracking the oldest
        // stamp as the eviction candidate.
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for i in base..end {
            if self.lo[i] == klo && self.hi[i] == khi {
                self.stamps[i] = self.tick;
                return;
            }
            if self.stamps[i] < victim_stamp {
                victim_stamp = self.stamps[i];
                victim = i;
            }
        }
        let slot = if end - base == self.assoc {
            // Full: overwrite the way with the oldest stamp (the LRU).
            victim
        } else {
            self.lens[set] += 1;
            end
        };
        self.lo[slot] = klo;
        self.hi[slot] = khi;
        self.stamps[slot] = self.tick;
    }

    /// Removes `key` if present; returns whether it was resident.
    pub fn invalidate(&mut self, key: u128) -> bool {
        let (base, end) = self.set_range(self.set_of(key));
        match self.find(key, base, end) {
            Some(pos) => {
                // Fill the hole with the prefix's last slot; recency
                // lives in the stamps, so slot order is irrelevant.
                self.lo[pos] = self.lo[end - 1];
                self.hi[pos] = self.hi[end - 1];
                self.stamps[pos] = self.stamps[end - 1];
                self.lens[pos / self.assoc] -= 1;
                true
            }
            None => false,
        }
    }

    /// Removes every entry matched by `pred`; returns how many were evicted.
    pub fn invalidate_matching(&mut self, mut pred: impl FnMut(u128) -> bool) -> usize {
        let mut evicted = 0;
        for set in 0..self.num_sets {
            let (base, end) = self.set_range(set);
            // In-place retain over the occupied prefix.
            let mut write = base;
            for read in base..end {
                let k = (u128::from(self.hi[read]) << 64) | u128::from(self.lo[read]);
                if !pred(k) {
                    self.lo[write] = self.lo[read];
                    self.hi[write] = self.hi[read];
                    self.stamps[write] = self.stamps[read];
                    write += 1;
                }
            }
            evicted += end - write;
            self.lens[set] = (write - base) as u32;
        }
        evicted
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.lens.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_power_of_two_set_count_is_rejected() {
        // 96 entries / 4 ways = 24 sets: would need the `%` fallback.
        assert_eq!(
            SetAssocCache::new(96, 4).unwrap_err(),
            SimError::BadCacheGeometry { num_sets: 24 }
        );
        // 1536 / 12 = 128 sets: fine despite the non-power-of-two assoc.
        assert!(SetAssocCache::new(1536, 12).is_ok());
        // Degenerate capacities still round up to one set.
        assert!(SetAssocCache::new(0, 3).is_ok());
    }

    #[test]
    fn hit_after_insert_miss_after_invalidate() {
        let mut c = SetAssocCache::new(64, 4).unwrap();
        assert!(!c.lookup(42));
        c.insert(42);
        assert!(c.lookup(42));
        assert!(c.probe(42));
        assert!(c.invalidate(42));
        assert!(!c.invalidate(42));
        assert!(!c.lookup(42));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct-ish: 1 set, 2 ways.
        let mut c = SetAssocCache::new(2, 2).unwrap();
        c.insert(1);
        c.insert(2);
        assert!(c.lookup(1)); // 1 becomes MRU; LRU is 2.
        c.insert(3); // Evicts 2.
        assert!(c.probe(1));
        assert!(!c.probe(2));
        assert!(c.probe(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = SetAssocCache::new(2, 2).unwrap();
        c.insert(1);
        c.insert(1);
        assert_eq!(c.len(), 1);
        c.insert(2);
        c.insert(1); // Refresh 1; LRU is 2.
        c.insert(3); // Evicts 2.
        assert!(c.probe(1));
        assert!(!c.probe(2));
    }

    #[test]
    fn capacity_bounds_are_respected() {
        let mut c = SetAssocCache::new(1536, 12).unwrap();
        assert_eq!(c.capacity(), 1536);
        for k in 0..10_000u128 {
            c.insert(k);
        }
        assert!(c.len() <= 1536);
        assert!(!c.is_empty());
        c.flush();
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_matching_filters_by_predicate() {
        let mut c = SetAssocCache::new(64, 4).unwrap();
        for k in 0..32u128 {
            c.insert(k);
        }
        let evicted = c.invalidate_matching(|k| k % 2 == 0);
        assert_eq!(evicted, 16);
        assert!(!c.probe(0));
        assert!(c.probe(1));
    }

    #[test]
    fn key_zero_is_a_real_entry_not_an_empty_slot() {
        // Slots are zero-initialized; an actual key of 0 must still be
        // distinguished from unoccupied space via the occupancy counts.
        let mut c = SetAssocCache::new(8, 2).unwrap();
        assert!(!c.lookup(0));
        assert!(!c.probe(0));
        c.insert(0);
        assert!(c.lookup(0));
        assert_eq!(c.len(), 1);
        assert!(c.invalidate(0));
        assert!(!c.probe(0));
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_preserves_lru_order_of_survivors() {
        // 1 set, 4 ways; order LRU→MRU is 1,2,3,4.
        let mut c = SetAssocCache::new(4, 4).unwrap();
        for k in 1..=4u128 {
            c.insert(k);
        }
        c.invalidate(2); // Survivors: 1,3,4 (1 is LRU).
        c.insert(5); // Set back to full: 1,3,4,5.
        c.insert(6); // Evicts 1.
        assert!(!c.probe(1));
        for k in [3u128, 4, 5, 6] {
            assert!(c.probe(k), "key {k} should survive");
        }
    }

    #[test]
    fn repeated_hits_are_idempotent_after_first() {
        // The deferred-stamp invariant in its most direct form: after the
        // first hit the entry holds the newest stamp, so every further
        // consecutive hit is a complete no-op on the cache state.
        let mut c = SetAssocCache::new(8, 4).unwrap();
        for k in 0..6u128 {
            c.insert(k);
        }
        assert!(c.lookup(3));
        let snapshot = c.clone();
        for _ in 0..100 {
            assert!(c.lookup(3));
        }
        assert_eq!(c, snapshot, "repeat hits must not perturb any state");
        // A different key's hit breaks the run and must mutate again.
        assert!(c.lookup(5));
        assert_ne!(c, snapshot);
    }

    #[test]
    fn deferred_stamp_is_byte_identical_to_per_access_stamps() {
        // DetRng property test for the closed-form batching obligation:
        // under random interleavings of hit runs, inserts, invalidates
        // (single, bulk, flush), applying a run of k consecutive hits
        // per-access must leave the cache byte-identical to applying one
        // deferred hit for the whole run. `a` takes the per-access path,
        // `b` the deferred path; full-struct Eq compares every slot,
        // stamp, occupancy count and the tick.
        use gemini_sim_core::{derive_seed, DetRng};
        for trial in 0..16u64 {
            let mut rng = DetRng::new(derive_seed(0xD5_7A_3B, "deferred-stamp", trial));
            let mut a = SetAssocCache::new(16, 4).unwrap();
            let mut b = SetAssocCache::new(16, 4).unwrap();
            for _ in 0..1500 {
                let key = u128::from(rng.below(48));
                match rng.below(8) {
                    0..=3 => {
                        // A hit run of random length: per-access vs deferred.
                        let k = 1 + rng.below(7);
                        let mut hit_a = false;
                        for _ in 0..k {
                            hit_a = a.lookup(key);
                        }
                        let hit_b = b.lookup(key);
                        assert_eq!(hit_a, hit_b, "hit/miss diverged for {key}");
                    }
                    4..=5 => {
                        a.insert(key);
                        b.insert(key);
                    }
                    6 => {
                        assert_eq!(a.invalidate(key), b.invalidate(key));
                    }
                    _ => {
                        if rng.below(8) == 0 {
                            a.flush();
                            b.flush();
                        } else {
                            let bit = rng.below(2);
                            let ea = a.invalidate_matching(|k| k % 2 == u128::from(bit));
                            let eb = b.invalidate_matching(|k| k % 2 == u128::from(bit));
                            assert_eq!(ea, eb);
                        }
                    }
                }
                assert_eq!(a, b, "trial {trial}: state diverged");
            }
        }
    }

    #[test]
    fn stamp_lru_matches_rotation_lru_under_random_traffic() {
        // Pseudo-random lookup/insert/invalidate traffic against a
        // reference model that keeps an explicit recency-ordered list.
        let mut c = SetAssocCache::new(8, 4).unwrap();
        let mut model: Vec<Vec<u128>> = vec![Vec::new(); 2]; // 2 sets.
        let set_of = |key: u128| {
            let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((key >> 64) as u64);
            (h & 1) as usize
        };
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..4000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = u128::from((state >> 33) % 24);
            let s = set_of(key);
            match state % 3 {
                0 => {
                    let hit = c.lookup(key);
                    let mhit = model[s].iter().position(|&k| k == key).map(|p| {
                        let k = model[s].remove(p);
                        model[s].push(k); // Move to MRU.
                    });
                    assert_eq!(hit, mhit.is_some(), "lookup({key}) diverged");
                }
                1 => {
                    c.insert(key);
                    if let Some(p) = model[s].iter().position(|&k| k == key) {
                        let k = model[s].remove(p);
                        model[s].push(k);
                    } else {
                        if model[s].len() == 4 {
                            model[s].remove(0); // Evict LRU front.
                        }
                        model[s].push(key);
                    }
                }
                _ => {
                    let inv = c.invalidate(key);
                    let minv = model[s].iter().position(|&k| k == key).map(|p| {
                        model[s].remove(p);
                    });
                    assert_eq!(inv, minv.is_some(), "invalidate({key}) diverged");
                }
            }
            for set in model.iter().take(2) {
                for &k in set {
                    assert!(c.probe(k), "model key {k} missing from cache");
                }
            }
            assert_eq!(c.len(), model[0].len() + model[1].len());
        }
    }
}

//! Linux transparent huge pages (THP).
//!
//! Two mechanisms, per the kernel's design (and the paper's description of
//! the de-facto baseline):
//!
//! 1. **Synchronous fault-path allocation**: on the first fault in an
//!    empty, VMA-covered 2 MiB region, allocate a whole huge page if an
//!    order-9 block is free. This is `THP=always`.
//! 2. **khugepaged**: a background daemon that round-robins over populated
//!    regions and collapses any region with at least one present page
//!    (`max_ptes_none` defaults to 511) into a huge page, copying when the
//!    backing is not contiguous.
//!
//! khugepaged's scan budget is deliberately small — the kernel default
//! scans a few MiB per wakeup — which is one reason THP coalesces slowly.

use gemini_mm::{FaultCtx, FaultDecision, HugePolicy, LayerOps, PromotionKind, PromotionOp};
use gemini_sim_core::{Cycles, HUGE_PAGE_ORDER, PAGES_PER_HUGE_PAGE};

/// Linux THP: greedy fault-path huge pages plus khugepaged collapse.
#[derive(Debug, Clone)]
pub struct LinuxThp {
    /// Regions collapsed per daemon pass (khugepaged `pages_to_scan`
    /// equivalent, expressed in 2 MiB regions).
    pub regions_per_pass: usize,
    /// Minimum present pages for collapse (512 − `max_ptes_none`).
    pub min_present: usize,
    /// Round-robin cursor over input regions.
    cursor: u64,
}

impl LinuxThp {
    /// Creates THP with kernel-default-like parameters.
    pub fn new() -> Self {
        Self {
            regions_per_pass: 2,
            min_present: 1,
            cursor: 0,
        }
    }
}

impl Default for LinuxThp {
    fn default() -> Self {
        Self::new()
    }
}

impl HugePolicy for LinuxThp {
    fn name(&self) -> &'static str {
        "THP"
    }

    fn fault_decision(&mut self, ctx: &FaultCtx<'_>) -> FaultDecision {
        let huge_possible = ctx.region_pop.present == 0
            && ctx.region_within_vma()
            && ctx
                .buddy
                .free_area_counts()
                .free_blocks_suitable(HUGE_PAGE_ORDER)
                > 0;
        if huge_possible {
            FaultDecision::Huge
        } else {
            FaultDecision::Base
        }
    }

    fn daemon_period(&self) -> Cycles {
        // khugepaged's default wakeup interval is 10 s; scaled to the
        // simulator's compressed timescale this is 40 ms of CPU time —
        // deliberately slow relative to run length, as in real systems,
        // where khugepaged never catches up with the working set.
        Cycles::from_millis(40.0)
    }

    fn daemon(&mut self, ops: &mut LayerOps<'_>) -> Vec<PromotionOp> {
        // Round-robin over populated, non-huge regions starting after the
        // cursor, wrapping once.
        let candidates: Vec<u64> = ops
            .table
            .iter_regions()
            .filter(|&(_, huge)| !huge)
            .map(|(r, _)| r)
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let start = candidates.partition_point(|&r| r <= self.cursor);
        let mut picked = Vec::new();
        for idx in 0..candidates.len() {
            let region = candidates[(start + idx) % candidates.len()];
            let pop = ops.table.region_population(region);
            if pop.present >= self.min_present && pop.present <= PAGES_PER_HUGE_PAGE as usize {
                picked.push(PromotionOp::new(region, PromotionKind::PreferInPlace));
                if picked.len() >= self.regions_per_pass {
                    break;
                }
            }
        }
        if let Some(last) = picked.last() {
            self.cursor = last.region;
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_mm::{CostModel, GuestMm};
    use gemini_sim_core::page::PageSize;
    use gemini_sim_core::{VmId, HUGE_PAGE_SIZE};

    #[test]
    fn fault_path_allocates_huge_when_possible() {
        let mut g = GuestMm::new(VmId(1), 4096, CostModel::default());
        let mut thp = LinuxThp::new();
        let vma = g.mmap(2 * HUGE_PAGE_SIZE).unwrap();
        let (out, _) = g.handle_fault(vma.start_frame() + 3, &mut thp).unwrap();
        assert_eq!(out.size, PageSize::Huge);
    }

    #[test]
    fn fault_path_degrades_under_fragmentation() {
        let mut g = GuestMm::new(VmId(1), 4096, CostModel::default());
        let mut rng = gemini_sim_core::DetRng::new(5);
        gemini_mm::fragment_to(g.buddy_mut(), 0.9, 0.1, &mut rng);
        let mut thp = LinuxThp::new();
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let (out, _) = g.handle_fault(vma.start_frame(), &mut thp).unwrap();
        assert_eq!(out.size, PageSize::Base, "no order-9 block available");
    }

    #[test]
    fn khugepaged_collapses_sparse_regions_with_budget() {
        let mut g = GuestMm::new(VmId(1), 1 << 15, CostModel::default());
        let mut base = crate::BaseOnly;
        let vma = g.mmap(20 * HUGE_PAGE_SIZE).unwrap();
        // Populate one page in each of 20 regions.
        for r in 0..20 {
            g.handle_fault(vma.start_frame() + r * 512, &mut base)
                .unwrap();
        }
        let mut thp = LinuxThp {
            regions_per_pass: 8,
            ..LinuxThp::new()
        };
        let fx = g.run_daemon(&mut thp, Cycles::ZERO, 1);
        // Budget caps the pass at 8 regions.
        assert_eq!(g.table().huge_mapped(), 8);
        assert_eq!(fx.shootdowns, 8);
        // Subsequent passes continue round-robin until done.
        g.run_daemon(&mut thp, Cycles::ZERO, 1);
        g.run_daemon(&mut thp, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 20);
        // A further pass finds nothing.
        let fx = g.run_daemon(&mut thp, Cycles::ZERO, 1);
        assert_eq!(fx.shootdowns, 0);
    }

    #[test]
    fn khugepaged_respects_min_present() {
        let mut g = GuestMm::new(VmId(1), 4096, CostModel::default());
        let mut base = crate::BaseOnly;
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        g.handle_fault(vma.start_frame(), &mut base).unwrap();
        let mut thp = LinuxThp {
            min_present: 256,
            ..LinuxThp::new()
        };
        g.run_daemon(&mut thp, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 0, "1 < min_present, no collapse");
    }
}

//! Hierarchical wall-clock span profiler.
//!
//! The simulator's deterministic exports answer *what happened* in
//! simulated time; this module answers *where the wall-clock goes* —
//! which phases of a cell (workload generation, the fault path, daemon
//! passes, promotions, TLB shootdowns, ...) dominate its runtime, so a
//! perf PR can prove it moved the right needle and didn't shift cost
//! elsewhere.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when off.** [`Profiler::span`] on a disabled
//!    profiler is one branch; no clock read, no lock, no allocation.
//!    Every subsystem can hold a (cheaply clonable) handle permanently.
//! 2. **Deterministic merging.** Like the `Recorder`, per-cell
//!    profilers fold into one via [`Profiler::merge_from`] in
//!    submission order, so a merged report is identical however cells
//!    were scheduled. Accumulators add; captured span events append.
//! 3. **Hierarchical attribution.** Spans nest via RAII guards; each
//!    phase accumulates both *cumulative* time (span enter→exit) and
//!    *self* time (cumulative minus time spent in child spans), so a
//!    promotion inside a daemon pass is charged to `promotion`, not
//!    double-counted into `daemon_pass`'s self time.
//! 4. **Testable.** The clock is pluggable: [`Profiler::deterministic`]
//!    replaces the wall clock with a monotone tick counter, making span
//!    timelines — and the Chrome trace export built from them —
//!    byte-identical across runs for a fixed seed.
//!
//! One profiler state is single-threaded (one machine is driven by one
//! thread at a time, exactly like the `Recorder`'s ring). Parallel
//! grids give each worker/cell its own [fork](Profiler::fork) sharing
//! the parent's clock epoch and calibration, then merge after the
//! barrier.

use crate::json::{json_f64, json_str};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// The static phases the simulator attributes wall-clock time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Machine construction, VM registration, fragmentation seeding.
    Setup,
    /// Pulling events out of the workload generator.
    WorkloadGen,
    /// Foreground event processing (translations, data-access cost,
    /// touch sampling); faults and shootdowns nest inside.
    Access,
    /// Demand-fault resolution at either layer (guest fault or EPT
    /// violation), policy decision included.
    FaultPath,
    /// Background daemon passes (khugepaged analogue, compaction,
    /// tenant churn); decision scans and promotions nest inside.
    DaemonPass,
    /// Policy daemon decision scans (Gemini/CA-paging contiguity
    /// passes over the buddy run index, Ingens/HawkEye region scans)
    /// and MHPS page-table scans.
    ContiguityScan,
    /// Executing a promotion (in-place, fill or copy).
    Promotion,
    /// Executing a demotion (huge-page split).
    Demotion,
    /// Applying TLB invalidations and shootdown accounting to the MMU
    /// model.
    TlbShootdown,
    /// Closed-form hit-run batching: advancing counters, cost and the
    /// virtual clock over a provably hit-only access run without
    /// touching the TLB set arrays (DESIGN.md §16).
    BatchedAccess,
    /// Parallel-executor bookkeeping (queue pops, result stores) —
    /// everything a worker does that is not the cell itself.
    Executor,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 11] = [
        Phase::Setup,
        Phase::WorkloadGen,
        Phase::Access,
        Phase::FaultPath,
        Phase::DaemonPass,
        Phase::ContiguityScan,
        Phase::Promotion,
        Phase::Demotion,
        Phase::TlbShootdown,
        Phase::BatchedAccess,
        Phase::Executor,
    ];

    /// Stable snake_case name used in reports, bench JSON and traces.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::WorkloadGen => "workload_gen",
            Phase::Access => "access",
            Phase::FaultPath => "fault_path",
            Phase::DaemonPass => "daemon_pass",
            Phase::ContiguityScan => "contiguity_scan",
            Phase::Promotion => "promotion",
            Phase::Demotion => "demotion",
            Phase::TlbShootdown => "tlb_shootdown",
            Phase::BatchedAccess => "batched_access",
            Phase::Executor => "executor",
        }
    }

    /// Whether spans of this phase are captured as individual timeline
    /// rectangles when event capture is on. Per-operation phases (one
    /// span per fault, shootdown, promotion or demotion) fire thousands
    /// of times per cell at sub-microsecond durations — useless to look
    /// at in a trace viewer and enough volume to push a quick-scale
    /// grid trace past 50 MB. Only pass-level phases make the timeline;
    /// every phase still accumulates into the phase table
    /// (self/cum/count) regardless.
    pub fn in_timeline(self) -> bool {
        !matches!(
            self,
            Phase::FaultPath
                | Phase::TlbShootdown
                | Phase::Promotion
                | Phase::Demotion
                | Phase::BatchedAccess
        )
    }

    fn idx(self) -> usize {
        Phase::ALL.iter().position(|&p| p == self).expect("in ALL")
    }
}

/// Time source for span timestamps.
#[derive(Debug)]
enum Clock {
    /// Real time, in nanoseconds since the profiler's creation. Forks
    /// share the epoch, so timestamps from different workers lie on one
    /// timeline.
    Wall(Instant),
    /// Deterministic monotone counter: every read advances by 1 µs.
    /// Two identical runs produce identical timelines (tests).
    Ticks(AtomicU64),
}

impl Clock {
    fn now_ns(&self) -> u64 {
        match self {
            Clock::Wall(epoch) => epoch.elapsed().as_nanos() as u64,
            Clock::Ticks(t) => t.fetch_add(1_000, Ordering::Relaxed),
        }
    }
}

/// State shared by a profiler and all its forks.
#[derive(Debug)]
struct ProfShared {
    clock: Clock,
    /// Calibrated cost of one recorded span in nanoseconds (enter +
    /// exit), measured once at construction; 0 for tick clocks.
    ns_per_span: u64,
    /// Whether completed spans are kept as timeline events (the Chrome
    /// trace input) in addition to the accumulators.
    capture_events: bool,
}

/// Open span on the stack.
#[derive(Debug)]
struct Frame {
    phase: Phase,
    start_ns: u64,
    child_ns: u64,
}

/// Accumulated totals for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Completed spans of this phase.
    pub count: u64,
    /// Cumulative nanoseconds (span enter → exit, children included).
    pub cum_ns: u64,
    /// Self nanoseconds (cumulative minus time inside child spans).
    pub self_ns: u64,
}

/// One completed span on the timeline (captured only when event
/// capture is on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// The phase the span timed.
    pub phase: Phase,
    /// Start, nanoseconds on the profiler's shared timeline.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at entry (0 = top level).
    pub depth: u32,
    /// Track id: the executor worker (or fork tag) that recorded it.
    pub tid: u32,
}

#[derive(Debug, Default)]
struct ProfState {
    stack: Vec<Frame>,
    accum: [PhaseStat; Phase::ALL.len()],
    events: Vec<SpanEvent>,
    tid: u32,
    spans_recorded: u64,
}

/// Cheap-clone handle over one span-profiling state.
///
/// Clones share state (like `Recorder`); [forks](Profiler::fork) get
/// fresh state on the same clock. The [off](Profiler::off) profiler
/// records nothing and costs one branch per span site.
#[derive(Debug, Clone)]
pub struct Profiler {
    enabled: bool,
    shared: Arc<ProfShared>,
    state: Arc<Mutex<ProfState>>,
}

// Machines (and their profiler handles) move across executor worker
// threads whole; keep that property from regressing silently.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Profiler>();
};

impl Default for Profiler {
    fn default() -> Self {
        Self::off()
    }
}

impl Profiler {
    fn with_clock(clock: Clock, ns_per_span: u64, capture_events: bool) -> Self {
        Self {
            enabled: true,
            shared: Arc::new(ProfShared {
                clock,
                ns_per_span,
                capture_events,
            }),
            state: Arc::new(Mutex::new(ProfState::default())),
        }
    }

    /// A disabled profiler: every span site is one branch, nothing is
    /// recorded. This is what subsystems hold by default.
    pub fn off() -> Self {
        Self {
            enabled: false,
            shared: Arc::new(ProfShared {
                clock: Clock::Ticks(AtomicU64::new(0)),
                ns_per_span: 0,
                capture_events: false,
            }),
            state: Arc::new(Mutex::new(ProfState::default())),
        }
    }

    /// A wall-clock profiler. Calibrates the per-span recording cost on
    /// construction (a few thousand empty spans against scratch state)
    /// so reports can carry an overhead estimate.
    pub fn wall(capture_events: bool) -> Self {
        let prof = Self::with_clock(Clock::Wall(Instant::now()), 0, capture_events);
        let ns_per_span = prof.calibrate();
        Self {
            shared: Arc::new(ProfShared {
                clock: Clock::Wall(Instant::now()),
                ns_per_span,
                capture_events,
            }),
            ..prof
        }
    }

    /// A deterministic profiler: timestamps come from a monotone tick
    /// counter (1 µs per read), so identical call sequences produce
    /// byte-identical timelines. For tests and golden traces.
    pub fn deterministic(capture_events: bool) -> Self {
        Self::with_clock(Clock::Ticks(AtomicU64::new(0)), 0, capture_events)
    }

    /// Measures the cost of one recorded span (enter + exit) in
    /// nanoseconds, by timing batches of empty spans against this
    /// profiler's own state (discarded afterwards). The *minimum*
    /// across batches is the estimate: a single batch on a shared
    /// one-core host is routinely inflated several-fold by preemption
    /// mid-loop, and steal time only ever adds, so the floor is the
    /// honest per-span cost.
    fn calibrate(&self) -> u64 {
        const BATCHES: u32 = 8;
        const N: u32 = 512;
        let mut best = u64::MAX;
        for _ in 0..BATCHES {
            let started = Instant::now();
            for _ in 0..N {
                let _g = self.span(Phase::Executor);
            }
            best = best.min(started.elapsed().as_nanos() as u64 / N as u64);
        }
        // Reset the scratch accumulation so reports start clean.
        *self.lock() = ProfState::default();
        best.max(1)
    }

    /// True when spans are being recorded.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.enabled
    }

    fn lock(&self) -> MutexGuard<'_, ProfState> {
        self.state.lock().expect("profiler lock poisoned")
    }

    /// A fork: fresh accumulators and span stack on the *same* clock
    /// and calibration, tagged with `tid` (the executor worker index or
    /// cell slot). Forks are what parallel workers record into; merge
    /// them back in submission order for deterministic totals.
    pub fn fork(&self, tid: u32) -> Profiler {
        Self {
            enabled: self.enabled,
            shared: Arc::clone(&self.shared),
            state: Arc::new(Mutex::new(ProfState {
                tid,
                ..ProfState::default()
            })),
        }
    }

    /// The track id this profiler records under: the fork tag (worker
    /// index), or 0 for a root profiler.
    pub fn tid(&self) -> u32 {
        self.lock().tid
    }

    /// Reads the profiler's clock (nanoseconds on the shared timeline).
    /// Callers use this to place non-span marks (e.g. cell boundaries)
    /// on the same timeline as captured span events.
    pub fn now_ns(&self) -> u64 {
        self.shared.clock.now_ns()
    }

    /// Opens a span of `phase`; the returned guard closes it on drop.
    /// Guards are strictly nested (RAII), which is what makes self-time
    /// attribution a simple stack walk.
    #[inline]
    pub fn span(&self, phase: Phase) -> Span {
        if !self.enabled {
            return Span { prof: None };
        }
        let start_ns = self.shared.clock.now_ns();
        self.lock().stack.push(Frame {
            phase,
            start_ns,
            child_ns: 0,
        });
        Span {
            prof: Some(self.clone()),
        }
    }

    fn end_span(&self) {
        let now = self.shared.clock.now_ns();
        let mut st = self.lock();
        let frame = st.stack.pop().expect("span guards are strictly nested");
        let elapsed = now.saturating_sub(frame.start_ns);
        let self_ns = elapsed.saturating_sub(frame.child_ns);
        let depth = st.stack.len() as u32;
        if let Some(parent) = st.stack.last_mut() {
            parent.child_ns += elapsed;
        }
        let a = &mut st.accum[frame.phase.idx()];
        a.count += 1;
        a.cum_ns += elapsed;
        a.self_ns += self_ns;
        st.spans_recorded += 1;
        if self.shared.capture_events && frame.phase.in_timeline() {
            let tid = st.tid;
            st.events.push(SpanEvent {
                phase: frame.phase,
                start_ns: frame.start_ns,
                dur_ns: elapsed,
                depth,
                tid,
            });
        }
    }

    /// Folds another profiler's recorded state into this one:
    /// accumulators and span counts add, captured events append. Call
    /// in submission order after a parallel grid for deterministic
    /// totals (the same discipline as `Recorder::merge_from`).
    pub fn merge_from(&self, other: &Profiler) {
        if Arc::ptr_eq(&self.state, &other.state) {
            return;
        }
        let (accum, events, spans) = {
            let o = other.lock();
            (o.accum, o.events.clone(), o.spans_recorded)
        };
        let mut st = self.lock();
        for (mine, theirs) in st.accum.iter_mut().zip(accum.iter()) {
            mine.count += theirs.count;
            mine.cum_ns += theirs.cum_ns;
            mine.self_ns += theirs.self_ns;
        }
        st.events.extend(events);
        st.spans_recorded += spans;
    }

    /// Snapshot of the per-phase accumulators and overhead estimate.
    pub fn report(&self) -> ProfileReport {
        let st = self.lock();
        ProfileReport {
            phases: Phase::ALL
                .iter()
                .map(|&p| (p, st.accum[p.idx()]))
                .filter(|(_, s)| s.count > 0)
                .collect(),
            spans_recorded: st.spans_recorded,
            overhead_est_ns: st.spans_recorded * self.shared.ns_per_span,
        }
    }

    /// Snapshot of the captured timeline events, in recording order.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.lock().events.clone()
    }
}

/// RAII span guard; closes its span when dropped.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; binding it to _ drops it immediately"]
pub struct Span {
    prof: Option<Profiler>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(prof) = self.prof.take() {
            prof.end_span();
        }
    }
}

/// Per-phase totals plus the overhead estimate of recording them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Phases with at least one span, in [`Phase::ALL`] order.
    pub phases: Vec<(Phase, PhaseStat)>,
    /// Total spans recorded.
    pub spans_recorded: u64,
    /// Estimated profiler overhead: spans recorded × calibrated
    /// per-span cost. 0 for deterministic (tick-clock) profilers.
    pub overhead_est_ns: u64,
}

impl ProfileReport {
    /// Sum of self-time across all phases — the covered wall time.
    pub fn total_self_ns(&self) -> u64 {
        self.phases.iter().map(|(_, s)| s.self_ns).sum()
    }
}

/// One rectangle on a Chrome-trace timeline: a cell or a phase span.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Display name (`workload/system` for cells, the phase name for
    /// phase spans).
    pub name: String,
    /// Trace category (`"cell"` or `"phase"`).
    pub cat: &'static str,
    /// Start on the shared timeline, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Worker track.
    pub tid: u32,
}

impl From<&SpanEvent> for TraceSpan {
    fn from(e: &SpanEvent) -> Self {
        TraceSpan {
            name: e.phase.name().to_string(),
            cat: "phase",
            start_ns: e.start_ns,
            dur_ns: e.dur_ns,
            tid: e.tid,
        }
    }
}

/// Hard ceiling on phase rectangles in one rendered trace. A
/// quick-scale grid records ~600k per-batch spans (~57 MB of JSON) —
/// far more than a viewer can usefully render. Over the cap, the
/// *widest* phase spans are kept (the ones visible at any practical
/// zoom), cells and metadata always survive, and a `trace_capped`
/// metadata row records the drop count so the truncation is never
/// silent.
pub const MAX_TIMELINE_EVENTS: usize = 50_000;

/// Renders spans as a Chrome-trace-event JSON object (the
/// `traceEvents` format Perfetto and `chrome://tracing` open
/// directly): one complete (`"ph":"X"`) event per span, preceded by
/// process/thread-name metadata so every worker gets a labelled track.
///
/// `workers` names the tracks (index = tid); emit one entry per worker
/// even if a worker recorded nothing, so track structure is stable
/// across runs. Spans are sorted by `(tid, start, longest-first,
/// name)` — a total order on deterministic timelines, making the
/// rendered trace byte-identical for byte-identical span sets. Phase
/// rows beyond [`MAX_TIMELINE_EVENTS`] are dropped widest-first-kept
/// by the same deterministic ordering.
pub fn chrome_trace_json(process_name: &str, workers: &[String], spans: &[TraceSpan]) -> String {
    chrome_trace_json_with_counters(process_name, workers, spans, &[])
}

/// Like [`chrome_trace_json`], but additionally renders named counters
/// as Chrome counter-track events (`"ph":"C"` at `ts` 0 on the
/// metadata track), so run-level totals — e.g. the TLB's
/// `tlb.batch_runs` / `tlb.batched_hits` / `tlb.batch_breaks` from the
/// closed-form hit-run fast path — appear as labelled counter tracks
/// next to the timeline in Perfetto. Counters are emitted in the order
/// given; pass them pre-sorted for byte-stable output.
pub fn chrome_trace_json_with_counters(
    process_name: &str,
    workers: &[String],
    spans: &[TraceSpan],
    counters: &[(String, u64)],
) -> String {
    let mut sorted: Vec<&TraceSpan> = spans.iter().collect();
    let phase_count = sorted.iter().filter(|s| s.cat == "phase").count();
    let dropped = phase_count.saturating_sub(MAX_TIMELINE_EVENTS);
    if dropped > 0 {
        let mut phases: Vec<&TraceSpan> = sorted
            .iter()
            .copied()
            .filter(|s| s.cat == "phase")
            .collect();
        phases.sort_by(|a, b| {
            (std::cmp::Reverse(a.dur_ns), a.tid, a.start_ns, &a.name).cmp(&(
                std::cmp::Reverse(b.dur_ns),
                b.tid,
                b.start_ns,
                &b.name,
            ))
        });
        phases.truncate(MAX_TIMELINE_EVENTS);
        let keep: std::collections::HashSet<*const TraceSpan> =
            phases.iter().map(|s| *s as *const TraceSpan).collect();
        sorted.retain(|s| s.cat != "phase" || keep.contains(&(*s as *const TraceSpan)));
    }
    sorted.sort_by(|a, b| {
        (a.tid, a.start_ns, std::cmp::Reverse(a.dur_ns), &a.name).cmp(&(
            b.tid,
            b.start_ns,
            std::cmp::Reverse(b.dur_ns),
            &b.name,
        ))
    });
    let mut out = String::from("{\n\"traceEvents\": [\n");
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"name\":{}}}}}",
        json_str(process_name)
    ));
    for (tid, name) in workers.iter().enumerate() {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
            json_str(name)
        ));
    }
    if dropped > 0 {
        out.push_str(&format!(
            ",\n{{\"name\":\"trace_capped\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"kept\":{MAX_TIMELINE_EVENTS},\"dropped\":{dropped}}}}}",
        ));
    }
    for (name, value) in counters {
        out.push_str(&format!(
            ",\n{{\"name\":{},\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{{\"value\":{value}}}}}",
            json_str(name)
        ));
    }
    for s in sorted {
        out.push_str(&format!(
            ",\n{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            json_str(&s.name),
            json_str(s.cat),
            json_f64(s.start_ns as f64 / 1_000.0),
            json_f64(s.dur_ns as f64 / 1_000.0),
            s.tid
        ));
    }
    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rows_render_as_chrome_counter_events() {
        let spans = vec![TraceSpan {
            name: "access".into(),
            cat: "phase",
            start_ns: 0,
            dur_ns: 10,
            tid: 0,
        }];
        let counters = vec![
            ("tlb.batch_runs".to_string(), 12u64),
            ("tlb.batched_hits".to_string(), 340u64),
        ];
        let workers = vec!["w".to_string()];
        let json = chrome_trace_json_with_counters("p", &workers, &spans, &counters);
        assert!(json.contains("\"name\":\"tlb.batch_runs\",\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"tlb.batched_hits\",\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":340}"));
        // The plain exporter is exactly the zero-counter case.
        assert_eq!(
            chrome_trace_json("p", &workers, &spans),
            chrome_trace_json_with_counters("p", &workers, &spans, &[])
        );
    }

    #[test]
    fn off_profiler_records_nothing() {
        let p = Profiler::off();
        {
            let _a = p.span(Phase::Access);
            let _b = p.span(Phase::FaultPath);
        }
        assert!(!p.is_on());
        let r = p.report();
        assert!(r.phases.is_empty());
        assert_eq!(r.spans_recorded, 0);
        assert_eq!(r.overhead_est_ns, 0);
    }

    #[test]
    fn nested_spans_split_self_and_cumulative() {
        // Tick clock: every now() is +1µs, so spans have exact widths.
        let p = Profiler::deterministic(true);
        {
            let _outer = p.span(Phase::DaemonPass); // t=0
            {
                let _inner = p.span(Phase::ContiguityScan); // t=1
            } // t=2: inner cum = 1µs
        } // t=3: outer cum = 3µs, self = 2µs
        let r = p.report();
        let get = |ph: Phase| {
            r.phases
                .iter()
                .find(|(p, _)| *p == ph)
                .map(|(_, s)| *s)
                .unwrap()
        };
        let outer = get(Phase::DaemonPass);
        let inner = get(Phase::ContiguityScan);
        assert_eq!(inner.cum_ns, 1_000);
        assert_eq!(inner.self_ns, 1_000);
        assert_eq!(outer.cum_ns, 3_000);
        assert_eq!(outer.self_ns, 2_000);
        assert_eq!(r.total_self_ns(), 3_000);
        // Events captured with depths.
        let ev = p.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].phase, Phase::ContiguityScan);
        assert_eq!(ev[0].depth, 1);
        assert_eq!(ev[1].phase, Phase::DaemonPass);
        assert_eq!(ev[1].depth, 0);
    }

    #[test]
    fn trace_render_caps_phase_rows_and_reports_drops() {
        let mut spans: Vec<TraceSpan> = (0..MAX_TIMELINE_EVENTS + 10)
            .map(|i| TraceSpan {
                name: "access".to_string(),
                cat: "phase",
                start_ns: i as u64 * 10,
                dur_ns: 5,
                tid: 0,
            })
            .collect();
        spans.push(TraceSpan {
            name: "cell".to_string(),
            cat: "cell",
            start_ns: 0,
            dur_ns: 1 << 40,
            tid: 0,
        });
        let json = chrome_trace_json("p", &["w".to_string()], &spans);
        assert!(json.contains("\"trace_capped\""));
        assert!(json.contains("\"dropped\":10"));
        // Capped phase rows plus the always-kept cell.
        assert_eq!(
            json.matches("\"ph\":\"X\"").count(),
            MAX_TIMELINE_EVENTS + 1
        );
        // Under the cap nothing is dropped or annotated.
        let small = chrome_trace_json("p", &["w".to_string()], &spans[..5]);
        assert!(!small.contains("trace_capped"));
        assert_eq!(small.matches("\"ph\":\"X\"").count(), 5);
    }

    #[test]
    fn per_fault_phases_accumulate_but_skip_the_timeline() {
        let p = Profiler::deterministic(true);
        {
            let _a = p.span(Phase::Access);
            let _f = p.span(Phase::FaultPath);
            let _t = p.span(Phase::TlbShootdown);
            let _pr = p.span(Phase::Promotion);
            let _d = p.span(Phase::Demotion);
        }
        let r = p.report();
        for ph in [
            Phase::FaultPath,
            Phase::TlbShootdown,
            Phase::Promotion,
            Phase::Demotion,
        ] {
            let stat = r.phases.iter().find(|(p, _)| *p == ph).unwrap().1;
            assert_eq!(stat.count, 1, "{} still accumulates", ph.name());
        }
        let ev = p.events();
        assert_eq!(ev.len(), 1, "only the access span is a timeline event");
        assert_eq!(ev[0].phase, Phase::Access);
    }

    #[test]
    fn merge_adds_accumulators_and_appends_events() {
        let a = Profiler::deterministic(true);
        let b = a.fork(1);
        {
            let _g = a.span(Phase::Access);
        }
        {
            let _g = b.span(Phase::Access);
        }
        {
            let _g = b.span(Phase::Setup);
        }
        a.merge_from(&b);
        let r = a.report();
        let access = r
            .phases
            .iter()
            .find(|(p, _)| *p == Phase::Access)
            .unwrap()
            .1;
        assert_eq!(access.count, 2);
        assert_eq!(r.spans_recorded, 3);
        assert_eq!(a.events().len(), 3);
        assert_eq!(a.events()[1].tid, 1, "fork's tid rides along");
        // Self-merge is a no-op, not a deadlock or double count.
        a.merge_from(&a.clone());
        assert_eq!(a.report().spans_recorded, 3);
    }

    #[test]
    fn wall_profiler_calibrates_and_estimates_overhead() {
        let p = Profiler::wall(false);
        assert_eq!(p.report().spans_recorded, 0, "calibration is discarded");
        for _ in 0..10 {
            let _g = p.span(Phase::Access);
        }
        let r = p.report();
        assert_eq!(r.spans_recorded, 10);
        assert!(r.overhead_est_ns >= 10, "calibration is at least 1ns/span");
    }

    #[test]
    fn chrome_trace_is_stable_and_labelled() {
        let spans = vec![
            TraceSpan {
                name: "b".into(),
                cat: "phase",
                start_ns: 2_000,
                dur_ns: 1_000,
                tid: 1,
            },
            TraceSpan {
                name: "a".into(),
                cat: "cell",
                start_ns: 0,
                dur_ns: 5_000,
                tid: 0,
            },
        ];
        let workers = vec!["worker-0".to_string(), "worker-1".to_string()];
        let json = chrome_trace_json("demo", &workers, &spans);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"worker-1\""));
        // Sorted by tid: cell on track 0 precedes phase on track 1.
        let cell = json.find("\"cat\":\"cell\"").unwrap();
        let phase = json.find("\"cat\":\"phase\"").unwrap();
        assert!(cell < phase);
        // Reordering the input does not change the output.
        let rev: Vec<TraceSpan> = spans.iter().rev().cloned().collect();
        assert_eq!(json, chrome_trace_json("demo", &workers, &rev));
    }
}

//! Randomized property tests for the buddy allocator, driven by the
//! workspace's own deterministic RNG (no external test-framework
//! dependency so the suite builds offline).
//!
//! These drive random interleavings of `alloc`, `alloc_at` and `free` and
//! check the allocator's structural invariants after every step: free lists
//! and index agree, blocks are aligned/disjoint/coalesced, and frame
//! accounting conserves memory.

use gemini_buddy::{BuddyAllocator, MAX_ORDER};
use gemini_sim_core::DetRng;

const CASES: u64 = 64;

/// One random allocator operation.
#[derive(Debug, Clone)]
enum Op {
    Alloc(u32),
    AllocAt { frame: u64, order: u32 },
    FreeIdx(usize),
}

fn random_op(rng: &mut DetRng, num_frames: u64) -> Op {
    match rng.below(3) {
        0 => Op::Alloc(rng.below(MAX_ORDER as u64 + 1) as u32),
        1 => {
            let order = rng.below(10) as u32;
            let frame = rng.below(num_frames) & !((1u64 << order) - 1);
            Op::AllocAt { frame, order }
        }
        _ => Op::FreeIdx(rng.below(1 << 16) as usize),
    }
}

#[test]
fn random_ops_preserve_invariants() {
    let mut seeds = DetRng::new(0xB0DD_1E01);
    for _ in 0..CASES {
        let mut rng = seeds.fork();
        let num_frames = rng.range(1, 5000);
        let n_ops = rng.range(1, 200);
        let mut a = BuddyAllocator::new(num_frames);
        let mut live: Vec<(u64, u32)> = Vec::new();
        let mut allocated = 0u64;
        for _ in 0..n_ops {
            match random_op(&mut rng, 4096) {
                Op::Alloc(order) => {
                    if let Ok(start) = a.alloc(order) {
                        assert_eq!(start % (1 << order), 0);
                        assert!(start + (1u64 << order) <= num_frames);
                        live.push((start, order));
                        allocated += 1 << order;
                    }
                }
                Op::AllocAt { frame, order } => {
                    if a.alloc_at(frame, order).is_ok() {
                        live.push((frame, order));
                        allocated += 1 << order;
                    }
                }
                Op::FreeIdx(i) => {
                    if !live.is_empty() {
                        let (start, order) = live.swap_remove(i % live.len());
                        a.free(start, order).unwrap();
                        allocated -= 1 << order;
                    }
                }
            }
            a.check_invariants().unwrap();
            assert_eq!(a.used_frames(), allocated);
        }
        // No two live blocks may overlap.
        let mut sorted = live.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            let (s0, o0) = w[0];
            let (s1, _) = w[1];
            assert!(s0 + (1u64 << o0) <= s1, "live blocks overlap");
        }
    }
}

#[test]
fn run_index_matches_rescan_after_arbitrary_interleavings() {
    // The incremental free-run index must equal a fresh `order_of`
    // rescan after any interleaving of alloc / alloc_at / free, and the
    // indexed queries must agree with naive derivations from that
    // rescan. (`check_invariants`, called per step, also cross-checks
    // the index; this test additionally pins the query semantics.)
    let mut seeds = DetRng::new(0xB0DD_1E05);
    for _ in 0..CASES {
        let mut rng = seeds.fork();
        let num_frames = rng.range(512, 6000);
        let n_ops = rng.range(1, 150);
        let mut a = BuddyAllocator::new(num_frames);
        let mut live: Vec<(u64, u32)> = Vec::new();
        for _ in 0..n_ops {
            match random_op(&mut rng, num_frames) {
                Op::Alloc(order) => {
                    if let Ok(start) = a.alloc(order) {
                        live.push((start, order));
                    }
                }
                Op::AllocAt { frame, order } => {
                    if frame + (1 << order) <= num_frames && a.alloc_at(frame, order).is_ok() {
                        live.push((frame, order));
                    }
                }
                Op::FreeIdx(i) => {
                    if !live.is_empty() {
                        let (start, order) = live.swap_remove(i % live.len());
                        a.free(start, order).unwrap();
                    }
                }
            }
            let rescan = a.free_runs_rescan();
            assert_eq!(a.free_runs(), rescan, "index diverged from rescan");
            a.check_invariants().unwrap();
            // Queries answer exactly what a naive scan of the rescan says.
            let largest = rescan.iter().map(|&(_, l)| l).max().unwrap_or(0);
            assert_eq!(a.largest_free_run(), largest);
            let cursor = rng.below(num_frames + 1);
            let need = rng.range(1, 1024);
            assert_eq!(
                a.first_run_fitting(cursor, need),
                rescan
                    .iter()
                    .copied()
                    .find(|&(s, l)| s >= cursor && l >= need)
            );
            let in0 = rng.below(num_frames);
            let fits = |(s, l): (u64, u64)| {
                let want = in0 % 512;
                let base = s - s % 512;
                let out0 = if base + want >= s {
                    base + want
                } else {
                    base + want + 512
                };
                out0 + need <= s + l
            };
            assert_eq!(
                a.first_congruent_run(cursor, in0, need),
                rescan.iter().copied().find(|&r| r.0 >= cursor && fits(r))
            );
            assert_eq!(
                a.first_congruent_run_below(cursor, in0, need),
                rescan.iter().copied().find(|&r| r.0 < cursor && fits(r))
            );
        }
    }
}

#[test]
fn bulk_update_rebuild_equals_incremental_maintenance() {
    // Replaying the same op sequence incrementally and inside one
    // `bulk_update` (index suspended, rebuilt from rescan at the end)
    // must leave identical allocators and identical indexes.
    fn apply(a: &mut BuddyAllocator, ops: &[Op]) {
        let mut live: Vec<(u64, u32)> = Vec::new();
        for op in ops {
            match *op {
                Op::Alloc(order) => {
                    if let Ok(start) = a.alloc(order) {
                        live.push((start, order));
                    }
                }
                Op::AllocAt { frame, order } => {
                    if frame + (1 << order) <= a.total_frames() && a.alloc_at(frame, order).is_ok()
                    {
                        live.push((frame, order));
                    }
                }
                Op::FreeIdx(i) => {
                    if !live.is_empty() {
                        let (start, order) = live.swap_remove(i % live.len());
                        a.free(start, order).unwrap();
                    }
                }
            }
        }
    }
    let mut seeds = DetRng::new(0xB0DD_1E06);
    for _ in 0..CASES {
        let mut rng = seeds.fork();
        let num_frames = rng.range(512, 4096);
        let n_ops = rng.range(1, 150);
        let ops: Vec<Op> = (0..n_ops)
            .map(|_| random_op(&mut rng, num_frames))
            .collect();
        let mut incremental = BuddyAllocator::new(num_frames);
        let mut bulk = BuddyAllocator::new(num_frames);
        apply(&mut incremental, &ops);
        bulk.bulk_update(|b| apply(b, &ops));
        assert_eq!(incremental.free_runs(), bulk.free_runs());
        assert_eq!(incremental.used_frames(), bulk.used_frames());
        bulk.check_invariants().unwrap();
    }
}

#[test]
fn free_everything_restores_pristine_state() {
    let mut seeds = DetRng::new(0xB0DD_1E02);
    for _ in 0..CASES {
        let mut rng = seeds.fork();
        let num_frames = rng.range(512, 4096);
        let n = rng.range(1, 64);
        let mut a = BuddyAllocator::new(num_frames);
        let mut live = Vec::new();
        for _ in 0..n {
            let order = rng.below(MAX_ORDER as u64 + 1) as u32;
            if let Ok(s) = a.alloc(order) {
                live.push((s, order));
            }
        }
        for (s, o) in live {
            a.free(s, o).unwrap();
        }
        assert_eq!(a.free_frames(), num_frames);
        a.check_invariants().unwrap();
        // A single maximal run spanning all memory.
        assert_eq!(a.free_runs(), vec![(0, num_frames)]);
    }
}

#[test]
fn alloc_at_never_hands_out_busy_frames() {
    let mut seeds = DetRng::new(0xB0DD_1E03);
    for _ in 0..CASES {
        let mut rng = seeds.fork();
        let n = rng.range(1, 80);
        let mut a = BuddyAllocator::new(1024);
        let mut owned: Vec<(u64, u32)> = Vec::new();
        for _ in 0..n {
            let order = rng.below(10) as u32;
            let frame = rng.below(1024) & !((1u64 << order) - 1);
            if frame + (1 << order) > 1024 {
                continue;
            }
            match a.alloc_at(frame, order) {
                Ok(()) => {
                    for &(s, o) in &owned {
                        let disjoint = s + (1u64 << o) <= frame || frame + (1u64 << order) <= s;
                        assert!(disjoint, "alloc_at returned an owned frame");
                    }
                    owned.push((frame, order));
                }
                Err(_) => {
                    // Failure must mean some frame in range is indeed busy,
                    // i.e. intersects an owned block.
                    let busy = owned
                        .iter()
                        .any(|&(s, o)| s < frame + (1 << order) && frame < s + (1u64 << o));
                    assert!(busy, "alloc_at refused a fully free range");
                }
            }
        }
    }
}

#[test]
fn is_range_free_matches_ownership() {
    let mut seeds = DetRng::new(0xB0DD_1E04);
    for _ in 0..CASES {
        let mut rng = seeds.fork();
        let n = rng.below(32);
        let mut a = BuddyAllocator::new(512);
        let mut owned: Vec<(u64, u32)> = Vec::new();
        for _ in 0..n {
            let order = rng.below(7) as u32;
            let frame = rng.below(512) & !((1u64 << order) - 1);
            if frame + (1 << order) <= 512 && a.alloc_at(frame, order).is_ok() {
                owned.push((frame, order));
            }
        }
        let qs = rng.below(512);
        let ql = rng.range(1, 64).min(512 - qs.min(512));
        if qs + ql <= 512 {
            let expect_free = !owned
                .iter()
                .any(|&(s, o)| s < qs + ql && qs < s + (1u64 << o));
            assert_eq!(a.is_range_free(qs, ql), expect_free);
        }
    }
}

//! Deterministic parallel execution of experiment cells.
//!
//! An experiment *cell* is one self-contained simulation: a closure
//! that builds a machine, runs a workload and returns its result.
//! Because every cell derives its seed up front (via
//! [`gemini_sim_core::derive_seed`] through [`Scale::seed_for`]) and
//! shares no mutable state with other cells, cells can execute in any
//! order on any number of threads — the executor reassembles results
//! in submission order, so rendered tables, JSON exports and traces
//! are byte-identical whether a grid ran on one thread or sixteen.
//!
//! [`Scale::seed_for`]: crate::scale::Scale::seed_for
//!
//! The pool is dependency-free: [`std::thread::scope`] workers pull
//! `(index, cell)` pairs from a shared queue and write each result
//! into its submission-indexed slot. Progress flows through the
//! [`Recorder`] as deterministic counters (`exec.cells_submitted`,
//! `exec.cells_finished`) — never wall-clock time, which would differ
//! between runs and break byte-identity of exported registries.

use gemini_obs::{Phase, Profiler, Recorder};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Resolves a jobs setting: `0` means "use the machine's available
/// parallelism", anything else is taken literally.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs `cells` across `jobs` worker threads (0 = auto) and returns
/// their results in submission order.
///
/// `jobs <= 1` runs the cells inline on the calling thread — the
/// sequential reference path the parallel one is checked against.
pub fn run_cells<T, F>(jobs: usize, cells: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_cells_traced(jobs, &Recorder::off(), cells)
}

/// Like [`run_cells`], but reports cell-level progress through `rec`:
/// `exec.cells_submitted` counts cells enqueued, `exec.cells_finished`
/// counts completions. Both are deterministic counts, so a traced
/// parallel run exports the same registry as a sequential one.
pub fn run_cells_traced<T, F>(jobs: usize, rec: &Recorder, cells: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_cells_hinted(jobs, rec, cells.into_iter().map(|c| (0, c)).collect())
}

/// Like [`run_cells_traced`], but each cell carries a deterministic
/// *cost hint* and workers dispatch the most expensive pending cell
/// first — LPT (longest-processing-time-first) list scheduling, which
/// keeps one slow cell from landing last on an otherwise idle pool and
/// stretching the grid's critical path.
///
/// Hints only reorder *dispatch*; results are still reassembled in
/// submission order and the sequential path ignores hints entirely, so
/// tables, JSON exports and traces stay byte-identical at any `jobs`
/// for any hint assignment. Ties dispatch in submission order.
pub fn run_cells_hinted<T, F>(jobs: usize, rec: &Recorder, cells: Vec<(u64, F)>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = cells.len();
    rec.counter_add("exec.cells_submitted", n as u64);
    let jobs = effective_jobs(jobs).min(n.max(1));
    if jobs <= 1 {
        return cells
            .into_iter()
            .map(|(_, cell)| {
                let result = cell();
                rec.counter_add("exec.cells_finished", 1);
                result
            })
            .collect();
    }
    let mut queued: Vec<(u64, (usize, F))> = cells
        .into_iter()
        .enumerate()
        .map(|(idx, (hint, cell))| (hint, (idx, cell)))
        .collect();
    // LPT dispatch order: largest hint first, submission order on ties
    // (stable sort keeps equal-hint cells FIFO).
    queued.sort_by_key(|cell| std::cmp::Reverse(cell.0));
    let queue: Mutex<VecDeque<(usize, F)>> =
        Mutex::new(queued.into_iter().map(|(_, cell)| cell).collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                // Pop under the lock, run outside it: cells are the
                // expensive part and must not serialize.
                let next = queue.lock().unwrap().pop_front();
                let Some((idx, cell)) = next else {
                    break;
                };
                let result = cell();
                *slots[idx].lock().unwrap() = Some(result);
                rec.counter_add("exec.cells_finished", 1);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock cannot be poisoned after join")
                .expect("every queued cell stores its result")
        })
        .collect()
}

/// Like [`run_cells_hinted`], but with per-worker span profiling: each
/// worker records into its own [fork](Profiler::fork) of `prof`
/// (tagged with the worker index, so captured span events land on
/// per-worker trace tracks), every cell closure receives its worker's
/// fork to thread into the machine it builds, and executor bookkeeping
/// (queue pops, result stores) is attributed to [`Phase::Executor`].
/// After the barrier the forks merge back into `prof` in worker-index
/// order, so accumulated totals are reassembled deterministically.
///
/// The sequential path (`jobs <= 1`) runs every cell on one fork
/// (worker 0), which is what makes jobs=1 traces reproducible under a
/// deterministic clock.
pub fn run_cells_profiled<T, F>(
    jobs: usize,
    rec: &Recorder,
    prof: &Profiler,
    cells: Vec<(u64, F)>,
) -> Vec<T>
where
    T: Send,
    F: FnOnce(&Profiler) -> T + Send,
{
    let n = cells.len();
    rec.counter_add("exec.cells_submitted", n as u64);
    let jobs = effective_jobs(jobs).min(n.max(1));
    let forks: Vec<Profiler> = (0..jobs).map(|w| prof.fork(w as u32)).collect();
    if jobs <= 1 {
        let out = cells
            .into_iter()
            .map(|(_, cell)| {
                let result = cell(&forks[0]);
                rec.counter_add("exec.cells_finished", 1);
                result
            })
            .collect();
        prof.merge_from(&forks[0]);
        return out;
    }
    let mut queued: Vec<(u64, (usize, F))> = cells
        .into_iter()
        .enumerate()
        .map(|(idx, (hint, cell))| (hint, (idx, cell)))
        .collect();
    queued.sort_by_key(|cell| std::cmp::Reverse(cell.0));
    let queue: Mutex<VecDeque<(usize, F)>> =
        Mutex::new(queued.into_iter().map(|(_, cell)| cell).collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for wprof in &forks {
            scope.spawn(|| loop {
                let next = {
                    let _exec = wprof.span(Phase::Executor);
                    queue.lock().unwrap().pop_front()
                };
                let Some((idx, cell)) = next else {
                    break;
                };
                let result = cell(wprof);
                let _exec = wprof.span(Phase::Executor);
                *slots[idx].lock().unwrap() = Some(result);
                rec.counter_add("exec.cells_finished", 1);
            });
        }
    });
    for wprof in &forks {
        prof.merge_from(wprof);
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock cannot be poisoned after join")
                .expect("every queued cell stores its result")
        })
        .collect()
}

/// Runs the *shards* of one cell across `jobs` workers (0 = auto) and
/// returns their results in submission order.
///
/// Where [`run_cells_profiled`] spreads many independent cells over a
/// pool, this spreads the independent *phases of a single cell* —
/// machine construction on one worker, workload pre-generation on
/// another (intra-cell sharding, DESIGN.md §13). Shards dispatch FIFO
/// (no cost hints: a cell has few shards and their order is the
/// submission order), each shard records spans onto its worker's
/// profiler fork, forks merge back in worker-index order, and progress
/// flows through `rec` as `exec.shards_submitted` /
/// `exec.shards_finished` — deterministic counts, so a sharded run
/// exports the same registry at any jobs setting.
///
/// The shards must be *independent*: nothing a shard computes may feed
/// another shard in the same batch. The runner guarantees this by
/// construction — workload generation is a pure function of
/// `(spec, ops, seed)` and never observes the machine being built.
pub fn run_shards<T, F>(jobs: usize, rec: &Recorder, prof: &Profiler, shards: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce(&Profiler) -> T + Send,
{
    rec.counter_add("exec.shards_submitted", shards.len() as u64);
    let shard_rec = rec.clone();
    let shards: Vec<(u64, _)> = shards
        .into_iter()
        .map(|shard| {
            let shard_rec = &shard_rec;
            (0u64, move |wprof: &Profiler| {
                let result = shard(wprof);
                shard_rec.counter_add("exec.shards_finished", 1);
                result
            })
        })
        .collect();
    // The pool itself is `run_cells_profiled`'s: same queue, same slot
    // reassembly, same fork/merge discipline. The off recorder keeps
    // cell-level counters out of it — shards are not cells.
    run_cells_profiled(jobs, &Recorder::off(), prof, shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_jobs_is_positive() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for jobs in [1, 2, 7] {
            let cells: Vec<_> = (0..25u64).map(|i| move || i * i).collect();
            let out = run_cells(jobs, cells);
            assert_eq!(out, (0..25u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_workers_than_cells_is_fine() {
        let cells: Vec<_> = (0..2u64).map(|i| move || i).collect();
        assert_eq!(run_cells(16, cells), vec![0, 1]);
        let empty: Vec<fn() -> u64> = Vec::new();
        assert!(run_cells(4, empty).is_empty());
    }

    #[test]
    fn progress_counters_are_deterministic_across_jobs() {
        let registry_for = |jobs: usize| {
            let rec = Recorder::new(&gemini_obs::TraceConfig::all());
            let cells: Vec<_> = (0..10u64).map(|i| move || i).collect();
            run_cells_traced(jobs, &rec, cells);
            rec.registry()
        };
        let seq = registry_for(1);
        let par = registry_for(4);
        assert_eq!(seq.counter("exec.cells_submitted"), 10);
        assert_eq!(seq.counter("exec.cells_finished"), 10);
        assert_eq!(seq.to_json_lines(), par.to_json_lines());
    }

    #[test]
    fn hinted_results_stay_in_submission_order() {
        // Hints reorder dispatch only; any hint assignment must leave
        // the result vector untouched at every jobs count.
        for jobs in [1, 2, 5] {
            for hint_of in [|_i: u64| 0u64, |i: u64| i % 7, |i: u64| 100 - i] {
                let cells: Vec<(u64, _)> =
                    (0..20u64).map(|i| (hint_of(i), move || i * 3)).collect();
                let out = run_cells_hinted(jobs, &Recorder::off(), cells);
                assert_eq!(out, (0..20u64).map(|i| i * 3).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn hinted_progress_counters_match_plain_execution() {
        let rec = Recorder::new(&gemini_obs::TraceConfig::all());
        let cells: Vec<(u64, _)> = (0..6u64).map(|i| (i, move || i)).collect();
        run_cells_hinted(3, &rec, cells);
        assert_eq!(rec.registry().counter("exec.cells_submitted"), 6);
        assert_eq!(rec.registry().counter("exec.cells_finished"), 6);
    }

    #[test]
    fn profiled_results_stay_in_submission_order_and_spans_merge() {
        for jobs in [1, 3] {
            let prof = Profiler::deterministic(false);
            let cells: Vec<(u64, _)> = (0..12u64)
                .map(|i| {
                    (i % 5, move |wprof: &Profiler| {
                        let _span = wprof.span(Phase::Access);
                        i * 7
                    })
                })
                .collect();
            let out = run_cells_profiled(jobs, &Recorder::off(), &prof, cells);
            assert_eq!(out, (0..12u64).map(|i| i * 7).collect::<Vec<_>>());
            // Every cell recorded exactly one Access span on its
            // worker's fork; the merge must account for all of them.
            let report = prof.report();
            let access = report
                .phases
                .iter()
                .find(|(p, _)| *p == Phase::Access)
                .expect("access phase recorded");
            assert_eq!(access.1.count, 12, "jobs={jobs}");
            if jobs > 1 {
                let exec = report.phases.iter().find(|(p, _)| *p == Phase::Executor);
                assert!(exec.is_some(), "executor bookkeeping attributed");
            }
        }
    }

    #[test]
    fn shards_come_back_in_submission_order_with_progress_counters() {
        for jobs in [1, 2, 4] {
            let rec = Recorder::new(&gemini_obs::TraceConfig::all());
            let prof = Profiler::deterministic(false);
            let shards: Vec<_> = (0..5u64)
                .map(|i| {
                    move |wprof: &Profiler| {
                        let _span = wprof.span(Phase::Setup);
                        i + 100
                    }
                })
                .collect();
            let out = run_shards(jobs, &rec, &prof, shards);
            assert_eq!(out, vec![100, 101, 102, 103, 104], "jobs={jobs}");
            assert_eq!(rec.registry().counter("exec.shards_submitted"), 5);
            assert_eq!(rec.registry().counter("exec.shards_finished"), 5);
            // Shards are not cells: the cell counters must stay silent.
            assert_eq!(rec.registry().counter("exec.cells_submitted"), 0);
            let report = prof.report();
            let setup = report
                .phases
                .iter()
                .find(|(p, _)| *p == Phase::Setup)
                .expect("shard spans merged back");
            assert_eq!(setup.1.count, 5, "jobs={jobs}");
        }
    }

    #[test]
    fn errors_propagate_as_values() {
        let cells: Vec<_> = (0..4u64)
            .map(|i| move || if i == 2 { Err(i) } else { Ok(i) })
            .collect();
        let out = run_cells(2, cells);
        assert_eq!(out, vec![Ok(0), Ok(1), Err(2), Ok(3)]);
    }
}

//! The metrics registry: named monotonic counters, gauges and
//! log₂-bucketed histograms that subsystems register into.
//!
//! Names are `&'static str` in dotted `subsystem.metric` form (e.g.
//! `"mmu.shootdown_rounds"`). Storage is `BTreeMap`-backed so every
//! iteration order — and therefore every rendered table and JSON
//! export — is deterministic.

use crate::json::{json_f64, json_str};
use std::collections::BTreeMap;

/// A histogram over `u64` observations with log₂ buckets.
///
/// Bucket `i` counts observations `v` with `bit_width(v) == i`, i.e.
/// bucket 0 holds zeros, bucket 1 holds `1`, bucket 2 holds `2..=3`,
/// bucket 11 holds `1024..=2047`, and so on. 65 buckets cover the full
/// `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[64 - value.leading_zeros() as usize] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds another histogram's observations into this one,
    /// bucket-wise.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear
    /// interpolation inside the log₂ bucket holding the target rank.
    ///
    /// Bucket 0 holds only zeros, so it contributes exactly 0; any
    /// other bucket `i` spans `[2^(i-1), 2^i)` and the estimate walks
    /// `rank_within_bucket / bucket_count` of the way across it. Exact
    /// when observations are uniform within their bucket; never off by
    /// more than one bucket width otherwise. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: q=0 → first, q=1 →
        // last, matching nearest-rank convention at the endpoints.
        let rank = (q * self.count as f64).max(1.0).min(self.count as f64);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = seen as f64;
            seen += n;
            if (seen as f64) >= rank {
                if i == 0 {
                    return 0.0;
                }
                let floor = (1u64 << (i - 1)) as f64;
                // Midpoint convention: the k-th of n observations in a
                // bucket sits at (k − ½)/n of the way across it, so
                // estimates stay strictly inside [floor, 2·floor).
                let frac = (rank - before - 0.5) / n as f64;
                return floor + frac * floor;
            }
        }
        // Unreachable when count > 0; keep a sane fallback.
        (1u64 << 63) as f64
    }

    /// Non-empty buckets as `(bucket_floor, count)` pairs in
    /// ascending order. `bucket_floor` is the smallest value the
    /// bucket admits (0, 1, 2, 4, 8, ...).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
            .collect()
    }
}

/// Registry of named counters, gauges and histograms.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// Adds `delta` to the counter `name` (registering it at 0 first
    /// if unseen).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Records `value` into the histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// The current value of counter `name`, or 0 if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.counters.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> Vec<(&'static str, f64)> {
        self.gauges.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> Vec<(&'static str, &Histogram)> {
        self.histograms.iter().map(|(&k, v)| (k, v)).collect()
    }

    /// Folds another registry into this one: counters and histogram
    /// buckets add; gauges take `other`'s value (last writer wins,
    /// matching `gauge_set` semantics under sequential execution).
    pub fn merge_from(&mut self, other: &Registry) {
        for (&name, &v) in &other.counters {
            self.counter_add(name, v);
        }
        for (&name, &v) in &other.gauges {
            self.gauge_set(name, v);
        }
        for (&name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge_from(h);
        }
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the whole registry as JSON Lines rows
    /// (`{"type":"counter",...}`, `{"type":"gauge",...}`,
    /// `{"type":"histogram",...}`), in deterministic name order.
    pub fn to_json_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (name, v) in &self.counters {
            out.push(format!(
                "{{\"type\":\"counter\",\"name\":{},\"value\":{v}}}",
                json_str(name)
            ));
        }
        for (name, v) in &self.gauges {
            out.push(format!(
                "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}",
                json_str(name),
                json_f64(*v)
            ));
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .into_iter()
                .map(|(floor, n)| format!("[{floor},{n}]"))
                .collect();
            out.push(format!(
                "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
                json_str(name),
                h.count(),
                h.sum(),
                json_f64(h.quantile(0.50)),
                json_f64(h.quantile(0.95)),
                json_f64(h.quantile(0.99)),
                buckets.join(",")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_width() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024, 2047, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        let buckets = h.nonzero_buckets();
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (2, 2), (4, 1), (1024, 2), (1 << 63, 1)]
        );
        assert_eq!(h.sum(), u64::MAX); // saturated
    }

    #[test]
    fn merge_adds_counters_and_buckets_and_overwrites_gauges() {
        let mut a = Registry::default();
        a.counter_add("c", 3);
        a.gauge_set("g", 1.0);
        a.observe("h", 4);
        let mut b = Registry::default();
        b.counter_add("c", 4);
        b.counter_add("only_b", 1);
        b.gauge_set("g", 2.0);
        b.observe("h", 4);
        b.observe("h", 1024);
        a.merge_from(&b);
        assert_eq!(a.counter("c"), 7);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.gauge("g"), Some(2.0));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 4 + 4 + 1024);
        assert_eq!(h.nonzero_buckets(), vec![(4, 2), (1024, 1)]);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        // 100 observations of 1000, all in bucket [512, 1024): every
        // quantile lands inside that bucket.
        for _ in 0..100 {
            h.observe(1000);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((512.0..1024.0).contains(&v), "q={q} gave {v}");
        }
        // Monotone in q.
        assert!(h.quantile(0.1) <= h.quantile(0.9));
        // Zeros report zero.
        let mut z = Histogram::default();
        z.observe(0);
        z.observe(0);
        assert_eq!(z.quantile(0.99), 0.0);
        // Bimodal: 90 fast (≈4 cycles) + 10 slow (≈4096 cycles): p50
        // sits in the fast bucket, p99 in the slow one.
        let mut bi = Histogram::default();
        for _ in 0..90 {
            bi.observe(4);
        }
        for _ in 0..10 {
            bi.observe(4096);
        }
        assert!((4.0..8.0).contains(&bi.quantile(0.50)));
        assert!((4096.0..8192.0).contains(&bi.quantile(0.99)));
        // Histogram JSON rows carry the percentiles.
        let mut r = Registry::default();
        r.observe("lat", 0);
        let row = &r.to_json_lines()[0];
        assert!(row.contains("\"p50\":0"), "{row}");
        assert!(row.contains("\"p99\":0"), "{row}");
    }

    #[test]
    fn registry_iterates_in_name_order() {
        let mut r = Registry::default();
        r.counter_add("z.last", 1);
        r.counter_add("a.first", 2);
        r.counter_add("z.last", 1);
        r.gauge_set("m.gauge", 0.5);
        assert_eq!(r.counters(), vec![("a.first", 2), ("z.last", 2)]);
        assert_eq!(r.counter("z.last"), 2);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("m.gauge"), Some(0.5));
        let lines = r.to_json_lines();
        assert_eq!(
            lines[0],
            "{\"type\":\"counter\",\"name\":\"a.first\",\"value\":2}"
        );
        assert_eq!(lines.len(), 3);
    }
}

//! Design-choice ablations beyond the paper's figures.
//!
//! DESIGN.md calls these out: the adaptive booking timeout (Algorithm 1)
//! versus fixed timeouts, and the huge-preallocation threshold (the paper
//! selected 256 experimentally). Each ablation runs a churny workload on
//! fragmented memory — the regime where the knobs matter.

use crate::exec::run_cells;
use crate::report::{fmt_pct, fmt_ratio, Table};
use crate::scale::Scale;
use gemini_sim_core::{Cycles, Result};
use gemini_vm_sim::{Machine, MachineConfig, RunResult, SystemKind};
use gemini_workloads::{spec_by_name, WorkloadGen};

fn run_with(cfg: MachineConfig, scale: &Scale, workload: &str, seed: u64) -> Result<RunResult> {
    let spec = spec_by_name(workload).expect("ablation workload in catalog");
    let mut m = Machine::new(SystemKind::Gemini, cfg);
    let vm = m.add_vm()?;
    m.run(
        vm,
        WorkloadGen::new(spec.scaled(scale.ws_factor), scale.ops, seed),
    )
}

/// Timeout ablation results: label → run.
#[derive(Debug)]
pub struct TimeoutAblation {
    /// (label, result) per variant; "adaptive" first.
    pub variants: Vec<(String, RunResult)>,
}

/// Compares Algorithm 1's adaptive timeout against fixed settings.
pub fn run_timeout(scale: &Scale, workload: &str) -> Result<TimeoutAblation> {
    let seed = scale.seed_for("abl-timeout", 0);
    let settings: [(&str, Option<f64>); 4] = [
        ("adaptive (Alg. 1)", None),
        ("fixed 2ms", Some(2.0)),
        ("fixed 40ms", Some(40.0)),
        ("fixed 400ms", Some(400.0)),
    ];
    let cells: Vec<_> = settings
        .iter()
        .map(|&(_, ms)| {
            move || {
                let mut cfg = scale.machine_config(true, false, seed);
                cfg.fixed_booking_timeout = ms.map(Cycles::from_millis);
                run_with(cfg, scale, workload, seed)
            }
        })
        .collect();
    let mut variants = Vec::new();
    for (&(label, _), result) in settings.iter().zip(run_cells(scale.jobs, cells)) {
        variants.push((label.to_string(), result?));
    }
    Ok(TimeoutAblation { variants })
}

impl TimeoutAblation {
    /// Renders throughput, aligned rate and fragmentation per variant.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Ablation: booking timeout (adaptive vs fixed)",
            &[
                "variant",
                "throughput vs adaptive",
                "aligned rate",
                "guest FMFI",
            ],
        );
        let base = self.variants[0].1.throughput();
        for (label, r) in &self.variants {
            t.row(vec![
                label.clone(),
                fmt_ratio(r.throughput() / base),
                fmt_pct(r.aligned_rate()),
                format!("{:.2}", r.guest_fmfi),
            ]);
        }
        t.render()
    }
}

/// Preallocation-threshold sweep results.
#[derive(Debug)]
pub struct PreallocAblation {
    /// (threshold, result) per setting.
    pub settings: Vec<(usize, RunResult)>,
}

/// Sweeps the huge-preallocation threshold (paper default: 256).
pub fn run_prealloc(scale: &Scale, workload: &str) -> Result<PreallocAblation> {
    let seed = scale.seed_for("abl-prealloc", 0);
    let thresholds = [64usize, 128, 256, 384, 480];
    let cells: Vec<_> = thresholds
        .iter()
        .map(|&threshold| {
            move || {
                let mut cfg = scale.machine_config(true, false, seed);
                cfg.gemini_override = Some(gemini::policy::GeminiConfig {
                    prealloc_threshold: threshold,
                    ..Default::default()
                });
                run_with(cfg, scale, workload, seed)
            }
        })
        .collect();
    let mut settings = Vec::new();
    for (&threshold, result) in thresholds.iter().zip(run_cells(scale.jobs, cells)) {
        settings.push((threshold, result?));
    }
    Ok(PreallocAblation { settings })
}

impl PreallocAblation {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Ablation: huge-preallocation threshold sweep",
            &[
                "threshold",
                "throughput (Mops/s)",
                "aligned rate",
                "pages zeroed/op",
            ],
        );
        for (threshold, r) in &self.settings {
            t.row(vec![
                threshold.to_string(),
                format!("{:.3}", r.throughput() / 1e6),
                fmt_pct(r.aligned_rate()),
                format!("{:.2}", r.counters.stlb_misses as f64 / r.ops.max(1) as f64),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_ablation_runs_all_variants() {
        let scale = Scale {
            ops: 1_000,
            ..Scale::quick()
        };
        let res = run_timeout(&scale, "Masstree").unwrap();
        assert_eq!(res.variants.len(), 4);
        assert!(res.render().contains("adaptive"));
    }

    #[test]
    fn prealloc_sweep_runs_all_settings() {
        let scale = Scale {
            ops: 1_000,
            ..Scale::quick()
        };
        let res = run_prealloc(&scale, "Xapian").unwrap();
        assert_eq!(res.settings.len(), 5);
        assert!(res.render().contains("256"));
    }
}

//! Regenerates Figure 16: the Gemini performance breakdown — how much of
//! the speedup EMA/HB deliver versus the huge bucket, via ablation in the
//! reused-VM scenario.

use gemini_bench::{bench_scale, header};
use gemini_harness::experiments::breakdown;

fn main() {
    header("fig16_breakdown", "Figure 16");
    let res = breakdown::run(&bench_scale(), None).expect("ablation succeeds");
    print!("{}", res.render_fig16());
}

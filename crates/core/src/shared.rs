//! Shared state connecting MHPS, the two layers' policies and the timeout
//! controller.
//!
//! In the prototype this is kernel state exported to guests ("Gemini makes
//! each guest aware of the mis-aligned huge host pages mapped to it, by
//! providing their guest physical addresses labeled with the VM id"). The
//! simulator is single-threaded, so an `Rc<RefCell<_>>` models the channel.

use crate::mhps::VmScan;
use gemini_sim_core::{Cycles, VmId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// State shared between the Gemini components.
#[derive(Debug, Default)]
pub struct GeminiState {
    /// Latest per-VM scan results from MHPS.
    pub scans: HashMap<VmId, VmScan>,
    /// Current effective booking timeout from Algorithm 1.
    pub booking_timeout: Cycles,
    /// How long the huge bucket holds freed well-aligned regions.
    pub bucket_hold: Cycles,
}

impl GeminiState {
    /// Creates the initial state with sensible defaults (booking timeout
    /// starts at ~40 ms of CPU time; Algorithm 1 adapts it from there).
    pub fn new() -> Self {
        Self {
            scans: HashMap::new(),
            booking_timeout: Cycles::from_millis(40.0),
            bucket_hold: Cycles::from_millis(200.0),
        }
    }
}

/// Shared handle to [`GeminiState`].
pub type GeminiShared = Rc<RefCell<GeminiState>>;

/// Creates a fresh shared handle.
pub fn new_shared() -> GeminiShared {
    Rc::new(RefCell::new(GeminiState::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_state_is_visible_across_clones() {
        let shared = new_shared();
        let other = Rc::clone(&shared);
        shared.borrow_mut().booking_timeout = Cycles(123);
        assert_eq!(other.borrow().booking_timeout, Cycles(123));
        other.borrow_mut().scans.insert(VmId(1), VmScan::default());
        assert!(shared.borrow().scans.contains_key(&VmId(1)));
    }

    #[test]
    fn defaults_are_positive() {
        let s = GeminiState::new();
        assert!(s.booking_timeout > Cycles::ZERO);
        assert!(s.bucket_hold > s.booking_timeout);
    }
}

//! CA-paging (ISCA '20): contiguity-aware paging, software component.
//!
//! CA-paging steers demand paging so that virtual and physical addresses
//! stay congruent modulo the huge page size: at the *first* fault of an
//! extent (a VMA in the guest; a VM's physical range in the host) it
//! reserves a position inside a large free run and records the
//! virtual-to-physical *offset*; every later fault in the extent is placed
//! at `fault_address - offset`. Contiguous placement means promotions can
//! be performed in place, without copying.
//!
//! Unlike Gemini, CA-paging works one layer at a time with no knowledge of
//! the other layer, so the contiguity it builds only yields *well-aligned*
//! huge pages by coincidence.

use gemini_mm::{
    FaultCtx, FaultDecision, FaultOutcome, HugePolicy, LayerKind, LayerOps, PromotionKind,
    PromotionOp,
};
use gemini_sim_core::{Cycles, PAGES_PER_HUGE_PAGE};
use std::collections::HashMap;

/// CA-paging: per-extent offset placement plus in-place-only promotion.
#[derive(Debug, Clone)]
pub struct CaPaging {
    /// Offset (input frame − output frame) per extent key.
    offsets: HashMap<u64, i64>,
    /// Extent keys whose placement failed and must be re-established.
    broken: std::collections::HashSet<u64>,
    /// Next-fit cursor into the free-run list (frame address).
    cursor: u64,
    /// Key of the extent the last fault belonged to (for `after_fault`).
    last_key: Option<u64>,
    /// Regions promoted per daemon pass.
    pub regions_per_pass: usize,
}

impl CaPaging {
    /// Creates CA-paging with default parameters.
    pub fn new() -> Self {
        Self {
            offsets: HashMap::new(),
            broken: std::collections::HashSet::new(),
            cursor: 0,
            last_key: None,
            regions_per_pass: 4,
        }
    }

    /// The extent key of a fault: the VMA id in the guest, the VM id in
    /// the host.
    fn key_of(ctx: &FaultCtx<'_>) -> u64 {
        match (ctx.layer, ctx.vma) {
            (LayerKind::Guest, Some(vma)) => vma.id.0,
            _ => ctx.vm.0 as u64,
        }
    }

    /// Picks a region-congruent position for an extent starting at input
    /// frame `in0` needing `len` frames, using next-fit over free runs.
    ///
    /// Each leg is one indexed query against the allocator's persistent
    /// run index: first run at/after the cursor fitting the whole extent,
    /// wrapping (after the at-cursor leg missed, any fit necessarily
    /// starts before the cursor); otherwise any run holding at least one
    /// whole congruent region. With no such run, targeted placement has
    /// no promotion value — defer to the default allocator. Under
    /// fragmentation the queries reject in O(log runs) without probing,
    /// which is what keeps per-fault re-establishment cheap.
    fn establish_offset(&mut self, ctx: &FaultCtx<'_>, in0: u64, len: u64) -> Option<i64> {
        let buddy = ctx.buddy;
        let cursor = self.cursor;
        let pick = buddy
            .first_congruent_run(cursor, in0, len)
            .or_else(|| buddy.first_congruent_run_below(cursor, in0, len))
            .or_else(|| buddy.first_congruent_run(cursor, in0, PAGES_PER_HUGE_PAGE))
            .or_else(|| buddy.first_congruent_run_below(cursor, in0, PAGES_PER_HUGE_PAGE));
        let (start, _) = pick?;
        let out0 = congruent_start(start, in0);
        self.cursor = start;
        Some(in0 as i64 - out0 as i64)
    }
}

/// First frame ≥ `start` congruent to `in0` modulo the huge page size.
fn congruent_start(start: u64, in0: u64) -> u64 {
    let want = in0 % PAGES_PER_HUGE_PAGE;
    let base = start - (start % PAGES_PER_HUGE_PAGE);
    let candidate = base + want;
    if candidate >= start {
        candidate
    } else {
        candidate + PAGES_PER_HUGE_PAGE
    }
}

impl Default for CaPaging {
    fn default() -> Self {
        Self::new()
    }
}

impl HugePolicy for CaPaging {
    fn name(&self) -> &'static str {
        "CA-paging"
    }

    fn fault_decision(&mut self, ctx: &FaultCtx<'_>) -> FaultDecision {
        let key = Self::key_of(ctx);
        self.last_key = Some(key);
        let needs_establish = !self.offsets.contains_key(&key) || self.broken.contains(&key);
        if needs_establish {
            // Anchor the extent at the fault's region start; reserve space
            // for the rest of the VMA (or one region at the host).
            let region_start = ctx.addr_frame - ctx.addr_frame % PAGES_PER_HUGE_PAGE;
            let len = match ctx.vma {
                Some(vma) => (vma.start_frame() + vma.pages()).saturating_sub(region_start),
                None => PAGES_PER_HUGE_PAGE,
            };
            match self.establish_offset(ctx, region_start, len.max(PAGES_PER_HUGE_PAGE)) {
                Some(off) => {
                    self.offsets.insert(key, off);
                    self.broken.remove(&key);
                }
                None => return FaultDecision::Base,
            }
        }
        let off = self.offsets[&key];
        let target = ctx.addr_frame as i64 - off;
        if target < 0 {
            return FaultDecision::Base;
        }
        FaultDecision::BaseAt {
            frame: target as u64,
        }
    }

    fn after_fault(&mut self, _addr_frame: u64, outcome: &FaultOutcome) {
        if !outcome.placement_honored {
            if let Some(key) = self.last_key {
                // The reserved position was taken: re-establish the extent
                // from the next fault onward (CA-paging's fallback).
                self.broken.insert(key);
            }
        }
    }

    fn daemon_period(&self) -> Cycles {
        Cycles::from_millis(40.0)
    }

    fn daemon(&mut self, ops: &mut LayerOps<'_>) -> Vec<PromotionOp> {
        // Contiguity makes in-place promotion possible where CA-paging's
        // placement held; elsewhere the software component still rides on
        // khugepaged, which collapses well-populated regions by copy.
        ops.table
            .iter_regions()
            .filter(|&(_, huge)| !huge)
            .filter(|&(r, _)| {
                let pop = ops.table.region_population(r);
                (pop.present == PAGES_PER_HUGE_PAGE as usize && pop.in_place_eligible)
                    || pop.present >= PAGES_PER_HUGE_PAGE as usize / 2
            })
            .take(self.regions_per_pass)
            .map(|(r, _)| PromotionOp::new(r, PromotionKind::PreferInPlace))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_mm::{CostModel, GuestMm};
    use gemini_sim_core::{VmId, HUGE_PAGE_SIZE};

    #[test]
    fn congruent_start_math() {
        assert_eq!(congruent_start(0, 512), 0);
        assert_eq!(congruent_start(0, 515), 3);
        assert_eq!(congruent_start(5, 512), 512);
        assert_eq!(congruent_start(5, 517), 5);
        assert_eq!(congruent_start(513, 512), 1024);
    }

    #[test]
    fn placement_is_congruent_and_contiguous() {
        let mut g = GuestMm::new(VmId(1), 8192, CostModel::default());
        let mut ca = CaPaging::new();
        let vma = g.mmap(2 * HUGE_PAGE_SIZE).unwrap();
        let in0 = vma.start_frame();
        let mut outs = Vec::new();
        for i in 0..1024 {
            let (out, _) = g.handle_fault(in0 + i, &mut ca).unwrap();
            outs.push(out.pa_frame);
        }
        // Contiguous run, congruent modulo 512.
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(o, outs[0] + i as u64);
        }
        assert_eq!(outs[0] % 512, in0 % 512);
    }

    #[test]
    fn contiguous_placement_promotes_in_place() {
        let mut g = GuestMm::new(VmId(1), 8192, CostModel::default());
        let mut ca = CaPaging::new();
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        for i in 0..512 {
            g.handle_fault(vma.start_frame() + i, &mut ca).unwrap();
        }
        let fx = g.run_daemon(&mut ca, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 1);
        assert_eq!(fx.pages_copied, 0, "in-place, no migration");
    }

    #[test]
    fn sparse_regions_are_not_promoted() {
        let mut g = GuestMm::new(VmId(1), 8192, CostModel::default());
        let mut ca = CaPaging::new();
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        // Below the khugepaged-fallback threshold (256): no promotion.
        for i in 0..200 {
            g.handle_fault(vma.start_frame() + i, &mut ca).unwrap();
        }
        g.run_daemon(&mut ca, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 0, "sparse region must stay base");
        // A nearly-full region collapses through the THP fallback.
        for i in 200..511 {
            g.handle_fault(vma.start_frame() + i, &mut ca).unwrap();
        }
        g.run_daemon(&mut ca, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 1);
    }

    #[test]
    fn broken_placement_reestablishes() {
        let mut g = GuestMm::new(VmId(1), 8192, CostModel::default());
        let mut ca = CaPaging::new();
        let vma = g.mmap(2 * HUGE_PAGE_SIZE).unwrap();
        let (first, _) = g.handle_fault(vma.start_frame(), &mut ca).unwrap();
        // Sabotage: steal the next reserved frame directly.
        g.buddy_mut().alloc_at(first.pa_frame + 1, 0).unwrap();
        let (second, _) = g.handle_fault(vma.start_frame() + 1, &mut ca).unwrap();
        assert!(!second.placement_honored);
        // Subsequent faults pick a fresh congruent run and stay contiguous.
        let (third, _) = g.handle_fault(vma.start_frame() + 2, &mut ca).unwrap();
        let (fourth, _) = g.handle_fault(vma.start_frame() + 3, &mut ca).unwrap();
        assert_eq!(fourth.pa_frame, third.pa_frame + 1);
        assert!(third.placement_honored);
    }

    #[test]
    fn establish_probe_count_is_query_bounded() {
        use gemini_obs::{Recorder, TraceConfig};
        // Success case: on pristine memory the congruent query answers on
        // its first probe, so one establish costs one probed run.
        let mut g = GuestMm::new(VmId(1), 8192, CostModel::default());
        let rec = Recorder::new(&TraceConfig::all());
        g.set_recorder(rec.clone());
        let mut ca = CaPaging::new();
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        g.handle_fault(vma.start_frame(), &mut ca).unwrap();
        assert_eq!(
            rec.registry().counter("buddy.run_probes"),
            1,
            "one establish on one free run must probe exactly once"
        );

        // Fragmented case: one pinned frame per huge region kills every
        // order-9 block, so establishment is re-attempted on *every*
        // fault. Each attempt must reject through the index guards
        // without examining a single run — a count, not a timing, so
        // this regression guard cannot flake on slow CI machines. (The
        // pre-index implementation rescanned and rechecked the whole run
        // list four times per fault here: the 40x BENCH_pr4 outlier.)
        let mut g = GuestMm::new(VmId(1), 8192, CostModel::default());
        let buddy = g.buddy_mut();
        let mut held = Vec::new();
        while let Ok(f) = buddy.alloc(0) {
            held.push(f);
        }
        for f in held {
            if f % PAGES_PER_HUGE_PAGE != 0 {
                buddy.free(f, 0).unwrap();
            }
        }
        assert_eq!(buddy.free_blocks_of_order(9), 0);
        let runs = buddy.free_runs().len() as u64;
        assert!(runs > 10, "fragmentation must leave many runs ({runs})");
        let rec = Recorder::new(&TraceConfig::all());
        g.set_recorder(rec.clone());
        let mut ca = CaPaging::new();
        let vma = g.mmap(2 * HUGE_PAGE_SIZE).unwrap();
        for i in 0..64 {
            g.handle_fault(vma.start_frame() + i, &mut ca).unwrap();
        }
        assert_eq!(
            rec.registry().counter("buddy.run_probes"),
            0,
            "fragmented establish must reject per-query, not per-run"
        );
    }

    #[test]
    fn separate_vmas_get_separate_extents() {
        let mut g = GuestMm::new(VmId(1), 16384, CostModel::default());
        let mut ca = CaPaging::new();
        let a = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let b = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let (oa, _) = g.handle_fault(a.start_frame(), &mut ca).unwrap();
        let (ob, _) = g.handle_fault(b.start_frame(), &mut ca).unwrap();
        assert_ne!(oa.pa_frame >> 9, ob.pa_frame >> 9, "distinct regions");
    }
}

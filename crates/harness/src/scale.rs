//! Experiment scale presets.
//!
//! The simulator keeps the TLB at its real size (1536 L2 entries), so the
//! regime of an experiment is set by the ratio of working-set size to TLB
//! coverage, not by absolute bytes. Scales shrink working sets and op
//! counts together so the quick preset finishes in seconds while the full
//! preset matches DESIGN.md §5.

use gemini_sim_core::{derive_seed, Cycles};
use gemini_vm_sim::MachineConfig;

/// A coherent set of sizing knobs for one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier on each workload's working-set size.
    pub ws_factor: f64,
    /// Operations per workload run.
    pub ops: u64,
    /// Host physical frames.
    pub host_frames: u64,
    /// Guest physical frames per VM.
    pub vm_frames: u64,
    /// FMFI target for the "fragmented" variants.
    pub frag_target: f64,
    /// Base seed; experiments derive per-run seeds from it.
    pub seed: u64,
    /// Worker threads for experiment grids: 0 = available parallelism,
    /// 1 = sequential, N = exactly N threads. Results are byte-identical
    /// for every setting; this knob only trades wall-clock time.
    pub jobs: usize,
    /// Disables the event-driven fast-forward core (`--no-ff`): every
    /// event steps through the faithful slow path and every batch
    /// boundary runs a daemon pass, even when the pass is provably a
    /// no-op. Results are byte-identical with fast-forward on or off —
    /// this escape hatch exists so the parity suite (and a suspicious
    /// user) can prove that claim on any cell; it only costs wall time.
    pub no_ff: bool,
    /// Disables closed-form hit-run batching (`--no-batch`): every
    /// access in a hit-only run steps through the faithful TLB probe
    /// path (DESIGN.md §16). Results are byte-identical with batching
    /// on or off — same contract and same purpose as `no_ff`.
    pub no_batch: bool,
}

impl Scale {
    /// Seconds-fast preset for examples and integration tests.
    pub fn quick() -> Self {
        Self {
            ws_factor: 1.0 / 16.0,
            ops: 2_500,
            host_frames: 1 << 16, // 256 MiB.
            vm_frames: 1 << 15,   // 128 MiB.
            frag_target: 0.9,
            seed: 42,
            jobs: 0,
            no_ff: false,
            no_batch: false,
        }
    }

    /// Preset for the runnable examples: large and long enough for the
    /// background daemons to visibly differentiate the systems, small
    /// enough to finish in tens of seconds.
    pub fn demo() -> Self {
        // The calibrated regime (same sizing as `bench`): working sets
        // and run lengths where the background daemons differentiate the
        // systems the way the paper's figures do.
        Self {
            ws_factor: 0.25,
            ops: 8_000,
            host_frames: 1 << 18, // 1 GiB.
            vm_frames: 1 << 17,   // 512 MiB.
            frag_target: 0.9,
            seed: 42,
            jobs: 0,
            no_ff: false,
            no_batch: false,
        }
    }

    /// Default preset for `cargo bench`: large enough for the TLB regime
    /// to match the paper's, small enough to sweep all grids in minutes.
    pub fn bench() -> Self {
        Self {
            ws_factor: 0.25,
            ops: 8_000,
            host_frames: 1 << 18, // 1 GiB.
            vm_frames: 1 << 17,   // 512 MiB.
            frag_target: 0.9,
            seed: 42,
            jobs: 0,
            no_ff: false,
            no_batch: false,
        }
    }

    /// Full-size preset (DESIGN.md §5): working sets at catalog size.
    pub fn full() -> Self {
        Self {
            ws_factor: 1.0,
            ops: 20_000,
            host_frames: 1 << 19, // 2 GiB.
            vm_frames: 1 << 18,   // 1 GiB.
            frag_target: 0.9,
            seed: 42,
            jobs: 0,
            no_ff: false,
            no_batch: false,
        }
    }

    /// Reads `GEMINI_SCALE` (`quick` | `bench` | `full`; defaults to
    /// `bench`) and `GEMINI_JOBS` (worker threads for experiment
    /// cells; `0` = available parallelism).
    pub fn from_env() -> Self {
        let mut scale = match std::env::var("GEMINI_SCALE").as_deref() {
            Ok("quick") => Self::quick(),
            Ok("full") => Self::full(),
            _ => Self::bench(),
        };
        if let Ok(jobs) = std::env::var("GEMINI_JOBS") {
            if let Some(jobs) = parse_jobs(&jobs) {
                scale.jobs = jobs;
            }
        }
        scale
    }

    /// Builds the machine configuration for this scale.
    pub fn machine_config(&self, fragmented: bool, zero_heavy: bool, seed: u64) -> MachineConfig {
        MachineConfig {
            host_frames: self.host_frames,
            vm_frames: self.vm_frames,
            fragment_guest: fragmented.then_some(self.frag_target),
            fragment_host: fragmented.then_some(self.frag_target),
            zero_heavy,
            seed,
            no_ff: self.no_ff,
            no_batch: self.no_batch,
            ..MachineConfig::default()
        }
    }

    /// Machine config for the collocation experiments: two VMs, 16 vCPUs
    /// each, double the host memory.
    pub fn collocated_config(&self, seed: u64) -> MachineConfig {
        MachineConfig {
            host_frames: self.host_frames * 2,
            vm_frames: self.vm_frames,
            vcpus: 16,
            fragment_guest: Some(self.frag_target),
            fragment_host: Some(self.frag_target),
            seed,
            no_ff: self.no_ff,
            no_batch: self.no_batch,
            ..MachineConfig::default()
        }
    }

    /// A run-specific seed derived from the base seed.
    ///
    /// Delegates to [`gemini_sim_core::derive_seed`], the single seed
    /// derivation used across the workspace. Experiments call this once
    /// per cell *before* handing cells to the parallel executor, so a
    /// run's stream depends only on `(seed, tag, index)` — never on
    /// thread count or scheduling.
    pub fn seed_for(&self, tag: &str, index: u64) -> u64 {
        derive_seed(self.seed, tag, index)
    }
}

/// Interprets one `GEMINI_JOBS` value: `Some(n)` applies `n` (`0`
/// means "available parallelism", per the [`Scale::jobs`] contract),
/// `None` keeps the preset default. A value that is present but not a
/// number gets a stderr warning instead of a silent fallback — the
/// same contract `GEMINI_BENCH_OPS` follows in the bench crate, so a
/// typo like `GEMINI_JOBS=two` no longer quietly runs a different
/// thread count than the user asked for.
fn parse_jobs(raw: &str) -> Option<usize> {
    match raw.parse::<usize>() {
        Ok(jobs) => Some(jobs),
        Err(_) => {
            eprintln!("warning: GEMINI_JOBS={raw:?} is not a number; using the scale default");
            None
        }
    }
}

/// Suppressed-duration marker so Cycles stays in scope for doc purposes.
#[allow(dead_code)]
fn _unused(_: Cycles) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let q = Scale::quick();
        let b = Scale::bench();
        let f = Scale::full();
        assert!(q.ws_factor < b.ws_factor && b.ws_factor < f.ws_factor);
        assert!(q.ops < b.ops && b.ops < f.ops);
        assert!(q.host_frames < b.host_frames);
    }

    #[test]
    fn machine_config_carries_fragmentation() {
        let s = Scale::quick();
        let frag = s.machine_config(true, false, 1);
        assert_eq!(frag.fragment_guest, Some(0.9));
        let clean = s.machine_config(false, true, 1);
        assert_eq!(clean.fragment_guest, None);
        assert!(clean.zero_heavy);
    }

    #[test]
    fn no_ff_propagates_to_both_machine_configs() {
        let mut s = Scale::quick();
        assert!(!s.machine_config(false, false, 1).no_ff);
        assert!(!s.collocated_config(1).no_ff);
        s.no_ff = true;
        assert!(s.machine_config(false, false, 1).no_ff);
        assert!(s.collocated_config(1).no_ff);
    }

    #[test]
    fn no_batch_propagates_to_both_machine_configs() {
        let mut s = Scale::quick();
        assert!(!s.machine_config(false, false, 1).no_batch);
        assert!(!s.collocated_config(1).no_batch);
        s.no_batch = true;
        assert!(s.machine_config(false, false, 1).no_batch);
        assert!(s.collocated_config(1).no_batch);
    }

    #[test]
    fn collocated_config_uses_16_vcpus() {
        let c = Scale::quick().collocated_config(1);
        assert_eq!(c.vcpus, 16);
        assert_eq!(c.host_frames, Scale::quick().host_frames * 2);
    }

    #[test]
    fn jobs_values_parse_with_zero_meaning_auto() {
        assert_eq!(parse_jobs("3"), Some(3));
        // `0` is the documented "available parallelism" setting, not an
        // error; `effective_jobs` resolves it to >= 1 worker.
        assert_eq!(parse_jobs("0"), Some(0));
        assert_eq!(crate::effective_jobs(0).max(1), crate::effective_jobs(0));
    }

    #[test]
    fn garbage_jobs_values_keep_the_preset_default() {
        // Each of these used to be dropped with no diagnostic at all;
        // now they warn and leave the preset's `jobs` untouched.
        for garbage in ["two", "", "-1", "1.5", "0x4"] {
            assert_eq!(parse_jobs(garbage), None, "{garbage:?}");
        }
    }

    #[test]
    fn seeds_differ_per_tag_and_index() {
        let s = Scale::quick();
        assert_ne!(s.seed_for("a", 0), s.seed_for("b", 0));
        assert_ne!(s.seed_for("a", 0), s.seed_for("a", 1));
        assert_eq!(s.seed_for("a", 0), s.seed_for("a", 0));
        // seed_for IS derive_seed — one derivation across the workspace.
        assert_eq!(s.seed_for("a", 3), derive_seed(s.seed, "a", 3));
    }
}

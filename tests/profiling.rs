//! Profiling-subsystem integration tests: Chrome-trace well-formedness
//! (parsed back with the in-tree JSON reader), deterministic-clock
//! byte-identity, the perf-regression gate end to end through the
//! `gemini-sim` binary, and merge-order properties of the profiler and
//! the metrics registry.

use gemini_harness::bench::{grid_trace, profile_canneal_gemini};
use gemini_harness::Scale;
use gemini_obs::jsonread::{parse, Value};
use gemini_obs::{Phase, Profiler, Recorder, TraceConfig};

fn tiny_scale() -> Scale {
    Scale {
        ops: 400,
        ..Scale::quick()
    }
}

/// Collects `(name, tid)` of thread-name metadata rows, the `X`
/// complete events as `(name, cat, tid, ts, dur)` tuples, and the `C`
/// counter events as `(name, value)` pairs.
#[allow(clippy::type_complexity)]
fn split_trace(
    doc: &Value,
) -> (
    Vec<(String, u64)>,
    Vec<(String, String, u64, f64, f64)>,
    Vec<(String, f64)>,
) {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    let mut tracks = Vec::new();
    let mut spans = Vec::new();
    let mut counters = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph field");
        match ph {
            "M" => {
                if ev.get("name").and_then(Value::as_str) == Some("thread_name") {
                    let label = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .expect("thread_name label");
                    tracks.push((
                        label.to_string(),
                        ev.get("tid").and_then(Value::as_u64).expect("tid"),
                    ));
                }
            }
            "X" => spans.push((
                ev.get("name")
                    .and_then(Value::as_str)
                    .expect("name")
                    .to_string(),
                ev.get("cat")
                    .and_then(Value::as_str)
                    .expect("cat")
                    .to_string(),
                ev.get("tid").and_then(Value::as_u64).expect("tid"),
                ev.get("ts").and_then(Value::as_f64).expect("ts"),
                ev.get("dur").and_then(Value::as_f64).expect("dur"),
            )),
            "C" => counters.push((
                ev.get("name")
                    .and_then(Value::as_str)
                    .expect("name")
                    .to_string(),
                ev.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .expect("counter value"),
            )),
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    (tracks, spans, counters)
}

#[test]
fn grid_trace_has_worker_tracks_with_nested_cell_and_phase_spans() {
    let prof = Profiler::wall(true);
    let json = grid_trace(&tiny_scale(), 2, &prof).expect("profiled grid runs");
    let doc = parse(&json).expect("trace is valid JSON");
    let (tracks, spans, counters) = split_trace(&doc);

    // Two workers requested, two labelled tracks with stable ids.
    assert_eq!(
        tracks,
        vec![("worker-0".to_string(), 0), ("worker-1".to_string(), 1)]
    );

    // Grid-total batch engagement rides along as counter tracks, and
    // at least one cell of the fig. 3 grid batches something even at
    // tiny scale (the aligned-system Streamcluster cells stream
    // through resident huge entries).
    let names: Vec<&str> = counters.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        vec!["tlb.batch_breaks", "tlb.batch_runs", "tlb.batched_hits"]
    );
    let hits = counters
        .iter()
        .find(|(n, _)| n == "tlb.batched_hits")
        .map(|&(_, v)| v)
        .unwrap();
    assert!(hits > 0.0, "grid trace recorded no batched hits");

    let cells: Vec<_> = spans.iter().filter(|s| s.1 == "cell").collect();
    let phases: Vec<_> = spans.iter().filter(|s| s.1 == "phase").collect();
    assert!(!cells.is_empty(), "grid produced cell spans");
    assert!(!phases.is_empty(), "event capture produced phase spans");
    for (_, cat, tid, ..) in &spans {
        assert!(cat == "cell" || cat == "phase", "unexpected category {cat}");
        assert!(*tid < 2, "span on unknown track {tid}");
    }

    // Every phase span except executor bookkeeping (which runs between
    // cells by design) nests inside a cell rectangle on its own track.
    for (name, _, tid, ts, dur) in &phases {
        if name == Phase::Executor.name() {
            continue;
        }
        let contained = cells.iter().any(|(_, _, ctid, cts, cdur)| {
            ctid == tid && *ts >= *cts && *ts + *dur <= *cts + *cdur
        });
        assert!(
            contained,
            "{name} span at ts={ts} tid={tid} not inside a cell"
        );
    }
}

#[test]
fn deterministic_trace_is_byte_identical_at_jobs1() {
    let trace = || {
        let prof = Profiler::deterministic(true);
        grid_trace(&tiny_scale(), 1, &prof).expect("profiled grid runs")
    };
    let a = trace();
    let b = trace();
    assert!(!a.is_empty() && a.contains("traceEvents"));
    assert_eq!(a, b, "tick-clock traces must be byte-identical");
}

#[test]
fn reference_cell_phase_breakdown_covers_wall_time() {
    // The reference workload/system pair at quick scale — the same
    // code path `run_bench` profiles at demo scale, sized for a debug
    // test binary (demo is release-only territory: ~30x slower
    // unoptimized).
    let (phases, wall_ms, overhead_pct) =
        profile_canneal_gemini(&Scale::quick()).expect("reference cell runs");
    assert!(!phases.is_empty());
    // Self times are disjoint, so their sum is the instrumented share
    // of the cell's wall time: within 10% of the total (acceptance
    // criterion), and never more than the wall itself plus noise.
    let sum: f64 = phases.iter().map(|p| p.wall_ms).sum();
    assert!(
        (sum - wall_ms).abs() <= 0.10 * wall_ms,
        "phase self-times sum to {sum:.1} ms but the cell took {wall_ms:.1} ms"
    );
    for p in &phases {
        assert!(p.cum_ms >= p.wall_ms, "{}: cum < self", p.name);
        assert!(p.count > 0, "{}: zero-count phase exported", p.name);
    }
    // The profiler itself must stay in the noise (acceptance: < 3%).
    assert!(
        overhead_pct < 3.0,
        "estimated profiler overhead {overhead_pct:.2}% exceeds budget"
    );
}

/// Minimal v3-shaped report for the gate fixtures.
fn fixture_report(cell_ms: f64) -> String {
    format!(
        r#"{{
  "schema": "gemini-bench-v3",
  "reference_cell": {{"label": "ref", "current_wall_ms": 300}},
  "cells": [
    {{"label": "Canneal/GEMINI", "wall_ms": {cell_ms},
      "phases": [{{"name": "access", "wall_ms": {0}, "cum_ms": {0}, "count": 4}}]}}
  ]
}}"#,
        cell_ms * 0.8
    )
}

#[test]
fn compare_gate_fails_on_injected_regression_and_warn_only_passes() {
    let dir = std::env::temp_dir().join(format!("gemini-pr6-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, fixture_report(100.0)).unwrap();
    std::fs::write(&new, fixture_report(150.0)).unwrap(); // +50% injected

    let gate = |extra: &[&str]| {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_gemini-sim"));
        cmd.arg("bench")
            .args(["--compare", old.to_str().unwrap()])
            .args(["--against", new.to_str().unwrap()])
            .args(extra);
        cmd.output().expect("gemini-sim runs")
    };

    let fail = gate(&[]);
    assert!(
        !fail.status.success(),
        "regression must exit nonzero: {}",
        String::from_utf8_lossy(&fail.stderr)
    );
    assert!(String::from_utf8_lossy(&fail.stdout).contains("SLOWER"));

    let warn = gate(&["--warn-only"]);
    assert!(warn.status.success(), "warn-only must exit zero");

    // A generous threshold turns the same diff into a pass.
    let loose = gate(&["--threshold", "75"]);
    assert!(loose.status.success(), "75% threshold must tolerate +50%");

    std::fs::remove_dir_all(&dir).ok();
}

/// Records a fixed span pattern on `prof`; patterns differ per stream id.
fn record_stream(prof: &Profiler, id: u64) {
    for k in 0..(3 + id % 3) {
        let _outer = prof.span(Phase::Access);
        if (id + k) % 2 == 0 {
            let _inner = prof.span(Phase::FaultPath);
        }
    }
    let _d = prof.span(Phase::DaemonPass);
}

#[test]
fn profiler_merge_is_order_independent_and_matches_single_threaded() {
    // Three forks of one deterministic profiler record three distinct
    // streams sequentially (the tick clock is shared, so durations are
    // reproducible), then merge in different orders.
    let run = |order: &[usize]| {
        let master = Profiler::deterministic(false);
        let forks: Vec<Profiler> = (0..3).map(|w| master.fork(w)).collect();
        for (id, fork) in forks.iter().enumerate() {
            record_stream(fork, id as u64);
        }
        for &i in order {
            master.merge_from(&forks[i]);
        }
        master.report()
    };
    let abc = run(&[0, 1, 2]);
    let cba = run(&[2, 1, 0]);
    let bac = run(&[1, 0, 2]);
    assert_eq!(abc.phases, cba.phases, "merge must commute in effect");
    assert_eq!(abc.phases, bac.phases, "merge must associate in effect");
    assert_eq!(abc.spans_recorded, cba.spans_recorded);

    // The same three streams recorded on ONE profiler, in the same
    // global order, must yield identical accumulated totals.
    let single = Profiler::deterministic(false);
    for id in 0..3u64 {
        record_stream(&single, id);
    }
    assert_eq!(single.report().phases, abc.phases);
    assert_eq!(single.report().spans_recorded, abc.spans_recorded);
}

/// Applies a pseudo-random op stream (splitmix-style) to a recorder.
fn apply_ops(rec: &Recorder, seed: u64, n: u64) {
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for _ in 0..n {
        let v = next();
        match v % 3 {
            0 => rec.counter_add("prop.counter_a", v % 97),
            1 => rec.counter_add("prop.counter_b", v % 13),
            _ => rec.observe("prop.hist", v % 100_000),
        }
    }
}

#[test]
fn registry_merge_is_order_independent_and_matches_single_threaded() {
    let streams: Vec<(u64, u64)> = vec![(7, 40), (99, 25), (1234, 60)];
    let merged = |order: &[usize]| {
        let parts: Vec<Recorder> = streams
            .iter()
            .map(|&(seed, n)| {
                let rec = Recorder::new(&TraceConfig::all());
                apply_ops(&rec, seed, n);
                rec
            })
            .collect();
        let master = Recorder::new(&TraceConfig::all());
        for &i in order {
            master.merge_from(&parts[i]);
        }
        master.registry().to_json_lines().join("\n")
    };
    let abc = merged(&[0, 1, 2]);
    assert_eq!(abc, merged(&[2, 0, 1]), "registry merge must commute");
    assert_eq!(abc, merged(&[1, 2, 0]));

    // Single-threaded equivalent: every stream applied to one recorder.
    let single = Recorder::new(&TraceConfig::all());
    for &(seed, n) in &streams {
        apply_ops(&single, seed, n);
    }
    assert_eq!(single.registry().to_json_lines().join("\n"), abc);
}

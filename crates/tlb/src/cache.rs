//! A generic set-associative cache with LRU replacement.
//!
//! Used for every translation structure in the MMU model: L1 TLBs, the
//! unified L2 STLB, the nested TLB and the page-walk caches. Keys are
//! opaque 128-bit values built by the caller (page number + VM tag + size
//! tag packed together).
//!
//! Storage is one flat slot array (`num_sets * assoc` keys) plus a
//! per-set occupancy count, rather than a `Vec` per set: the lookup path
//! runs on every simulated memory access, and a single contiguous
//! allocation with in-place rotations avoids both the pointer chase and
//! the shift-down `remove` of the per-set representation. Within a set's
//! occupied prefix, order is LRU-first / MRU-last, maintained by slice
//! rotations.

/// A set-associative LRU cache of opaque keys.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `num_sets * assoc` key slots; set `s` owns `slots[s*assoc..(s+1)*assoc]`
    /// and only its first `lens[s]` slots are meaningful.
    slots: Vec<u128>,
    /// Occupied way count per set.
    lens: Vec<u32>,
    num_sets: usize,
    assoc: usize,
}

impl SetAssocCache {
    /// Creates a cache with `entries` total capacity and `assoc` ways.
    ///
    /// The number of sets is `entries / assoc`, rounded up to at least one.
    /// Every MMU geometry in the tree yields a power-of-two set count,
    /// which lets `set_of` index with a mask instead of a division.
    ///
    /// # Panics
    ///
    /// Panics if `assoc == 0`.
    pub fn new(entries: usize, assoc: usize) -> Self {
        assert!(assoc > 0, "associativity must be positive");
        let num_sets = (entries / assoc).max(1);
        debug_assert!(
            num_sets.is_power_of_two(),
            "cache geometry should give a power-of-two set count (got {num_sets})"
        );
        Self {
            slots: vec![0; num_sets * assoc],
            lens: vec![0; num_sets],
            num_sets,
            assoc,
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.num_sets * self.assoc
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.lens.iter().all(|&l| l == 0)
    }

    #[inline]
    fn set_of(&self, key: u128) -> usize {
        // Mix the key so that consecutive page numbers spread over sets,
        // then index. A fixed multiplicative hash keeps runs deterministic.
        let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((key >> 64) as u64);
        if self.num_sets.is_power_of_two() {
            // Identical to `%` for power-of-two set counts — the common
            // (in this tree: only) case.
            (h & (self.num_sets as u64 - 1)) as usize
        } else {
            (h % self.num_sets as u64) as usize
        }
    }

    /// The occupied prefix of `set`'s ways, with its base slot index.
    #[inline]
    fn set_range(&self, set: usize) -> (usize, usize) {
        let base = set * self.assoc;
        (base, base + self.lens[set] as usize)
    }

    /// Looks `key` up; on hit, refreshes its LRU position and returns true.
    #[inline]
    pub fn lookup(&mut self, key: u128) -> bool {
        let set = self.set_of(key);
        let (base, end) = self.set_range(set);
        match self.slots[base..end].iter().position(|&k| k == key) {
            Some(pos) => {
                // Rotate the hit to the back: most recently used.
                self.slots[base + pos..end].rotate_left(1);
                true
            }
            None => false,
        }
    }

    /// Checks for `key` without updating recency.
    pub fn probe(&self, key: u128) -> bool {
        let (base, end) = self.set_range(self.set_of(key));
        self.slots[base..end].contains(&key)
    }

    /// Inserts `key`, evicting the LRU way of its set when full.
    pub fn insert(&mut self, key: u128) {
        let set = self.set_of(key);
        let (base, end) = self.set_range(set);
        if let Some(pos) = self.slots[base..end].iter().position(|&k| k == key) {
            self.slots[base + pos..end].rotate_left(1);
            return;
        }
        if end - base == self.assoc {
            // Full: drop the LRU front, append at the back.
            self.slots[base..end].rotate_left(1);
            self.slots[end - 1] = key;
        } else {
            self.slots[end] = key;
            self.lens[set] += 1;
        }
    }

    /// Removes `key` if present; returns whether it was resident.
    pub fn invalidate(&mut self, key: u128) -> bool {
        let set = self.set_of(key);
        let (base, end) = self.set_range(set);
        match self.slots[base..end].iter().position(|&k| k == key) {
            Some(pos) => {
                self.slots[base + pos..end].rotate_left(1);
                self.lens[set] -= 1;
                true
            }
            None => false,
        }
    }

    /// Removes every entry matched by `pred`; returns how many were evicted.
    pub fn invalidate_matching(&mut self, mut pred: impl FnMut(u128) -> bool) -> usize {
        let mut evicted = 0;
        for set in 0..self.num_sets {
            let (base, end) = self.set_range(set);
            // In-place retain over the occupied prefix, preserving order.
            let mut write = base;
            for read in base..end {
                let k = self.slots[read];
                if !pred(k) {
                    self.slots[write] = k;
                    write += 1;
                }
            }
            evicted += end - write;
            self.lens[set] = (write - base) as u32;
        }
        evicted
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.lens.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_after_invalidate() {
        let mut c = SetAssocCache::new(64, 4);
        assert!(!c.lookup(42));
        c.insert(42);
        assert!(c.lookup(42));
        assert!(c.probe(42));
        assert!(c.invalidate(42));
        assert!(!c.invalidate(42));
        assert!(!c.lookup(42));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct-ish: 1 set, 2 ways.
        let mut c = SetAssocCache::new(2, 2);
        c.insert(1);
        c.insert(2);
        assert!(c.lookup(1)); // 1 becomes MRU; LRU is 2.
        c.insert(3); // Evicts 2.
        assert!(c.probe(1));
        assert!(!c.probe(2));
        assert!(c.probe(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(1);
        c.insert(1);
        assert_eq!(c.len(), 1);
        c.insert(2);
        c.insert(1); // Refresh 1; LRU is 2.
        c.insert(3); // Evicts 2.
        assert!(c.probe(1));
        assert!(!c.probe(2));
    }

    #[test]
    fn capacity_bounds_are_respected() {
        let mut c = SetAssocCache::new(1536, 12);
        assert_eq!(c.capacity(), 1536);
        for k in 0..10_000u128 {
            c.insert(k);
        }
        assert!(c.len() <= 1536);
        assert!(!c.is_empty());
        c.flush();
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_matching_filters_by_predicate() {
        let mut c = SetAssocCache::new(64, 4);
        for k in 0..32u128 {
            c.insert(k);
        }
        let evicted = c.invalidate_matching(|k| k % 2 == 0);
        assert_eq!(evicted, 16);
        assert!(!c.probe(0));
        assert!(c.probe(1));
    }

    #[test]
    fn key_zero_is_a_real_entry_not_an_empty_slot() {
        // Slots are zero-initialized; an actual key of 0 must still be
        // distinguished from unoccupied space via the occupancy counts.
        let mut c = SetAssocCache::new(8, 2);
        assert!(!c.lookup(0));
        assert!(!c.probe(0));
        c.insert(0);
        assert!(c.lookup(0));
        assert_eq!(c.len(), 1);
        assert!(c.invalidate(0));
        assert!(!c.probe(0));
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_preserves_lru_order_of_survivors() {
        // 1 set, 4 ways; order LRU→MRU is 1,2,3,4.
        let mut c = SetAssocCache::new(4, 4);
        for k in 1..=4u128 {
            c.insert(k);
        }
        c.invalidate(2); // Survivors: 1,3,4 (1 is LRU).
        c.insert(5); // Set back to full: 1,3,4,5.
        c.insert(6); // Evicts 1.
        assert!(!c.probe(1));
        for k in [3u128, 4, 5, 6] {
            assert!(c.probe(k), "key {k} should survive");
        }
    }
}

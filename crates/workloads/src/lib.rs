//! Synthetic workload models for the Gemini simulator.
//!
//! The paper evaluates on real applications (Table 2). Those binaries
//! cannot run inside a memory simulator, so each is modeled by the
//! *memory behaviour* the paper attributes to it and that determines how
//! the compared systems rank:
//!
//! - **working-set size** (all well beyond the 6 MiB base-page TLB
//!   coverage, within the 3 GiB huge-page coverage),
//! - **allocation pattern** — big static arrays up front (SVM, CG.D,
//!   429.mcf, Canneal) vs. gradual growth with dynamic structures (Redis,
//!   RocksDB, Memcached, Masstree, Xapian),
//! - **allocation churn** — K/V stores and databases keep freeing and
//!   reallocating, which shatters alignment over time (§6.2's Redis and
//!   RocksDB discussion),
//! - **access skew** — Zipf for servers, uniform for scientific kernels,
//!   streaming for Streamcluster,
//! - **request structure** for the latency-reporting TailBench-style
//!   applications, and per-op CPU work that makes Shore and NPB SP.D
//!   *non-TLB-sensitive*,
//! - **zero-page weight** for Specjbb (HawkEye's dedup anomaly).
//!
//! A [`WorkloadGen`] turns a [`WorkloadSpec`] into a deterministic stream
//! of [`WorkloadEvent`]s (allocate / free / touch / request boundary) that
//! the whole-system simulator executes against a VM.

pub mod fleet;
pub mod gen;
pub mod microbench;
pub mod spec;
pub mod trace;

pub use fleet::{FleetPlan, FleetSpec, HostPlan, VmPlan};
pub use gen::{touch_run_len, EventStream, PregenStream, WorkloadEvent, WorkloadGen};
pub use microbench::MicrobenchGen;
pub use spec::{catalog, non_tlb_sensitive, spec_by_name, AccessSkew, AllocPattern, WorkloadSpec};
pub use trace::{TeeStream, TraceHeader, TraceStream, TraceWriter, TRACE_FORMAT, TRACE_VERSION};

//! Huge booking — temporary reservation of huge-page-sized regions
//! (paper §3, §4).
//!
//! For each type-1 mis-aligned huge page, Gemini reserves the memory
//! region at the other layer that corresponds to it ("the space is
//! reserved until a time-out is reached or until the region is allocated
//! as a huge page or contiguous base pages"). While booked, the region is
//! carved out of the buddy allocator, so ordinary allocations cannot
//! splinter it; only the enhanced memory allocator places pages inside it,
//! through the `*Reserved` fault decisions.

use gemini_buddy::BuddyAllocator;
use gemini_sim_core::{Cycles, SimError, HUGE_PAGE_ORDER, PAGES_PER_HUGE_PAGE};
use std::collections::BTreeMap;

/// One booked huge-page-sized region.
#[derive(Debug, Clone)]
struct Booking {
    /// Absolute expiry time.
    expires: Cycles,
    /// Which of the 512 frames have been handed out to mappings.
    used: Box<[bool; PAGES_PER_HUGE_PAGE as usize]>,
    /// Count of frames handed out.
    used_count: usize,
}

/// The booking table of one layer.
#[derive(Debug, Default)]
pub struct BookingTable {
    bookings: BTreeMap<u64, Booking>,
    /// Total regions ever booked (stats).
    pub booked_total: u64,
    /// Regions fully consumed by allocations (stats).
    pub consumed_total: u64,
    /// Regions expired with frames returned (stats).
    pub expired_total: u64,
}

impl BookingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of active bookings.
    pub fn len(&self) -> usize {
        self.bookings.len()
    }

    /// True when no bookings are active.
    pub fn is_empty(&self) -> bool {
        self.bookings.is_empty()
    }

    /// True when `huge_frame` is currently booked.
    pub fn contains(&self, huge_frame: u64) -> bool {
        self.bookings.contains_key(&huge_frame)
    }

    /// Huge-frames of all active bookings, in address order.
    pub fn regions(&self) -> Vec<u64> {
        self.bookings.keys().copied().collect()
    }

    /// Books the region `huge_frame` by carving it out of `buddy`.
    ///
    /// Fails (without booking) when the region is not entirely free.
    pub fn book(
        &mut self,
        buddy: &mut BuddyAllocator,
        huge_frame: u64,
        now: Cycles,
        timeout: Cycles,
    ) -> Result<(), SimError> {
        if self.bookings.contains_key(&huge_frame) {
            return Err(SimError::RangeBusy);
        }
        buddy.alloc_at(huge_frame << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER)?;
        self.bookings.insert(
            huge_frame,
            Booking {
                expires: now + timeout,
                used: Box::new([false; PAGES_PER_HUGE_PAGE as usize]),
                used_count: 0,
            },
        );
        self.booked_total += 1;
        Ok(())
    }

    /// Takes one specific frame out of a booking for a base-page mapping.
    ///
    /// Returns `true` when the frame was available in an active booking.
    pub fn take_frame(&mut self, frame: u64) -> bool {
        let huge_frame = frame >> HUGE_PAGE_ORDER;
        let idx = (frame % PAGES_PER_HUGE_PAGE) as usize;
        let Some(b) = self.bookings.get_mut(&huge_frame) else {
            return false;
        };
        if b.used[idx] {
            return false;
        }
        b.used[idx] = true;
        b.used_count += 1;
        if b.used_count == PAGES_PER_HUGE_PAGE as usize {
            // Fully consumed: the mappings own every frame now.
            self.bookings.remove(&huge_frame);
            self.consumed_total += 1;
        }
        true
    }

    /// Checks whether a specific frame is bookable (inside an active
    /// booking and not yet handed out).
    pub fn frame_available(&self, frame: u64) -> bool {
        let huge_frame = frame >> HUGE_PAGE_ORDER;
        let idx = (frame % PAGES_PER_HUGE_PAGE) as usize;
        self.bookings
            .get(&huge_frame)
            .map(|b| !b.used[idx])
            .unwrap_or(false)
    }

    /// Takes a whole *untouched* booking for a huge-page mapping,
    /// returning its huge-frame. Prefers the lowest address.
    pub fn take_whole(&mut self) -> Option<u64> {
        let huge_frame = self
            .bookings
            .iter()
            .find(|(_, b)| b.used_count == 0)
            .map(|(&hf, _)| hf)?;
        self.bookings.remove(&huge_frame);
        self.consumed_total += 1;
        Some(huge_frame)
    }

    /// Takes the specific untouched booking `huge_frame`, if present.
    pub fn take_whole_at(&mut self, huge_frame: u64) -> bool {
        match self.bookings.get(&huge_frame) {
            Some(b) if b.used_count == 0 => {
                self.bookings.remove(&huge_frame);
                self.consumed_total += 1;
                true
            }
            _ => false,
        }
    }

    /// Expires bookings past their deadline, returning their *unused*
    /// frames to `buddy`. Returns the number of bookings expired.
    pub fn expire(&mut self, buddy: &mut BuddyAllocator, now: Cycles) -> usize {
        let expired: Vec<u64> = self
            .bookings
            .iter()
            .filter(|(_, b)| b.expires <= now)
            .map(|(&hf, _)| hf)
            .collect();
        for hf in &expired {
            let b = self.bookings.remove(hf).expect("key listed above");
            for (idx, &used) in b.used.iter().enumerate() {
                if !used {
                    buddy
                        .free((hf << HUGE_PAGE_ORDER) + idx as u64, 0)
                        .expect("booking owned this frame");
                }
            }
            self.expired_total += 1;
        }
        expired.len()
    }

    /// Releases *all* bookings immediately (memory-pressure path).
    pub fn release_all(&mut self, buddy: &mut BuddyAllocator) {
        let all: Vec<u64> = self.bookings.keys().copied().collect();
        for hf in all {
            let b = self.bookings.remove(&hf).expect("key listed above");
            for (idx, &used) in b.used.iter().enumerate() {
                if !used {
                    buddy
                        .free((hf << HUGE_PAGE_ORDER) + idx as u64, 0)
                        .expect("booking owned this frame");
                }
            }
            self.expired_total += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn booking_carves_region_out_of_buddy() {
        let mut buddy = BuddyAllocator::new(2048);
        let mut t = BookingTable::new();
        t.book(&mut buddy, 1, Cycles(0), Cycles(100)).unwrap();
        assert!(t.contains(1));
        assert_eq!(buddy.used_frames(), 512);
        // Ordinary allocation cannot touch the booked region.
        assert!(buddy.alloc_at(512, 0).is_err());
        // Double booking fails.
        assert!(t.book(&mut buddy, 1, Cycles(0), Cycles(100)).is_err());
        // Booking a busy region fails cleanly.
        buddy.alloc_at(0, 0).unwrap();
        assert!(t.book(&mut buddy, 0, Cycles(0), Cycles(100)).is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn frames_hand_out_once_and_complete_consumption() {
        let mut buddy = BuddyAllocator::new(1024);
        let mut t = BookingTable::new();
        t.book(&mut buddy, 0, Cycles(0), Cycles(100)).unwrap();
        assert!(t.frame_available(5));
        assert!(t.take_frame(5));
        assert!(!t.frame_available(5));
        assert!(!t.take_frame(5), "frame already taken");
        for i in 0..512 {
            if i != 5 {
                assert!(t.take_frame(i));
            }
        }
        // Fully consumed booking disappears.
        assert!(t.is_empty());
        assert_eq!(t.consumed_total, 1);
        // Frames outside any booking are refused.
        assert!(!t.take_frame(600));
    }

    #[test]
    fn expiry_returns_only_unused_frames() {
        let mut buddy = BuddyAllocator::new(1024);
        let mut t = BookingTable::new();
        t.book(&mut buddy, 0, Cycles(0), Cycles(100)).unwrap();
        assert!(t.take_frame(0));
        assert!(t.take_frame(1));
        assert_eq!(t.expire(&mut buddy, Cycles(99)), 0, "not yet due");
        assert_eq!(t.expire(&mut buddy, Cycles(100)), 1);
        // 510 frames returned; 2 remain owned by their mappings.
        assert_eq!(buddy.used_frames(), 2);
        assert!(!buddy.is_frame_free(0));
        assert!(!buddy.is_frame_free(1));
        assert!(buddy.is_frame_free(2));
        buddy.check_invariants().unwrap();
        assert_eq!(t.expired_total, 1);
    }

    #[test]
    fn take_whole_prefers_untouched_bookings() {
        let mut buddy = BuddyAllocator::new(4096);
        let mut t = BookingTable::new();
        t.book(&mut buddy, 0, Cycles(0), Cycles(100)).unwrap();
        t.book(&mut buddy, 3, Cycles(0), Cycles(100)).unwrap();
        assert!(t.take_frame(0)); // Region 0 partially used.
        assert_eq!(t.take_whole(), Some(3));
        assert_eq!(t.take_whole(), None, "region 0 is touched");
        assert!(!t.take_whole_at(0));
        // take_whole_at on a fresh booking works.
        t.book(&mut buddy, 5, Cycles(0), Cycles(100)).unwrap();
        assert!(t.take_whole_at(5));
    }

    #[test]
    fn release_all_returns_everything_unused() {
        let mut buddy = BuddyAllocator::new(4096);
        let mut t = BookingTable::new();
        t.book(&mut buddy, 0, Cycles(0), Cycles(1000)).unwrap();
        t.book(&mut buddy, 2, Cycles(0), Cycles(1000)).unwrap();
        t.take_frame(2 << 9);
        t.release_all(&mut buddy);
        assert!(t.is_empty());
        assert_eq!(buddy.used_frames(), 1);
        buddy.check_invariants().unwrap();
    }
}

//! Shared state connecting MHPS, the two layers' policies and the timeout
//! controller.
//!
//! In the prototype this is kernel state exported to guests ("Gemini makes
//! each guest aware of the mis-aligned huge host pages mapped to it, by
//! providing their guest physical addresses labeled with the VM id"). One
//! machine is still driven by one thread at a time; the shared handle is
//! `Send` so whole machines can be built and run on the worker threads of
//! the parallel experiment executor.
//!
//! # Epoch stamping
//!
//! The fault path used to take the mutex on every simulated access. Since
//! the state only changes on coarse daemon ticks (MHPS scan every ~2 ms of
//! simulated time, Algorithm 1 every ~20 ms), [`SharedState`] now carries a
//! monotonically increasing **epoch** bumped on every write: readers cache
//! a [`SharedView`](crate::policy) snapshot and compare epochs with a
//! single relaxed atomic load per access, re-reading under the lock only
//! when the epoch moved. Per-VM scans are stored behind `Arc` so snapshots
//! and daemon passes clone a pointer, not the scan lists.

use crate::mhps::VmScan;
use gemini_sim_core::{Cycles, VmId};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// State shared between the Gemini components.
#[derive(Debug, Default)]
pub struct GeminiState {
    /// Latest per-VM scan results from MHPS. `Arc` so readers snapshot
    /// scans by pointer clone.
    pub scans: HashMap<VmId, Arc<VmScan>>,
    /// Current effective booking timeout from Algorithm 1.
    pub booking_timeout: Cycles,
    /// How long the huge bucket holds freed well-aligned regions.
    pub bucket_hold: Cycles,
}

impl GeminiState {
    /// Creates the initial state with sensible defaults (booking timeout
    /// starts at ~40 ms of CPU time; Algorithm 1 adapts it from there).
    pub fn new() -> Self {
        Self {
            scans: HashMap::new(),
            booking_timeout: Cycles::from_millis(40.0),
            bucket_hold: Cycles::from_millis(200.0),
        }
    }
}

/// Epoch-stamped wrapper around [`GeminiState`].
#[derive(Debug, Default)]
pub struct SharedState {
    inner: Mutex<GeminiState>,
    /// Bumped after every write; readers poll this with a relaxed load to
    /// decide whether their cached snapshot is still current.
    epoch: AtomicU64,
}

impl SharedState {
    /// Wraps `state` at epoch 0.
    pub fn new(state: GeminiState) -> Self {
        Self {
            inner: Mutex::new(state),
            epoch: AtomicU64::new(0),
        }
    }

    /// Locks the state for reading. Does not bump the epoch.
    pub fn read(&self) -> MutexGuard<'_, GeminiState> {
        self.inner.lock().expect("gemini shared state poisoned")
    }

    /// Locks the state for writing; the epoch is bumped when the returned
    /// guard drops, invalidating every cached snapshot.
    pub fn write(&self) -> WriteGuard<'_> {
        WriteGuard {
            guard: self.inner.lock().expect("gemini shared state poisoned"),
            epoch: &self.epoch,
        }
    }

    /// Current epoch. Relaxed is enough: the writer is either this thread
    /// (a machine is driven by one thread at a time) or a past owner whose
    /// handoff already synchronized.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
}

/// Write guard that bumps the owning [`SharedState`]'s epoch on drop.
#[derive(Debug)]
pub struct WriteGuard<'a> {
    guard: MutexGuard<'a, GeminiState>,
    epoch: &'a AtomicU64,
}

impl Deref for WriteGuard<'_> {
    type Target = GeminiState;
    fn deref(&self) -> &GeminiState {
        &self.guard
    }
}

impl DerefMut for WriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut GeminiState {
        &mut self.guard
    }
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }
}

/// Shared handle to [`SharedState`].
pub type GeminiShared = Arc<SharedState>;

/// Creates a fresh shared handle.
pub fn new_shared() -> GeminiShared {
    Arc::new(SharedState::new(GeminiState::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_state_is_visible_across_clones() {
        let shared = new_shared();
        let other = Arc::clone(&shared);
        shared.write().booking_timeout = Cycles(123);
        assert_eq!(other.read().booking_timeout, Cycles(123));
        other
            .write()
            .scans
            .insert(VmId(1), Arc::new(VmScan::default()));
        assert!(shared.read().scans.contains_key(&VmId(1)));
    }

    #[test]
    fn defaults_are_positive() {
        let s = GeminiState::new();
        assert!(s.booking_timeout > Cycles::ZERO);
        assert!(s.bucket_hold > s.booking_timeout);
    }

    #[test]
    fn writes_bump_the_epoch_and_reads_do_not() {
        let shared = new_shared();
        assert_eq!(shared.epoch(), 0);
        {
            let _r = shared.read();
        }
        assert_eq!(shared.epoch(), 0, "reads must not invalidate snapshots");
        shared.write().booking_timeout = Cycles(7);
        assert_eq!(shared.epoch(), 1);
        {
            let mut w = shared.write();
            w.bucket_hold = Cycles(9);
            // Not bumped until the guard drops.
            assert_eq!(w.epoch.load(Ordering::Relaxed), 1);
        }
        assert_eq!(shared.epoch(), 2);
    }
}

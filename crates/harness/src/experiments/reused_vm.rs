//! Figures 12–15 and Table 4 — the reused-VM evaluation (§6.3).
//!
//! A large-working-set SVM job runs first in the VM and exits; because the
//! host never reclaims the VM's memory, its EPT backing — including every
//! huge page — persists. The follow-up workload then reallocates guest
//! memory over that backing. Systems that scatter base allocations across
//! formerly-huge regions destroy alignment; Gemini's huge bucket keeps the
//! freed well-aligned regions intact and reuses them wholesale.

use crate::exec::run_cells;
use crate::report::{fmt_pct, fmt_ratio, Table};
use crate::runner::run_workload_reused;
use crate::scale::Scale;
use gemini_sim_core::Result;
use gemini_vm_sim::{RunResult, SystemKind};
use gemini_workloads::catalog;

/// Results: `runs[workload][system]`.
#[derive(Debug)]
pub struct ReusedVmResults {
    /// Workload names.
    pub workloads: Vec<String>,
    /// Per-workload, per-system results (systems in evaluated order).
    pub runs: Vec<Vec<RunResult>>,
}

/// Runs the reused-VM grid.
pub fn run(scale: &Scale, workload_filter: Option<&[&str]>) -> Result<ReusedVmResults> {
    let specs: Vec<_> = catalog()
        .into_iter()
        .filter(|s| workload_filter.map(|f| f.contains(&s.name)).unwrap_or(true))
        .collect();
    let systems = SystemKind::evaluated();
    let mut cells = Vec::new();
    for (wi, spec) in specs.iter().enumerate() {
        let seed = scale.seed_for("reused", wi as u64);
        for &system in &systems {
            let spec = spec.clone();
            cells.push(move || run_workload_reused(system, &spec, scale, seed));
        }
    }
    let mut results = run_cells(scale.jobs, cells).into_iter();
    let mut runs = Vec::new();
    for _ in &specs {
        let mut per_sys = Vec::new();
        for _ in &systems {
            per_sys.push(results.next().expect("one result per cell")?);
        }
        runs.push(per_sys);
    }
    Ok(ReusedVmResults {
        workloads: specs.iter().map(|s| s.name.to_string()).collect(),
        runs,
    })
}

impl ReusedVmResults {
    fn render_normalized(&self, title: &str, metric: impl Fn(&RunResult) -> f64) -> String {
        let mut headers = vec!["workload"];
        headers.extend(SystemKind::evaluated().iter().map(|s| s.label()));
        let mut t = Table::new(title, &headers);
        for (wi, name) in self.workloads.iter().enumerate() {
            let row = &self.runs[wi];
            let base = metric(&row[0]);
            let mut cells = vec![name.clone()];
            for r in row {
                let v = metric(r);
                cells.push(fmt_ratio(if base == 0.0 { 0.0 } else { v / base }));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Fig. 12: throughput normalized to `Host-B-VM-B`.
    pub fn render_fig12(&self) -> String {
        self.render_normalized("Figure 12: normalized throughput, reused VM", |r| {
            r.throughput()
        })
    }

    /// Fig. 13: mean latency normalized to `Host-B-VM-B`.
    pub fn render_fig13(&self) -> String {
        self.render_normalized("Figure 13: normalized mean latency, reused VM", |r| {
            r.mean_latency.0 as f64
        })
    }

    /// Fig. 14: p99 latency normalized to `Host-B-VM-B`.
    pub fn render_fig14(&self) -> String {
        self.render_normalized(
            "Figure 14: normalized 99th-percentile latency, reused VM",
            |r| r.p99_latency.0 as f64,
        )
    }

    /// Fig. 15: TLB misses normalized to GEMINI.
    pub fn render_fig15(&self) -> String {
        let mut headers = vec!["workload"];
        headers.extend(SystemKind::evaluated().iter().map(|s| s.label()));
        let mut t = Table::new(
            "Figure 15: TLB misses normalized to GEMINI, reused VM",
            &headers,
        );
        for (wi, name) in self.workloads.iter().enumerate() {
            let row = &self.runs[wi];
            let gemini = row.last().expect("GEMINI last").tlb_misses().max(1) as f64;
            let mut cells = vec![name.clone()];
            for r in row {
                cells.push(fmt_ratio(r.tlb_misses() as f64 / gemini));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Table 4: rates of well-aligned huge pages in the reused VM.
    pub fn render_tab04(&self) -> String {
        let mut headers = vec!["workload"];
        headers.extend(SystemKind::tabulated().iter().map(|s| s.label()));
        let mut t = Table::new(
            "Table 4: rates of well-aligned huge pages, reused VM",
            &headers,
        );
        let eval = SystemKind::evaluated();
        for (wi, name) in self.workloads.iter().enumerate() {
            let mut cells = vec![name.clone()];
            for s in SystemKind::tabulated() {
                let i = eval.iter().position(|&e| e == s).expect("subset");
                cells.push(fmt_pct(self.runs[wi][i].aligned_rate()));
            }
            t.row(cells);
        }
        t.render()
    }

    /// Gemini's huge-bucket reuse rate averaged over workloads (the paper
    /// reports 88 %).
    pub fn mean_bucket_reuse(&self) -> f64 {
        let i = SystemKind::evaluated()
            .iter()
            .position(|&s| s == SystemKind::Gemini)
            .expect("Gemini evaluated");
        let rates: Vec<f64> = self.runs.iter().map(|r| r[i].bucket_reuse_rate).collect();
        rates.iter().sum::<f64>() / rates.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reused_grid_runs_and_renders() {
        let scale = Scale {
            ops: 1_500,
            ..Scale::quick()
        };
        let res = run(&scale, Some(&["Xapian"])).unwrap();
        assert_eq!(res.workloads, vec!["Xapian"]);
        for s in [
            res.render_fig12(),
            res.render_fig13(),
            res.render_fig14(),
            res.render_fig15(),
            res.render_tab04(),
        ] {
            assert!(s.contains("Xapian"), "{s}");
        }
        assert!(res.mean_bucket_reuse() >= 0.0);
    }
}

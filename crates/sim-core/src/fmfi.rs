//! Free-memory fragmentation index (FMFI).
//!
//! Both Ingens and Gemini's booking-timeout controller (Algorithm 1) gauge
//! external fragmentation with Linux's *fragmentation index* (from
//! `mm/vmstat.c`), which Ingens popularized as FMFI. For a requested buddy
//! order, the index answers: *if an allocation of this order failed, was it
//! because memory is fragmented (index → 1) or simply exhausted
//! (index → 0)?*
//!
//! The kernel formula, given the per-order free-block counts, is:
//!
//! ```text
//! index = 1 - (1 + free_pages / requested) / free_blocks_total
//! ```
//!
//! with the convention that the index is 0 when a suitable block exists
//! (the allocation would succeed) or when there is no free memory at all.

/// Per-order counts of free blocks in a buddy allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeAreaCounts {
    /// `counts[o]` is the number of free blocks of order `o`.
    pub counts: Vec<u64>,
}

impl FreeAreaCounts {
    /// Builds the structure from a slice of per-order block counts.
    pub fn new(counts: &[u64]) -> Self {
        Self {
            counts: counts.to_vec(),
        }
    }

    /// Total number of free base pages across all orders.
    pub fn free_pages(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(o, &c)| c << o as u64)
            .sum()
    }

    /// Total number of free blocks of any order.
    pub fn free_blocks_total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of free blocks that satisfy a request of `order` (i.e. of
    /// that order or larger).
    pub fn free_blocks_suitable(&self, order: u32) -> u64 {
        self.counts.iter().skip(order as usize).sum()
    }
}

/// Computes the fragmentation index in `[0, 1]` for a request of `order`.
///
/// Returns a value near 1 when free memory exists but only in fragments too
/// small for the request, and 0 when a suitable block is available or there
/// is no free memory at all. Gemini's huge-page preallocation requires
/// `FMFI <= 0.5` at order 9 before it will spend pages filling a region.
pub fn fragmentation_index(areas: &FreeAreaCounts, order: u32) -> f64 {
    let blocks_total = areas.free_blocks_total();
    if blocks_total == 0 {
        return 0.0;
    }
    if areas.free_blocks_suitable(order) > 0 {
        return 0.0;
    }
    let requested = 1u64 << order;
    let free_pages = areas.free_pages();
    let index = 1.0 - (1.0 + free_pages as f64 / requested as f64) / blocks_total as f64;
    index.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suitable_block_means_no_fragmentation() {
        // One free order-9 block: a huge allocation succeeds, index 0.
        let mut counts = vec![0u64; 12];
        counts[9] = 1;
        let areas = FreeAreaCounts::new(&counts);
        assert_eq!(fragmentation_index(&areas, 9), 0.0);
        assert_eq!(areas.free_pages(), 512);
        assert_eq!(areas.free_blocks_suitable(9), 1);
    }

    #[test]
    fn no_free_memory_means_exhaustion_not_fragmentation() {
        let areas = FreeAreaCounts::new(&[0; 12]);
        assert_eq!(fragmentation_index(&areas, 9), 0.0);
    }

    #[test]
    fn many_tiny_blocks_mean_high_fragmentation() {
        // 512 free base pages, all as order-0 blocks: plenty of memory but
        // no order-9 block — a textbook fragmented state.
        let mut counts = vec![0u64; 12];
        counts[0] = 512;
        let areas = FreeAreaCounts::new(&counts);
        let idx = fragmentation_index(&areas, 9);
        assert!(idx > 0.99, "index {idx} should be near 1");
    }

    #[test]
    fn scarce_tiny_memory_reads_as_exhaustion() {
        // Only 2 free base pages: an order-9 failure is mostly exhaustion.
        let mut counts = vec![0u64; 12];
        counts[0] = 2;
        let areas = FreeAreaCounts::new(&counts);
        let idx = fragmentation_index(&areas, 9);
        assert!(idx < 0.6, "index {idx} should lean toward exhaustion");
    }

    #[test]
    fn index_increases_with_fragmentation() {
        // Same free page count, increasingly fragmented layouts.
        let mut order8 = vec![0u64; 12];
        order8[8] = 2; // Two order-8 blocks (contiguous-ish).
        let mut order0 = vec![0u64; 12];
        order0[0] = 512; // Fully shattered.
        let i8 = fragmentation_index(&FreeAreaCounts::new(&order8), 9);
        let i0 = fragmentation_index(&FreeAreaCounts::new(&order0), 9);
        assert!(i0 > i8);
    }
}

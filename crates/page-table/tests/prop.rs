//! Property-based tests for the mixed-size address space.

use gemini_page_table::{AddressSpace, LeafSize};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    MapBase { va: u64, pa: u64 },
    MapHuge { va_h: u64, pa_h: u64 },
    UnmapBase { va: u64 },
    UnmapHuge { va_h: u64 },
    Demote { va_h: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small VA universe (8 huge regions) so operations collide often.
    prop_oneof![
        (0u64..4096, 0u64..1 << 20).prop_map(|(va, pa)| Op::MapBase { va, pa }),
        (0u64..8, 0u64..2048).prop_map(|(va_h, pa_h)| Op::MapHuge { va_h, pa_h }),
        (0u64..4096).prop_map(|va| Op::UnmapBase { va }),
        (0u64..8).prop_map(|va_h| Op::UnmapHuge { va_h }),
        (0u64..8).prop_map(|va_h| Op::Demote { va_h }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A shadow model (flat map va_frame -> pa_frame) must always agree
    /// with the radix structure, whatever the interleaving.
    #[test]
    fn matches_flat_shadow_model(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut a = AddressSpace::new();
        let mut shadow: BTreeMap<u64, u64> = BTreeMap::new();
        let mut huge_regions: BTreeMap<u64, u64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::MapBase { va, pa } => {
                    let ok = a.map_base(va, pa).is_ok();
                    let expect = !shadow.contains_key(&va) && !huge_regions.contains_key(&(va / 512));
                    prop_assert_eq!(ok, expect);
                    if ok {
                        shadow.insert(va, pa);
                    }
                }
                Op::MapHuge { va_h, pa_h } => {
                    let ok = a.map_huge(va_h, pa_h).is_ok();
                    let region_busy = huge_regions.contains_key(&va_h)
                        || shadow.range(va_h * 512..(va_h + 1) * 512).next().is_some();
                    prop_assert_eq!(ok, !region_busy);
                    if ok {
                        huge_regions.insert(va_h, pa_h);
                    }
                }
                Op::UnmapBase { va } => {
                    let r = a.unmap_base(va);
                    match shadow.remove(&va) {
                        Some(pa) => prop_assert_eq!(r, Ok(pa)),
                        None => prop_assert!(r.is_err()),
                    }
                }
                Op::UnmapHuge { va_h } => {
                    let r = a.unmap_huge(va_h);
                    match huge_regions.remove(&va_h) {
                        Some(pa) => prop_assert_eq!(r, Ok(pa)),
                        None => prop_assert!(r.is_err()),
                    }
                }
                Op::Demote { va_h } => {
                    let r = a.demote(va_h);
                    match huge_regions.remove(&va_h) {
                        Some(pa_h) => {
                            prop_assert!(r.is_ok());
                            for i in 0..512 {
                                shadow.insert(va_h * 512 + i, pa_h * 512 + i);
                            }
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
            }

            a.check_invariants().unwrap();
            prop_assert_eq!(a.base_mapped(), shadow.len() as u64);
            prop_assert_eq!(a.huge_mapped(), huge_regions.len() as u64);
        }

        // Final translation sweep.
        for (&va, &pa) in &shadow {
            let t = a.translate(va).unwrap();
            prop_assert_eq!(t.pa_frame, pa);
            prop_assert_eq!(t.size, LeafSize::Base);
        }
        for (&va_h, &pa_h) in &huge_regions {
            for i in [0u64, 17, 511] {
                let t = a.translate(va_h * 512 + i).unwrap();
                prop_assert_eq!(t.pa_frame, pa_h * 512 + i);
                prop_assert_eq!(t.size, LeafSize::Huge);
            }
        }
    }

    /// promote_in_place succeeds exactly when the region is fully populated
    /// with contiguous, huge-aligned backing — and never alters translation.
    #[test]
    fn promotion_preserves_translation(
        pa0_huge in 0u64..64,
        holes in prop::collection::btree_set(0usize..512, 0..3),
        scatter in proptest::bool::ANY,
    ) {
        let mut a = AddressSpace::new();
        for i in 0..512usize {
            if holes.contains(&i) {
                continue;
            }
            let pa = if scatter && i == 100 {
                999_999
            } else {
                pa0_huge * 512 + i as u64
            };
            a.map_base(i as u64, pa).unwrap();
        }
        let before: Vec<_> = (0..512u64).map(|i| a.translate(i).map(|t| t.pa_frame)).collect();
        let should_succeed = holes.is_empty() && !scatter;
        let result = a.promote_in_place(0);
        prop_assert_eq!(result.is_ok(), should_succeed);
        let after: Vec<_> = (0..512u64).map(|i| a.translate(i).map(|t| t.pa_frame)).collect();
        prop_assert_eq!(before, after);
        a.check_invariants().unwrap();
    }
}

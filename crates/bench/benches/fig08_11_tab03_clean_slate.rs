//! Regenerates Figures 8–11 and Table 3: the main clean-slate evaluation —
//! the full workload catalog under the eight systems, fragmented and
//! unfragmented.
//!
//! This is the heaviest bench; set `GEMINI_BENCH_OPS` lower (or
//! `GEMINI_SCALE=quick`) for a faster pass, or `GEMINI_SCALE=full` for
//! catalog-size working sets.

use gemini_bench::{bench_scale, header};
use gemini_harness::experiments::clean_slate;
use gemini_vm_sim::SystemKind;

fn main() {
    header(
        "fig08_11_tab03_clean_slate",
        "Figures 8, 9, 10, 11 + Table 3",
    );
    let res = clean_slate::run(&bench_scale(), None).expect("grid succeeds");
    for fragmented in [true, false] {
        print!("{}", res.render_fig08(fragmented));
        println!();
        print!("{}", res.render_fig09(fragmented));
        println!();
        print!("{}", res.render_fig10(fragmented));
        println!();
    }
    print!("{}", res.render_fig11());
    println!();
    print!("{}", res.render_tab03());
    println!(
        "mean speedups over Host-B-VM-B (fragmented): GEMINI {:.2}x, Ingens {:.2}x, HawkEye {:.2}x, THP {:.2}x, Trans-ranger {:.2}x",
        res.mean_speedup(SystemKind::Gemini, true),
        res.mean_speedup(SystemKind::Ingens, true),
        res.mean_speedup(SystemKind::HawkEye, true),
        res.mean_speedup(SystemKind::Thp, true),
        res.mean_speedup(SystemKind::Ranger, true),
    );
    println!(
        "mean well-aligned rates: GEMINI {:.0}%, Ingens {:.0}%, HawkEye {:.0}%, THP {:.0}%",
        res.mean_aligned_rate(SystemKind::Gemini) * 100.0,
        res.mean_aligned_rate(SystemKind::Ingens) * 100.0,
        res.mean_aligned_rate(SystemKind::HawkEye) * 100.0,
        res.mean_aligned_rate(SystemKind::Thp) * 100.0,
    );
}

//! `gemini-sim` — command-line driver for the simulator.
//!
//! ```text
//! gemini-sim list
//! gemini-sim run     --system GEMINI --workload Redis [--fragmented] [--reused]
//! gemini-sim compare --workload Redis [--fragmented] [--reused]
//! gemini-sim trace   --system GEMINI --workload Redis [--fragmented]
//! gemini-sim record  --workload Redis [--system GEMINI] [--trace OUT.jsonl]
//! gemini-sim replay  [--trace IN.jsonl] [--system GEMINI] [--jobs N]
//! gemini-sim parity  [--workload Redis] [--fragmented]
//! gemini-sim fleet   [--scale quick|demo|bench|full] [--jobs N] [--json PATH]
//! gemini-sim bench   [--scale quick|bench] [--jobs N] [--json BENCH_pr10.json]
//!                    [--profile trace.json] [--compare OLD.json]
//!                    [--threshold PCT] [--warn-only] [--pr6-wall-ms MS]
//!                    [--pr9-wall-ms MS]
//! gemini-sim bench   --compare OLD.json --against NEW.json   (diff only, no run)
//!
//! common flags:
//!   --scale quick|demo|bench|full   (default demo)
//!   --ops <n>                       operations per run
//!   --seed <n>                      run seed
//!   --jobs <n>                      worker threads for experiment cells
//!                                   (0 = available parallelism, 1 = sequential)
//!   --no-ff                         disable the fast-forward core: step every
//!                                   event faithfully (results are identical;
//!                                   this only costs wall time)
//!   --no-batch                      disable closed-form hit-run batching:
//!                                   probe the TLB for every access of a
//!                                   hit-only run (results are identical;
//!                                   this only costs wall time)
//!   --json <path>                   export results (and any trace) as JSON Lines
//!   --trace <path>                  gemini-trace-v1 file: written by `record`
//!                                   (default stdout), read by `replay`
//!                                   (default stdin)
//!
//! `record` runs one scenario live and tees every workload event into a
//! versioned `gemini-trace-v1` trace (DESIGN.md §15) while printing the
//! same result row `run` would; with the trace on stdout the table
//! moves to stderr so the two never interleave. `replay` streams a
//! recorded trace back through a scenario — the generator is skipped
//! entirely, events decode incrementally (traces larger than RAM are
//! fine), and the workload, seed and scale default to the header's so
//! a bare `gemini-sim replay --trace f.jsonl` reproduces the recorded
//! run byte-identically. Without `--system`, every evaluated system
//! replays the same trace on the worker pool (`--jobs`), which
//! requires `--trace FILE` (stdin cannot be re-read).
//!
//! `parity` runs every registry scenario twice — fast-forward on and
//! off (`--no-ff`) — and fails unless each pair of results is
//! byte-identical, counters included. It then replays one fleet host
//! per lifecycle system the same way, covering create/destroy churn.
//!
//! `fleet` drives the long-horizon VM arrival/departure scenario: a
//! deterministic plan first-fit packed onto simulated hosts, each host
//! one executor cell, every VM torn down through the leak-checked
//! `remove_vm` path when its lifetime ends.
//!
//! bench flags:
//!   --profile <path>   write a Chrome-trace-event (Perfetto) timeline of
//!                      the fig. 3 grid run to <path>
//!   --compare <old>    diff the new bench report against <old>; exits
//!                      nonzero on wall-time regressions beyond the threshold
//!   --against <new>    with --compare: diff two existing files, run nothing
//!   --threshold <pct>  regression threshold in percent (default 10)
//!   --warn-only        print regressions but always exit zero (CI at demo
//!                      scale in noisy containers)
//! ```
//!
//! `trace` reruns one workload with full event tracing, metrics and
//! time-series sampling on, then prints the event summary, the sampled
//! series and the metrics registry.

use gemini_harness::report::Table;
use gemini_harness::runner::{
    record_workload_on, replay_trace_on, run_workload_on, run_workload_reused, run_workload_traced,
};
use gemini_harness::{effective_jobs, perfdiff, run_cells_traced, trace, Scale};
use gemini_obs::{Profiler, Recorder, TraceConfig};
use gemini_vm_sim::{RunResult, SystemKind};
use gemini_workloads::{catalog, non_tlb_sensitive, spec_by_name, TraceHeader, TraceStream};
use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command-line options.
#[cfg_attr(test, derive(Debug))]
struct Opts {
    command: String,
    system: Option<String>,
    workload: Option<String>,
    scale: Scale,
    scale_name: String,
    /// Whether `--scale` appeared on the command line. `replay`
    /// defaults its machine sizing to the trace header's scale, but an
    /// explicit `--scale` must win over the header.
    scale_explicit: bool,
    fragmented: bool,
    reused: bool,
    seed: u64,
    json: Option<PathBuf>,
    trace_path: Option<PathBuf>,
    profile: Option<PathBuf>,
    compare: Option<PathBuf>,
    against: Option<PathBuf>,
    threshold_pct: f64,
    warn_only: bool,
    pr6_wall_ms: Option<f64>,
    pr9_wall_ms: Option<f64>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: gemini-sim <list|run|compare|trace|record|replay|parity|fleet|bench>\n\
         \x20                [--system NAME] [--workload NAME]\n\
         \x20                [--scale quick|demo|bench|full] [--ops N] [--seed N] [--jobs N]\n\
         \x20                [--no-ff] [--fragmented] [--reused] [--json PATH]\n\
         \x20 record/replay: [--trace PATH]   (record writes, default stdout;\n\
         \x20                                  replay reads, default stdin)\n\
         \x20 bench only:    [--profile TRACE.json] [--compare OLD.json] [--against NEW.json]\n\
         \x20                [--threshold PCT] [--warn-only] [--pr6-wall-ms MS]"
    );
    ExitCode::from(2)
}

/// Resolves a scale preset by name; used both for `--scale` and for
/// the scale hint a trace header carries.
fn scale_by_name(name: &str) -> Option<Scale> {
    match name {
        "quick" => Some(Scale::quick()),
        "demo" => Some(Scale::demo()),
        "bench" => Some(Scale::bench()),
        "full" => Some(Scale::full()),
        _ => None,
    }
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        command: args.first().cloned().ok_or("missing command")?,
        system: None,
        workload: None,
        scale: Scale::demo(),
        scale_name: "demo".into(),
        scale_explicit: false,
        fragmented: false,
        reused: false,
        seed: 42,
        json: None,
        trace_path: None,
        profile: None,
        compare: None,
        against: None,
        threshold_pct: perfdiff::DEFAULT_THRESHOLD_PCT,
        warn_only: false,
        pr6_wall_ms: None,
        pr9_wall_ms: None,
    };
    // `--jobs`, `--ops` and `--no-ff` are applied after the loop so
    // they win regardless of whether they appear before or after
    // `--scale` (which replaces the whole `Scale`, including those
    // fields — an earlier `--ops 123 --scale quick` used to silently
    // discard the 123).
    let mut jobs: Option<usize> = None;
    let mut ops: Option<u64> = None;
    let mut no_ff = false;
    let mut no_batch = false;
    let mut i = 1;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--system" => opts.system = Some(take(&mut i)?),
            "--workload" => opts.workload = Some(take(&mut i)?),
            "--ops" => ops = Some(take(&mut i)?.parse().map_err(|e| format!("--ops: {e}"))?),
            "--seed" => opts.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--jobs" => jobs = Some(take(&mut i)?.parse().map_err(|e| format!("--jobs: {e}"))?),
            "--scale" => {
                let name = take(&mut i)?;
                opts.scale =
                    scale_by_name(&name).ok_or_else(|| format!("unknown scale '{name}'"))?;
                opts.scale_name = name;
                opts.scale_explicit = true;
            }
            "--json" => opts.json = Some(PathBuf::from(take(&mut i)?)),
            "--trace" => opts.trace_path = Some(PathBuf::from(take(&mut i)?)),
            "--profile" => opts.profile = Some(PathBuf::from(take(&mut i)?)),
            "--compare" => opts.compare = Some(PathBuf::from(take(&mut i)?)),
            "--against" => opts.against = Some(PathBuf::from(take(&mut i)?)),
            "--threshold" => {
                opts.threshold_pct = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
            }
            "--warn-only" => opts.warn_only = true,
            "--pr6-wall-ms" => {
                opts.pr6_wall_ms = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("--pr6-wall-ms: {e}"))?,
                );
            }
            "--pr9-wall-ms" => {
                opts.pr9_wall_ms = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("--pr9-wall-ms: {e}"))?,
                );
            }
            "--no-ff" => no_ff = true,
            "--no-batch" => no_batch = true,
            "--fragmented" => opts.fragmented = true,
            "--reused" => opts.reused = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if let Some(j) = jobs {
        opts.scale.jobs = j;
    }
    if let Some(o) = ops {
        opts.scale.ops = o;
    }
    opts.scale.no_ff = no_ff;
    opts.scale.no_batch = no_batch;
    Ok(opts)
}

fn system_by_label(label: &str) -> Option<SystemKind> {
    // Every registry entry (ablations included) is selectable by its
    // paper label; a few shorthands are kept for convenience.
    SystemKind::by_label(label).or(match label.to_ascii_lowercase().as_str() {
        "base" => Some(SystemKind::HostBVmB),
        _ => None,
    })
}

fn result_row(r: &RunResult) -> Vec<String> {
    vec![
        r.system.to_string(),
        format!("{:.0}", r.throughput()),
        format!("{:.1}", r.mean_latency.as_micros_f64()),
        format!("{:.1}", r.p99_latency.as_micros_f64()),
        r.tlb_misses().to_string(),
        format!("{:.0}%", r.aligned_rate() * 100.0),
        format!("{:.0}%", r.bucket_reuse_rate * 100.0),
    ]
}

fn cmd_list() -> ExitCode {
    println!("workloads (Table 2):");
    for s in catalog() {
        println!(
            "  {:<14} {:>4} MiB  {}",
            s.name,
            s.working_set >> 20,
            if s.latency_tracked {
                "latency-tracked"
            } else {
                "throughput"
            }
        );
    }
    println!("non-TLB-sensitive (overhead study):");
    for s in non_tlb_sensitive() {
        println!("  {:<14} {:>4} MiB", s.name, s.working_set >> 20);
    }
    println!("systems (scenario registry; * = main evaluation):");
    for (_, spec) in gemini_vm_sim::REGISTRY {
        println!("  {}{}", spec.label, if spec.evaluated { " *" } else { "" });
    }
    ExitCode::SUCCESS
}

fn run_one(system: SystemKind, opts: &Opts) -> Result<RunResult, String> {
    let name = opts.workload.as_deref().unwrap_or("Redis");
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown workload '{name}'"))?;
    let r = if opts.reused {
        run_workload_reused(system, &spec, &opts.scale, opts.seed)
    } else {
        run_workload_on(system, &spec, &opts.scale, opts.fragmented, opts.seed)
    };
    r.map_err(|e| format!("simulation failed: {e}"))
}

fn headers() -> [&'static str; 7] {
    [
        "system",
        "ops/s",
        "mean µs",
        "p99 µs",
        "TLB misses",
        "aligned",
        "bucket",
    ]
}

/// Writes the JSON Lines export if `--json` was given.
fn export_json(opts: &Opts, lines: &[String]) -> Result<(), String> {
    if let Some(path) = &opts.json {
        trace::write_json_lines(path, lines)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("wrote {} JSON lines to {}", lines.len(), path.display());
    }
    Ok(())
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    let label = opts.system.as_deref().unwrap_or("GEMINI");
    let system = system_by_label(label).ok_or_else(|| format!("unknown system '{label}'"))?;
    let r = run_one(system, opts)?;
    let mut t = Table::new(
        format!("{} on {}{}", r.system, r.workload, scenario_suffix(opts)),
        &headers(),
    );
    t.row(result_row(&r));
    print!("{}", t.render());
    export_json(opts, &[trace::result_json(&r)])
}

fn cmd_compare(opts: &Opts) -> Result<(), String> {
    let name = opts.workload.as_deref().unwrap_or("Redis");
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown workload '{name}'"))?;
    // Progress recorder for the executor: deterministic cell counts
    // only. Wall-clock time goes to stderr below, never through the
    // recorder — it would differ between runs and break byte-identity
    // of anything exported from it.
    let progress = Recorder::new(&TraceConfig::all());
    let started = std::time::Instant::now();
    let cells: Vec<_> = SystemKind::evaluated()
        .into_iter()
        .map(|system| {
            let spec = spec.clone();
            move || -> Result<(RunResult, Recorder), String> {
                let run = if opts.reused {
                    run_workload_reused(system, &spec, &opts.scale, opts.seed)
                        .map(|r| (r, Recorder::off()))
                } else {
                    run_workload_traced(
                        system,
                        &spec,
                        &opts.scale,
                        opts.fragmented,
                        opts.seed,
                        &TraceConfig::off(),
                    )
                };
                run.map_err(|e| format!("simulation failed: {e}"))
            }
        })
        .collect();
    let results = run_cells_traced(opts.scale.jobs, &progress, cells);
    let mut t = Table::new(
        format!("all systems on {name}{}", scenario_suffix(opts)),
        &headers(),
    );
    let mut rows = Vec::new();
    for cell in results {
        let (r, rec) = cell?;
        // Per-cell recorders fold into the progress recorder in
        // submission order — deterministic regardless of which worker
        // finished first.
        progress.merge_from(&rec);
        t.row(result_row(&r));
        rows.push(trace::result_json(&r));
    }
    print!("{}", t.render());
    let registry = progress.registry();
    eprintln!(
        "ran {} cells on {} worker(s) in {:.0} ms",
        registry.counter("exec.cells_finished"),
        effective_jobs(opts.scale.jobs),
        started.elapsed().as_secs_f64() * 1e3,
    );
    export_json(opts, &rows)
}

fn cmd_trace(opts: &Opts) -> Result<(), String> {
    let label = opts.system.as_deref().unwrap_or("GEMINI");
    let system = system_by_label(label).ok_or_else(|| format!("unknown system '{label}'"))?;
    let name = opts.workload.as_deref().unwrap_or("Redis");
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown workload '{name}'"))?;
    let (r, rec) = run_workload_traced(
        system,
        &spec,
        &opts.scale,
        opts.fragmented,
        opts.seed,
        &TraceConfig::all(),
    )
    .map_err(|e| format!("simulation failed: {e}"))?;
    let mut t = Table::new(
        format!(
            "{} on {}{} [traced]",
            r.system,
            r.workload,
            scenario_suffix(opts)
        ),
        &headers(),
    );
    t.row(result_row(&r));
    print!("{}", t.render());
    print!("{}", trace::render_event_summary(&rec));
    print!("{}", trace::render_series(&rec));
    print!("{}", trace::render_registry(&rec));
    export_json(
        opts,
        &trace::trace_json_lines(std::slice::from_ref(&r), &rec),
    )
}

/// Records one scenario to a `gemini-trace-v1` trace while running it
/// live. With `--trace PATH` the trace goes to the file and the result
/// table to stdout; without it the trace streams to stdout (for piping
/// into `replay`) and the table moves to stderr.
fn cmd_record(opts: &Opts) -> Result<(), String> {
    let label = opts.system.as_deref().unwrap_or("GEMINI");
    let system = system_by_label(label).ok_or_else(|| format!("unknown system '{label}'"))?;
    let name = opts.workload.as_deref().unwrap_or("Redis");
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown workload '{name}'"))?;
    let to_stdout = opts.trace_path.is_none();
    let (result, events) = match &opts.trace_path {
        Some(path) => {
            let f = std::fs::File::create(path)
                .map_err(|e| format!("creating {}: {e}", path.display()))?;
            record_workload_on(
                system,
                &spec,
                &opts.scale,
                &opts.scale_name,
                opts.fragmented,
                opts.seed,
                std::io::BufWriter::new(f),
            )
        }
        None => record_workload_on(
            system,
            &spec,
            &opts.scale,
            &opts.scale_name,
            opts.fragmented,
            opts.seed,
            std::io::BufWriter::new(std::io::stdout().lock()),
        ),
    }
    .map_err(|e| format!("recording failed: {e}"))?;
    let mut t = Table::new(
        format!(
            "{} on {}{} [recorded]",
            result.system,
            result.workload,
            scenario_suffix(opts)
        ),
        &headers(),
    );
    t.row(result_row(&result));
    if to_stdout {
        eprint!("{}", t.render());
    } else {
        print!("{}", t.render());
    }
    eprintln!(
        "recorded {} events ({} ops) to {}",
        events,
        result.ops,
        opts.trace_path
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "stdout".into()),
    );
    export_json(opts, &[trace::result_json(&result)])
}

/// The machine sizing for a replay: the caller's explicit `--scale`
/// wins; otherwise the header's scale hint is resolved, keeping the
/// command line's `--jobs`/`--no-ff` (which live on `Scale` but are
/// orthogonal to sizing). Fragmentation is the union: the header hint
/// or an explicit `--fragmented`.
fn replay_scale(opts: &Opts, header: &TraceHeader) -> (Scale, String, bool) {
    let mut scale = opts.scale;
    let mut name = opts.scale_name.clone();
    if !opts.scale_explicit {
        if let Some(s) = scale_by_name(&header.scale) {
            scale = s;
            scale.jobs = opts.scale.jobs;
            scale.no_ff = opts.scale.no_ff;
            name = header.scale.clone();
        } else {
            eprintln!(
                "warning: trace header names unknown scale {:?}; using {}",
                header.scale, name
            );
        }
    }
    (scale, name, opts.fragmented || header.fragmented)
}

/// Replays a recorded trace through one system (`--system`, streaming
/// from a file or stdin) or through every evaluated system on the
/// worker pool (no `--system`; needs a re-openable `--trace FILE`).
/// The generator never runs — events stream straight off the trace.
fn cmd_replay(opts: &Opts) -> Result<(), String> {
    let open = |path: &PathBuf| -> Result<TraceStream<_>, String> {
        let f =
            std::fs::File::open(path).map_err(|e| format!("opening {}: {e}", path.display()))?;
        TraceStream::new(std::io::BufReader::new(f)).map_err(|e| format!("{}: {e}", path.display()))
    };
    if let Some(label) = opts.system.as_deref() {
        let system = system_by_label(label).ok_or_else(|| format!("unknown system '{label}'"))?;
        let (result, events, scale_name) = match &opts.trace_path {
            Some(path) => {
                let mut stream = open(path)?;
                let (scale, scale_name, fragmented) = replay_scale(opts, stream.header());
                let r = replay_trace_on(system, &mut stream, &scale, fragmented)
                    .map_err(|e| format!("replay failed: {e}"))?;
                (r, stream.events_read(), scale_name)
            }
            None => {
                let stdin = std::io::stdin().lock();
                let mut stream =
                    TraceStream::new(stdin).map_err(|e| format!("reading stdin: {e}"))?;
                let (scale, scale_name, fragmented) = replay_scale(opts, stream.header());
                let r = replay_trace_on(system, &mut stream, &scale, fragmented)
                    .map_err(|e| format!("replay failed: {e}"))?;
                (r, stream.events_read(), scale_name)
            }
        };
        let mut t = Table::new(
            format!("{} on {} [replayed]", result.system, result.workload),
            &headers(),
        );
        t.row(result_row(&result));
        print!("{}", t.render());
        eprintln!(
            "replayed {} events ({} ops) at {} scale from {}",
            events,
            result.ops,
            scale_name,
            opts.trace_path
                .as_ref()
                .map(|p| p.display().to_string())
                .unwrap_or_else(|| "stdin".into()),
        );
        return export_json(opts, &[trace::result_json(&result)]);
    }
    // All evaluated systems over the same trace: one executor cell per
    // system, each streaming its own reader over the file.
    let Some(path) = &opts.trace_path else {
        return Err(
            "replaying every system needs --trace FILE (stdin cannot be re-read); \
             pass --system for a single replay from stdin"
                .into(),
        );
    };
    let header = open(path)?.header().clone();
    let (scale, scale_name, fragmented) = replay_scale(opts, &header);
    let progress = Recorder::new(&TraceConfig::all());
    let started = std::time::Instant::now();
    let cells: Vec<_> = SystemKind::evaluated()
        .into_iter()
        .map(|system| {
            let path = path.clone();
            move || -> Result<RunResult, String> {
                let f = std::fs::File::open(&path)
                    .map_err(|e| format!("opening {}: {e}", path.display()))?;
                let mut stream = TraceStream::new(std::io::BufReader::new(f))
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                replay_trace_on(system, &mut stream, &scale, fragmented)
                    .map_err(|e| format!("replay failed: {e}"))
            }
        })
        .collect();
    let results = run_cells_traced(scale.jobs, &progress, cells);
    let mut t = Table::new(
        format!("all systems replaying {}", header.spec.name),
        &headers(),
    );
    let mut rows = Vec::new();
    for cell in results {
        let r = cell?;
        t.row(result_row(&r));
        rows.push(trace::result_json(&r));
    }
    print!("{}", t.render());
    eprintln!(
        "replayed {} on {} system(s) at {} scale on {} worker(s) in {:.0} ms",
        path.display(),
        rows.len(),
        scale_name,
        effective_jobs(scale.jobs),
        started.elapsed().as_secs_f64() * 1e3,
    );
    export_json(opts, &rows)
}

/// Runs every registry scenario three ways — the default (fast-forward
/// plus closed-form hit-run batching), `--no-batch`, and `--no-ff` —
/// and fails unless all three results are byte-identical: the full
/// `RunResult` (every MMU counter, alignment stat and latency figure)
/// and the JSON export line must match exactly. This is the executable
/// form of both fast-path invariants: eliding provably-quiescent daemon
/// passes (DESIGN.md §12) and advancing provably hit-only access runs
/// in closed form (DESIGN.md §16) may never change simulated state.
fn cmd_parity(opts: &Opts) -> Result<(), String> {
    let name = opts.workload.as_deref().unwrap_or("Redis");
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown workload '{name}'"))?;
    let progress = Recorder::new(&TraceConfig::all());
    let mut batched_scale = opts.scale;
    batched_scale.no_ff = false;
    batched_scale.no_batch = false;
    let mut nobatch_scale = batched_scale;
    nobatch_scale.no_batch = true;
    let mut faithful_scale = batched_scale;
    faithful_scale.no_ff = true;
    faithful_scale.no_batch = true;
    let cells: Vec<_> = gemini_vm_sim::REGISTRY
        .iter()
        .map(|(system, sspec)| {
            let spec = spec.clone();
            move || -> Result<(&'static str, bool), String> {
                let run = |scale: &Scale| {
                    run_workload_on(*system, &spec, scale, opts.fragmented, opts.seed)
                        .map_err(|e| format!("{}: simulation failed: {e}", sspec.label))
                };
                let batched = run(&batched_scale)?;
                let nobatch = run(&nobatch_scale)?;
                let faithful = run(&faithful_scale)?;
                let identical = format!("{batched:?}") == format!("{faithful:?}")
                    && format!("{batched:?}") == format!("{nobatch:?}")
                    && trace::result_json(&batched) == trace::result_json(&faithful)
                    && trace::result_json(&batched) == trace::result_json(&nobatch);
                Ok((sspec.label, identical))
            }
        })
        .collect();
    let results = run_cells_traced(opts.scale.jobs, &progress, cells);
    let mut mismatched = Vec::new();
    for cell in results {
        let (label, identical) = cell?;
        println!(
            "  {:<16} {}",
            label,
            if identical { "ok" } else { "MISMATCH" }
        );
        if !identical {
            mismatched.push(label);
        }
    }
    // Lifecycle leg: one fleet host per system through the full
    // create/run/destroy churn path, again all three ways. The whole
    // `HostRun` Debug form is compared, so per-VM results, churn
    // counters, end state and the sampled series must all match.
    for &system in &gemini_harness::experiments::fleet::SYSTEMS {
        let run = |scale: &Scale| {
            gemini_harness::experiments::fleet::run_host(system, scale, 0)
                .map_err(|e| format!("{}: fleet host failed: {e}", system.label()))
        };
        let batched = run(&batched_scale)?;
        let nobatch = run(&nobatch_scale)?;
        let faithful = run(&faithful_scale)?;
        let identical = format!("{batched:?}") == format!("{faithful:?}")
            && format!("{batched:?}") == format!("{nobatch:?}");
        let label = format!("fleet/{}", system.label());
        println!(
            "  {:<16} {}",
            label,
            if identical { "ok" } else { "MISMATCH" }
        );
        if !identical {
            mismatched.push(system.label());
        }
    }
    if !mismatched.is_empty() {
        return Err(format!(
            "fast-path parity violated for {}: {}",
            name,
            mismatched.join(", ")
        ));
    }
    eprintln!(
        "parity: {} scenarios on {}{} plus {} fleet hosts byte-identical across \
         default / --no-batch / --no-ff",
        gemini_vm_sim::REGISTRY.len(),
        name,
        scenario_suffix(opts),
        gemini_harness::experiments::fleet::SYSTEMS.len(),
    );
    Ok(())
}

/// Runs the fleet grid at the selected scale, prints the per-host
/// table plus per-system FMFI span, and exports one JSON summary line
/// per host cell with `--json`.
fn cmd_fleet(opts: &Opts) -> Result<(), String> {
    let started = std::time::Instant::now();
    let res = gemini_harness::experiments::fleet::run(&opts.scale)
        .map_err(|e| format!("fleet failed: {e}"))?;
    print!("{}", res.render());
    eprintln!(
        "fleet: {} VM lifecycles ({} churn events) across {} cells on {} worker(s) in {:.0} ms",
        res.total_vms(),
        res.total_churn_events(),
        res.runs.len(),
        effective_jobs(opts.scale.jobs),
        started.elapsed().as_secs_f64() * 1e3,
    );
    let lines: Vec<String> = res
        .runs
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "{{\"system\":\"{}\",\"host\":{},\"vms\":{},\"churn_events\":{},",
                    "\"peak_resident\":{},\"frames_reclaimed\":{},\"end_host_fmfi\":{:.6},",
                    "\"end_free_order9\":{},\"mean_aligned_rate\":{:.6},\"samples\":{}}}"
                ),
                r.system,
                r.host,
                r.outcome.vms.len(),
                r.outcome.churn_events,
                r.outcome.peak_resident,
                r.outcome.frames_reclaimed(),
                r.outcome.end_host_fmfi,
                r.outcome.end_free_order9,
                r.outcome.mean_aligned_rate(),
                r.samples.len(),
            )
        })
        .collect();
    export_json(opts, &lines)
}

/// Diffs `old_json` against `new_json` and reports the verdict.
/// Returns `Err` (→ nonzero exit) on a regression unless `--warn-only`.
fn run_compare_gate(opts: &Opts, old_path: &PathBuf, new_json: &str) -> Result<(), String> {
    let old_json = std::fs::read_to_string(old_path)
        .map_err(|e| format!("reading {}: {e}", old_path.display()))?;
    let diff = perfdiff::compare_reports(&old_json, new_json, opts.threshold_pct)?;
    print!("{}", diff.render());
    if diff.regressed() {
        if opts.warn_only {
            eprintln!("perf regressions found (warn-only: not failing)");
            return Ok(());
        }
        return Err(format!(
            "{} perf regression(s) beyond {:.1}% vs {}",
            diff.regressions.len(),
            opts.threshold_pct,
            old_path.display()
        ));
    }
    eprintln!("no perf regressions vs {}", old_path.display());
    Ok(())
}

fn cmd_bench(opts: &Opts) -> Result<(), String> {
    // Pure diff mode: compare two existing reports without running.
    if let (Some(old_path), Some(new_path)) = (&opts.compare, &opts.against) {
        let new_json = std::fs::read_to_string(new_path)
            .map_err(|e| format!("reading {}: {e}", new_path.display()))?;
        return run_compare_gate(opts, old_path, &new_json);
    }
    if opts.against.is_some() {
        return Err("--against needs --compare OLD.json".into());
    }
    let jobs_max = effective_jobs(opts.scale.jobs);
    let mut report = gemini_harness::bench::run_bench(&opts.scale, &opts.scale_name, jobs_max)
        .map_err(|e| format!("bench failed: {e}"))?;
    report.pr6_same_host_wall_ms = opts.pr6_wall_ms;
    report.pr9_same_host_wall_ms = opts.pr9_wall_ms;
    let mut t = Table::new(
        format!("bench — fig. 3 grid cells at {} scale", opts.scale_name),
        &["cell", "wall ms", "ops/s (wall)"],
    );
    for c in &report.cells {
        t.row(vec![
            c.label.clone(),
            format!("{:.1}", c.wall_ms),
            format!("{:.0}", c.ops_per_sec),
        ]);
    }
    print!("{}", t.render());
    for p in &report.sweep {
        eprintln!(
            "sweep: jobs={} wall_ms={:.0} speedup_vs_jobs1={:.2}",
            p.jobs, p.wall_ms, p.speedup_vs_jobs1
        );
    }
    eprintln!(
        "reference cell {}: {:.0} ms, {:.0} ops/s ({:.2}x vs pre-PR baseline {:.0} ops/s)",
        gemini_harness::bench::REFERENCE_CELL,
        report.reference_wall_ms,
        report.reference_ops_per_sec,
        report.speedup_vs_baseline(),
        gemini_harness::bench::BASELINE_OPS_PER_SEC,
    );
    eprintln!(
        "reference cell sharded (jobs={}): {:.0} ms (setup ∥ workload pre-generation; simulated output byte-identical)",
        report.sharded_jobs, report.reference_sharded_wall_ms,
    );
    if let Some(pr6_ms) = report.pr6_same_host_wall_ms {
        eprintln!(
            "reference cell vs same-host PR 6 rebuild: {:.0} ms -> {:.0} ms ({:.2}x)",
            pr6_ms,
            report.reference_wall_ms,
            pr6_ms / report.reference_wall_ms.max(1e-9),
        );
    }
    if let Some(pr9_ms) = report.pr9_same_host_wall_ms {
        eprintln!(
            "reference cell vs same-host PR 9 rebuild: {:.0} ms -> {:.0} ms ({:.2}x)",
            pr9_ms,
            report.reference_wall_ms,
            pr9_ms / report.reference_wall_ms.max(1e-9),
        );
    }
    eprintln!(
        "reference cell --no-batch: {:.0} ms vs {:.0} ms batched ({:.2}x); batch hit rate {:.1}% ({} hits / {} runs, {} breaks)",
        report.reference_batched.no_batch_wall_ms,
        report.reference_wall_ms,
        report.reference_batched.no_batch_wall_ms / report.reference_wall_ms.max(1e-9),
        report.reference_batched.batch_hit_rate * 100.0,
        report.reference_batched.batched_hits,
        report.reference_batched.batch_runs,
        report.reference_batched.batch_breaks,
    );
    if let Some(fleet) = &report.fleet {
        let fmfi = fleet
            .end_host_fmfi
            .iter()
            .map(|(s, v)| format!("{s} {v:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        eprintln!(
            "fleet smoke: {} VM lifecycles ({} churn events) in {:.0} ms; end FMFI {}",
            fleet.vms, fleet.churn_events, fleet.wall_ms, fmfi
        );
    }
    eprintln!(
        "reference phases sum {:.0} ms self-time; profiler overhead {:.2}%",
        report
            .reference_phases
            .iter()
            .map(|p| p.wall_ms)
            .sum::<f64>(),
        report.reference_overhead_pct,
    );
    let report_json = report.to_json();
    let path = opts
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_pr10.json"));
    std::fs::write(&path, &report_json).map_err(|e| format!("writing {}: {e}", path.display()))?;
    eprintln!("wrote bench report to {}", path.display());
    if let Some(trace_path) = &opts.profile {
        let prof = Profiler::wall(true);
        let trace_json = gemini_harness::bench::grid_trace(&opts.scale, jobs_max, &prof)
            .map_err(|e| format!("profiled grid failed: {e}"))?;
        std::fs::write(trace_path, &trace_json)
            .map_err(|e| format!("writing {}: {e}", trace_path.display()))?;
        eprintln!(
            "wrote Perfetto trace ({} bytes) to {} — open at https://ui.perfetto.dev",
            trace_json.len(),
            trace_path.display()
        );
    }
    if let Some(old_path) = &opts.compare {
        return run_compare_gate(opts, old_path, &report_json);
    }
    Ok(())
}

fn scenario_suffix(opts: &Opts) -> String {
    match (opts.reused, opts.fragmented) {
        (true, _) => " (reused VM)".into(),
        (false, true) => " (fragmented)".into(),
        (false, false) => " (clean slate)".into(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match opts.command.as_str() {
        "list" => return cmd_list(),
        "run" => cmd_run(&opts),
        "compare" => cmd_compare(&opts),
        "trace" => cmd_trace(&opts),
        "record" => cmd_record(&opts),
        "replay" => cmd_replay(&opts),
        "parity" => cmd_parity(&opts),
        "fleet" => cmd_fleet(&opts),
        "bench" => cmd_bench(&opts),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> Opts {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse(&args).expect("args should parse")
    }

    #[test]
    fn ops_survives_scale_in_either_order() {
        let before = parse_ok(&["run", "--ops", "123", "--scale", "quick"]);
        let after = parse_ok(&["run", "--scale", "quick", "--ops", "123"]);
        assert_eq!(before.scale.ops, 123);
        assert_eq!(after.scale.ops, 123);
        // Everything else about the scale is still quick's sizing.
        assert_eq!(before.scale.host_frames, Scale::quick().host_frames);
        assert_eq!(before.scale_name, "quick");
        assert!(before.scale_explicit);
    }

    #[test]
    fn jobs_and_no_ff_survive_scale_in_either_order() {
        let before = parse_ok(&["bench", "--jobs", "3", "--no-ff", "--scale", "quick"]);
        let after = parse_ok(&["bench", "--scale", "quick", "--jobs", "3", "--no-ff"]);
        assert_eq!(before.scale.jobs, 3);
        assert_eq!(after.scale.jobs, 3);
        assert!(before.scale.no_ff);
        assert!(after.scale.no_ff);
    }

    #[test]
    fn no_batch_and_pr9_wall_ms_survive_scale_in_either_order() {
        let before = parse_ok(&[
            "bench",
            "--no-batch",
            "--pr9-wall-ms",
            "123.5",
            "--scale",
            "quick",
        ]);
        let after = parse_ok(&[
            "bench",
            "--scale",
            "quick",
            "--no-batch",
            "--pr9-wall-ms",
            "123.5",
        ]);
        assert!(before.scale.no_batch);
        assert!(after.scale.no_batch);
        assert_eq!(before.pr9_wall_ms, Some(123.5));
        assert_eq!(after.pr9_wall_ms, Some(123.5));
        // Default stays off: batching is opt-out.
        assert!(!parse_ok(&["run"]).scale.no_batch);
    }

    #[test]
    fn defaults_without_scale_flag() {
        let opts = parse_ok(&["run", "--ops", "77"]);
        assert!(!opts.scale_explicit);
        assert_eq!(opts.scale_name, "demo");
        assert_eq!(opts.scale.ops, 77);
        assert!(opts.trace_path.is_none());
    }

    #[test]
    fn trace_flag_parses_and_unknown_scale_errors() {
        let opts = parse_ok(&["replay", "--trace", "t.jsonl", "--system", "GEMINI"]);
        assert_eq!(
            opts.trace_path.as_deref(),
            Some(std::path::Path::new("t.jsonl"))
        );
        assert_eq!(opts.system.as_deref(), Some("GEMINI"));
        let args: Vec<String> = ["run", "--scale", "galactic"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse(&args).unwrap_err().contains("unknown scale"));
    }
}

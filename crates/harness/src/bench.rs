//! In-tree benchmark harness (`gemini-sim bench`).
//!
//! Times real experiment cells with wall-clock instrumentation and emits
//! a `BENCH_*.json` trajectory entry through the hand-rolled
//! [`gemini_obs`] JSON writer, so every PR can extend a comparable
//! performance record. Three measurements per run:
//!
//! 1. the **demo-scale fig. 3 reference cell** (Canneal × GEMINI on
//!    fragmented memory) — the single-thread throughput yardstick,
//!    compared against the recorded pre-optimization baseline;
//! 2. **per-cell timings** of the fig. 3 grid at the chosen scale,
//!    sequentially (`jobs = 1`), one entry per system × workload;
//! 3. a **jobs sweep** of the same grid across `--jobs 1..N`, reporting
//!    wall time and speedup versus the sequential leg.
//!
//! Simulated results stay byte-identical across all of this — wall-clock
//! numbers live only here, never inside the deterministic exports.

use crate::exec::{effective_jobs, run_cells_hinted};
use crate::experiments::motivation::WORKLOADS;
use crate::runner::run_workload_on;
use crate::scale::Scale;
use gemini_obs::Recorder;
use gemini_obs::{json_f64, json_str};
use gemini_sim_core::Result;
use gemini_vm_sim::SystemKind;
use gemini_workloads::spec_by_name;
use std::time::Instant;

/// Label of the reference cell every PR's bench reports.
pub const REFERENCE_CELL: &str = "motivation/Canneal/GEMINI/fragmented@demo";

/// Pre-PR baseline of the reference cell, measured on the tree at commit
/// `e3fa128` (before the hot-path overhaul) on the same container this
/// harness runs in (best of three): wall milliseconds for the cell.
pub const BASELINE_WALL_MS: f64 = 1043.0;

/// Pre-PR baseline simulator throughput of the reference cell
/// (workload operations per wall-clock second, best of three).
pub const BASELINE_OPS_PER_SEC: f64 = 7669.0;

/// Wall-clock timing of one experiment cell.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// Cell label (`workload/system`).
    pub label: String,
    /// Wall time of the cell in milliseconds.
    pub wall_ms: f64,
    /// Workload operations the cell simulated.
    pub ops: u64,
    /// Simulator throughput: operations per wall-clock second.
    pub ops_per_sec: f64,
}

/// One leg of the jobs sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Worker threads used for the grid.
    pub jobs: usize,
    /// Wall time of the whole grid in milliseconds.
    pub wall_ms: f64,
    /// Grid speedup versus the `jobs = 1` leg.
    pub speedup_vs_jobs1: f64,
    /// Per-cell wall times of this leg, in submission order (same cell
    /// order as `cells`). A flat sweep on a constrained CI machine shows
    /// up here as uniformly inflated cells, not a scheduling defect.
    pub cell_wall_ms: Vec<f64>,
}

/// Everything one bench invocation measured.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Scale preset name the grid ran at (`quick` | `bench`).
    pub scale: String,
    /// Largest worker count the sweep covered.
    pub jobs_max: usize,
    /// `std::thread::available_parallelism()` of the measuring machine —
    /// the context that makes a flat jobs sweep interpretable.
    pub available_parallelism: usize,
    /// Wall time of the demo-scale reference cell, milliseconds.
    pub reference_wall_ms: f64,
    /// Throughput of the demo-scale reference cell, ops per second.
    pub reference_ops_per_sec: f64,
    /// Per-cell timings of the fig. 3 grid at `scale`, `jobs = 1`.
    pub cells: Vec<CellTiming>,
    /// Grid wall times across `jobs = 1..=jobs_max`.
    pub sweep: Vec<SweepPoint>,
}

/// Times `f`, returning its result and the elapsed milliseconds.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let started = Instant::now();
    let out = f();
    (out, started.elapsed().as_secs_f64() * 1e3)
}

/// Runs the demo-scale reference cell once and returns its timing.
pub fn run_reference_cell() -> Result<CellTiming> {
    let scale = Scale::demo();
    let spec = spec_by_name("Canneal").expect("Canneal is in the catalog");
    let seed = scale.seed_for("motivation", 0);
    let (r, wall_ms) = timed(|| run_workload_on(SystemKind::Gemini, &spec, &scale, true, seed));
    let r = r?;
    Ok(CellTiming {
        label: REFERENCE_CELL.to_string(),
        wall_ms,
        ops: r.ops,
        ops_per_sec: r.ops as f64 / (wall_ms / 1e3),
    })
}

/// Runs the full bench: reference cell, per-cell grid timings, jobs
/// sweep. `scale_name` is recorded verbatim in the report.
pub fn run_bench(scale: &Scale, scale_name: &str, jobs_max: usize) -> Result<BenchReport> {
    let reference = run_reference_cell()?;

    // Per-cell timings: the fig. 3 grid, sequentially.
    let systems = SystemKind::evaluated();
    let mut cells = Vec::new();
    for (wi, name) in WORKLOADS.iter().enumerate() {
        let spec = spec_by_name(name).expect("motivation workload in catalog");
        let seed = scale.seed_for("motivation", wi as u64);
        for &system in &systems {
            let spec = spec.clone();
            let (r, wall_ms) = timed(|| run_workload_on(system, &spec, scale, true, seed));
            let r = r?;
            cells.push(CellTiming {
                label: format!("{name}/{}", system.label()),
                wall_ms,
                ops: r.ops,
                ops_per_sec: r.ops as f64 / (wall_ms / 1e3),
            });
        }
    }

    // Jobs sweep: the same grid through the parallel executor, with LPT
    // dispatch hints. Each cell times itself, so the sweep records the
    // per-cell wall times alongside the grid total.
    let jobs_max = jobs_max.max(1);
    let mut sweep = Vec::new();
    let mut jobs1_wall = 0.0f64;
    for jobs in 1..=jobs_max {
        let grid = || -> Result<Vec<f64>> {
            let mut grid_cells = Vec::new();
            for (wi, name) in WORKLOADS.iter().enumerate() {
                let spec = spec_by_name(name).expect("motivation workload in catalog");
                let seed = scale.seed_for("motivation", wi as u64);
                for &system in &systems {
                    let spec = spec.clone();
                    grid_cells.push((system.cost_hint(), move || {
                        let (r, cell_ms) =
                            timed(|| run_workload_on(system, &spec, scale, true, seed));
                        r.map(|_| cell_ms)
                    }));
                }
            }
            run_cells_hinted(jobs, &Recorder::off(), grid_cells)
                .into_iter()
                .collect()
        };
        let (res, wall_ms) = timed(grid);
        let cell_wall_ms = res?;
        if jobs == 1 {
            jobs1_wall = wall_ms;
        }
        sweep.push(SweepPoint {
            jobs,
            wall_ms,
            speedup_vs_jobs1: if wall_ms > 0.0 {
                jobs1_wall / wall_ms
            } else {
                0.0
            },
            cell_wall_ms,
        });
    }

    Ok(BenchReport {
        scale: scale_name.to_string(),
        jobs_max,
        available_parallelism: effective_jobs(0),
        reference_wall_ms: reference.wall_ms,
        reference_ops_per_sec: reference.ops_per_sec,
        cells,
        sweep,
    })
}

impl BenchReport {
    /// Single-thread throughput improvement of the reference cell over
    /// the recorded pre-PR baseline.
    pub fn speedup_vs_baseline(&self) -> f64 {
        self.reference_ops_per_sec / BASELINE_OPS_PER_SEC
    }

    /// Renders the report as one pretty-printed JSON object via the
    /// workspace's hand-rolled JSON writer.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_str("gemini-bench-v2")));
        out.push_str(&format!("  \"scale\": {},\n", json_str(&self.scale)));
        out.push_str(&format!("  \"jobs_max\": {},\n", self.jobs_max));
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        out.push_str("  \"reference_cell\": {\n");
        out.push_str(&format!("    \"label\": {},\n", json_str(REFERENCE_CELL)));
        out.push_str(&format!(
            "    \"baseline_wall_ms\": {},\n",
            json_f64(BASELINE_WALL_MS)
        ));
        out.push_str(&format!(
            "    \"baseline_ops_per_sec\": {},\n",
            json_f64(BASELINE_OPS_PER_SEC)
        ));
        out.push_str(&format!(
            "    \"current_wall_ms\": {},\n",
            json_f64(self.reference_wall_ms)
        ));
        out.push_str(&format!(
            "    \"current_ops_per_sec\": {},\n",
            json_f64(self.reference_ops_per_sec)
        ));
        out.push_str(&format!(
            "    \"speedup_vs_baseline\": {}\n",
            json_f64(self.speedup_vs_baseline())
        ));
        out.push_str("  },\n");
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": {}, \"wall_ms\": {}, \"ops\": {}, \"ops_per_sec\": {}}}{}\n",
                json_str(&c.label),
                json_f64(c.wall_ms),
                c.ops,
                json_f64(c.ops_per_sec),
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"jobs_sweep\": [\n");
        for (i, p) in self.sweep.iter().enumerate() {
            let per_cell = p
                .cell_wall_ms
                .iter()
                .map(|&ms| json_f64(ms))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"jobs\": {}, \"wall_ms\": {}, \"speedup_vs_jobs1\": {}, \"cell_wall_ms\": [{}]}}{}\n",
                p.jobs,
                json_f64(p.wall_ms),
                json_f64(p.speedup_vs_jobs1),
                per_cell,
                if i + 1 < self.sweep.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> BenchReport {
        BenchReport {
            scale: "quick".into(),
            jobs_max: 2,
            available_parallelism: 4,
            reference_wall_ms: 500.0,
            reference_ops_per_sec: 16_000.0,
            cells: vec![CellTiming {
                label: "Canneal/GEMINI".into(),
                wall_ms: 100.0,
                ops: 2_500,
                ops_per_sec: 25_000.0,
            }],
            sweep: vec![SweepPoint {
                jobs: 1,
                wall_ms: 100.0,
                speedup_vs_jobs1: 1.0,
                cell_wall_ms: vec![100.0],
            }],
        }
    }

    #[test]
    fn report_json_is_wellformed_and_complete() {
        let j = synthetic().to_json();
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        for key in [
            "\"schema\"",
            "\"scale\"",
            "\"jobs_max\"",
            "\"available_parallelism\"",
            "\"cell_wall_ms\"",
            "\"reference_cell\"",
            "\"baseline_wall_ms\"",
            "\"baseline_ops_per_sec\"",
            "\"current_wall_ms\"",
            "\"current_ops_per_sec\"",
            "\"speedup_vs_baseline\"",
            "\"cells\"",
            "\"jobs_sweep\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn speedup_is_relative_to_recorded_baseline() {
        let r = synthetic();
        let expect = 16_000.0 / BASELINE_OPS_PER_SEC;
        assert!((r.speedup_vs_baseline() - expect).abs() < 1e-9);
    }
}

//! Minimal JSON reader.
//!
//! The workspace hand-rolls all JSON *output* (`json` module); this is
//! the matching *input* side, added for the two places the simulator
//! must read JSON back: the perf-regression gate (`gemini-sim bench
//! --compare` diffs two bench reports) and tests that verify emitted
//! artefacts (Chrome traces, bench schema) are well-formed by parsing
//! them rather than grepping them.
//!
//! Scope is deliberately small: strict-enough recursive-descent over
//! the JSON this repo emits. Numbers parse to `f64` (all our emitted
//! numbers round-trip through [`crate::json::json_f64`] or are small
//! integers), strings handle the escapes [`crate::json::json_str`]
//! produces (including `\uXXXX` with surrogate pairs), and errors
//! carry a byte offset for debuggability. No external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. BTreeMap: key order is irrelevant to our consumers
    /// and deterministic iteration keeps diff output stable.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The bool, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Nesting cap: our artefacts are ≤ 5 levels deep; 128 is generous
/// while keeping recursion bounded on hostile input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(ch);
                            // hex4 leaves pos past the digits; undo the
                            // generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Bulk-copy the run up to the next quote, escape,
                    // or control byte. Those are all ASCII, and UTF-8
                    // continuation bytes are >= 0x80, so the run ends
                    // on a character boundary; the input arrived as
                    // &str, so the slice is valid UTF-8. (Validating
                    // per character from `pos` to the end of input made
                    // this O(n^2) on multi-megabyte traces.)
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input is &str, run ends on ascii");
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        s.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            msg: format!("invalid number '{s}'"),
            at: start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{json_f64, json_str};

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}, "x"], "c": {"d": 2.5}}"#).unwrap();
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Value::as_f64),
            Some(2.5)
        );
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].as_str(), Some("x"));
    }

    #[test]
    fn round_trips_our_writers() {
        // Everything json_str emits must come back identical.
        for s in [
            "",
            "plain",
            "quote\"back\\slash",
            "tab\tnl\n",
            "ünïcode✓",
            "\u{0007}ctl",
        ] {
            let parsed = parse(&json_str(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "round-trip of {s:?}");
        }
        // And json_f64's shortest-round-trip numbers.
        for n in [0.0, 1.0, -2.5, 1043.0, 0.3333333333333333, 1e18] {
            let parsed = parse(&json_f64(n)).unwrap();
            assert_eq!(parsed.as_f64(), Some(n), "round-trip of {n}");
        }
        // Non-finite renders as null by design.
        assert_eq!(parse(&json_f64(f64::NAN)).unwrap(), Value::Null);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\ude00""#).is_err(), "unpaired low surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"unterminated",
            "[1]]",
            "nul",
            "\"\\q\"",
            "01a",
        ] {
            let res = parse(bad);
            assert!(res.is_err(), "{bad:?} should fail, got {res:?}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.at, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}

//! The host/hypervisor memory manager: a [`LayerEngine`] instantiated at
//! the host layer — one EPT per VM, one machine-wide physical allocator.

use crate::engine::{FaultSite, Layer, LayerEngine};
use crate::policy::{Effects, FaultOutcome, HugePolicy, LayerKind};
use gemini_page_table::AddressSpace;
use gemini_sim_core::{Gpa, SimError, VmId};

/// Marker for the host layer: GPA → HPA translation, EPT-violation
/// costs, host-tagged events and counters.
#[derive(Debug)]
pub enum HostLayer {}

impl Layer for HostLayer {
    type In = Gpa;
    const KIND: LayerKind = LayerKind::Host;
    const OBS: gemini_obs::Layer = gemini_obs::Layer::Host;
    const CTR_PROMOTIONS: &'static str = "mm.host.promotions";
    const CTR_PROMO_PAGES_COPIED: &'static str = "mm.host.promo_pages_copied";
    const CTR_DEMOTIONS: &'static str = "mm.host.demotions";

    fn input_addr(frame: u64) -> Gpa {
        Gpa::from_frame(frame)
    }

    fn already_mapped(addr: Gpa) -> SimError {
        SimError::AlreadyMappedGpa(addr)
    }
}

/// Memory management of the host: the generic layer engine instantiated
/// at the host layer. The EPTs are the engine's per-VM tables; the
/// machine-wide physical allocator is the engine's buddy.
pub type HostMm = LayerEngine<HostLayer>;

/// Host-flavoured names over the generic engine surface.
impl LayerEngine<HostLayer> {
    /// The EPT of `vm`, or [`SimError::UnknownVm`] if the VM was
    /// never registered.
    pub fn ept(&self, vm: VmId) -> Result<&AddressSpace, SimError> {
        self.table(vm)
    }

    /// Handles an EPT violation: `gpa_frame` of `vm` has no backing.
    pub fn handle_fault(
        &mut self,
        vm: VmId,
        gpa_frame: u64,
        policy: &mut dyn HugePolicy,
    ) -> Result<(FaultOutcome, Effects), SimError> {
        self.fault(vm, gpa_frame, FaultSite::anonymous(), policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::CostModel;
    use crate::policy::{
        BasePagesOnly, FaultCtx, FaultDecision, LayerOps, PromotionKind, PromotionOp,
    };
    use gemini_sim_core::page::PageSize;
    use gemini_sim_core::Cycles;

    struct AlwaysHuge;
    impl HugePolicy for AlwaysHuge {
        fn name(&self) -> &'static str {
            "AlwaysHuge"
        }
        fn fault_decision(&mut self, _ctx: &FaultCtx<'_>) -> FaultDecision {
            FaultDecision::Huge
        }
    }

    fn host() -> HostMm {
        let mut h = HostMm::new(16384, CostModel::default());
        h.register_vm(VmId(1));
        h.register_vm(VmId(2));
        h
    }

    #[test]
    fn ept_fault_backs_with_base_page() {
        let mut h = host();
        let mut p = BasePagesOnly;
        let (out, fx) = h.handle_fault(VmId(1), 1000, &mut p).unwrap();
        assert_eq!(out.size, PageSize::Base);
        assert_eq!(fx.cycles, CostModel::default().ept_fault);
        assert!(h.ept(VmId(1)).unwrap().translate(1000).is_some());
        assert!(h.ept(VmId(2)).unwrap().translate(1000).is_none());
        assert!(h.handle_fault(VmId(1), 1000, &mut p).is_err());
    }

    #[test]
    fn ept_fault_backs_with_huge_page() {
        let mut h = host();
        let mut p = AlwaysHuge;
        let (out, _) = h.handle_fault(VmId(1), 515, &mut p).unwrap();
        assert_eq!(out.size, PageSize::Huge);
        // The whole GPA region is backed.
        assert!(h.ept(VmId(1)).unwrap().translate(512).is_some());
        assert!(h.ept(VmId(1)).unwrap().translate(1023).is_some());
        assert_eq!(h.ept(VmId(1)).unwrap().huge_mapped(), 1);
        // Backing is huge-aligned in HPA space.
        assert!(h.ept(VmId(1)).unwrap().huge_leaf(1).is_some());
    }

    #[test]
    fn vms_share_the_host_allocator() {
        let mut h = host();
        let mut p = AlwaysHuge;
        let (o1, _) = h.handle_fault(VmId(1), 0, &mut p).unwrap();
        let (o2, _) = h.handle_fault(VmId(2), 0, &mut p).unwrap();
        assert_ne!(o1.pa_frame, o2.pa_frame, "distinct machine frames");
        assert_eq!(h.buddy.used_frames(), 1024);
    }

    #[test]
    fn host_daemon_promotes_ept_regions() {
        let mut h = host();
        let mut p = BasePagesOnly;
        for gpa in 0..64u64 {
            h.handle_fault(VmId(1), gpa, &mut p).unwrap();
        }
        struct PromoteAll;
        impl HugePolicy for PromoteAll {
            fn name(&self) -> &'static str {
                "promote-all"
            }
            fn fault_decision(&mut self, _: &FaultCtx<'_>) -> FaultDecision {
                FaultDecision::Base
            }
            fn daemon(&mut self, ops: &mut LayerOps<'_>) -> Vec<PromotionOp> {
                ops.table
                    .iter_regions()
                    .filter(|&(_, huge)| !huge)
                    .map(|(r, _)| PromotionOp::new(r, PromotionKind::PreferInPlace))
                    .collect()
            }
        }
        let mut d = PromoteAll;
        let fx = h.run_daemon(VmId(1), &mut d, Cycles::ZERO, 2).unwrap();
        assert_eq!(h.ept(VmId(1)).unwrap().huge_mapped(), 1);
        assert_eq!(fx.gpa_regions_changed, vec![0]);
        // 64 of 512 pages present: khugepaged semantics collapse by copy.
        assert_eq!(fx.pages_copied, 64);
        assert_eq!(fx.pages_zeroed, 448);
    }

    #[test]
    fn unregistered_vm_is_an_error_not_a_panic() {
        let mut h = host();
        let ghost = VmId(99);
        assert_eq!(h.ept(ghost).unwrap_err(), SimError::UnknownVm(ghost));
        let mut p = BasePagesOnly;
        assert_eq!(
            h.handle_fault(ghost, 0, &mut p).unwrap_err(),
            SimError::UnknownVm(ghost)
        );
        assert_eq!(
            h.run_daemon(ghost, &mut p, Cycles::ZERO, 1).unwrap_err(),
            SimError::UnknownVm(ghost)
        );
        assert_eq!(
            h.demote(ghost, 0, 1).unwrap_err(),
            SimError::UnknownVm(ghost)
        );
    }

    #[test]
    fn touch_counters_are_per_vm() {
        let mut h = host();
        h.record_touch(VmId(1), 5);
        h.record_touch(VmId(2), 5);
        h.record_touch(VmId(1), 5);
        assert_eq!(h.touches(VmId(1)).unwrap().get(0), 2);
        assert_eq!(h.touches(VmId(2)).unwrap().get(0), 1);
    }

    #[test]
    fn unregister_vm_returns_every_frame_and_drops_state() {
        let mut h = host();
        let mut huge = AlwaysHuge;
        let mut base = BasePagesOnly;
        // Mixed footprint for VM 1: one huge leaf + a run of base pages.
        h.handle_fault(VmId(1), 0, &mut huge).unwrap();
        for gpa in 1024..1040u64 {
            h.handle_fault(VmId(1), gpa, &mut base).unwrap();
        }
        // VM 2 keeps its own footprint across the neighbour's teardown.
        h.handle_fault(VmId(2), 0, &mut base).unwrap();
        h.record_touch(VmId(1), 0);
        let before_free = h.buddy.free_frames();
        let mapped = h.ept(VmId(1)).unwrap().mapped_base_page_equiv();

        let freed = h.unregister_vm(VmId(1)).unwrap();
        assert_eq!(freed, mapped);
        assert_eq!(freed, 512 + 16);
        assert_eq!(h.buddy.free_frames(), before_free + freed);
        h.buddy.check_invariants().unwrap();
        assert_eq!(h.ept(VmId(1)).unwrap_err(), SimError::UnknownVm(VmId(1)));
        assert!(h.touches(VmId(1)).is_none());
        assert_eq!(h.vms(), vec![VmId(2)]);
        assert!(h.ept(VmId(2)).unwrap().translate(0).is_some());
        // Double teardown is an error, not a double free.
        assert_eq!(
            h.unregister_vm(VmId(1)).unwrap_err(),
            SimError::UnknownVm(VmId(1))
        );
    }

    #[test]
    fn full_teardown_restores_a_pristine_allocator() {
        let mut h = host();
        let mut huge = AlwaysHuge;
        let mut base = BasePagesOnly;
        h.handle_fault(VmId(1), 0, &mut huge).unwrap();
        h.handle_fault(VmId(2), 700, &mut base).unwrap();
        h.unregister_vm(VmId(2)).unwrap();
        h.unregister_vm(VmId(1)).unwrap();
        // Unique decomposition: a fully drained allocator is
        // indistinguishable from a fresh one of the same size.
        assert_eq!(h.buddy.used_frames(), 0);
        assert_eq!(h.buddy.free_runs(), vec![(0, 16384)]);
        h.buddy.check_invariants().unwrap();
    }

    #[test]
    fn demote_splits_ept_leaf() {
        let mut h = host();
        let mut p = AlwaysHuge;
        h.handle_fault(VmId(1), 0, &mut p).unwrap();
        let fx = h.demote(VmId(1), 0, 4).unwrap();
        assert_eq!(h.ept(VmId(1)).unwrap().huge_mapped(), 0);
        assert_eq!(h.ept(VmId(1)).unwrap().base_mapped(), 512);
        assert_eq!(fx.gpa_regions_changed, vec![0]);
    }
}

//! One module per evaluation artefact; see DESIGN.md's per-experiment
//! index.

pub mod ablations;
pub mod breakdown;
pub mod clean_slate;
pub mod collocated;
pub mod fig02;
pub mod fleet;
pub mod motivation;
pub mod reused_vm;

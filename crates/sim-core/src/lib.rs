//! Core types shared by every crate in the Gemini simulator workspace.
//!
//! This crate defines the vocabulary of the whole system:
//!
//! - strongly-typed addresses for the three address spaces involved in
//!   memory virtualization ([`Gva`], [`Gpa`], [`Hpa`]),
//! - page geometry constants for 4 KiB base pages and 2 MiB huge pages,
//! - a deterministic cycle [`clock`](clock::Clock) used to order background
//!   daemons against foreground workload execution,
//! - online [`stats`] (mean, percentiles) used by the experiment harness,
//! - the Linux free-memory fragmentation index ([`fmfi`]) that both Ingens
//!   and Gemini's Algorithm 1 consume,
//! - deterministic seeded randomness ([`rng`]) so that every experiment is
//!   reproducible bit-for-bit.
//!
//! Nothing in this crate knows about page tables, TLBs or policies; it is a
//! dependency of every other crate and depends on nothing outside std.

pub mod addr;
pub mod clock;
pub mod error;
pub mod fmfi;
pub mod fxhash;
pub mod ids;
pub mod page;
pub mod rng;
pub mod stats;

pub use addr::{Gpa, Gva, Hpa};
pub use clock::{Clock, Cycles};
pub use error::SimError;
pub use fmfi::{fragmentation_index, FreeAreaCounts};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{ProcessId, VmId};
pub use page::{
    BASE_PAGE_SHIFT, BASE_PAGE_SIZE, HUGE_PAGE_ORDER, HUGE_PAGE_SHIFT, HUGE_PAGE_SIZE,
    PAGES_PER_HUGE_PAGE,
};
pub use rng::{derive_seed, splitmix64, DetRng, Zipf};

/// Convenience result alias used across the workspace.
pub type Result<T> = core::result::Result<T, SimError>;

//! The `gemini-trace-v1` workload trace format: record and replay.
//!
//! A trace is a self-describing JSON Lines document. Line 1 is a JSON
//! object header naming the format, its version, the (already scaled)
//! workload model the events realize, and the run parameters needed to
//! reproduce the machine (`ops`, `seed`, plus `scale`/`fragmented`
//! hints for the CLI). Every following line is one compact JSON array
//! mirroring a [`WorkloadEvent`]:
//!
//! ```text
//! {"format":"gemini-trace-v1","version":1,"workload":"Redis",...}
//! ["A",0,16777216]     Alloc   { chunk: 0, bytes: 16777216 }
//! ["F",0]              Free    { chunk: 0 }
//! ["T",2,411]          Touch   { chunk: 2, page: 411 }
//! ["E",3000]           EndRequest { cpu: 3000 }
//! [".",123456]         end marker carrying the event count
//! ```
//!
//! The end marker makes truncation detectable: a reader that hits EOF
//! without seeing `["."​,n]`, or whose event count disagrees with `n`,
//! reports a typed [`SimError::BadTrace`] instead of silently replaying
//! a shorter run. Unknown versions are refused with
//! [`SimError::TraceVersion`] — version bumps are reserved for
//! incompatible record changes; compatible extensions (new *optional*
//! header fields) do not bump the version and readers must ignore
//! header keys they do not understand.
//!
//! Readers stream: [`TraceStream`] decodes one line at a time from any
//! [`BufRead`] (a file, stdin, or an in-memory buffer) and holds only
//! the current line — memory stays bounded for traces larger than RAM.
//! Writers tee: [`TeeStream`] wraps any live [`EventStream`] and writes
//! each event as the simulator pulls it, so recording a run costs one
//! formatted line per event and nothing is ever materialized.
//!
//! Replay is invisible to simulation by construction: generation is
//! machine-state-independent (the [`EventStream`] contract), so a
//! recorded stream drives a machine through exactly the trajectory the
//! live generator would have — the parity suite (`tests/trace_replay.rs`)
//! proves byte-identical `RunResult`s across the whole scenario
//! registry.
//!
//! The header's `seed` is serialized as a *decimal string*, not a JSON
//! number: seeds span the full `u64` range and JSON numbers round-trip
//! through `f64`, which silently loses integers above 2^53.

use crate::gen::{EventStream, WorkloadEvent};
use crate::spec::{spec_by_name, AccessSkew, AllocPattern, WorkloadSpec};
use gemini_obs::jsonread::{self, Value};
use gemini_obs::{json_f64, json_str};
use gemini_sim_core::{Result, SimError};
use std::io::{BufRead, Write};

/// The format tag every `gemini-trace-v1` header must carry.
pub const TRACE_FORMAT: &str = "gemini-trace-v1";

/// The newest trace format version this build reads and writes.
pub const TRACE_VERSION: u64 = 1;

/// The self-describing first line of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// The workload model the recorded events realize, *after* scale
    /// factors were applied — replay uses it verbatim, never re-scales.
    pub spec: WorkloadSpec,
    /// Name of the scale preset the recording ran at (`quick`, `demo`,
    /// `bench`, `full`). A hint for the CLI: replay defaults its
    /// machine sizing to this preset unless `--scale` overrides it.
    pub scale: String,
    /// Whether the recording machine was pre-fragmented; the same kind
    /// of hint as `scale`.
    pub fragmented: bool,
    /// Operations the recorded run targeted.
    pub ops: u64,
    /// Seed of the recorded run; replay seeds the machine with it.
    pub seed: u64,
}

impl TraceHeader {
    /// Serializes the header as its one-line JSON form.
    pub fn to_json_line(&self) -> String {
        let s = &self.spec;
        let mut out = format!(
            concat!(
                "{{\"format\":{},\"version\":{},\"workload\":{},",
                "\"scale\":{},\"fragmented\":{},\"ops\":{},\"seed\":{},",
                "\"working_set\":{}"
            ),
            json_str(TRACE_FORMAT),
            TRACE_VERSION,
            json_str(s.name),
            json_str(&self.scale),
            self.fragmented,
            self.ops,
            json_str(&self.seed.to_string()),
            s.working_set,
        );
        match s.alloc {
            AllocPattern::Static => out.push_str(",\"alloc\":\"static\""),
            AllocPattern::Gradual { chunk } => {
                out.push_str(&format!(",\"alloc\":\"gradual\",\"chunk\":{chunk}"));
            }
        }
        match s.skew {
            AccessSkew::Uniform => out.push_str(",\"skew\":\"uniform\""),
            AccessSkew::Sequential => out.push_str(",\"skew\":\"sequential\""),
            AccessSkew::Zipf(e) => {
                out.push_str(&format!(
                    ",\"skew\":\"zipf\",\"zipf_exponent\":{}",
                    json_f64(e)
                ));
            }
        }
        out.push_str(&format!(
            concat!(
                ",\"churn_period\":{},\"accesses_per_op\":{},\"cpu_per_op\":{},",
                "\"latency_tracked\":{},\"zero_heavy\":{},\"tlb_sensitive\":{}}}"
            ),
            s.churn_period,
            s.accesses_per_op,
            s.cpu_per_op,
            s.latency_tracked,
            s.zero_heavy,
            s.tlb_sensitive,
        ));
        out
    }

    /// Parses a header line. Malformed JSON, a wrong format tag or a
    /// missing field is [`SimError::BadTrace`]; a version this build
    /// does not know is [`SimError::TraceVersion`].
    pub fn parse(line: &str) -> Result<TraceHeader> {
        let bad = |reason: String| SimError::BadTrace { line: 1, reason };
        let v = jsonread::parse(line).map_err(|e| bad(format!("header is not JSON: {e}")))?;
        let format = v
            .get("format")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("header has no \"format\" field".into()))?;
        if format != TRACE_FORMAT {
            return Err(bad(format!(
                "format is {format:?}, expected {TRACE_FORMAT:?}"
            )));
        }
        let version = v
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| bad("header has no integer \"version\" field".into()))?;
        if version != TRACE_VERSION {
            return Err(SimError::TraceVersion {
                found: version,
                supported: TRACE_VERSION,
            });
        }
        let str_field = |key: &str| -> Result<&str> {
            v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| bad(format!("header field {key:?} missing or not a string")))
        };
        let u64_field = |key: &str| -> Result<u64> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| bad(format!("header field {key:?} missing or not an integer")))
        };
        let bool_field = |key: &str| -> Result<bool> {
            v.get(key)
                .and_then(Value::as_bool)
                .ok_or_else(|| bad(format!("header field {key:?} missing or not a bool")))
        };
        let name = str_field("workload")?;
        let alloc = match str_field("alloc")? {
            "static" => AllocPattern::Static,
            "gradual" => AllocPattern::Gradual {
                chunk: u64_field("chunk")?,
            },
            other => return Err(bad(format!("unknown alloc pattern {other:?}"))),
        };
        let skew = match str_field("skew")? {
            "uniform" => AccessSkew::Uniform,
            "sequential" => AccessSkew::Sequential,
            "zipf" => AccessSkew::Zipf(
                v.get("zipf_exponent")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| bad("zipf skew needs a \"zipf_exponent\" number".into()))?,
            ),
            other => return Err(bad(format!("unknown access skew {other:?}"))),
        };
        let seed: u64 = str_field("seed")?
            .parse()
            .map_err(|e| bad(format!("seed is not a u64 decimal string: {e}")))?;
        let accesses_per_op = u64_field("accesses_per_op")?;
        let spec = WorkloadSpec {
            name: static_name(name),
            working_set: u64_field("working_set")?,
            alloc,
            skew,
            churn_period: u64_field("churn_period")?,
            accesses_per_op: u32::try_from(accesses_per_op)
                .map_err(|_| bad(format!("accesses_per_op {accesses_per_op} exceeds u32")))?,
            cpu_per_op: u64_field("cpu_per_op")?,
            latency_tracked: bool_field("latency_tracked")?,
            zero_heavy: bool_field("zero_heavy")?,
            tlb_sensitive: bool_field("tlb_sensitive")?,
        };
        Ok(TraceHeader {
            spec,
            scale: str_field("scale")?.to_string(),
            fragmented: bool_field("fragmented")?,
            ops: u64_field("ops")?,
            seed,
        })
    }
}

/// Resolves a workload name to the `&'static str` [`WorkloadSpec`]
/// requires. Catalog workloads resolve to their catalog name; an
/// externally-defined name (a production trace) is interned by leaking
/// — one small allocation per distinct name per process, the standard
/// cost of a `&'static str` API meeting runtime data.
fn static_name(name: &str) -> &'static str {
    match spec_by_name(name) {
        Some(s) => s.name,
        None => Box::leak(name.to_string().into_boxed_str()),
    }
}

/// Formats one event as its compact record line (no newline).
pub fn event_record(ev: &WorkloadEvent) -> String {
    match *ev {
        WorkloadEvent::Alloc { chunk, bytes } => format!("[\"A\",{chunk},{bytes}]"),
        WorkloadEvent::Free { chunk } => format!("[\"F\",{chunk}]"),
        WorkloadEvent::Touch { chunk, page } => format!("[\"T\",{chunk},{page}]"),
        WorkloadEvent::EndRequest { cpu } => format!("[\"E\",{cpu}]"),
    }
}

/// One decoded record line.
enum Record {
    Event(WorkloadEvent),
    End { count: u64 },
}

/// Decodes one record line (already stripped of its newline). The
/// format is the canonical encoding [`event_record`] emits — a strict
/// reader keeps malformed input loud instead of guessing.
fn parse_record(line: &str) -> core::result::Result<Record, String> {
    let inner = line
        .strip_prefix("[\"")
        .ok_or("expected a [\"tag\",...] event record")?;
    let (tag, rest) = inner
        .split_once('"')
        .ok_or("unterminated record tag string")?;
    let rest = rest
        .strip_suffix(']')
        .ok_or("record does not end with ']'")?;
    let mut nums = [0u64; 2];
    let mut n = 0;
    for part in rest.split(',').skip(1) {
        if n >= nums.len() {
            return Err("too many fields in record".into());
        }
        nums[n] = part
            .parse()
            .map_err(|e| format!("bad number {part:?} in record: {e}"))?;
        n += 1;
    }
    if !rest.is_empty() && !rest.starts_with(',') {
        return Err("expected ',' after record tag".into());
    }
    let arity = |want: usize| -> core::result::Result<(), String> {
        if n == want {
            Ok(())
        } else {
            Err(format!("tag {tag:?} takes {want} field(s), got {n}"))
        }
    };
    match tag {
        "A" => {
            arity(2)?;
            Ok(Record::Event(WorkloadEvent::Alloc {
                chunk: nums[0] as usize,
                bytes: nums[1],
            }))
        }
        "F" => {
            arity(1)?;
            Ok(Record::Event(WorkloadEvent::Free {
                chunk: nums[0] as usize,
            }))
        }
        "T" => {
            arity(2)?;
            Ok(Record::Event(WorkloadEvent::Touch {
                chunk: nums[0] as usize,
                page: nums[1],
            }))
        }
        "E" => {
            arity(1)?;
            Ok(Record::Event(WorkloadEvent::EndRequest { cpu: nums[0] }))
        }
        "." => {
            arity(1)?;
            Ok(Record::End { count: nums[0] })
        }
        other => Err(format!("unknown record tag {other:?}")),
    }
}

/// Writes a trace: the header up front, one record per event, and the
/// counted end marker on [`TraceWriter::finish`]. Wrap the sink in a
/// `BufWriter` — the writer emits one small `write!` per event.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    events: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates the writer and writes the header line.
    pub fn new(mut out: W, header: &TraceHeader) -> std::io::Result<Self> {
        writeln!(out, "{}", header.to_json_line())?;
        Ok(Self { out, events: 0 })
    }

    /// Appends one event record.
    pub fn write_event(&mut self, ev: &WorkloadEvent) -> std::io::Result<()> {
        self.events += 1;
        match *ev {
            WorkloadEvent::Alloc { chunk, bytes } => {
                writeln!(self.out, "[\"A\",{chunk},{bytes}]")
            }
            WorkloadEvent::Free { chunk } => writeln!(self.out, "[\"F\",{chunk}]"),
            WorkloadEvent::Touch { chunk, page } => {
                writeln!(self.out, "[\"T\",{chunk},{page}]")
            }
            WorkloadEvent::EndRequest { cpu } => writeln!(self.out, "[\"E\",{cpu}]"),
        }
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Writes the end marker, flushes, and returns the sink and the
    /// event count.
    pub fn finish(mut self) -> std::io::Result<(W, u64)> {
        writeln!(self.out, "[\".\",{}]", self.events)?;
        self.out.flush()?;
        Ok((self.out, self.events))
    }
}

/// Tees a live [`EventStream`] into a [`TraceWriter`]: every event the
/// simulator pulls is also appended to the trace, so a recording run
/// *is* the live run — same stream, same trajectory, one extra line of
/// I/O per event.
///
/// `next_event` cannot surface I/O errors (the [`EventStream`]
/// contract has no error channel), so a failed write is stashed,
/// writing stops, and the error is returned — typed — from
/// [`TeeStream::finish`]. The simulation itself always completes.
#[derive(Debug)]
pub struct TeeStream<S: EventStream, W: Write> {
    inner: S,
    writer: Option<TraceWriter<W>>,
    io_error: Option<std::io::Error>,
}

impl<S: EventStream, W: Write> TeeStream<S, W> {
    /// Wraps `inner`, recording into `writer`.
    pub fn new(inner: S, writer: TraceWriter<W>) -> Self {
        Self {
            inner,
            writer: Some(writer),
            io_error: None,
        }
    }

    /// Writes the end marker and returns the event count, or the first
    /// I/O error encountered while recording.
    pub fn finish(self) -> Result<u64> {
        if let Some(e) = self.io_error {
            return Err(SimError::TraceIo {
                detail: e.to_string(),
            });
        }
        let writer = self
            .writer
            .expect("writer present unless an error was stashed");
        let (_, events) = writer.finish().map_err(|e| SimError::TraceIo {
            detail: e.to_string(),
        })?;
        Ok(events)
    }
}

impl<S: EventStream, W: Write> EventStream for TeeStream<S, W> {
    fn spec(&self) -> &WorkloadSpec {
        self.inner.spec()
    }

    fn next_event(&mut self) -> Option<WorkloadEvent> {
        let ev = self.inner.next_event()?;
        if let Some(w) = &mut self.writer {
            if let Err(e) = w.write_event(&ev) {
                self.io_error = Some(e);
                self.writer = None;
            }
        }
        Some(ev)
    }
}

/// Decode state of a [`TraceStream`].
#[derive(Debug)]
enum StreamState {
    /// Still decoding records.
    Streaming,
    /// The end marker was seen and verified.
    Done,
    /// Decoding failed; the error is replayed by `check_complete`.
    Failed(SimError),
}

/// A streaming `gemini-trace-v1` reader: an [`EventStream`] that
/// decodes incrementally from any [`BufRead`], holding only the current
/// line in memory.
///
/// The [`EventStream`] contract has no error channel, so a decode
/// failure ends the stream (`next_event` returns `None`) and is
/// *latched*: callers must ask [`TraceStream::check_complete`] after
/// the run whether the stream ended at a verified end marker or died
/// on malformed/truncated input. The replay runner does exactly that,
/// turning a damaged trace into a typed [`SimError`] instead of a
/// silently shorter run.
#[derive(Debug)]
pub struct TraceStream<R: BufRead> {
    header: TraceHeader,
    reader: R,
    buf: String,
    /// 1-based line number of the last line read (header = line 1).
    line: u64,
    events: u64,
    state: StreamState,
}

impl<R: BufRead> TraceStream<R> {
    /// Reads and validates the header; the stream is then ready to
    /// decode events.
    pub fn new(mut reader: R) -> Result<Self> {
        let mut buf = String::new();
        match reader.read_line(&mut buf) {
            Err(e) => {
                return Err(SimError::TraceIo {
                    detail: e.to_string(),
                })
            }
            Ok(0) => {
                return Err(SimError::BadTrace {
                    line: 1,
                    reason: "empty input: missing trace header".into(),
                })
            }
            Ok(_) => {}
        }
        let header = TraceHeader::parse(buf.trim_end_matches(['\n', '\r']))?;
        Ok(Self {
            header,
            reader,
            buf,
            line: 1,
            events: 0,
            state: StreamState::Streaming,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Events decoded so far.
    pub fn events_read(&self) -> u64 {
        self.events
    }

    /// Whether the stream ended cleanly: `Ok` only after the counted
    /// end marker was seen, the count matched, and nothing but
    /// whitespace followed. A latched decode failure is returned here;
    /// a stream that was not fully drained is an error too (the run
    /// that consumed it stopped early, so the trace was not verified).
    pub fn check_complete(&self) -> Result<()> {
        match &self.state {
            StreamState::Done => Ok(()),
            StreamState::Failed(e) => Err(e.clone()),
            StreamState::Streaming => Err(SimError::BadTrace {
                line: self.line,
                reason: "trace not fully consumed: end marker not reached".into(),
            }),
        }
    }

    fn fail(&mut self, reason: String) -> Option<WorkloadEvent> {
        self.state = StreamState::Failed(SimError::BadTrace {
            line: self.line,
            reason,
        });
        None
    }

    /// After the end marker, only trailing whitespace is allowed.
    fn verify_eof(&mut self) -> Option<WorkloadEvent> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Err(e) => {
                    self.state = StreamState::Failed(SimError::TraceIo {
                        detail: e.to_string(),
                    });
                    return None;
                }
                Ok(0) => {
                    self.state = StreamState::Done;
                    return None;
                }
                Ok(_) => {
                    self.line += 1;
                    if !self.buf.trim().is_empty() {
                        return self.fail("trailing data after end marker".into());
                    }
                }
            }
        }
    }
}

impl<R: BufRead> EventStream for TraceStream<R> {
    fn spec(&self) -> &WorkloadSpec {
        &self.header.spec
    }

    fn next_event(&mut self) -> Option<WorkloadEvent> {
        if !matches!(self.state, StreamState::Streaming) {
            return None;
        }
        self.buf.clear();
        match self.reader.read_line(&mut self.buf) {
            Err(e) => {
                self.state = StreamState::Failed(SimError::TraceIo {
                    detail: e.to_string(),
                });
                return None;
            }
            Ok(0) => {
                self.line += 1;
                return self.fail("unexpected end of input: trace has no end marker".into());
            }
            Ok(_) => self.line += 1,
        }
        let line = self.buf.trim_end_matches(['\n', '\r']);
        match parse_record(line) {
            Err(reason) => self.fail(reason),
            Ok(Record::End { count }) => {
                if count != self.events {
                    return self.fail(format!(
                        "end marker counts {count} events but {} were read",
                        self.events
                    ));
                }
                self.verify_eof()
            }
            Ok(Record::Event(ev)) => {
                self.events += 1;
                Some(ev)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadGen;
    use std::io::Cursor;

    fn demo_header() -> TraceHeader {
        TraceHeader {
            spec: spec_by_name("Redis").unwrap().scaled(1.0 / 16.0),
            scale: "quick".into(),
            fragmented: true,
            ops: 500,
            seed: 0x9E37_79B9_7F4A_7C15, // Above 2^53: exercises string encoding.
        }
    }

    #[test]
    fn header_round_trips() {
        let h = demo_header();
        let parsed = TraceHeader::parse(&h.to_json_line()).unwrap();
        assert_eq!(parsed, h);
        // Static alloc + uniform skew variant.
        let h2 = TraceHeader {
            spec: spec_by_name("Canneal").unwrap(),
            scale: "demo".into(),
            fragmented: false,
            ops: 8_000,
            seed: 42,
        };
        assert_eq!(TraceHeader::parse(&h2.to_json_line()).unwrap(), h2);
        // Sequential skew variant.
        let h3 = TraceHeader {
            spec: spec_by_name("Streamcluster").unwrap(),
            ..h2
        };
        assert_eq!(TraceHeader::parse(&h3.to_json_line()).unwrap(), h3);
    }

    #[test]
    fn header_rejects_wrong_format_version_and_missing_fields() {
        assert!(matches!(
            TraceHeader::parse("not json at all"),
            Err(SimError::BadTrace { line: 1, .. })
        ));
        assert!(matches!(
            TraceHeader::parse(r#"{"format":"other-trace","version":1}"#),
            Err(SimError::BadTrace { line: 1, .. })
        ));
        let future = demo_header()
            .to_json_line()
            .replace("\"version\":1", "\"version\":2");
        assert_eq!(
            TraceHeader::parse(&future),
            Err(SimError::TraceVersion {
                found: 2,
                supported: 1
            })
        );
        let no_seed = demo_header()
            .to_json_line()
            .replace(",\"seed\":\"11400714819323198485\"", "");
        assert!(matches!(
            TraceHeader::parse(&no_seed),
            Err(SimError::BadTrace { line: 1, .. })
        ));
    }

    #[test]
    fn event_records_round_trip() {
        let events = [
            WorkloadEvent::Alloc {
                chunk: 3,
                bytes: 1 << 24,
            },
            WorkloadEvent::Free { chunk: 3 },
            WorkloadEvent::Touch {
                chunk: 0,
                page: u64::MAX,
            },
            WorkloadEvent::EndRequest { cpu: 12_000 },
        ];
        for ev in &events {
            match parse_record(&event_record(ev)).unwrap() {
                Record::Event(back) => assert_eq!(back, *ev),
                Record::End { .. } => panic!("not an end marker"),
            }
        }
        match parse_record("[\".\",42]").unwrap() {
            Record::End { count } => assert_eq!(count, 42),
            Record::Event(_) => panic!("end marker"),
        }
    }

    #[test]
    fn malformed_records_are_rejected() {
        for bad in [
            "",
            "[",
            "plain text",
            "[\"A\"]",       // wrong arity
            "[\"A\",1]",     // wrong arity
            "[\"A\",1,2,3]", // too many fields
            "[\"T\",1,2",    // unterminated
            "[\"Z\",1]",     // unknown tag
            "[\"A\",1,-2]",  // negative number
            "[\"A\",1,2.5]", // non-integer
            "[\"A\",x,2]",   // garbage number
            "{\"T\":1}",     // object, not array
            "[\"A\"1,2]",    // missing comma
            "[\".\",1,2]",   // end marker arity
        ] {
            assert!(parse_record(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn tee_then_stream_reproduces_the_generator() {
        let h = demo_header();
        let gen = WorkloadGen::new(h.spec.clone(), h.ops, h.seed);
        let expect: Vec<_> = WorkloadGen::new(h.spec.clone(), h.ops, h.seed).collect();
        let writer = TraceWriter::new(Vec::new(), &h).unwrap();
        let mut tee = TeeStream::new(gen, writer);
        let mut seen = Vec::new();
        while let Some(ev) = tee.next_event() {
            seen.push(ev);
        }
        assert_eq!(seen, expect, "tee is transparent");
        // finish() consumes the tee; grab the bytes through the writer
        // by re-recording (the writer was moved into the tee).
        let writer2 = TraceWriter::new(Vec::new(), &h).unwrap();
        let mut tee2 = TeeStream::new(WorkloadGen::new(h.spec.clone(), h.ops, h.seed), writer2);
        while tee2.next_event().is_some() {}
        // Bytes equality between two recordings of the same run.
        let n = tee2.finish().unwrap();
        assert_eq!(n as usize, expect.len());
        // And a full write → read cycle.
        let mut w = TraceWriter::new(Vec::new(), &h).unwrap();
        for ev in &expect {
            w.write_event(ev).unwrap();
        }
        let (bytes, n) = w.finish().unwrap();
        assert_eq!(n as usize, expect.len());
        let mut stream = TraceStream::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(stream.header(), &h);
        assert_eq!(stream.spec().name, "Redis");
        let mut replayed = Vec::new();
        while let Some(ev) = stream.next_event() {
            replayed.push(ev);
        }
        assert_eq!(replayed, expect);
        stream.check_complete().unwrap();
        assert_eq!(stream.events_read(), n);
    }

    #[test]
    fn truncation_and_damage_latch_typed_errors() {
        let h = demo_header();
        let mut w = TraceWriter::new(Vec::new(), &h).unwrap();
        let events: Vec<_> = WorkloadGen::new(h.spec.clone(), 50, 7).collect();
        for ev in &events {
            w.write_event(ev).unwrap();
        }
        let (bytes, _) = w.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let drain = |input: String| -> Result<()> {
            let mut s = TraceStream::new(Cursor::new(input.into_bytes()))?;
            while s.next_event().is_some() {}
            s.check_complete()
        };
        // Cut at any line boundary before the end: missing end marker.
        let lines: Vec<&str> = text.lines().collect();
        let cut = lines[..lines.len() - 3].join("\n");
        assert!(matches!(drain(cut), Err(SimError::BadTrace { .. })));
        // Cut mid-line: malformed record.
        let mid = text[..text.len() * 2 / 3].to_string();
        assert!(matches!(drain(mid), Err(SimError::BadTrace { .. })));
        // Wrong end-marker count.
        let miscounted = text.replace(
            &format!("[\".\",{}]", events.len()),
            &format!("[\".\",{}]", events.len() + 1),
        );
        let err = drain(miscounted).unwrap_err();
        assert!(err.to_string().contains("end marker counts"), "{err}");
        // Trailing junk after the end marker.
        let trailing = format!("{text}[\"E\",1]\n");
        let err = drain(trailing).unwrap_err();
        assert!(err.to_string().contains("trailing data"), "{err}");
        // Garbage mid-file (line numbers surface in the error).
        let mut damaged: Vec<&str> = text.lines().collect();
        damaged[10] = "■ garbage ■";
        let err = drain(damaged.join("\n")).unwrap_err();
        assert!(matches!(err, SimError::BadTrace { line: 11, .. }), "{err}");
        // Trailing blank lines are fine.
        let padded = format!("{text}\n\n");
        drain(padded).unwrap();
        // Empty input.
        assert!(matches!(
            TraceStream::new(Cursor::new(Vec::new())),
            Err(SimError::BadTrace { line: 1, .. })
        ));
    }

    #[test]
    fn unknown_workload_names_are_interned() {
        let line = demo_header()
            .to_json_line()
            .replace("\"workload\":\"Redis\"", "\"workload\":\"ProdService-7\"");
        let h = TraceHeader::parse(&line).unwrap();
        assert_eq!(h.spec.name, "ProdService-7");
        // Catalog names resolve to the catalog's static string.
        let h2 = TraceHeader::parse(&demo_header().to_json_line()).unwrap();
        assert_eq!(h2.spec.name, "Redis");
    }

    #[test]
    fn undrained_stream_is_incomplete() {
        let h = demo_header();
        let mut w = TraceWriter::new(Vec::new(), &h).unwrap();
        for ev in WorkloadGen::new(h.spec.clone(), 20, 3) {
            w.write_event(&ev).unwrap();
        }
        let (bytes, _) = w.finish().unwrap();
        let mut s = TraceStream::new(Cursor::new(bytes)).unwrap();
        s.next_event().unwrap();
        let err = s.check_complete().unwrap_err();
        assert!(err.to_string().contains("not fully consumed"), "{err}");
    }
}

//! VM lifecycle churn property suite (DESIGN.md §14).
//!
//! `Machine::remove_vm` promises that destroying a VM returns *every*
//! host frame it held — EPT torn down, frames back in the buddy
//! allocator, free-run index consistent — and leaves survivors
//! untouched. This suite drives DetRng-seeded random
//! create/run/destroy interleavings against that promise: after every
//! departure the buddy invariants (including index == rescan) must
//! hold, survivors must keep running, and a fully drained host must be
//! byte-identical to a freshly built one.

use gemini_sim_core::{DetRng, VmId};
use gemini_vm_sim::{FleetArrival, Machine, MachineConfig, SystemKind};
use gemini_workloads::{spec_by_name, WorkloadGen};

/// Churn systems: the kernel default and the paper's system (the
/// Gemini runtime carries the most per-VM state to retire).
const SYSTEMS: [SystemKind; 2] = [SystemKind::Thp, SystemKind::Gemini];

/// Workloads drawn during churn — mixed access shapes, small enough
/// (scaled 1/64) that several fit a small host at once.
const NAMES: [&str; 4] = ["Redis", "Memcached", "SVM", "Masstree"];

fn small_cfg() -> MachineConfig {
    MachineConfig {
        host_frames: 1 << 15,
        vm_frames: 1 << 13,
        ..MachineConfig::default()
    }
}

fn gen_for(name: &str, ops: u64, seed: u64) -> WorkloadGen {
    let spec = spec_by_name(name)
        .expect("catalog workload")
        .scaled(1.0 / 64.0);
    WorkloadGen::new(spec, ops, seed)
}

/// Buddy state checks that must hold after every VM departure: the
/// allocator's internal invariants (free counts, split consistency)
/// and the persistent free-run index agreeing byte-for-byte with a
/// from-scratch bitmap rescan.
fn assert_buddy_consistent(m: &Machine) {
    let buddy = &m.host_mm().buddy;
    buddy
        .check_invariants()
        .expect("buddy invariants after churn");
    assert_eq!(
        buddy.free_runs(),
        buddy.free_runs_rescan(),
        "free-run index diverged from rescan"
    );
}

#[test]
fn random_churn_is_leak_free_and_drains_to_a_fresh_host() {
    for system in SYSTEMS {
        for seed in [3u64, 17, 1009] {
            let cfg = small_cfg();
            let mut m = Machine::new(system, cfg.clone());
            let mut rng = DetRng::new(seed);
            let mut live: Vec<VmId> = Vec::new();
            let mut lifecycles = 0u32;
            for _ in 0..24 {
                let create = live.len() < 2 || (live.len() < 5 && rng.chance(0.5));
                if create {
                    let vm = m.add_vm().expect("host has room at this scale");
                    let name = NAMES[rng.below(NAMES.len() as u64) as usize];
                    let ops = 120 + rng.below(240);
                    m.run(vm, gen_for(name, ops, rng.below(1 << 20)))
                        .expect("workload runs");
                    live.push(vm);
                } else {
                    let vm = live.swap_remove(rng.below(live.len() as u64) as usize);
                    let freed = m.remove_vm(vm).expect("teardown succeeds");
                    assert!(freed > 0, "a VM that ran a workload held frames");
                    assert_buddy_consistent(&m);
                    lifecycles += 1;
                }
            }
            assert!(lifecycles >= 5, "sequence exercised real churn");
            // Survivors are untouched by their neighbours' teardowns:
            // each keeps accepting work on the same machine.
            for &vm in &live {
                m.run(vm, gen_for("Redis", 80, 9)).expect("survivor runs");
            }
            // Drain the host completely: every frame is back and the
            // buddy is byte-identical to a freshly built machine's —
            // free frame count, free-run list, invariants.
            for vm in live.drain(..) {
                m.remove_vm(vm).expect("drain teardown succeeds");
                assert_buddy_consistent(&m);
            }
            let fresh = Machine::new(system, cfg);
            assert_eq!(
                m.host_mm().buddy.free_frames(),
                fresh.host_mm().buddy.free_frames(),
                "{system:?}/seed {seed}: churned host leaked frames"
            );
            assert_eq!(
                m.host_mm().buddy.free_runs(),
                fresh.host_mm().buddy.free_runs(),
                "{system:?}/seed {seed}: churned host free layout differs from fresh"
            );
        }
    }
}

#[test]
fn drained_host_runs_new_vms_identically_to_a_fresh_one() {
    // Teardown must leave no residual per-VM state: after a burst of
    // neighbours is created, run and fully destroyed, a new VM's run
    // on the drained machine must be byte-identical to the same
    // (spec, ops, seed) on a freshly built host. (While neighbours are
    // still resident their frames legitimately shape allocation; after
    // a full drain nothing may.)
    for system in SYSTEMS {
        let mut fresh = Machine::new(system, small_cfg());
        let vm = fresh.add_vm().unwrap();
        let baseline = fresh.run(vm, gen_for("Redis", 400, 77)).unwrap();

        let mut churned = Machine::new(system, small_cfg());
        for i in 0..3u64 {
            let n = churned.add_vm().unwrap();
            churned
                .run(n, gen_for(NAMES[i as usize], 150 + 30 * i, 5 + i))
                .unwrap();
            churned.remove_vm(n).unwrap();
        }
        let subject = churned.add_vm().unwrap();
        let after_churn = churned.run(subject, gen_for("Redis", 400, 77)).unwrap();

        // Every per-VM surface must match: translation counters, huge
        // page alignment, latency and fragmentation. `vtime` is
        // exempt — host-global daemons (the compactor's cursor and
        // deadlines) deliberately persist across VM lifetimes, like a
        // real kcompactd, and shift background-pass timing by a few
        // cycles without touching any per-VM outcome.
        let surfaces = |r: &gemini_vm_sim::RunResult| {
            format!(
                "{:?} {:?} {:?} {:?} {} {} {}",
                r.counters,
                r.alignment,
                r.mean_latency,
                r.p99_latency,
                r.guest_fmfi,
                r.host_fmfi,
                r.bucket_reuse_rate
            )
        };
        assert_eq!(
            surfaces(&baseline),
            surfaces(&after_churn),
            "{system:?}: destroyed neighbours leaked state into a later VM's run"
        );
    }
}

#[test]
fn fleet_driver_matches_manual_lifecycle_accounting() {
    // The fleet driver is just `add_vm`/`run`/`remove_vm` under a
    // residency cap: its reclaimed-frame total must equal what the
    // teardowns reported, and the drained host must be pristine.
    let cfg = small_cfg();
    let host_frames = cfg.host_frames;
    let mut m = Machine::new(SystemKind::Gemini, cfg);
    let arrivals: Vec<FleetArrival<WorkloadGen>> = (0..8u32)
        .map(|i| {
            let name = NAMES[i as usize % NAMES.len()];
            FleetArrival {
                index: i,
                footprint_frames: 512,
                gen: gen_for(name, 100 + 20 * i as u64, 1000 + i as u64),
            }
        })
        .collect();
    let outcome = m.run_fleet(arrivals, host_frames / 4).unwrap();
    assert_eq!(outcome.vms.len(), 8);
    assert_eq!(outcome.churn_events, 16);
    assert_eq!(
        outcome.frames_reclaimed(),
        outcome.vms.iter().map(|v| v.frames_reclaimed).sum::<u64>()
    );
    assert!(outcome.frames_reclaimed() > 0);
    assert_buddy_consistent(&m);
    assert_eq!(m.host_mm().buddy.free_frames(), host_frames);
    assert_eq!(m.host_mm().buddy.free_runs(), vec![(0, host_frames)]);
}

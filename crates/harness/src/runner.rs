//! Shared run helpers used by every experiment.

use crate::exec::run_shards;
use crate::scale::Scale;
use gemini_obs::{Phase, Profiler, Recorder, TraceConfig};
use gemini_sim_core::{derive_seed, Result, SimError, VmId};
use gemini_vm_sim::{Machine, RunResult, SystemKind};
use gemini_workloads::{
    PregenStream, TeeStream, TraceHeader, TraceStream, TraceWriter, WorkloadGen, WorkloadSpec,
};
use std::io::{BufRead, Write};

/// Runs `spec` under `system` on a fresh (clean-slate) machine.
pub fn run_workload_on(
    system: SystemKind,
    spec: &WorkloadSpec,
    scale: &Scale,
    fragmented: bool,
    seed: u64,
) -> Result<RunResult> {
    let cfg = scale.machine_config(fragmented, spec.zero_heavy, seed);
    let mut machine = Machine::new(system, cfg);
    let vm = machine.add_vm()?;
    let gen = WorkloadGen::new(spec.scaled(scale.ws_factor), scale.ops, seed);
    machine.run(vm, gen)
}

/// Like [`run_workload_on`], but also returns the machine's batching
/// statistics ([`gemini_tlb::BatchStats`]): how many provably hit-only
/// runs the closed-form fast path advanced, how many accesses rode
/// them, and how often a run was declined or truncated. The `RunResult`
/// is byte-identical to [`run_workload_on`] — batching observability
/// deliberately lives outside the compared counters (DESIGN.md §16).
pub fn run_workload_batch_stats(
    system: SystemKind,
    spec: &WorkloadSpec,
    scale: &Scale,
    fragmented: bool,
    seed: u64,
) -> Result<(RunResult, gemini_tlb::BatchStats)> {
    let cfg = scale.machine_config(fragmented, spec.zero_heavy, seed);
    let mut machine = Machine::new(system, cfg);
    let vm = machine.add_vm()?;
    let gen = WorkloadGen::new(spec.scaled(scale.ws_factor), scale.ops, seed);
    let result = machine.run(vm, gen)?;
    let stats = machine.batch_stats();
    Ok((result, stats))
}

/// Like [`run_workload_on`], but with event tracing, metrics and
/// time-series sampling enabled per `trace`; returns the machine's
/// recorder alongside the result.
pub fn run_workload_traced(
    system: SystemKind,
    spec: &WorkloadSpec,
    scale: &Scale,
    fragmented: bool,
    seed: u64,
    trace: &TraceConfig,
) -> Result<(RunResult, Recorder)> {
    let mut cfg = scale.machine_config(fragmented, spec.zero_heavy, seed);
    cfg.trace = trace.clone();
    let mut machine = Machine::new(system, cfg);
    let vm = machine.add_vm()?;
    let gen = WorkloadGen::new(spec.scaled(scale.ws_factor), scale.ops, seed);
    let result = machine.run(vm, gen)?;
    let recorder = machine.recorder().clone();
    Ok((result, recorder))
}

/// Like [`run_workload_on`], but with phase-level span profiling: the
/// whole cell (machine build, workload generation, event processing,
/// daemons) records spans into `prof`. The simulated result is
/// identical to the unprofiled run — the profiler only observes
/// wall-clock time, it never touches simulated state.
pub fn run_workload_profiled(
    system: SystemKind,
    spec: &WorkloadSpec,
    scale: &Scale,
    fragmented: bool,
    seed: u64,
    prof: Profiler,
) -> Result<RunResult> {
    let mut cfg = scale.machine_config(fragmented, spec.zero_heavy, seed);
    cfg.profiler = prof;
    let mut machine = Machine::new(system, cfg);
    let vm = machine.add_vm()?;
    let gen = WorkloadGen::new(spec.scaled(scale.ws_factor), scale.ops, seed);
    machine.run(vm, gen)
}

/// [`run_workload_profiled`] + [`run_workload_batch_stats`] in one:
/// span profiling into `prof`, batching statistics in the return.
/// Feeds the Perfetto grid export, where the batch totals become
/// counter tracks next to the timeline.
pub fn run_workload_profiled_batch_stats(
    system: SystemKind,
    spec: &WorkloadSpec,
    scale: &Scale,
    fragmented: bool,
    seed: u64,
    prof: Profiler,
) -> Result<(RunResult, gemini_tlb::BatchStats)> {
    let mut cfg = scale.machine_config(fragmented, spec.zero_heavy, seed);
    cfg.profiler = prof;
    let mut machine = Machine::new(system, cfg);
    let vm = machine.add_vm()?;
    let gen = WorkloadGen::new(spec.scaled(scale.ws_factor), scale.ops, seed);
    let result = machine.run(vm, gen)?;
    let stats = machine.batch_stats();
    Ok((result, stats))
}

/// One unit of intra-cell work (see [`run_workload_sharded`]).
enum Shard {
    /// The constructed machine and its VM (or the construction error).
    Machine(Result<(Box<Machine>, VmId)>),
    /// The pre-generated workload event stream.
    Events(PregenStream),
}

/// Like [`run_workload_profiled`], but *intra-cell sharded*: machine
/// construction (buddy seeding, fragmentation pre-conditioning, page
/// tables) and workload generation (the full event stream) run as
/// independent shards on [`run_shards`]'s worker pool, then the
/// coordinating thread replays the pre-generated stream through the
/// machine.
///
/// The result is byte-identical to [`run_workload_on`] at every jobs
/// setting: generation is a pure function of `(spec, ops, seed)` and
/// never observes machine state, so pre-generating the stream cannot
/// change the trajectory, and the simulated run itself stays
/// single-threaded. Sharding only moves *wall-clock* work — setup and
/// generation overlap instead of serializing, which is the lever that
/// lets one big cell (where cell-level parallelism has nothing to
/// schedule) bend under `--jobs`. Shard progress lands on `rec` as
/// `exec.shards_submitted` / `exec.shards_finished`.
pub fn run_workload_sharded(
    system: SystemKind,
    spec: &WorkloadSpec,
    scale: &Scale,
    fragmented: bool,
    seed: u64,
    rec: &Recorder,
    prof: &Profiler,
) -> Result<RunResult> {
    let cfg = scale.machine_config(fragmented, spec.zero_heavy, seed);
    let scaled = spec.scaled(scale.ws_factor);
    let ops = scale.ops;
    type ShardFn<'a> = Box<dyn FnOnce(&Profiler) -> Shard + Send + 'a>;
    let shards: Vec<ShardFn> = vec![
        Box::new(move |wprof: &Profiler| {
            // The machine is built under the worker's profiler fork so
            // Setup spans land on the worker's track; the run phase
            // below re-points it at the coordinator's profiler.
            let mut cfg = cfg;
            cfg.profiler = wprof.clone();
            let mut machine = Box::new(Machine::new(system, cfg));
            let vm = machine.add_vm();
            Shard::Machine(vm.map(|vm| (machine, vm)))
        }),
        Box::new(move |wprof: &Profiler| {
            let _gen_span = wprof.span(Phase::WorkloadGen);
            Shard::Events(WorkloadGen::new(scaled, ops, seed).pregenerate())
        }),
    ];
    let mut out = run_shards(scale.jobs, rec, prof, shards);
    let Some(Shard::Events(events)) = out.pop() else {
        unreachable!("shard results come back in submission order");
    };
    let Some(Shard::Machine(machine)) = out.pop() else {
        unreachable!("shard results come back in submission order");
    };
    let (mut machine, vm) = machine?;
    // The worker forks were merged and retired inside `run_shards`;
    // run-phase spans must record onto the live profiler.
    machine.set_profiler(prof.clone());
    machine.run(vm, events)
}

/// Like [`run_workload_on`], but *recording*: every event the live
/// generator produces is teed into `out` as a `gemini-trace-v1`
/// document (DESIGN.md §15) while the simulation runs. The returned
/// `RunResult` is byte-identical to the unrecorded run — the tee only
/// observes the stream — and the second value is the number of events
/// captured. Wrap `out` in a `BufWriter`; the tee writes one line per
/// event.
pub fn record_workload_on<W: Write>(
    system: SystemKind,
    spec: &WorkloadSpec,
    scale: &Scale,
    scale_name: &str,
    fragmented: bool,
    seed: u64,
    out: W,
) -> Result<(RunResult, u64)> {
    let cfg = scale.machine_config(fragmented, spec.zero_heavy, seed);
    let mut machine = Machine::new(system, cfg);
    let vm = machine.add_vm()?;
    let scaled = spec.scaled(scale.ws_factor);
    let header = TraceHeader {
        spec: scaled.clone(),
        scale: scale_name.to_string(),
        fragmented,
        ops: scale.ops,
        seed,
    };
    let writer = TraceWriter::new(out, &header).map_err(|e| SimError::TraceIo {
        detail: e.to_string(),
    })?;
    let mut tee = TeeStream::new(WorkloadGen::new(scaled, scale.ops, seed), writer);
    let result = machine.run(vm, &mut tee)?;
    let events = tee.finish()?;
    Ok((result, events))
}

/// Replays a recorded trace through `system`, streaming events straight
/// off `stream` — nothing is materialized, so traces larger than RAM
/// replay in bounded memory. The machine is seeded and sized from the
/// trace header (seed, zero-heaviness) plus the caller's `scale` and
/// `fragmented`; with the same scale and fragmentation the recording
/// ran at, the `RunResult` is byte-identical to the live run.
///
/// Damaged input is a typed error, never a panic: a malformed or
/// truncated trace ends the stream early, the partial run is
/// discarded, and the stream's latched [`SimError`] is returned.
pub fn replay_trace_on<R: BufRead>(
    system: SystemKind,
    stream: &mut TraceStream<R>,
    scale: &Scale,
    fragmented: bool,
) -> Result<RunResult> {
    let seed = stream.header().seed;
    let zero_heavy = stream.header().spec.zero_heavy;
    let cfg = scale.machine_config(fragmented, zero_heavy, seed);
    let mut machine = Machine::new(system, cfg);
    let vm = machine.add_vm()?;
    let result = machine.run(vm, &mut *stream)?;
    stream.check_complete()?;
    Ok(result)
}

/// Runs `spec` under `system` in a *reused* VM: a large-working-set SVM
/// job runs first, exits, and the target workload follows in the same VM
/// (paper §6.3).
pub fn run_workload_reused(
    system: SystemKind,
    spec: &WorkloadSpec,
    scale: &Scale,
    seed: u64,
) -> Result<RunResult> {
    let cfg = scale.machine_config(false, spec.zero_heavy, seed);
    let mut machine = Machine::new(system, cfg);
    let vm = machine.add_vm()?;
    let svm = gemini_workloads::spec_by_name("SVM")
        .expect("SVM is in the catalog")
        .scaled(scale.ws_factor);
    // The predecessor gets its own derived stream; XOR-ing a small
    // constant onto the seed would correlate it with the main run.
    machine.run(
        vm,
        WorkloadGen::new(svm, scale.ops / 2, derive_seed(seed, "reused-pred", 0)),
    )?;
    machine.clear_workload(vm)?;
    let gen = WorkloadGen::new(spec.scaled(scale.ws_factor), scale.ops, seed);
    machine.run(vm, gen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_slate_runner_completes() {
        let scale = Scale {
            ops: 400,
            ..Scale::quick()
        };
        let spec = gemini_workloads::spec_by_name("Silo").expect("Silo workload registered");
        let r = run_workload_on(SystemKind::Thp, &spec, &scale, false, 1).unwrap();
        assert_eq!(r.ops, 400);
        assert_eq!(r.system, "THP");
    }

    #[test]
    fn record_then_replay_is_byte_identical_to_live() {
        let scale = Scale {
            ops: 400,
            ..Scale::quick()
        };
        let spec = gemini_workloads::spec_by_name("Xapian").expect("Xapian workload registered");
        let live = run_workload_on(SystemKind::Gemini, &spec, &scale, true, 5).unwrap();
        let mut trace = Vec::new();
        let (recorded, events) = record_workload_on(
            SystemKind::Gemini,
            &spec,
            &scale,
            "quick",
            true,
            5,
            &mut trace,
        )
        .unwrap();
        assert!(events > 0);
        assert_eq!(
            format!("{live:?}"),
            format!("{recorded:?}"),
            "tee invisible"
        );
        let mut stream = TraceStream::new(std::io::Cursor::new(trace)).unwrap();
        let replayed = replay_trace_on(SystemKind::Gemini, &mut stream, &scale, true).unwrap();
        assert_eq!(
            format!("{live:?}"),
            format!("{replayed:?}"),
            "replay parity"
        );
        assert_eq!(stream.events_read(), events);
    }

    #[test]
    fn replay_surfaces_damage_as_typed_errors() {
        let scale = Scale {
            ops: 200,
            ..Scale::quick()
        };
        let spec = gemini_workloads::spec_by_name("Silo").expect("Silo workload registered");
        let mut trace = Vec::new();
        record_workload_on(
            SystemKind::Thp,
            &spec,
            &scale,
            "quick",
            false,
            3,
            &mut trace,
        )
        .unwrap();
        // Drop the end marker and the last few events.
        let text = String::from_utf8(trace).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let cut = lines[..lines.len() - 4].join("\n");
        let mut stream = TraceStream::new(std::io::Cursor::new(cut.into_bytes())).unwrap();
        let err = replay_trace_on(SystemKind::Thp, &mut stream, &scale, false).unwrap_err();
        assert!(
            matches!(err, SimError::BadTrace { .. }),
            "truncation must be typed: {err}"
        );
    }

    #[test]
    fn reused_runner_runs_predecessor_first() {
        let scale = Scale {
            ops: 400,
            ..Scale::quick()
        };
        let spec = gemini_workloads::spec_by_name("Xapian").expect("Xapian workload registered");
        let r = run_workload_reused(SystemKind::Ingens, &spec, &scale, 2).unwrap();
        assert_eq!(r.ops, 400);
        assert_eq!(r.workload, "Xapian");
        // vtime is the run's own delta, not the VM's cumulative clock.
        let cold = run_workload_on(SystemKind::Ingens, &spec, &scale, false, 2).unwrap();
        // Saturating: `cold.vtime * 4` would wrap for large cycle counts.
        assert!(
            r.vtime.0 < cold.vtime.0.saturating_mul(4),
            "reused vtime is per-run"
        );
    }
}

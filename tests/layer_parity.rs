//! Refactor-parity suite for the unified layer engine (DESIGN.md §9).
//!
//! Two guarantees:
//!
//! 1. **Golden byte-identity** — the fig. 3 (motivation) and fig. 8
//!    (clean-slate) grids render their tables and JSON exports exactly as
//!    they did before `GuestMm`/`HostMm` were rebuilt on `LayerEngine`,
//!    at `jobs = 1` and `jobs = N` alike. The goldens under
//!    `tests/golden/` were captured from the pre-refactor tree; regenerate
//!    deliberately with `GEMINI_BLESS=1` after an *intentional* behaviour
//!    change.
//! 2. **Layer parity** — the same `HugePolicy` driven through the guest
//!    and host instantiations of `LayerEngine` on one DetRng-generated
//!    fault/touch trace produces identical effects, promotion counts and
//!    fragmentation indices (the two layers are one mechanism).

use gemini_harness::experiments::{clean_slate, motivation};
use gemini_harness::{trace, Scale};

/// Worker-thread count for the `jobs = N` leg (`GEMINI_JOBS`, default 4).
fn jobs_n() -> usize {
    std::env::var("GEMINI_JOBS")
        .ok()
        .and_then(|j| j.parse().ok())
        .filter(|&j| j != 1)
        .unwrap_or(4)
}

/// The reduced-but-representative scale both grids run at.
fn golden_scale(jobs: usize) -> Scale {
    Scale {
        ops: 1_200,
        jobs,
        ..Scale::quick()
    }
}

/// Renders the motivation (fig. 3 + table 1) artefacts plus the JSON
/// export of every cell, in grid order.
fn motivation_artifacts(jobs: usize) -> (String, String) {
    let res = motivation::run(&golden_scale(jobs)).expect("motivation grid runs");
    let mut text = res.render_fig03();
    text.push_str(&res.render_tab01());
    let json: Vec<String> = res.runs.iter().flatten().map(trace::result_json).collect();
    (text, json.join("\n") + "\n")
}

/// Renders the clean-slate (fig. 8, both fragmentation variants)
/// artefacts plus the JSON export of every cell, in grid order.
fn clean_slate_artifacts(jobs: usize) -> (String, String) {
    let res = clean_slate::run(&golden_scale(jobs), Some(&["Masstree", "Redis"]))
        .expect("clean-slate grid runs");
    let mut text = res.render_fig08(false);
    text.push_str(&res.render_fig08(true));
    let json: Vec<String> = res
        .grid
        .iter()
        .flatten()
        .flatten()
        .map(trace::result_json)
        .collect();
    (text, json.join("\n") + "\n")
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

/// Compares `actual` against the stored golden, or rewrites the golden
/// when `GEMINI_BLESS=1` (deliberate recalibration only).
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("GEMINI_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with GEMINI_BLESS=1"));
    assert_eq!(
        expected, actual,
        "{name} drifted from its pre-refactor golden"
    );
}

/// Collapses layer-specific effect bookkeeping into a comparable shape:
/// guest promotions land in `gva_regions_invalidated`, host promotions in
/// `gpa_regions_changed` — the merged list plus the scalar costs must
/// match exactly across instantiations.
fn norm_fx(fx: gemini_mm::Effects) -> (u64, Vec<u64>, u64, u64, u64) {
    let mut regions = fx.gva_regions_invalidated;
    regions.extend(fx.gpa_regions_changed);
    (
        fx.cycles.0,
        regions,
        fx.shootdowns,
        fx.pages_copied,
        fx.pages_zeroed,
    )
}

/// Drives one policy through the guest and host instantiations of
/// `LayerEngine` on the same DetRng fault/touch trace and asserts the
/// two layers behave identically step by step.
fn assert_layer_parity(kind: gemini_policies::PolicyKind, seed: u64) {
    use gemini_mm::{CostModel, FaultSite, GuestLayer, HostLayer, LayerEngine};
    use gemini_sim_core::rng::DetRng;
    use gemini_sim_core::{Cycles, VmId};

    // The layers legitimately differ only in which fault-cost constants
    // apply; a symmetric cost model makes byte-equal effects the
    // expected outcome.
    let mut costs = CostModel::default();
    costs.ept_fault = costs.minor_fault;
    costs.ept_huge_fault_extra = costs.huge_fault_extra;

    let vm = VmId(1);
    let mut guest: LayerEngine<GuestLayer> = LayerEngine::new(4096, costs.clone());
    let mut host: LayerEngine<HostLayer> = LayerEngine::new(4096, costs);
    guest.register_vm(vm);
    host.register_vm(vm);
    let mut gp = gemini_policies::build(kind);
    let mut hp = gemini_policies::build(kind);

    let mut rng = DetRng::new(seed);
    for step in 0..3_000u64 {
        let frame = rng.below(6 * 512);
        let now = Cycles(step * 1_000);
        if guest
            .table(vm)
            .expect("vm registered")
            .translate(frame)
            .is_none()
        {
            let g = guest.fault(vm, frame, FaultSite::anonymous(), &mut *gp);
            let h = host.fault(vm, frame, FaultSite::anonymous(), &mut *hp);
            let (go, gfx) = g.expect("guest fault resolves");
            let (ho, hfx) = h.expect("host fault resolves");
            assert_eq!(go.size, ho.size, "fault page size at step {step}");
            assert_eq!(go.pa_frame, ho.pa_frame, "fault placement at step {step}");
            assert_eq!(norm_fx(gfx), norm_fx(hfx), "fault effects at step {step}");
        }
        guest.record_touch(vm, frame);
        host.record_touch(vm, frame);
        if step % 64 == 63 {
            let gfx = guest
                .run_daemon(vm, &mut *gp, now, 1)
                .expect("guest daemon");
            let hfx = host.run_daemon(vm, &mut *hp, now, 1).expect("host daemon");
            assert_eq!(norm_fx(gfx), norm_fx(hfx), "daemon effects at step {step}");
            let gt = guest.table(vm).expect("vm registered");
            let ht = host.table(vm).expect("vm registered");
            assert_eq!(gt.huge_mapped(), ht.huge_mapped(), "promotions at {step}");
            assert_eq!(gt.base_mapped(), ht.base_mapped(), "mappings at {step}");
        }
    }
    // Densely populate the first two regions so threshold-based policies
    // (Ingens' utilization gate) promote too, then give the daemons a
    // few more passes.
    for frame in 0..2 * 512 {
        if guest
            .table(vm)
            .expect("vm registered")
            .translate(frame)
            .is_none()
        {
            let g = guest.fault(vm, frame, FaultSite::anonymous(), &mut *gp);
            let h = host.fault(vm, frame, FaultSite::anonymous(), &mut *hp);
            assert_eq!(
                norm_fx(g.expect("guest fault resolves").1),
                norm_fx(h.expect("host fault resolves").1),
                "fill fault effects at frame {frame}"
            );
        }
        guest.record_touch(vm, frame);
        host.record_touch(vm, frame);
    }
    for pass in 0..4u64 {
        let now = Cycles(3_000_000 + pass * 1_000_000);
        let gfx = guest
            .run_daemon(vm, &mut *gp, now, 1)
            .expect("guest daemon");
        let hfx = host.run_daemon(vm, &mut *hp, now, 1).expect("host daemon");
        assert_eq!(
            norm_fx(gfx),
            norm_fx(hfx),
            "fill daemon effects, pass {pass}"
        );
    }
    assert!(
        guest.table(vm).expect("vm registered").huge_mapped() > 0,
        "trace must actually exercise promotions for {kind:?}"
    );
    assert_eq!(
        guest.fragmentation_index(),
        host.fragmentation_index(),
        "fragmentation indices diverged for {kind:?}"
    );
    assert_eq!(guest.buddy.used_frames(), host.buddy.used_frames());
}

#[test]
fn same_policy_is_identical_through_guest_and_host_engines() {
    assert_layer_parity(gemini_policies::PolicyKind::Thp, 0xA11CE);
    assert_layer_parity(gemini_policies::PolicyKind::Ingens, 0xB0B);
}

#[test]
fn fig3_grid_is_byte_identical_to_prerefactor_golden() {
    for jobs in [1, jobs_n()] {
        let (text, json) = motivation_artifacts(jobs);
        assert_golden("fig03_motivation.txt", &text);
        assert_golden("fig03_motivation.jsonl", &json);
    }
}

#[test]
fn fig8_grid_is_byte_identical_to_prerefactor_golden() {
    for jobs in [1, jobs_n()] {
        let (text, json) = clean_slate_artifacts(jobs);
        assert_golden("fig08_clean_slate.txt", &text);
        assert_golden("fig08_clean_slate.jsonl", &json);
    }
}

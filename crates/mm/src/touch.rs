//! Flat per-region touch counters.
//!
//! [`TouchMap`] replaces the `HashMap<u64, u64>` the engine used to keep
//! per (VM, 2 MiB region) sampled-access counts. Regions are dense small
//! integers (input frame `>> HUGE_PAGE_ORDER`), so a grow-on-demand
//! vector turns the per-access bump — one of the hottest writes in the
//! simulator — into a bounds-checked array increment with no hashing.

/// Sampled access counts per 2 MiB input region of one VM.
#[derive(Debug, Clone, Default)]
pub struct TouchMap {
    counts: Vec<u64>,
}

impl TouchMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The count for `region` (0 when never touched).
    #[inline]
    pub fn get(&self, region: u64) -> u64 {
        self.counts.get(region as usize).copied().unwrap_or(0)
    }

    /// Increments the count for `region`, growing the backing store to
    /// cover it.
    #[inline]
    pub fn bump(&mut self, region: u64) {
        let i = region as usize;
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
    }

    /// Forgets `region`'s count (used when its mapping is torn down).
    pub fn clear_region(&mut self, region: u64) {
        if let Some(c) = self.counts.get_mut(region as usize) {
            *c = 0;
        }
    }

    /// Iterates `(region, count)` pairs with non-zero counts, in region
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(r, &c)| (r as u64, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_get_and_clear() {
        let mut t = TouchMap::new();
        assert_eq!(t.get(7), 0);
        t.bump(7);
        t.bump(7);
        t.bump(2);
        assert_eq!(t.get(7), 2);
        assert_eq!(t.get(2), 1);
        assert_eq!(t.get(100), 0);
        t.clear_region(7);
        assert_eq!(t.get(7), 0);
        // Clearing an out-of-range region is a no-op.
        t.clear_region(10_000);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(2, 1)]);
    }
}

#!/usr/bin/env bash
# Repo CI gate: formatting, lints (warnings are errors), full test suite.
# Runs fully offline; the bench crate is a standalone workspace and is
# covered only when its registry dependencies are available.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace --offline -q

echo "== parallel determinism (GEMINI_JOBS=2) =="
# The determinism suite compares jobs=1 against jobs=4 by default; run it
# once more pinned to two workers so CI exercises a distinct jobs count.
GEMINI_JOBS=2 cargo test --offline -q -p gemini-harness --test parallel_determinism

echo "== layer parity + golden byte-identity (GEMINI_JOBS=2) =="
# Same policy through the guest and host LayerEngine instantiations, and
# the fig3/fig8 grids against their pre-refactor goldens, at two worker
# counts.
GEMINI_JOBS=2 cargo test --offline -q -p gemini-harness --test layer_parity

echo "== fast-forward + batching + sharding parity (GEMINI_JOBS=2) =="
# DESIGN.md §13 and §16: every registry scenario with fast-forward on
# vs off AND with hit-run batching on vs off, the reused-VM chain, the
# seed × workload sweep, the intra-cell sharded runner at jobs 1/2/4,
# the fleet lifecycle grid, and a recorded-trace replay through both
# batch settings — all must produce byte-identical RunResults. Pinned
# to two workers so the shard pool genuinely runs concurrent shards in
# CI.
GEMINI_JOBS=2 cargo test --offline -q -p gemini-harness --test ff_parity

echo "== VM lifecycle churn properties (GEMINI_JOBS=2) =="
# DESIGN.md §14: DetRng-seeded create/run/destroy interleavings — every
# departure leaves the buddy invariants (index == rescan) intact, a
# drained host is byte-identical to a fresh one, and the fleet driver's
# reclaimed-frame accounting matches the teardowns.
GEMINI_JOBS=2 cargo test --offline -q -p gemini-harness --test fleet_lifecycle

echo "== cargo doc (workspace, no-deps, -D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline -q

echo "== demo-scale timing (bench trajectory) =="
# Wall-clock of one demo-scale compare per jobs count. Parse the
# "timing:" lines into BENCH_*.json to track the executor's speedup.
BIN=target/release/gemini-sim
cargo build --release --offline -q -p gemini-harness --bin gemini-sim
for jobs in 1 0; do
    start=$(date +%s%N)
    "$BIN" compare --workload Redis --scale demo --fragmented --jobs "$jobs" \
        > /dev/null
    end=$(date +%s%N)
    echo "timing: demo compare jobs=$jobs wall_ms=$(( (end - start) / 1000000 ))"
done

echo "== end-to-end fast-path parity (gemini-sim parity, GEMINI_JOBS=2) =="
# The CLI parity mode runs the default (fast-forward + batching),
# --no-batch and --no-ff paths back-to-back and diffs the results — a
# user-facing smoke test on top of the ff_parity suite.
GEMINI_JOBS=2 "$BIN" parity --workload Redis --scale quick --fragmented --jobs 2 > /dev/null
echo "parity: default / --no-batch / --no-ff identical (registry + fleet hosts)"

echo "== fleet lifecycle smoke (demo scale, GEMINI_JOBS=2) =="
# The long-horizon arrival/departure scenario end to end: >= 100 VM
# lifecycles per system at demo scale, first-fit packed over four
# hosts, every VM torn down through the leak-checked remove_vm path.
GEMINI_JOBS=2 "$BIN" fleet --scale demo --jobs 2 > /dev/null
echo "fleet: demo-scale lifecycle grid drained leak-free"

echo "== record/replay smoke (quick scale, GEMINI_JOBS=2) =="
# DESIGN.md §15 end to end through the CLI: record a quick fragmented
# Redis run to a gemini-trace-v1 file, replay it through the same
# scenario, and require the two --json exports byte-identical. Both
# filenames match the ignored *.jsonl pattern, so nothing leaks into
# the tree.
GEMINI_JOBS=2 "$BIN" record --workload Redis --scale quick --fragmented \
    --trace trace_pr10_quick.jsonl --json record_pr10_quick.jsonl > /dev/null
GEMINI_JOBS=2 "$BIN" replay --trace trace_pr10_quick.jsonl --system GEMINI \
    --json replay_pr10_quick.jsonl > /dev/null 2> /dev/null
cmp record_pr10_quick.jsonl replay_pr10_quick.jsonl
rm -f trace_pr10_quick.jsonl record_pr10_quick.jsonl replay_pr10_quick.jsonl
echo "record/replay: replayed run byte-identical to the recorded one"

echo "== bench report + perf gate (quick scale, BENCH_pr10_quick.json) =="
# The full bench harness at quick scale: reference-cell speedup vs the
# recorded pre-PR-4 baseline, per-cell fig3 timings with phase
# breakdowns, the sharded reference leg, and a jobs sweep; then the
# perf-regression gate against the previous run's report. Warn-only:
# this demo container is single-threaded and noisy, so regressions are
# reported, not fatal — on a quiet benchmarking host drop --warn-only
# to make it a hard gate. The committed BENCH_pr*.json trajectory files
# (demo scale) are artifacts and are left untouched; the gate diffs the
# quick-scale report against its own previous self when one exists, and
# otherwise against the committed BENCH_pr7.json (demo scale — the
# absolute walls differ by design, so the first diff is informational).
# The report now carries the schema-additive fleet section (VM count,
# churn events, end-state FMFI); the diff matches cells by label, so
# comparing against pre-fleet reports stays valid.
if [ -f BENCH_pr10_quick.json ]; then
    mv BENCH_pr10_quick.json BENCH_prev_quick.json
    "$BIN" bench --scale quick --jobs 2 --json BENCH_pr10_quick.json \
        --profile trace_pr10.json --compare BENCH_prev_quick.json --warn-only
    rm -f BENCH_prev_quick.json
elif [ -f BENCH_pr9_quick.json ]; then
    "$BIN" bench --scale quick --jobs 2 --json BENCH_pr10_quick.json \
        --profile trace_pr10.json --compare BENCH_pr9_quick.json --warn-only
    rm -f BENCH_pr9_quick.json trace_pr9.json
else
    "$BIN" bench --scale quick --jobs 2 --json BENCH_pr10_quick.json \
        --profile trace_pr10.json --compare BENCH_pr9.json --warn-only
fi
echo "bench report written to BENCH_pr10_quick.json"

# The committed demo-scale BENCH_pr10.json is regenerated out-of-band:
#   gemini-sim bench --scale demo --jobs 2 --json BENCH_pr10.json \
#       --compare BENCH_pr9.json --warn-only
# On a quiet host, add --pr9-wall-ms <MS> with the reference-cell wall
# of a same-host previous-PR rebuild (git worktree at that tip),
# measured interleaved with the current binary in one window — see
# DESIGN.md §13 on host drift.

echo "== profile smoke check (trace_pr10.json) =="
# The Perfetto trace must exist, be non-empty, look like a
# Chrome-trace-event document, and carry the batch counter tracks.
test -s trace_pr10.json
grep -q '"traceEvents"' trace_pr10.json
grep -q '"tlb.batched_hits"' trace_pr10.json
echo "trace written to trace_pr10.json ($(wc -c < trace_pr10.json) bytes)"

echo "CI gate passed."

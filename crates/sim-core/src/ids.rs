//! Identifiers for simulated virtual machines and guest processes.

use core::fmt;

/// Identifier of a virtual machine on the simulated host.
///
/// The misaligned-huge-page scanner (MHPS) labels every huge page it finds
/// with the VM the page belongs to, so that guest physical addresses from
/// different VMs are never confused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub u32);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Identifier of a process inside a guest OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_and_order() {
        assert_eq!(VmId(3).to_string(), "vm3");
        assert_eq!(ProcessId(7).to_string(), "pid7");
        assert!(VmId(1) < VmId(2));
    }
}

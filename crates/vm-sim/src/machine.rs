//! [`Machine`] — the simulated host with its VMs.

use crate::result::{FleetOutcome, FleetVmRecord, RunResult};
use crate::system::{ScenarioSpec, SystemKind};
use gemini::{GeminiRuntime, GeminiShared};
use gemini_mm::{alignment_stats, CostModel, Effects, GuestMm, HostMm, HugePolicy, VmaId};
use gemini_obs::{cat, EventKind, Layer, Phase, Profiler, Recorder, SamplePoint, TraceConfig};
use gemini_sim_core::page::PageSize;
use gemini_sim_core::stats::LatencySamples;
use gemini_sim_core::{Cycles, DetRng, FxHashMap, Result, SimError, VmId, HUGE_PAGE_ORDER};
use gemini_tlb::{BatchStats, MmuConfig, MmuSim, PerfCounters, ResolvedTranslation};
use gemini_workloads::{touch_run_len, EventStream, WorkloadEvent};
use std::collections::BTreeMap;

/// Configuration of the simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Host physical memory in base frames.
    pub host_frames: u64,
    /// Guest physical memory per VM, in base frames.
    pub vm_frames: u64,
    /// vCPUs per VM (scales shootdown costs and reported throughput).
    pub vcpus: u32,
    /// MMU/TLB geometry.
    pub mmu: MmuConfig,
    /// Memory-management operation costs.
    pub costs: CostModel,
    /// Fragment guest memory to this FMFI before the run.
    pub fragment_guest: Option<f64>,
    /// Fragment host memory to this FMFI before the run.
    pub fragment_host: Option<f64>,
    /// The workload keeps many zero pages in use (HawkEye's dedup).
    pub zero_heavy: bool,
    /// Run seed (workload streams fork from it).
    pub seed: u64,
    /// Record a policy touch sample every N accesses.
    pub touch_sample: u32,
    /// Cycles per data access beyond translation. The default models the
    /// average DRAM/LLC cost of a random access to a big working set —
    /// translation overhead is measured *relative* to this, so small
    /// datasets show no separation (Figure 2's left side).
    pub data_access_cycles: u64,
    /// Compaction (kcompactd) period.
    pub compact_period: Cycles,
    /// Frames the compactor migrates per pass.
    pub compact_budget: usize,
    /// Tenant-churn period (active only with fragmentation; models the
    /// multi-tenant cloud that keeps memory fragmented).
    pub tenant_period: Cycles,
    /// Free runs the tenant breaks per churn step.
    pub tenant_breaks: usize,
    /// How long tenant intrusions are held before release.
    pub tenant_hold: Cycles,
    /// Freeze Algorithm 1 and pin the booking timeout (ablation).
    pub fixed_booking_timeout: Option<Cycles>,
    /// Override the Gemini per-layer configuration (ablations).
    pub gemini_override: Option<gemini::policy::GeminiConfig>,
    /// Event tracing, metrics and time-series sampling (off by default;
    /// the off recorder costs one atomic-free flag check per call site).
    pub trace: TraceConfig,
    /// Wall-clock span profiler threaded through the machine and both
    /// memory managers (off by default; the off profiler costs one
    /// branch per span site). Cloned configs share the same profiler
    /// state, so a machine built from this config records into the
    /// caller's handle.
    pub profiler: Profiler,
    /// Disables the fast-forward core (the `--no-ff` escape hatch):
    /// every event steps through the faithful per-event path and a
    /// daemon pass runs after every batch, even when provably a no-op.
    /// Simulated results are byte-identical either way — fast-forward
    /// only elides work it can prove has no effect — so this exists for
    /// parity checks and debugging, not correctness.
    pub no_ff: bool,
    /// Disables closed-form hit-run batching (the `--no-batch` escape
    /// hatch): every access in a hit-only run steps through the faithful
    /// TLB probe path instead of being advanced in closed form
    /// (DESIGN.md §16). Like `no_ff`, results are byte-identical either
    /// way — the batch path only elides per-access work the
    /// deferred-stamp invariant proves is a no-op — so this exists for
    /// parity checks, A/B timing and debugging.
    pub no_batch: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            // 1 GiB host, 512 MiB VM: enough headroom over the largest
            // scaled working sets, small enough for fast runs.
            host_frames: 1 << 18,
            vm_frames: 1 << 17,
            vcpus: 1,
            mmu: MmuConfig::default(),
            costs: CostModel::default(),
            fragment_guest: None,
            fragment_host: None,
            zero_heavy: false,
            seed: 0xC0FFEE,
            touch_sample: 16,
            data_access_cycles: 120,
            compact_period: Cycles::from_millis(5.0),
            compact_budget: 48,
            tenant_period: Cycles::from_millis(5.0),
            tenant_breaks: 1,
            tenant_hold: Cycles::from_millis(20.0),
            fixed_booking_timeout: None,
            gemini_override: None,
            trace: TraceConfig::off(),
            profiler: Profiler::off(),
            no_ff: false,
            no_batch: false,
        }
    }
}

/// Per-VM simulator state.
struct VmState {
    guest: GuestMm,
    policy: Box<dyn HugePolicy>,
    mmu: MmuSim,
    clock: Cycles,
    chunks: FxHashMap<usize, VmaId>,
    next_guest_daemon: Cycles,
    next_host_daemon: Cycles,
    next_compact: Cycles,
    compactor: gemini_mm::Compactor,
    tenant: Option<gemini_mm::TenantChurn>,
    next_tenant: Cycles,
    access_count: u64,
}

/// One planned VM waiting in a fleet host's admission queue
/// ([`Machine::run_fleet`]).
pub struct FleetArrival<S> {
    /// Fleet-wide arrival ordinal (carried into the outcome record).
    pub index: u32,
    /// Planned host-frame footprint charged against the residency cap.
    pub footprint_frames: u64,
    /// The VM's whole-lifetime workload event stream.
    pub gen: S,
}

/// Per-run foreground context (latency accumulation).
struct RunCtx {
    latencies: LatencySamples,
    req_acc: Cycles,
    track_latency: bool,
    counters_at_start: PerfCounters,
    clock_at_start: Cycles,
    ops: u64,
}

/// The simulated machine: one host, one or more VMs, one system under
/// test.
pub struct Machine {
    /// Scenario under test (the registry entry, or a custom pairing).
    scenario: ScenarioSpec,
    cfg: MachineConfig,
    host: HostMm,
    host_policy: Box<dyn HugePolicy>,
    host_compactor: gemini_mm::Compactor,
    next_host_compact: Cycles,
    host_tenant: Option<gemini_mm::TenantChurn>,
    next_host_tenant: Cycles,
    vms: BTreeMap<VmId, VmState>,
    shared: Option<GeminiShared>,
    runtime: Option<GeminiRuntime>,
    next_vm_id: u32,
    rng: DetRng,
    recorder: Recorder,
    prof: Profiler,
}

impl Machine {
    /// Builds a machine running `system` (its registry scenario).
    pub fn new(system: SystemKind, cfg: MachineConfig) -> Self {
        Self::from_scenario(system.spec().clone(), cfg)
    }

    /// Builds a machine running an arbitrary [`ScenarioSpec`] — any
    /// (guest, host) policy pairing, registered or not.
    pub fn from_scenario(scenario: ScenarioSpec, cfg: MachineConfig) -> Self {
        let prof = cfg.profiler.clone();
        let _setup = prof.span(Phase::Setup);
        let shared = scenario.is_gemini().then(gemini::shared::new_shared);
        let mut runtime = shared.as_ref().and_then(|s| scenario.runtime(s));
        if let (Some(shared), Some(t)) = (&shared, cfg.fixed_booking_timeout) {
            shared.write().booking_timeout = t;
            if let Some(rt) = &mut runtime {
                rt.adaptive = false;
            }
        }
        let mut host = HostMm::new(cfg.host_frames, cfg.costs.clone());
        let mut rng = DetRng::new(cfg.seed);
        let mut host_pins = Vec::new();
        let mut host_tenant = None;
        if let Some(target) = cfg.fragment_host {
            let mut frag_rng = rng.fork();
            host_pins = gemini_mm::fragment_to(&mut host.buddy, target, 0.12, &mut frag_rng);
            host_tenant = Some(gemini_mm::TenantChurn::new(rng.fork()));
        }
        let mut host_policy: Box<dyn HugePolicy> =
            match (scenario.is_gemini(), &cfg.gemini_override, &shared) {
                (true, Some(ov), Some(s)) => Box::new(gemini::GeminiPolicy::new(
                    gemini_mm::LayerKind::Host,
                    s.clone(),
                    ov.clone(),
                )),
                _ => scenario.host_policy(shared.as_ref()),
            };
        let recorder = Recorder::new(&cfg.trace);
        host_policy.attach_recorder(recorder.clone());
        host_policy.attach_profiler(prof.clone());
        host.set_recorder(recorder.clone());
        host.set_profiler(prof.clone());
        if let Some(rt) = &mut runtime {
            rt.set_recorder(recorder.clone());
            rt.set_profiler(prof.clone());
        }
        Self {
            scenario,
            cfg,
            host,
            host_policy,
            host_compactor: gemini_mm::Compactor::new(host_pins),
            next_host_compact: Cycles::ZERO,
            host_tenant,
            next_host_tenant: Cycles::ZERO,
            vms: BTreeMap::new(),
            shared,
            runtime,
            next_vm_id: 1,
            rng,
            recorder,
            prof,
        }
    }

    /// The machine's recorder: its event ring, metrics registry and
    /// sampled time series accumulate across every run on this machine.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The scenario this machine runs.
    pub fn scenario(&self) -> &ScenarioSpec {
        &self.scenario
    }

    /// Read access to the host memory manager — lifecycle property
    /// tests check buddy invariants and free-frame accounting across
    /// create/destroy churn from outside the crate.
    pub fn host_mm(&self) -> &gemini_mm::HostMm {
        &self.host
    }

    /// The machine's span profiler (phase-level wall-clock
    /// attribution; the off profiler unless the config supplied one).
    pub fn profiler(&self) -> &Profiler {
        &self.prof
    }

    /// Re-points the machine (and every component it already built) at
    /// `prof`. The sharded runner builds a machine on a worker thread
    /// under a forked profiler, then hands it back to the coordinating
    /// thread; the fork is merged and retired at the shard boundary, so
    /// the run phase must record onto the coordinator's profiler — a
    /// span on the retired fork would be silently dropped.
    pub fn set_profiler(&mut self, prof: Profiler) {
        self.host_policy.attach_profiler(prof.clone());
        self.host.set_profiler(prof.clone());
        if let Some(rt) = &mut self.runtime {
            rt.set_profiler(prof.clone());
        }
        for vs in self.vms.values_mut() {
            vs.policy.attach_profiler(prof.clone());
            vs.guest.set_profiler(prof.clone());
        }
        self.prof = prof;
    }

    /// Adds a VM and returns its id.
    ///
    /// Fails when the configured MMU geometry is invalid
    /// ([`SimError::BadCacheGeometry`]).
    pub fn add_vm(&mut self) -> Result<VmId> {
        let _setup = self.prof.span(Phase::Setup);
        let vm = VmId(self.next_vm_id);
        self.next_vm_id += 1;
        self.host.register_vm(vm);
        let mut guest = GuestMm::new(vm, self.cfg.vm_frames, self.cfg.costs.clone());
        let mut guest_pins = Vec::new();
        let mut tenant = None;
        if let Some(target) = self.cfg.fragment_guest {
            let mut frag_rng = self.rng.fork();
            guest_pins = gemini_mm::fragment_to(guest.buddy_mut(), target, 0.12, &mut frag_rng);
            tenant = Some(gemini_mm::TenantChurn::new(self.rng.fork()));
        }
        let mut policy: Box<dyn HugePolicy> = match (
            self.scenario.is_gemini(),
            &self.cfg.gemini_override,
            &self.shared,
        ) {
            (true, Some(ov), Some(s)) => Box::new(gemini::GeminiPolicy::new(
                gemini_mm::LayerKind::Guest,
                s.clone(),
                ov.clone(),
            )),
            _ => self
                .scenario
                .guest_policy(self.cfg.zero_heavy, self.shared.as_ref()),
        };
        policy.attach_recorder(self.recorder.clone());
        policy.attach_profiler(self.prof.clone());
        guest.set_recorder(self.recorder.clone());
        guest.set_profiler(self.prof.clone());
        let mut mmu = MmuSim::new(self.cfg.mmu.clone())?;
        mmu.set_recorder(self.recorder.clone(), vm.0);
        self.vms.insert(
            vm,
            VmState {
                guest,
                policy,
                mmu,
                clock: Cycles::ZERO,
                chunks: FxHashMap::default(),
                next_guest_daemon: Cycles::ZERO,
                next_host_daemon: Cycles::ZERO,
                next_compact: Cycles::ZERO,
                compactor: gemini_mm::Compactor::new(guest_pins),
                tenant,
                next_tenant: Cycles::ZERO,
                access_count: 0,
            },
        );
        Ok(vm)
    }

    /// Read access to a VM's guest page table (metrics, tests).
    pub fn guest_table(&self, vm: VmId) -> &gemini_page_table::AddressSpace {
        self.vms[&vm].guest.table()
    }

    /// Read access to a VM's EPT (metrics, tests).
    pub fn ept(&self, vm: VmId) -> Result<&gemini_page_table::AddressSpace> {
        self.host.ept(vm)
    }

    /// Current virtual time of a VM.
    pub fn vm_clock(&self, vm: VmId) -> Cycles {
        self.vms[&vm].clock
    }

    /// The MMU counters of a VM.
    pub fn counters(&self, vm: VmId) -> PerfCounters {
        *self.vms[&vm].mmu.counters()
    }

    /// Closed-form batching statistics summed over all live VMs.
    ///
    /// Not part of [`RunResult`] on purpose: the batched and `--no-batch`
    /// legs must stay byte-identical on every compared surface, and these
    /// numbers describe the fast path itself (see
    /// [`gemini_tlb::BatchStats`]).
    pub fn batch_stats(&self) -> BatchStats {
        self.vms.values().fold(BatchStats::default(), |acc, vs| {
            acc.merged(vs.mmu.batch_stats())
        })
    }

    /// Diagnostic one-liners from the guest and host policies.
    pub fn policy_debug(&self, vm: VmId) -> (String, String) {
        (
            self.vms[&vm].policy.debug_stats(),
            self.host_policy.debug_stats(),
        )
    }

    /// Runs a whole workload to completion in `vm`.
    ///
    /// Accepts any [`EventStream`] — a live
    /// [`gemini_workloads::WorkloadGen`] or a pre-generated
    /// [`gemini_workloads::PregenStream`]; generation is
    /// machine-state-independent, so both drive identical trajectories.
    pub fn run<S: EventStream>(&mut self, vm: VmId, mut gen: S) -> Result<RunResult> {
        let mut ctx = RunCtx {
            latencies: LatencySamples::new(),
            req_acc: Cycles::ZERO,
            track_latency: gen.spec().latency_tracked,
            counters_at_start: self.counters(vm),
            clock_at_start: self.vm_clock(vm),
            ops: 0,
        };
        let workload = gen.spec().name.to_string();
        // Events are pulled in batches of 64 so the WorkloadGen /
        // Access span pair amortizes over a whole batch instead of
        // costing two clock reads per event. The generator stream is
        // independent of machine state, so prefetching is invisible;
        // the daemon cadence (one pass per 64 processed events, plus a
        // final pass) is exactly the pre-batching behaviour.
        const DAEMON_EVERY: usize = 64;
        if self.cfg.no_ff {
            // Faithful stepping: one batch per span pair, one daemon
            // pass per full batch, every event through the slow path.
            let mut batch: Vec<WorkloadEvent> = Vec::with_capacity(DAEMON_EVERY);
            loop {
                {
                    let _gen_span = self.prof.span(Phase::WorkloadGen);
                    while batch.len() < DAEMON_EVERY {
                        match gen.next_event() {
                            Some(ev) => batch.push(ev),
                            None => break,
                        }
                    }
                }
                if batch.is_empty() {
                    break;
                }
                let full = batch.len() == DAEMON_EVERY;
                {
                    let _access = self.prof.span(Phase::Access);
                    for ev in batch.drain(..) {
                        self.process_event(vm, ev, &mut ctx)?;
                    }
                }
                if full {
                    self.run_daemons(vm)?;
                }
            }
        } else {
            // Fast-forward: a daemon pass before the earliest period
            // deadline is a provable no-op — every piece of background
            // work sits behind a `now >= next_*` guard, the Gemini
            // runtime exposes its own next deadline, and the sampler's
            // next-due cycle is `u64::MAX` when sampling is off.
            // `next_wakeup` caches that minimum so quiescent stretches
            // skip the pass (and its telemetry gather) entirely; the
            // pass that eventually runs sees exactly the state the
            // faithful schedule would have produced, at the same
            // virtual time. Daemon-pass *eligibility* still falls on
            // the same 64-event boundaries as the faithful loop, so a
            // due pass runs at the identical point in the event stream;
            // events are merely pulled (and spans opened) in larger
            // strides to amortize the per-batch overhead.
            const PULL: usize = DAEMON_EVERY * 16;
            let mut buf: Vec<WorkloadEvent> = Vec::with_capacity(PULL);
            let mut next_wakeup = Cycles::ZERO;
            loop {
                {
                    let _gen_span = self.prof.span(Phase::WorkloadGen);
                    while buf.len() < PULL {
                        match gen.next_event() {
                            Some(ev) => buf.push(ev),
                            None => break,
                        }
                    }
                }
                if buf.is_empty() {
                    break;
                }
                let _access = self.prof.span(Phase::Access);
                let mut start = 0;
                while start < buf.len() {
                    let end = (start + DAEMON_EVERY).min(buf.len());
                    self.process_chunk(vm, &buf[start..end], &mut ctx)?;
                    if end - start == DAEMON_EVERY && self.vms[&vm].clock >= next_wakeup {
                        self.run_daemons(vm)?;
                        next_wakeup = self.next_daemon_wakeup(vm);
                    }
                    start = end;
                }
                buf.clear();
            }
        }
        self.run_daemons(vm)?;
        self.finish(vm, workload, ctx)
    }

    /// The earliest future cycle at which [`Self::run_daemons`] has due
    /// work for `vm`. A pass before this instant cannot change any
    /// simulated state: daemons, compaction, tenant churn, the Gemini
    /// runtime and the sampler are all period-gated, and none of their
    /// deadlines can move except inside a pass that executed due work.
    fn next_daemon_wakeup(&self, vm: VmId) -> Cycles {
        let vs = &self.vms[&vm];
        let mut d = vs
            .next_guest_daemon
            .min(vs.next_host_daemon)
            .min(vs.next_compact)
            .min(vs.next_tenant)
            .min(self.next_host_compact)
            .min(self.next_host_tenant);
        if let Some(rt) = &self.runtime {
            d = d.min(rt.next_deadline());
        }
        d.min(self.recorder.next_sample_at())
    }

    /// Steps one 64-event chunk, running stretches of already-resident
    /// touches through a tight loop. The loop performs exactly the
    /// faithful per-event work — translate both layers, charge the MMU
    /// model, advance the clock and access count — but hoists the VM
    /// and EPT lookups out of the per-event path. Any event it cannot
    /// prove fault-free and telemetry-free (a missing translation, a
    /// sampled touch, an alloc/free/end-of-request) falls back to
    /// [`Self::process_event`], so the state trajectory is identical to
    /// the unbatched path.
    fn process_chunk(
        &mut self,
        vm: VmId,
        events: &[WorkloadEvent],
        ctx: &mut RunCtx,
    ) -> Result<()> {
        let touch_sample = self.cfg.touch_sample as u64;
        let data_access = Cycles(self.cfg.data_access_cycles);
        let no_batch = self.cfg.no_batch;
        // Chunk-handle → VMA start-frame memo: valid while no slow-path
        // event runs (only events and daemons move VMAs, and neither
        // happens inside the tight loop below).
        let mut memo: Option<(usize, u64)> = None;
        let mut i = 0;
        while i < events.len() {
            {
                let vs = self.vms.get_mut(&vm).ok_or(SimError::UnknownVm(vm))?;
                let ept = self.host.ept(vm)?;
                // Touches left before the next sampled one (which needs
                // the memory managers mutably — the slow path). One
                // division here instead of one per event.
                let mut until_sample =
                    (touch_sample - (vs.access_count + 1) % touch_sample) % touch_sample;
                // Accumulate cost and count locally so the loop keeps them
                // in registers; nothing reads the clock mid-stretch.
                let mut acc = Cycles::ZERO;
                let mut touched = 0u64;
                while let Some(&WorkloadEvent::Touch { chunk, page }) = events.get(i) {
                    if until_sample == 0 {
                        break;
                    }
                    let start_frame = match memo {
                        Some((c, s)) if c == chunk => s,
                        _ => {
                            let Some(&id) = vs.chunks.get(&chunk) else {
                                break;
                            };
                            let Some(vma) = vs.guest.vmas.get(id) else {
                                break;
                            };
                            let s = vma.start_frame();
                            memo = Some((chunk, s));
                            s
                        }
                    };
                    let gva_frame = start_frame + page;
                    // TLB hits need no page-table resolution at all; only
                    // an STLB miss (or a fault) walks the two layers.
                    let out = match vs.mmu.access_unresolved(vm, gva_frame) {
                        Some(out) => out,
                        None => {
                            let Some(gt) = vs.guest.translate(gva_frame) else {
                                break; // Guest fault.
                            };
                            let Some(ht) = ept.translate(gt.pa_frame) else {
                                break; // EPT fault.
                            };
                            vs.mmu.access_after_tlb_miss(
                                vm,
                                gva_frame,
                                ResolvedTranslation {
                                    gpa_frame: gt.pa_frame,
                                    guest_leaf: gt.size,
                                    host_leaf: ht.size,
                                },
                            )
                        }
                    };
                    acc += out.cycles + data_access;
                    touched += 1;
                    until_sample -= 1;
                    i += 1;
                    // Closed-form hit-run batching (DESIGN.md §16): the
                    // access above left this translation L1-resident and
                    // holding the newest stamp, so immediately following
                    // touches that provably resolve to the same entry —
                    // same chunk, same page for a 4 KiB entry, same
                    // 2 MiB region for a huge entry — are pure hits
                    // whose only faithful effects are the counter, cost
                    // and clock updates. Advance those in closed form
                    // without re-probing the set arrays. The lookahead
                    // is capped one past the sampled-touch deadline (the
                    // overhang only detects deadline truncation), and
                    // the 64-event chunk boundary — where daemon
                    // deadlines are re-checked — bounds `events`.
                    if !no_batch && until_sample > 1 {
                        let window = &events[i..(i + until_sample as usize + 1).min(events.len())];
                        let run = if out.huge_entry {
                            let region = gva_frame >> HUGE_PAGE_ORDER;
                            touch_run_len(window, chunk, |p| {
                                (start_frame + p) >> HUGE_PAGE_ORDER == region
                            })
                        } else {
                            touch_run_len(window, chunk, |p| start_frame + p == gva_frame)
                        } as u64;
                        let n = run.min(until_sample);
                        // A length-1 "run" saves nothing: the faithful
                        // loop resolves it in one L1 probe, so the
                        // closed form would be pure bookkeeping
                        // overhead. Only runs that elide at least two
                        // per-access round-trips take the fast path
                        // (byte-identical either way — the threshold
                        // only moves wall-clock).
                        if n >= 2 {
                            // Read the epoch only once a qualifying run
                            // exists: nothing between the faithful
                            // access above and the advance below can
                            // mutate the MMU, so the guard stays sound
                            // while the common no-run case skips the
                            // call entirely.
                            let epoch = vs.mmu.stability_epoch();
                            let _batch = self.prof.span(Phase::BatchedAccess);
                            if let Some(cost) =
                                vs.mmu
                                    .advance_batched_hits(vm, gva_frame, out.huge_entry, n, epoch)
                            {
                                acc += cost + Cycles(n * data_access.0);
                                touched += n;
                                until_sample -= n;
                                i += n as usize;
                                if run > n {
                                    // The run was cut by the sampling
                                    // deadline, not by the stream: the
                                    // next touch takes the slow path.
                                    vs.mmu.note_batch_break();
                                }
                            }
                        }
                    }
                }
                vs.clock += acc;
                ctx.req_acc += acc;
                vs.access_count += touched;
            }
            let Some(&ev) = events.get(i) else {
                break;
            };
            self.process_event(vm, ev, ctx)?;
            // The event may have moved or freed VMAs.
            memo = None;
            i += 1;
        }
        Ok(())
    }

    /// Runs several workloads concurrently, one per VM, interleaved by
    /// virtual time (the collocation experiments, Figures 17–18).
    pub fn run_collocated<S: EventStream>(
        &mut self,
        mut runs: Vec<(VmId, S)>,
    ) -> Result<Vec<RunResult>> {
        let mut ctxs: Vec<RunCtx> = runs
            .iter()
            .map(|(vm, gen)| RunCtx {
                latencies: LatencySamples::new(),
                req_acc: Cycles::ZERO,
                track_latency: gen.spec().latency_tracked,
                counters_at_start: self.counters(*vm),
                clock_at_start: self.vm_clock(*vm),
                ops: 0,
            })
            .collect();
        let mut finished = vec![false; runs.len()];
        while finished.iter().any(|f| !f) {
            // Advance the unfinished VM with the smallest clock by one op.
            let idx = runs
                .iter()
                .enumerate()
                .filter(|(i, _)| !finished[*i])
                .min_by_key(|(_, (vm, _))| self.vms[vm].clock)
                .map(|(i, _)| i)
                .expect("some run unfinished");
            let (vm, gen) = &mut runs[idx];
            let vm = *vm;
            loop {
                match gen.next_event() {
                    None => {
                        finished[idx] = true;
                        break;
                    }
                    Some(ev) => {
                        let is_end = matches!(ev, WorkloadEvent::EndRequest { .. });
                        self.process_event(vm, ev, &mut ctxs[idx])?;
                        if is_end {
                            break;
                        }
                    }
                }
            }
            self.run_daemons(vm)?;
        }
        let mut results = Vec::new();
        for ((vm, gen), ctx) in runs.into_iter().zip(ctxs) {
            let name = gen.spec().name.to_string();
            results.push(self.finish(vm, name, ctx)?);
        }
        Ok(results)
    }

    /// Drives this host through a whole fleet arrival/departure process.
    ///
    /// `arrivals` is the host's planned admission queue, in arrival
    /// order. The head of the queue is admitted whenever its planned
    /// footprint fits under `resident_cap_frames` alongside the VMs
    /// already resident (head-of-line blocking keeps admission a pure
    /// function of the queue, independent of map iteration order); a VM
    /// that does not even fit an empty host is admitted alone. Resident
    /// VMs interleave by virtual time exactly like
    /// [`Self::run_collocated`]; when a VM's event stream ends it is
    /// finished and destroyed through [`Self::remove_vm`] — leak check
    /// included — and its capacity is handed to the queue.
    ///
    /// Background daemons keep the fast-forward contract: each resident
    /// VM caches its next daemon wakeup, the cache is recomputed after
    /// every pass, and membership changes reset it (new VMs start due).
    /// Under `no_ff` a pass runs after every request; both modes are
    /// byte-identical because skipped passes are provably no-ops.
    pub fn run_fleet<S: EventStream>(
        &mut self,
        arrivals: Vec<FleetArrival<S>>,
        resident_cap_frames: u64,
    ) -> Result<FleetOutcome> {
        struct Live<S> {
            index: u32,
            vm: VmId,
            footprint: u64,
            gen: S,
            ctx: RunCtx,
            wakeup: Cycles,
        }
        let mut pending: std::collections::VecDeque<FleetArrival<S>> = arrivals.into();
        let mut live: Vec<Live<S>> = Vec::new();
        let mut resident_frames = 0u64;
        let mut vms = Vec::new();
        let mut churn_events = 0u64;
        let mut peak_resident = 0usize;
        // The fleet's notion of "now": the clock of the VM that last
        // made progress. Newly admitted VMs start here so they
        // interleave with the residents instead of replaying the past.
        let mut fleet_now = Cycles::ZERO;
        loop {
            while let Some(head) = pending.front() {
                if !live.is_empty() && resident_frames + head.footprint_frames > resident_cap_frames
                {
                    break;
                }
                let a = pending.pop_front().expect("front was Some");
                let vm = self.add_vm()?;
                let vs = self.vms.get_mut(&vm).expect("just added");
                vs.clock = fleet_now;
                resident_frames += a.footprint_frames;
                churn_events += 1;
                let ctx = RunCtx {
                    latencies: LatencySamples::new(),
                    req_acc: Cycles::ZERO,
                    track_latency: a.gen.spec().latency_tracked,
                    counters_at_start: self.counters(vm),
                    clock_at_start: fleet_now,
                    ops: 0,
                };
                live.push(Live {
                    index: a.index,
                    vm,
                    footprint: a.footprint_frames,
                    gen: a.gen,
                    ctx,
                    wakeup: Cycles::ZERO,
                });
                peak_resident = peak_resident.max(live.len());
            }
            if live.is_empty() {
                break;
            }
            // Advance the resident VM with the smallest clock by one
            // request (ties break on arrival order).
            let idx = live
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| (self.vms[&l.vm].clock, l.index))
                .map(|(i, _)| i)
                .expect("live not empty");
            let l = &mut live[idx];
            let vm = l.vm;
            let mut done = false;
            loop {
                match l.gen.next_event() {
                    None => {
                        done = true;
                        break;
                    }
                    Some(ev) => {
                        let is_end = matches!(ev, WorkloadEvent::EndRequest { .. });
                        self.process_event(vm, ev, &mut l.ctx)?;
                        if is_end {
                            break;
                        }
                    }
                }
            }
            if self.cfg.no_ff || self.vms[&vm].clock >= live[idx].wakeup {
                self.run_daemons(vm)?;
                live[idx].wakeup = self.next_daemon_wakeup(vm);
            }
            fleet_now = self.vms[&vm].clock;
            if done {
                let l = live.remove(idx);
                let name = l.gen.spec().name.to_string();
                let result = self.finish(l.vm, name, l.ctx)?;
                let frames_reclaimed = self.remove_vm(l.vm)?;
                resident_frames -= l.footprint;
                churn_events += 1;
                vms.push(FleetVmRecord {
                    index: l.index,
                    result,
                    frames_reclaimed,
                });
            }
        }
        Ok(FleetOutcome {
            vms,
            churn_events,
            peak_resident,
            end_host_fmfi: self.host.fragmentation_index(),
            end_free_order9: self.host.buddy.free_blocks_of_order(HUGE_PAGE_ORDER) as u64,
        })
    }

    /// Unmaps every chunk a previous run left in `vm` (the reused-VM
    /// scenario: the workload exits, the VM and its EPT state persist).
    pub fn clear_workload(&mut self, vm: VmId) -> Result<()> {
        let vs = self.vms.get_mut(&vm).ok_or(SimError::UnknownVm(vm))?;
        // Sorted so teardown order is a function of the VMA ids, never
        // of FxHash iteration order — lifecycle parity must not couple
        // to map internals.
        let mut ids: Vec<VmaId> = vs.chunks.drain().map(|(_, id)| id).collect();
        ids.sort_unstable();
        for id in ids {
            let now = vs.clock;
            let fx = vs.guest.munmap(id, vs.policy.as_mut(), now)?;
            Self::apply_fx(vm, vs, fx, &self.prof);
        }
        Ok(())
    }

    /// Destroys `vm` end to end and returns the number of host
    /// base-page-equivalent frames reclaimed.
    ///
    /// The teardown unwinds every layer the VM touched: guest VMAs go
    /// through the same `munmap` path a workload exit takes (so guest
    /// policy bookkeeping stays consistent), the EPT is torn down with
    /// every host frame returned to the machine allocator through one
    /// free-run-index bulk update, the VM's TLB slab and host `TouchMap`
    /// slot are dropped, and — under Gemini — its per-VM scan is retired
    /// from the shared runtime state. Callers that cache a daemon wakeup
    /// deadline (the fleet driver) must recompute it after membership
    /// changes.
    ///
    /// Every teardown runs an explicit leak check: the frames the EPT
    /// held must exactly match what the allocator got back, and the
    /// buddy's full invariants (free-frame accounting, block layout,
    /// index == rescan) must hold afterwards.
    pub fn remove_vm(&mut self, vm: VmId) -> Result<u64> {
        let _setup = self.prof.span(Phase::Setup);
        self.clear_workload(vm)?;
        // Unwind any VMAs a test or driver mapped outside the chunk
        // table, so the guest side is fully empty before EPT teardown.
        {
            let vs = self.vms.get_mut(&vm).ok_or(SimError::UnknownVm(vm))?;
            let mut ids: Vec<VmaId> = vs.guest.vmas.iter().map(|v| v.id).collect();
            ids.sort_unstable();
            for id in ids {
                let now = vs.clock;
                let fx = vs.guest.munmap(id, vs.policy.as_mut(), now)?;
                Self::apply_fx(vm, vs, fx, &self.prof);
            }
        }
        let free_before = self.host.buddy.free_frames();
        let ept_backed = self.host.ept(vm)?.mapped_base_page_equiv();
        let freed = self.host.unregister_vm(vm)?;
        if freed != ept_backed {
            return Err(SimError::Invariant("remove_vm freed != EPT-backed frames"));
        }
        if self.host.buddy.free_frames() != free_before + freed {
            return Err(SimError::Invariant("remove_vm leaked host frames"));
        }
        self.host.buddy.check_invariants()?;
        // Dropping the VmState releases the guest manager, its policy
        // and the VM's entire MMU/TLB slab in one structural move.
        self.vms.remove(&vm);
        if let Some(shared) = &self.shared {
            shared.write().scans.remove(&vm);
        }
        self.recorder.counter_add("machine.vms_removed", 1);
        Ok(freed)
    }

    fn process_event(&mut self, vm: VmId, ev: WorkloadEvent, ctx: &mut RunCtx) -> Result<()> {
        let vs = self.vms.get_mut(&vm).ok_or(SimError::UnknownVm(vm))?;
        // Stamp once per event: everything emitted while handling it
        // (policy decisions included) carries the entry clock.
        self.recorder.set_cycle(vs.clock);
        match ev {
            WorkloadEvent::Alloc { chunk, bytes } => {
                let vma = vs.guest.mmap(bytes)?;
                vs.chunks.insert(chunk, vma.id);
                let cost = Cycles(1_200);
                vs.clock += cost;
                ctx.req_acc += cost;
            }
            WorkloadEvent::Free { chunk } => {
                let id = vs
                    .chunks
                    .remove(&chunk)
                    .ok_or(SimError::Invariant("free of unknown chunk"))?;
                let now = vs.clock;
                let fx = vs.guest.munmap(id, vs.policy.as_mut(), now)?;
                let cost = Self::apply_fx(vm, vs, fx, &self.prof);
                ctx.req_acc += cost;
            }
            WorkloadEvent::Touch { chunk, page } => {
                let id = *vs
                    .chunks
                    .get(&chunk)
                    .ok_or(SimError::Invariant("touch of unknown chunk"))?;
                let vma = vs
                    .guest
                    .vmas
                    .get(id)
                    .ok_or(SimError::Invariant("chunk VMA vanished"))?;
                let gva_frame = vma.start_frame() + page;

                // Layer 1: the guest translation, faulting on demand.
                let gt = match vs.guest.translate(gva_frame) {
                    Some(t) => t,
                    None => {
                        let _fault_span = self.prof.span(Phase::FaultPath);
                        let (out, fx) = vs.guest.handle_fault(gva_frame, vs.policy.as_mut())?;
                        self.recorder
                            .emit(cat::FAULT, vm.0, Layer::Guest, || EventKind::Fault {
                                frame: gva_frame,
                                huge: out.size == PageSize::Huge,
                                honored: out.placement_honored,
                            });
                        self.recorder.counter_add("machine.guest_faults", 1);
                        let cost = Self::apply_fx(vm, vs, fx, &self.prof);
                        self.recorder
                            .observe("machine.guest_fault_latency_cycles", cost.0);
                        ctx.req_acc += cost;
                        vs.guest
                            .translate(gva_frame)
                            .ok_or(SimError::Invariant("fault did not map the page"))?
                    }
                };
                let gpa_frame = gt.pa_frame;

                // Layer 2: the EPT backing, faulting on demand.
                let ht = match self.host.ept(vm)?.translate(gpa_frame) {
                    Some(t) => t,
                    None => {
                        let _fault_span = self.prof.span(Phase::FaultPath);
                        let (out, fx) =
                            self.host
                                .handle_fault(vm, gpa_frame, self.host_policy.as_mut())?;
                        self.recorder
                            .emit(cat::FAULT, vm.0, Layer::Host, || EventKind::Fault {
                                frame: gpa_frame,
                                huge: out.size == PageSize::Huge,
                                honored: out.placement_honored,
                            });
                        self.recorder.counter_add("machine.host_faults", 1);
                        let cost = Self::apply_fx(vm, vs, fx, &self.prof);
                        self.recorder
                            .observe("machine.host_fault_latency_cycles", cost.0);
                        ctx.req_acc += cost;
                        self.host
                            .ept(vm)?
                            .translate(gpa_frame)
                            .ok_or(SimError::Invariant("EPT fault did not back the page"))?
                    }
                };

                // The hardware translation itself.
                let out = vs.mmu.access(
                    vm,
                    gva_frame,
                    ResolvedTranslation {
                        gpa_frame,
                        guest_leaf: gt.size,
                        host_leaf: ht.size,
                    },
                );
                let cost = out.cycles + Cycles(self.cfg.data_access_cycles);
                vs.clock += cost;
                ctx.req_acc += cost;

                // Sampled touch telemetry for daemon heuristics.
                vs.access_count += 1;
                if vs.access_count % self.cfg.touch_sample as u64 == 0 {
                    vs.guest.record_touch(gva_frame);
                    self.host.record_touch(vm, gpa_frame);
                }
            }
            WorkloadEvent::EndRequest { cpu } => {
                let cost = Cycles(cpu / self.cfg.vcpus as u64);
                vs.clock += cost;
                ctx.req_acc += cost;
                if ctx.track_latency {
                    ctx.latencies.record(ctx.req_acc);
                }
                ctx.req_acc = Cycles::ZERO;
                ctx.ops += 1;
            }
        }
        Ok(())
    }

    /// Applies effects to a VM: clock, TLB invalidations, shootdown
    /// counters. Returns the foreground cycle cost.
    ///
    /// This is the single funnel from mm-layer `Effects` into the MMU:
    /// every `invalidate_*` / `charge_shootdowns` call below bumps the
    /// TLB stability epoch, so any effect application automatically
    /// closes open hit-run batch windows (DESIGN.md §16). Audited for
    /// PR 10: no other call site outside `MmuSim` itself mutates TLB
    /// residency.
    fn apply_fx(vm: VmId, vs: &mut VmState, fx: Effects, prof: &Profiler) -> Cycles {
        vs.clock += fx.cycles;
        let _shootdown_span = if fx.gva_regions_invalidated.is_empty()
            && fx.gpa_regions_changed.is_empty()
            && fx.shootdowns == 0
        {
            None
        } else {
            Some(prof.span(Phase::TlbShootdown))
        };
        for &r in &fx.gva_regions_invalidated {
            vs.mmu.invalidate_gva_region(vm, r);
        }
        if !fx.gpa_regions_changed.is_empty() {
            for &r in &fx.gpa_regions_changed {
                vs.mmu.invalidate_gpa_region(vm, r);
            }
            // EPT remaps flush the VM's cached translations (INVEPT).
            vs.mmu.invalidate_vm(vm);
        }
        // The stall cycles are already in fx.cycles; count the events.
        vs.mmu.charge_shootdowns(fx.shootdowns, Cycles::ZERO);
        fx.cycles
    }

    /// Runs any due background work for `vm`.
    fn run_daemons(&mut self, vm: VmId) -> Result<()> {
        let _daemon_span = self.prof.span(Phase::DaemonPass);
        let vcpus = self.cfg.vcpus;
        let vs = self.vms.get_mut(&vm).ok_or(SimError::UnknownVm(vm))?;
        let now = vs.clock;
        self.recorder.set_cycle(now);
        if now >= vs.next_guest_daemon {
            let fx = vs.guest.run_daemon(vs.policy.as_mut(), now, vcpus);
            Self::apply_fx(vm, vs, fx, &self.prof);
            vs.next_guest_daemon = now + vs.policy.daemon_period();
        }
        if now >= vs.next_host_daemon {
            let fx = self
                .host
                .run_daemon(vm, self.host_policy.as_mut(), now, vcpus)?;
            Self::apply_fx(vm, vs, fx, &self.prof);
            vs.next_host_daemon = now + self.host_policy.daemon_period();
        }
        // Compaction: the guest's kcompactd over guest-physical memory and
        // the host's over machine memory. Migration stalls bleed into the
        // foreground via the contention model.
        if now >= vs.next_compact {
            let moved = vs
                .compactor
                .step(vs.guest.buddy_mut(), self.cfg.compact_budget);
            let stall = self.cfg.costs.daemon_stall(moved, vcpus);
            if moved > 0 {
                vs.clock += Cycles((stall.0 as f64 * 0.5) as u64);
                self.recorder.emit(cat::MIGRATION, vm.0, Layer::Guest, || {
                    EventKind::Migration { pages: moved }
                });
                self.recorder
                    .counter_add("machine.guest_compact_pages", moved);
            }
            vs.next_compact = now + self.cfg.compact_period;
        }
        if now >= self.next_host_compact {
            let moved = self
                .host_compactor
                .step(&mut self.host.buddy, self.cfg.compact_budget);
            let stall = self.cfg.costs.daemon_stall(moved, vcpus);
            if moved > 0 {
                vs.clock += Cycles((stall.0 as f64 * 0.25) as u64);
                self.recorder
                    .emit(cat::MIGRATION, 0, Layer::Sys, || EventKind::Migration {
                        pages: moved,
                    });
                self.recorder
                    .counter_add("machine.host_compact_pages", moved);
            }
            self.next_host_compact = now + self.cfg.compact_period;
        }
        // Multi-tenant churn keeps memory fragmented over time.
        if now >= vs.next_tenant {
            if let Some(t) = &mut vs.tenant {
                t.step(
                    vs.guest.buddy_mut(),
                    now,
                    self.cfg.tenant_breaks,
                    self.cfg.tenant_hold,
                );
            }
            vs.next_tenant = now + self.cfg.tenant_period;
        }
        if now >= self.next_host_tenant {
            if let Some(t) = &mut self.host_tenant {
                t.step(
                    &mut self.host.buddy,
                    now,
                    self.cfg.tenant_breaks,
                    self.cfg.tenant_hold,
                );
            }
            self.next_host_tenant = now + self.cfg.tenant_period;
        }
        self.tick_runtime(vm);
        // The daemons and the runtime may have promoted, demoted,
        // unmapped or compacted underneath the TLBs. Their invalidation
        // effects each bump the stability epoch already, but a pass is
        // rare enough to over-bump conservatively: a missed bump would
        // be unsound, an extra one only declines a fast-path batch
        // (DESIGN.md §16).
        if let Some(vs) = self.vms.get_mut(&vm) {
            vs.mmu.note_external_pass();
        }
        self.take_sample(vm);
        Ok(())
    }

    /// Records one time-series point if the sampling interval elapsed.
    fn take_sample(&mut self, vm: VmId) {
        let vs = &self.vms[&vm];
        let now = vs.clock;
        if !self.recorder.sample_due(now) {
            return;
        }
        let c = vs.mmu.counters();
        let tlb_miss_rate = if c.accesses > 0 {
            c.stlb_misses as f64 / c.accesses as f64
        } else {
            0.0
        };
        let Ok(ept) = self.host.ept(vm) else {
            return;
        };
        let aligned_rate = alignment_stats(vs.guest.table(), ept).aligned_rate();
        self.recorder.record_sample(SamplePoint {
            cycle: now.0,
            host_fmfi: self.host.fragmentation_index(),
            guest_fmfi: vs.guest.fragmentation_index(),
            aligned_rate,
            tlb_miss_rate,
            free_order9: self.host.buddy.free_blocks_of_order(9) as u64,
        });
    }

    /// Runs the Gemini cross-layer runtime (MHPS + Algorithm 1) if due.
    fn tick_runtime(&mut self, active_vm: VmId) {
        let Some(rt) = &mut self.runtime else {
            return;
        };
        let now = self.vms[&active_vm].clock;
        if now < rt.next_deadline() {
            // The tick would be a period-gated no-op; skip the
            // telemetry gather (miss counters, FMFI, table refs) too.
            return;
        }
        let tlb_misses: u64 = self
            .vms
            .values()
            .map(|vs| vs.mmu.counters().stlb_misses)
            .sum();
        let fmfi = self.host.fragmentation_index();
        let tables: Vec<(
            VmId,
            &gemini_page_table::AddressSpace,
            &gemini_page_table::AddressSpace,
        )> = self
            .vms
            .iter()
            .filter_map(|(&id, vs)| {
                self.host
                    .ept(id)
                    .ok()
                    .map(|ept| (id, vs.guest.table(), ept))
            })
            .collect();
        let cost = rt.tick(now, &tables, tlb_misses, fmfi);
        drop(tables);
        // Scan work runs on a host core; a fraction contends with the VM.
        let stall = Cycles((cost.0 as f64 * 0.1) as u64);
        self.vms
            .get_mut(&active_vm)
            .expect("caller validated VM")
            .clock += stall;
    }

    fn finish(&mut self, vm: VmId, workload: String, mut ctx: RunCtx) -> Result<RunResult> {
        let vs = &self.vms[&vm];
        let alignment = alignment_stats(vs.guest.table(), self.host.ept(vm)?);
        // A clock behind its run-start value is a simulator bug (vtime
        // would silently saturate to zero); fail loudly with the pair.
        let vtime = vs.clock.checked_sub(ctx.clock_at_start).ok_or_else(|| {
            debug_assert!(
                false,
                "VM {} clock went backwards: now {} < start {}",
                vm.0, vs.clock, ctx.clock_at_start
            );
            eprintln!(
                "error: VM {} clock went backwards: now {} < start {}",
                vm.0, vs.clock, ctx.clock_at_start
            );
            SimError::ClockRegression {
                now: vs.clock,
                start: ctx.clock_at_start,
            }
        })?;
        Ok(RunResult {
            system: self.scenario.label,
            workload,
            ops: ctx.ops,
            vtime,
            mean_latency: ctx.latencies.mean(),
            p99_latency: ctx.latencies.p99(),
            counters: vs.mmu.counters().delta_since(&ctx.counters_at_start),
            alignment,
            guest_fmfi: vs.guest.fragmentation_index(),
            host_fmfi: self.host.fragmentation_index(),
            bucket_reuse_rate: vs.policy.bucket_reuse_rate(),
        })
    }
}

// The parallel experiment executor builds a machine inside a cell
// closure and runs it on a worker thread; everything a machine owns
// (policies, recorder handles, the Gemini shared channel) must be
// `Send`. Checked at compile time so a non-`Send` field cannot creep
// in unnoticed.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Machine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_workloads::{spec_by_name, MicrobenchGen, WorkloadGen};

    fn small_cfg() -> MachineConfig {
        MachineConfig {
            host_frames: 1 << 15, // 128 MiB.
            vm_frames: 1 << 14,   // 64 MiB.
            ..MachineConfig::default()
        }
    }

    fn run_micro(system: SystemKind, dataset: u64, ops: u64) -> RunResult {
        let mut m = Machine::new(system, small_cfg());
        let vm = m.add_vm().unwrap();
        let gen = MicrobenchGen::generator(dataset, ops, 7);
        m.run(vm, gen).unwrap()
    }

    #[test]
    fn base_base_runs_and_counts() {
        let r = run_micro(SystemKind::HostBVmB, 8 << 20, 200);
        assert_eq!(r.ops, 200);
        assert!(r.vtime > Cycles::ZERO);
        assert!(r.counters.accesses > 10_000);
        assert_eq!(r.alignment.guest_huge, 0);
        assert_eq!(r.alignment.host_huge, 0);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn aligned_huge_config_beats_base_and_misaligned() {
        // Figure 2's shape: with a dataset well beyond base-page TLB
        // coverage, Host-H-VM-H wins; misaligned single-layer huge pages
        // barely help.
        let ops = 300;
        let dataset = 32 << 20;
        let base = run_micro(SystemKind::HostBVmB, dataset, ops);
        let mis_host = run_micro(SystemKind::HostHVmB, dataset, ops);
        let mis_guest = run_micro(SystemKind::HostBVmH, dataset, ops);
        let aligned = run_micro(SystemKind::HostHVmH, dataset, ops);
        assert!(
            aligned.vtime < base.vtime,
            "aligned {} vs base {}",
            aligned.vtime,
            base.vtime
        );
        assert!(aligned.vtime < mis_host.vtime);
        assert!(aligned.vtime < mis_guest.vtime);
        assert!(
            aligned.tlb_misses() * 4 < base.tlb_misses(),
            "aligned TLB misses should collapse: {} vs {}",
            aligned.tlb_misses(),
            base.tlb_misses()
        );
        // Misaligned huge pages do NOT collapse TLB misses.
        assert!(mis_host.tlb_misses() * 2 > base.tlb_misses());
        // Aligned rate sanity.
        assert!(aligned.aligned_rate() > 0.9);
        assert_eq!(mis_host.aligned_rate(), 0.0);
    }

    #[test]
    fn small_dataset_shows_no_separation() {
        // Figure 2's left side: dataset fits the TLB, configs tie.
        let base = run_micro(SystemKind::HostBVmB, 2 << 20, 2_000);
        let aligned = run_micro(SystemKind::HostHVmH, 2 << 20, 2_000);
        let ratio = base.vtime.0 as f64 / aligned.vtime.0 as f64;
        assert!(ratio < 1.3, "configs should be close: ratio {ratio}");
    }

    #[test]
    fn thp_and_gemini_run_real_workloads() {
        for system in [SystemKind::Thp, SystemKind::Gemini] {
            let mut m = Machine::new(system, small_cfg());
            let vm = m.add_vm().unwrap();
            let spec = spec_by_name("Redis")
                .expect("Redis workload registered")
                .scaled(1.0 / 16.0);
            let gen = WorkloadGen::new(spec, 2_000, 11);
            let r = m.run(vm, gen).unwrap();
            assert_eq!(r.ops, 2_000);
            assert!(r.mean_latency > Cycles::ZERO, "Redis tracks latency");
            assert!(r.p99_latency > Cycles::ZERO);
        }
    }

    #[test]
    fn gemini_forms_well_aligned_pages_on_fragmented_memory() {
        // Needs runs long enough for the (deliberately slow) coalescing
        // daemons to act: larger memory and more ops than the other
        // machine tests.
        let cfg = MachineConfig {
            host_frames: 1 << 17,
            vm_frames: 1 << 16,
            fragment_guest: Some(0.9),
            fragment_host: Some(0.9),
            ..MachineConfig::default()
        };
        let spec = spec_by_name("Masstree")
            .expect("Masstree workload registered")
            .scaled(1.0 / 4.0);

        let mut gem = Machine::new(SystemKind::Gemini, cfg.clone());
        let vm = gem.add_vm().unwrap();
        let r_gem = gem
            .run(vm, WorkloadGen::new(spec.clone(), 20_000, 5))
            .unwrap();

        let mut thp = Machine::new(SystemKind::Thp, cfg);
        let vm = thp.add_vm().unwrap();
        let r_thp = thp.run(vm, WorkloadGen::new(spec, 20_000, 5)).unwrap();

        assert!(
            r_gem.aligned_rate() > r_thp.aligned_rate(),
            "Gemini {} vs THP {}",
            r_gem.aligned_rate(),
            r_thp.aligned_rate()
        );
        // TLB-miss separation needs full-scale working sets (the harness
        // experiments); at this test scale the counts are noise, and only
        // a few daemon passes fit the run, so the absolute rate floor is
        // modest (bench-scale floors live in the paper-claims tests).
        assert!(r_gem.aligned_rate() > 0.5, "{}", r_gem.aligned_rate());
    }

    #[test]
    fn reused_vm_keeps_ept_state() {
        let mut m = Machine::new(SystemKind::Gemini, small_cfg());
        let vm = m.add_vm().unwrap();
        let svm = spec_by_name("SVM")
            .expect("SVM workload registered")
            .scaled(1.0 / 32.0);
        m.run(vm, WorkloadGen::new(svm, 1_000, 3)).unwrap();
        let backed_before = m.ept(vm).unwrap().mapped_base_page_equiv();
        m.clear_workload(vm).unwrap();
        // Guest memory is free again, but the EPT still backs it.
        assert_eq!(m.guest_table(vm).mapped_base_page_equiv(), 0);
        assert_eq!(m.ept(vm).unwrap().mapped_base_page_equiv(), backed_before);
        // A second workload runs fine in the reused VM.
        let redis = spec_by_name("Redis")
            .expect("Redis workload registered")
            .scaled(1.0 / 32.0);
        let r = m.run(vm, WorkloadGen::new(redis, 1_000, 4)).unwrap();
        assert_eq!(r.ops, 1_000);
    }

    #[test]
    fn remove_vm_returns_every_host_frame() {
        for system in [SystemKind::Thp, SystemKind::Gemini] {
            let mut m = Machine::new(system, small_cfg());
            let vm1 = m.add_vm().unwrap();
            let vm2 = m.add_vm().unwrap();
            let free_fresh = m.host.buddy.free_frames();
            let redis = spec_by_name("Redis")
                .expect("Redis workload registered")
                .scaled(1.0 / 32.0);
            m.run(vm1, WorkloadGen::new(redis.clone(), 800, 3)).unwrap();
            m.run(vm2, WorkloadGen::new(redis.clone(), 800, 4)).unwrap();
            let survivor_backed = m.ept(vm2).unwrap().mapped_base_page_equiv();

            let freed = m.remove_vm(vm1).unwrap();
            assert!(freed > 0, "a run must have backed host frames");
            // The survivor is untouched and still runs.
            assert_eq!(
                m.ept(vm2).unwrap().mapped_base_page_equiv(),
                survivor_backed
            );
            assert!(m.ept(vm1).is_err(), "EPT of the removed VM is gone");
            let r = m.run(vm2, WorkloadGen::new(redis, 400, 5)).unwrap();
            assert_eq!(r.ops, 400);

            // Removing the survivor drains the host back to pristine.
            m.remove_vm(vm2).unwrap();
            assert_eq!(m.host.buddy.free_frames(), free_fresh);
            assert_eq!(m.host.buddy.free_runs(), vec![(0, small_cfg().host_frames)]);
            m.host.buddy.check_invariants().unwrap();
            // Gemini's shared scan state holds no retired VMs.
            if let Some(shared) = &m.shared {
                assert!(shared.read().scans.is_empty());
            }
        }
    }

    #[test]
    fn fleet_drains_leak_free_and_matches_no_ff() {
        use gemini_workloads::{FleetPlan, FleetSpec};
        let fleet = FleetSpec {
            vm_count: 12,
            hosts: 1,
            host_frames: small_cfg().host_frames,
            resident_frac: 0.25,
            mean_ops: 60,
            arrival_gap: 4,
            ws_factor: 1.0 / 32.0,
        };
        let plan = FleetPlan::generate(&fleet, 21);
        let run = |no_ff: bool| {
            let cfg = MachineConfig {
                no_ff,
                ..small_cfg()
            };
            let mut m = Machine::new(SystemKind::Gemini, cfg);
            let arrivals: Vec<FleetArrival<WorkloadGen>> = plan.hosts[0]
                .vms
                .iter()
                .map(|v| FleetArrival {
                    index: v.index,
                    footprint_frames: v.footprint_frames,
                    gen: WorkloadGen::new(v.spec.clone(), v.ops, v.seed),
                })
                .collect();
            let out = m.run_fleet(arrivals, plan.resident_cap_frames).unwrap();
            // The fleet drained: every VM departed, the host is empty
            // and pristine (the per-departure leak checks all passed to
            // get here; this is the end-to-end restatement).
            assert_eq!(out.vms.len(), 12);
            assert_eq!(out.churn_events, 24);
            assert!(out.peak_resident >= 2, "fleet VMs must overlap");
            assert_eq!(m.host.buddy.free_frames(), small_cfg().host_frames);
            m.host.buddy.check_invariants().unwrap();
            out
        };
        let fast = run(false);
        let faithful = run(true);
        assert_eq!(format!("{fast:?}"), format!("{faithful:?}"));
    }

    #[test]
    fn hit_run_batching_is_byte_identical_and_engages() {
        // The closed-form batch path must leave every compared surface
        // of the result identical to the faithful per-access path, while
        // actually advancing a meaningful share of accesses in closed
        // form on a sequential workload (long same-region runs).
        // Streamcluster under THP: huge entries from the start, so the
        // sequential sweep produces long same-region hit runs and the
        // fast path must engage. Canneal under fragmented Gemini:
        // mostly-base entries whose runs are nearly all length 1, which
        // the >= 2 threshold deliberately leaves to the faithful loop —
        // parity must hold whether or not anything batches.
        let cases = [
            ("Streamcluster", SystemKind::Thp, None, true),
            ("Canneal", SystemKind::Gemini, Some(0.5), false),
        ];
        for (wl, system, frag, expect_engagement) in cases {
            let spec = spec_by_name(wl)
                .expect("catalog workload")
                .scaled(1.0 / 32.0);
            let run = |no_batch: bool| {
                let cfg = MachineConfig {
                    no_batch,
                    fragment_host: frag,
                    ..small_cfg()
                };
                let mut m = Machine::new(system, cfg);
                let vm = m.add_vm().unwrap();
                let r = m.run(vm, WorkloadGen::new(spec.clone(), 800, 11)).unwrap();
                (format!("{r:?}"), m.batch_stats())
            };
            let (batched, stats) = run(false);
            let (faithful, off_stats) = run(true);
            assert_eq!(batched, faithful, "{wl}: batching changed the result");
            assert_eq!(
                off_stats,
                gemini_tlb::BatchStats::default(),
                "{wl}: --no-batch must keep the fast path cold"
            );
            // Every taken run elides at least two accesses.
            assert!(
                stats.hits >= 2 * stats.runs,
                "{wl}: a taken run below the >= 2 threshold leaked \
                 through: {stats:?}"
            );
            if expect_engagement {
                assert!(
                    stats.runs > 0,
                    "{wl}: the fast path never engaged: {stats:?}"
                );
            }
        }
    }

    #[test]
    fn fleet_matches_no_batch_byte_identically() {
        use gemini_workloads::{FleetPlan, FleetSpec};
        let fleet = FleetSpec {
            vm_count: 8,
            hosts: 1,
            host_frames: small_cfg().host_frames,
            resident_frac: 0.25,
            mean_ops: 60,
            arrival_gap: 4,
            ws_factor: 1.0 / 32.0,
        };
        let plan = FleetPlan::generate(&fleet, 33);
        let run = |no_batch: bool| {
            let cfg = MachineConfig {
                no_batch,
                ..small_cfg()
            };
            let mut m = Machine::new(SystemKind::Gemini, cfg);
            let arrivals: Vec<FleetArrival<WorkloadGen>> = plan.hosts[0]
                .vms
                .iter()
                .map(|v| FleetArrival {
                    index: v.index,
                    footprint_frames: v.footprint_frames,
                    gen: WorkloadGen::new(v.spec.clone(), v.ops, v.seed),
                })
                .collect();
            m.run_fleet(arrivals, plan.resident_cap_frames).unwrap()
        };
        let batched = run(false);
        let faithful = run(true);
        assert_eq!(format!("{batched:?}"), format!("{faithful:?}"));
    }

    #[test]
    fn removed_vm_id_is_not_reused() {
        let mut m = Machine::new(SystemKind::Thp, small_cfg());
        let vm1 = m.add_vm().unwrap();
        m.remove_vm(vm1).unwrap();
        let vm2 = m.add_vm().unwrap();
        assert_ne!(vm1, vm2, "VM ids are lifetime-unique");
        assert!(m.remove_vm(vm1).is_err(), "double remove is an error");
    }

    #[test]
    fn collocated_vms_share_the_host() {
        let cfg = MachineConfig {
            host_frames: 1 << 16,
            ..small_cfg()
        };
        let mut m = Machine::new(SystemKind::Thp, cfg);
        let vm1 = m.add_vm().unwrap();
        let vm2 = m.add_vm().unwrap();
        let redis = spec_by_name("Redis").expect("Redis workload registered");
        let a = WorkloadGen::new(redis.scaled(1.0 / 32.0), 500, 1);
        let shore = spec_by_name("Shore").expect("Shore workload registered");
        let b = WorkloadGen::new(shore.scaled(1.0 / 32.0), 500, 2);
        let rs = m.run_collocated(vec![(vm1, a), (vm2, b)]).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].ops, 500);
        assert_eq!(rs[1].ops, 500);
        assert_ne!(rs[0].workload, rs[1].workload);
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut m = Machine::new(SystemKind::Ingens, small_cfg());
            let vm = m.add_vm().unwrap();
            let spec = spec_by_name("Xapian")
                .expect("Xapian workload registered")
                .scaled(1.0 / 32.0);
            m.run(vm, WorkloadGen::new(spec, 800, 9)).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.vtime, b.vtime);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.alignment, b.alignment);
    }

    #[test]
    fn ninth_system_is_one_registry_style_entry() {
        // Adding a new (guest, host) pairing takes nothing but a
        // ScenarioSpec value; the Machine consumes it directly.
        use crate::system::{PolicyCtor, ScenarioSpec};
        use gemini_policies::PolicyKind;
        let toy = ScenarioSpec {
            label: "Toy-HG",
            guest: PolicyCtor::Fixed(PolicyKind::HugeAlways),
            host: PolicyCtor::Fixed(PolicyKind::Thp),
            gemini: None,
            evaluated: false,
            tabulated: false,
            cost_hint: 300,
        };
        let mut m = Machine::from_scenario(toy, small_cfg());
        let vm = m.add_vm().unwrap();
        let gen = MicrobenchGen::generator(8 << 20, 200, 7);
        let r = m.run(vm, gen).unwrap();
        assert_eq!(r.system, "Toy-HG");
        assert_eq!(r.ops, 200);
        assert!(r.vtime > Cycles::ZERO);
        // The guest side really went huge while the host ran THP.
        assert!(r.alignment.guest_huge > 0);
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use crate::system::SystemKind;
    use gemini_workloads::{spec_by_name, WorkloadGen};

    #[test]
    #[ignore]
    fn probe_fragmented() {
        for wl in ["Canneal"] {
            println!("--- {wl} ---");
            let cfg = MachineConfig {
                host_frames: 1 << 18,
                vm_frames: 1 << 17,
                fragment_guest: Some(0.9),
                fragment_host: Some(0.9),
                ..MachineConfig::default()
            };
            for system in [SystemKind::CaPaging, SystemKind::Ranger] {
                let mut cfg = cfg.clone();
                cfg.zero_heavy = wl == "Specjbb";
                let spec = spec_by_name(wl)
                    .expect("probe workload registered")
                    .scaled(0.25);
                let mut m = Machine::new(system, cfg.clone());
                let vm = m.add_vm().unwrap();
                let r = m.run(vm, WorkloadGen::new(spec, 8_000, 5)).unwrap();
                println!(
                    "{:14} vtime={:>12} misses={:>8} aligned={:.2} g_huge={} h_huge={} fmfi_g={:.2} fmfi_h={:.2} bucket={:.2}",
                    r.system, r.vtime.0, r.tlb_misses(), r.aligned_rate(),
                    r.alignment.guest_huge, r.alignment.host_huge,
                    r.guest_fmfi, r.host_fmfi, r.bucket_reuse_rate
                );
                let (g, h) = m.policy_debug(vm);
                if !g.is_empty() {
                    println!("  guest: {g}");
                    println!("  host:  {h}");
                }
                let vs = &m.vms[&vm];
                println!(
                    "  compact: guest pins={} moved={} | host pins={} moved={} | guest largest_run={} free_o9={}",
                    vs.compactor.pinned(), vs.compactor.migrated_total,
                    m.host_compactor.pinned(), m.host_compactor.migrated_total,
                    vs.guest.buddy().largest_free_run(),
                    vs.guest.buddy().free_blocks_of_order(9),
                );
            }
        }
    }
}

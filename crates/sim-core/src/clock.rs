//! Deterministic cycle clock.
//!
//! The simulator measures everything — workload progress, daemon periods,
//! booking timeouts, TLB-shootdown stalls — in CPU cycles of a nominal
//! 2.1 GHz core (the Xeon E5-2620 of the paper's testbed). A single logical
//! clock per simulated machine keeps foreground execution and background
//! daemons (khugepaged, MHPS, Translation-ranger) causally ordered without
//! any wall-clock input, so runs are reproducible.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// Nominal core frequency used to convert cycles to seconds (2.1 GHz).
pub const CYCLES_PER_SECOND: u64 = 2_100_000_000;

/// A duration or instant measured in CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Self = Self(0);

    /// Builds a duration from (fractional) microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self((us * CYCLES_PER_SECOND as f64 / 1e6) as u64)
    }

    /// Builds a duration from (fractional) milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_micros(ms * 1e3)
    }

    /// Builds a duration from (fractional) seconds.
    pub fn from_secs(s: f64) -> Self {
        Self::from_micros(s * 1e6)
    }

    /// Converts to fractional seconds at the nominal frequency.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / CYCLES_PER_SECOND as f64
    }

    /// Converts to fractional microseconds at the nominal frequency.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e6 / CYCLES_PER_SECOND as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Subtraction that returns `None` on underflow, for callers that
    /// must distinguish "no elapsed time" from a clock that regressed.
    pub fn checked_sub(self, rhs: Self) -> Option<Self> {
        self.0.checked_sub(rhs.0).map(Self)
    }

    /// Multiplies the duration by a float factor (used by Algorithm 1's
    /// ±10 % timeout adjustments).
    pub fn scale(self, factor: f64) -> Self {
        Self((self.0 as f64 * factor) as u64)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A monotonically advancing cycle clock owned by one simulated machine.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Cycles,
}

impl Clock {
    /// Creates a clock at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current instant.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Advances the clock by `delta` and returns the new instant.
    pub fn advance(&mut self, delta: Cycles) -> Cycles {
        self.now += delta;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let c = Cycles::from_secs(1.0);
        assert_eq!(c.0, CYCLES_PER_SECOND);
        assert!((c.as_secs_f64() - 1.0).abs() < 1e-12);
        assert_eq!(Cycles::from_millis(1.0).0, CYCLES_PER_SECOND / 1000);
        assert!((Cycles::from_micros(5.0).as_micros_f64() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn arithmetic() {
        let a = Cycles(100);
        let b = Cycles(40);
        assert_eq!(a + b, Cycles(140));
        assert_eq!(a - b, Cycles(60));
        assert_eq!(a * 3, Cycles(300));
        assert_eq!(a / 4, Cycles(25));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a.scale(1.1), Cycles(110));
        assert_eq!(a.scale(0.9), Cycles(90));
        let total: Cycles = [a, b, Cycles(1)].into_iter().sum();
        assert_eq!(total, Cycles(141));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clk = Clock::new();
        assert_eq!(clk.now(), Cycles::ZERO);
        clk.advance(Cycles(10));
        clk.advance(Cycles(5));
        assert_eq!(clk.now(), Cycles(15));
    }
}

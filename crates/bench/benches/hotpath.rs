#![allow(missing_docs)]
//! End-to-end hot-path benchmark: times whole experiment cells through the
//! same [`gemini_harness::bench`] module `gemini-sim bench` uses, so the
//! Criterion numbers and the `BENCH_pr4.json` report measure the same
//! code path. Covers the PR-4 reference cell (fragmented GEMINI/Canneal),
//! a jobs sweep over the fig3 motivation grid, and the closed-form
//! hit-run batch advance against the faithful per-access hit loop it
//! replaces (DESIGN.md §16).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gemini_bench::bench_scale;
use gemini_harness::bench::{run_bench, run_reference_cell};
use gemini_sim_core::VmId;
use gemini_page_table::LeafSize;
use gemini_tlb::{MmuConfig, MmuSim, ResolvedTranslation};

fn bench_reference_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);
    g.bench_function("reference_cell", |b| {
        b.iter(|| run_reference_cell().expect("reference cell runs"));
    });
    g.finish();
}

fn bench_full_report(c: &mut Criterion) {
    let scale = bench_scale();
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);
    g.bench_function("full_report_jobs1", |b| {
        b.iter(|| run_bench(&scale, "bench", 1).expect("bench grid runs"));
    });
    g.finish();
}

/// The microscopic comparison behind the batch fast path: `k` repeat
/// L1 hits driven one `access_unresolved` probe at a time versus one
/// `advance_batched_hits` call covering the same run. Both legs leave
/// the MMU in an identical state (the parity suites prove it); this
/// measures what that equivalence is worth in wall-clock.
fn bench_batched_hit_run(c: &mut Criterion) {
    const VM: VmId = VmId(1);
    const GVA: u64 = 0x200;
    const K: u64 = 15; // touch-sample cadence caps real runs at 15.
    let translation = ResolvedTranslation {
        gpa_frame: 0x200,
        guest_leaf: LeafSize::Base,
        host_leaf: LeafSize::Base,
    };
    let mut g = c.benchmark_group("hotpath");
    g.bench_function("hit_run_faithful_x15", |b| {
        let mut mmu = MmuSim::new(MmuConfig::default()).expect("default MMU config");
        mmu.access(VM, GVA, translation);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..K {
                acc += mmu.access_unresolved(VM, black_box(GVA)).unwrap().cycles.0;
            }
            black_box(acc)
        });
    });
    g.bench_function("hit_run_batched_x15", |b| {
        let mut mmu = MmuSim::new(MmuConfig::default()).expect("default MMU config");
        mmu.access(VM, GVA, translation);
        let epoch = mmu.stability_epoch();
        b.iter(|| {
            let cost = mmu
                .advance_batched_hits(VM, black_box(GVA), false, K, epoch)
                .expect("resident run with a stable epoch batches");
            black_box(cost.0)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_reference_cell,
    bench_full_report,
    bench_batched_hit_run
);
criterion_main!(benches);

//! Plain-text table rendering for experiment output.
//!
//! Benches print the same rows/series the paper's tables and figures
//! report; this module renders them with aligned columns so the output is
//! directly comparable against EXPERIMENTS.md.

use std::fmt::Write as _;

/// A rectangular text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each must have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row, normalizing its width to the header count:
    /// missing cells become empty strings, excess cells are dropped.
    /// Ragged rows are a caller bug, so debug builds still assert.
    pub fn row(&mut self, mut cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let empty = String::new();
            let mut s = String::new();
            for (i, &width) in widths.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let cell = cells.get(i).unwrap_or(&empty);
                let _ = write!(s, "{cell:<width$}");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Formats a normalized ratio like the paper ("1.72x").
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a rate as a percentage ("66%").
pub fn fmt_pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["workload", "THP", "GEMINI"]);
        t.row(vec!["Redis".into(), "1.10x".into(), "1.75x".into()]);
        t.row(vec!["Streamcluster".into(), "1.05x".into(), "1.60x".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Column positions align: "THP" starts where "1.10x"/"1.05x" start.
        let hdr = lines[1];
        let pos = hdr.find("THP").unwrap();
        assert_eq!(&lines[3][pos..pos + 5], "1.10x");
        assert_eq!(&lines[4][pos..pos + 5], "1.05x");
    }

    #[test]
    fn ragged_rows_are_normalized() {
        // Ragged rows are a caller bug (debug builds assert), but release
        // builds must neither panic nor mis-render them: short rows pad
        // with empty cells, excess cells are dropped. Pushing directly
        // into `rows` models the release path past the debug assert.
        let mut t = Table::new("ragged", &["a", "bb", "ccc"]);
        t.rows.push(vec!["short".into()]);
        t.rows
            .push(vec!["1".into(), "2".into(), "3".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // The excess cell never renders; every body line is rectangular.
        assert!(!s.contains('4'), "{s}");
        assert_eq!(lines[3].trim_end(), "short");
        assert!(lines[4].starts_with("1"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ratio(1.724), "1.72x");
        assert_eq!(fmt_pct(0.66), "66%");
        assert_eq!(fmt_pct(0.342), "34%");
    }
}

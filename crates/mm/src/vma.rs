//! Virtual memory areas of a guest process.
//!
//! Gemini's enhanced memory allocator operates *per VMA* rather than per
//! huge-page region (paper §5: "We realize EMA based on virtual memory
//! areas ... the number of offset descriptors for huge page sized memory
//! regions can be huge"), so VMAs — their identity, bounds and growth — are
//! first-class here.

use gemini_sim_core::{Gva, SimError, BASE_PAGE_SIZE};
use std::collections::BTreeMap;

/// Identifier of a VMA, stable across its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmaId(pub u64);

/// One virtual memory area: a contiguous, page-aligned GVA range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vma {
    /// Stable identity.
    pub id: VmaId,
    /// Inclusive start address (base-page aligned).
    pub start: Gva,
    /// Length in bytes (multiple of the base page size).
    pub len: u64,
}

impl Vma {
    /// Exclusive end address.
    pub fn end(&self) -> Gva {
        self.start.add(self.len)
    }

    /// True when `gva` falls inside this area.
    pub fn contains(&self, gva: Gva) -> bool {
        gva >= self.start && gva < self.end()
    }

    /// Number of base pages spanned.
    pub fn pages(&self) -> u64 {
        self.len / BASE_PAGE_SIZE
    }

    /// First base-frame number of the area.
    pub fn start_frame(&self) -> u64 {
        self.start.frame()
    }
}

/// The set of VMAs of one address space, ordered by start address.
#[derive(Debug, Clone, Default)]
pub struct VmaSet {
    areas: BTreeMap<u64, Vma>,
    next_id: u64,
    /// Lowest address never handed out; simple bump placement for `mmap`.
    high_water: u64,
}

impl VmaSet {
    /// Creates an empty set whose first mapping starts at `base` bytes.
    pub fn new(base: u64) -> Self {
        Self {
            areas: BTreeMap::new(),
            next_id: 1,
            high_water: base,
        }
    }

    /// Maps a new area of `len` bytes (rounded up to a page) at the lowest
    /// huge-page-aligned free address, returning it.
    ///
    /// Alignment to 2 MiB mirrors what glibc/THP-aware allocators do for
    /// large mappings and gives every policy the same starting conditions.
    pub fn mmap(&mut self, len: u64) -> Result<Vma, SimError> {
        if len == 0 {
            return Err(SimError::Invariant("zero-length mmap"));
        }
        let len = Gva(len).align_up_base().raw();
        let start = Gva(self.high_water).align_up_huge();
        let vma = Vma {
            id: VmaId(self.next_id),
            start,
            len,
        };
        self.next_id += 1;
        self.high_water = start.raw() + len;
        self.areas.insert(start.raw(), vma.clone());
        Ok(vma)
    }

    /// Extends the area `id` by `extra` bytes if it is the topmost mapping
    /// (models VMA expansion, which invalidates EMA's assumption that the
    /// booked region fits the VMA — the sub-VMA mechanism's trigger).
    pub fn expand(&mut self, id: VmaId, extra: u64) -> Result<Vma, SimError> {
        let vma = self
            .areas
            .values_mut()
            .find(|v| v.id == id)
            .ok_or(SimError::Invariant("expand of unknown VMA"))?;
        if vma.start.raw() + vma.len != self.high_water {
            return Err(SimError::Invariant("only the top VMA can expand"));
        }
        vma.len += Gva(extra).align_up_base().raw();
        self.high_water = vma.start.raw() + vma.len;
        Ok(vma.clone())
    }

    /// Removes the area `id`, returning it.
    pub fn munmap(&mut self, id: VmaId) -> Result<Vma, SimError> {
        let key = self
            .areas
            .iter()
            .find(|(_, v)| v.id == id)
            .map(|(&k, _)| k)
            .ok_or(SimError::Invariant("munmap of unknown VMA"))?;
        Ok(self.areas.remove(&key).expect("key just found"))
    }

    /// Finds the area containing `gva`.
    pub fn find(&self, gva: Gva) -> Option<&Vma> {
        let (_, vma) = self.areas.range(..=gva.raw()).next_back()?;
        vma.contains(gva).then_some(vma)
    }

    /// Looks an area up by id.
    pub fn get(&self, id: VmaId) -> Option<&Vma> {
        self.areas.values().find(|v| v.id == id)
    }

    /// Iterates all areas in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.areas.values()
    }

    /// Number of areas.
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// True when no areas exist.
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_sim_core::HUGE_PAGE_SIZE;

    #[test]
    fn mmap_is_huge_aligned_and_disjoint() {
        let mut set = VmaSet::new(HUGE_PAGE_SIZE);
        let a = set.mmap(10 * BASE_PAGE_SIZE).unwrap();
        let b = set.mmap(HUGE_PAGE_SIZE).unwrap();
        assert!(a.start.is_huge_aligned());
        assert!(b.start.is_huge_aligned());
        assert!(a.end() <= b.start);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn mmap_rounds_len_up_to_pages() {
        let mut set = VmaSet::new(0);
        let v = set.mmap(100).unwrap();
        assert_eq!(v.len, BASE_PAGE_SIZE);
        assert_eq!(v.pages(), 1);
        assert!(set.mmap(0).is_err());
    }

    #[test]
    fn find_resolves_interior_addresses_only() {
        let mut set = VmaSet::new(0);
        let v = set.mmap(4 * BASE_PAGE_SIZE).unwrap();
        assert_eq!(set.find(v.start).unwrap().id, v.id);
        assert_eq!(set.find(v.start.add(v.len - 1)).unwrap().id, v.id);
        assert!(set.find(v.end()).is_none());
        assert!(set.find(Gva(v.start.raw().wrapping_sub(1))).is_none());
    }

    #[test]
    fn expand_grows_top_vma_only() {
        let mut set = VmaSet::new(0);
        let a = set.mmap(BASE_PAGE_SIZE).unwrap();
        let grown = set.expand(a.id, BASE_PAGE_SIZE).unwrap();
        assert_eq!(grown.len, 2 * BASE_PAGE_SIZE);
        let b = set.mmap(BASE_PAGE_SIZE).unwrap();
        assert!(set.expand(a.id, BASE_PAGE_SIZE).is_err());
        assert!(set.expand(b.id, BASE_PAGE_SIZE).is_ok());
    }

    #[test]
    fn munmap_removes_and_reports_unknown() {
        let mut set = VmaSet::new(0);
        let v = set.mmap(BASE_PAGE_SIZE).unwrap();
        assert_eq!(set.munmap(v.id).unwrap().id, v.id);
        assert!(set.is_empty());
        assert!(set.munmap(v.id).is_err());
        assert!(set.find(v.start).is_none());
    }
}

//! EMA — the enhanced memory allocator's offset descriptors (paper §4.2,
//! §5).
//!
//! EMA's job is to place demand-paged memory so that guest-virtual,
//! guest-physical (and, at the host layer, host-physical) addresses stay
//! congruent modulo the huge page size: upon the first fault in a VMA it
//! picks a physical region — preferring regions *booked* under mis-aligned
//! huge pages — records `offset = VA_start − PA_start`, and every later
//! fault in the VMA is directed to `fault_address − offset`, enabling
//! in-place promotion.
//!
//! The prototype keys descriptors by VMA ("the number of offset
//! descriptors for huge-page-sized regions can be huge") and keeps them in
//! a **self-organizing linear search list** (move-to-front) to make the
//! common repeated-VMA lookup O(1). The **sub-VMA** mechanism handles
//! targets that become unavailable (VMA expansion, target already
//! allocated): the remainder of the VMA gets a fresh descriptor with a new
//! offset, while already-placed prefixes keep theirs.

use gemini_sim_core::PAGES_PER_HUGE_PAGE;

/// One offset descriptor: a sub-range of a VMA and its placement offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffsetDescriptor {
    /// Extent key (VMA id at the guest layer; VM id at the host layer).
    pub key: u64,
    /// First input frame this descriptor covers.
    pub start: u64,
    /// Number of input frames covered.
    pub len: u64,
    /// `input_frame − output_frame`, a multiple of 512 so regions stay
    /// congruent.
    pub offset: i64,
}

impl OffsetDescriptor {
    /// True when `frame` falls inside this descriptor's sub-range.
    pub fn covers(&self, key: u64, frame: u64) -> bool {
        self.key == key && frame >= self.start && frame < self.start + self.len
    }

    /// Output frame for an input frame (caller must check `covers`).
    pub fn target(&self, frame: u64) -> u64 {
        (frame as i64 - self.offset) as u64
    }
}

/// Self-organizing (move-to-front) linear list of offset descriptors.
#[derive(Debug, Clone, Default)]
pub struct EmaList {
    items: Vec<OffsetDescriptor>,
    /// Lookups served (stats).
    pub hits: u64,
    /// Lookups that found nothing (stats).
    pub misses: u64,
}

impl EmaList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of descriptors.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Finds the descriptor covering `(key, frame)`, moving it to the
    /// front of the list (the self-organizing step).
    pub fn find(&mut self, key: u64, frame: u64) -> Option<&OffsetDescriptor> {
        match self.items.iter().position(|d| d.covers(key, frame)) {
            Some(pos) => {
                self.hits += 1;
                if pos != 0 {
                    let d = self.items.remove(pos);
                    self.items.insert(0, d);
                }
                self.items.first()
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a descriptor at the front, truncating any existing
    /// descriptor of the same key that overlaps its range (the sub-VMA
    /// split: the new descriptor owns the tail).
    pub fn insert(&mut self, desc: OffsetDescriptor) {
        for d in &mut self.items {
            if d.key == desc.key && d.start < desc.start + desc.len && desc.start < d.start + d.len
            {
                // Keep only the prefix of the old descriptor before the
                // new range (placed pages keep their established offset).
                if d.start < desc.start {
                    d.len = desc.start - d.start;
                } else {
                    d.len = 0;
                }
            }
        }
        self.items.retain(|d| d.len > 0);
        self.items.insert(0, desc);
    }

    /// Drops all descriptors of `key` (VMA unmapped).
    pub fn remove_key(&mut self, key: u64) {
        self.items.retain(|d| d.key != key);
    }
}

/// Computes a huge-page-congruent offset: the first output frame ≥
/// `out_min` such that `in0 − out` is a multiple of 512.
///
/// This is the `GuestOffset = GVA1 − GPA1` arithmetic of Figure 5: since
/// both `in0` and the chosen output region start are region-aligned (or
/// congruent), every later placement preserves the in-region offset, which
/// is exactly the precondition of in-place promotion.
pub fn congruent_offset(in0: u64, out_min: u64) -> i64 {
    let want = in0 % PAGES_PER_HUGE_PAGE;
    let base = out_min - (out_min % PAGES_PER_HUGE_PAGE);
    let mut out = base + want;
    if out < out_min {
        out += PAGES_PER_HUGE_PAGE;
    }
    in0 as i64 - out as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_covers_and_targets() {
        let d = OffsetDescriptor {
            key: 7,
            start: 1024,
            len: 512,
            offset: 512,
        };
        assert!(d.covers(7, 1024));
        assert!(d.covers(7, 1535));
        assert!(!d.covers(7, 1536));
        assert!(!d.covers(8, 1024));
        assert_eq!(d.target(1024), 512);
        assert_eq!(d.target(1100), 588);
    }

    #[test]
    fn move_to_front_on_hit() {
        let mut l = EmaList::new();
        l.insert(OffsetDescriptor {
            key: 1,
            start: 0,
            len: 512,
            offset: 0,
        });
        l.insert(OffsetDescriptor {
            key: 2,
            start: 0,
            len: 512,
            offset: 0,
        });
        // Key 2 is at front now; find key 1 moves it to front.
        assert!(l.find(1, 5).is_some());
        assert_eq!(l.items[0].key, 1);
        assert_eq!(l.hits, 1);
        assert!(l.find(3, 0).is_none());
        assert_eq!(l.misses, 1);
    }

    #[test]
    fn sub_vma_insert_truncates_overlap() {
        let mut l = EmaList::new();
        // Original descriptor covers the whole VMA [0, 2048).
        l.insert(OffsetDescriptor {
            key: 1,
            start: 0,
            len: 2048,
            offset: 0,
        });
        // Sub-VMA: the tail [1024, 2048) gets a new offset.
        l.insert(OffsetDescriptor {
            key: 1,
            start: 1024,
            len: 1024,
            offset: -512,
        });
        assert_eq!(l.len(), 2);
        // Prefix keeps the old offset, tail uses the new one.
        assert_eq!(l.find(1, 100).unwrap().offset, 0);
        assert_eq!(l.find(1, 1500).unwrap().offset, -512);
        // A third descriptor fully covering the first removes it.
        l.insert(OffsetDescriptor {
            key: 1,
            start: 0,
            len: 1024,
            offset: 99,
        });
        assert_eq!(l.len(), 2);
        assert_eq!(l.find(1, 100).unwrap().offset, 99);
    }

    #[test]
    fn overlap_truncation_ignores_other_keys() {
        let mut l = EmaList::new();
        l.insert(OffsetDescriptor {
            key: 1,
            start: 0,
            len: 512,
            offset: 0,
        });
        l.insert(OffsetDescriptor {
            key: 2,
            start: 0,
            len: 512,
            offset: 7,
        });
        assert_eq!(l.len(), 2);
        assert_eq!(l.find(1, 0).unwrap().offset, 0);
    }

    #[test]
    fn remove_key_drops_all_subranges() {
        let mut l = EmaList::new();
        l.insert(OffsetDescriptor {
            key: 1,
            start: 0,
            len: 512,
            offset: 0,
        });
        l.insert(OffsetDescriptor {
            key: 1,
            start: 512,
            len: 512,
            offset: 5,
        });
        l.insert(OffsetDescriptor {
            key: 2,
            start: 0,
            len: 512,
            offset: 0,
        });
        l.remove_key(1);
        assert_eq!(l.len(), 1);
        assert!(l.find(1, 0).is_none());
        assert!(l.find(2, 0).is_some());
    }

    #[test]
    fn congruent_offset_preserves_region_offset() {
        // in0 region-aligned, out_min unaligned.
        let off = congruent_offset(1024, 700);
        let out = (1024i64 - off) as u64;
        assert!(out >= 700);
        assert_eq!(out % 512, 1024 % 512);
        // Placement for any frame keeps in-region congruence.
        let frame = 1024 + 77;
        let target = (frame as i64 - off) as u64;
        assert_eq!(target % 512, frame % 512);
        // Unaligned in0 works too.
        let off2 = congruent_offset(1027, 512);
        let out2 = (1027i64 - off2) as u64;
        assert!(out2 >= 512);
        assert_eq!(out2 % 512, 1027 % 512);
        // Exact boundary case: out_min already congruent.
        assert_eq!(congruent_offset(512, 512), 0);
    }
}

//! The generic per-layer memory-management engine.
//!
//! The paper's central observation is that the guest kernel and the
//! hypervisor run *the same* huge-page machinery one translation layer
//! apart: demand faults resolve through the same fallback ladder, a
//! khugepaged-style daemon promotes and demotes regions, accesses are
//! sampled into per-region touch counters, and fragmentation is read off
//! the layer's buddy allocator. [`LayerEngine`] implements that machinery
//! exactly once, parameterized over a tiny [`Layer`] trait that pins down
//! everything the two layers legitimately differ in: the input address
//! type (GVA vs GPA), the [`LayerKind`] driving cost-model and
//! invalidation-list selection in [`mech`], and the observability
//! identity (event layer tag + counter names). `GuestMm` and `HostMm`
//! are thin instantiations — see [`crate::guest`] and [`crate::host`].

use crate::costs::CostModel;
use crate::mech;
use crate::policy::{Effects, FaultCtx, FaultOutcome, HugePolicy, LayerKind, LayerOps};
use crate::touch::TouchMap;
use crate::vma::Vma;
use gemini_buddy::BuddyAllocator;
use gemini_obs::{cat, EventKind, Phase, Profiler, PromoMode, Recorder};
use gemini_page_table::AddressSpace;
use gemini_sim_core::{Cycles, FxHashMap, SimError, VmId, HUGE_PAGE_ORDER};
use std::collections::BTreeMap;
use std::marker::PhantomData;

/// Classifies a completed promotion by its data movement.
pub(crate) fn promo_mode(pages_copied: u64, pages_zeroed: u64) -> PromoMode {
    if pages_copied > 0 {
        PromoMode::Copy
    } else if pages_zeroed > 0 {
        PromoMode::Fill
    } else {
        PromoMode::InPlace
    }
}

/// What distinguishes one translation layer from the other.
///
/// Implemented by uninhabited marker types ([`crate::guest::GuestLayer`],
/// [`crate::host::HostLayer`]); everything here is compile-time data, so
/// the engine monomorphizes to exactly the code the two hand-written
/// managers used to contain.
pub trait Layer: std::fmt::Debug + Send {
    /// The layer's input address type (what faults, e.g. [`gemini_sim_core::Gva`]).
    type In: std::fmt::Debug + Copy;

    /// Which [`LayerKind`] this layer reports to policies and mechanics
    /// (selects fault costs and the invalidation list in [`mech`]).
    const KIND: LayerKind;

    /// The observability layer tag stamped on emitted events.
    const OBS: gemini_obs::Layer;

    /// Metrics counter bumped once per completed promotion.
    const CTR_PROMOTIONS: &'static str;

    /// Metrics counter accumulating pages copied by promotions.
    const CTR_PROMO_PAGES_COPIED: &'static str;

    /// Metrics counter bumped once per daemon demotion.
    const CTR_DEMOTIONS: &'static str;

    /// Wraps a raw frame number in the layer's input address type.
    fn input_addr(frame: u64) -> Self::In;

    /// The double-mapping error for a fault on an already-translated
    /// input address.
    fn already_mapped(addr: Self::In) -> SimError;
}

/// Where a fault landed in the faulting layer's address-space structure.
///
/// Only the guest layer has VMAs; the host faults on bare GPAs and passes
/// [`FaultSite::anonymous`]. The engine forwards both fields verbatim
/// into the policy's [`FaultCtx`].
#[derive(Debug, Clone, Copy)]
pub struct FaultSite<'a> {
    /// The VMA containing the faulting address, if the layer has VMAs.
    pub vma: Option<&'a Vma>,
    /// Whether this is the first fault ever taken in that VMA.
    pub first_touch_in_vma: bool,
}

impl FaultSite<'static> {
    /// A fault site with no VMA structure (host/EPT faults).
    pub fn anonymous() -> Self {
        Self {
            vma: None,
            first_touch_in_vma: false,
        }
    }
}

/// Disjoint mutable views into one VM's state inside the engine.
///
/// Lets layer-specific front-ends (the guest's `munmap`) walk the page
/// table, the allocator and the touch counters simultaneously without
/// fighting the borrow checker through accessor methods.
pub struct LayerParts<'a> {
    /// The VM's translation table at this layer.
    pub table: &'a mut AddressSpace,
    /// The layer's physical allocator.
    pub buddy: &'a mut BuddyAllocator,
    /// The VM's per-region touch counters.
    pub touches: &'a mut TouchMap,
    /// The layer's cost model.
    pub costs: &'a CostModel,
}

/// One translation layer's memory manager: per-VM translation tables, a
/// layer-wide physical allocator, per-VM touch sampling, and the fault /
/// daemon / demotion machinery shared by both layers.
#[derive(Debug)]
pub struct LayerEngine<L: Layer> {
    /// The layer's physical allocator (GPA frames at the guest layer,
    /// HPA frames at the host layer).
    pub buddy: BuddyAllocator,
    /// Per-VM translation table (guest page table or EPT).
    tables: BTreeMap<VmId, AddressSpace>,
    /// Sampled touch counters per (VM, 2 MiB input region).
    touches: FxHashMap<VmId, TouchMap>,
    costs: CostModel,
    rec: Recorder,
    prof: Profiler,
    _layer: PhantomData<L>,
}

impl<L: Layer> LayerEngine<L> {
    /// Creates an engine managing `frames` of this layer's physical
    /// memory.
    pub fn new(frames: u64, costs: CostModel) -> Self {
        Self {
            buddy: BuddyAllocator::new(frames),
            tables: BTreeMap::new(),
            touches: FxHashMap::default(),
            costs,
            rec: Recorder::off(),
            prof: Profiler::off(),
            _layer: PhantomData,
        }
    }

    /// Attaches an observability recorder; daemon promotions and
    /// demotions at this layer are traced through it.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Attaches a wall-clock span profiler; daemon decision scans and
    /// promotion/demotion execution at this layer record phase spans
    /// through it.
    pub fn set_profiler(&mut self, prof: Profiler) {
        self.prof = prof;
    }

    /// Registers a VM (creates its empty translation table).
    pub fn register_vm(&mut self, vm: VmId) {
        self.tables.entry(vm).or_default();
        self.touches.entry(vm).or_default();
    }

    /// The translation table of `vm`, or [`SimError::UnknownVm`] if the
    /// VM was never registered.
    pub fn table(&self, vm: VmId) -> Result<&AddressSpace, SimError> {
        self.tables.get(&vm).ok_or(SimError::UnknownVm(vm))
    }

    /// Mutable access to the translation table of `vm` (tests, targeted
    /// state setup), or [`SimError::UnknownVm`].
    pub fn table_mut(&mut self, vm: VmId) -> Result<&mut AddressSpace, SimError> {
        self.tables.get_mut(&vm).ok_or(SimError::UnknownVm(vm))
    }

    /// Registered VMs in id order.
    pub fn vms(&self) -> Vec<VmId> {
        self.tables.keys().copied().collect()
    }

    /// The touch counters of `vm`, if registered.
    pub fn touches(&self, vm: VmId) -> Option<&TouchMap> {
        self.touches.get(&vm)
    }

    /// The layer's cost model.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Records a sampled access for daemon heuristics.
    pub fn record_touch(&mut self, vm: VmId, frame: u64) {
        self.touches
            .entry(vm)
            .or_default()
            .bump(frame >> HUGE_PAGE_ORDER);
    }

    /// Disjoint mutable views into `vm`'s table, the allocator and the
    /// touch counters, for layer-specific teardown paths.
    pub fn parts_mut(&mut self, vm: VmId) -> Result<LayerParts<'_>, SimError> {
        let table = self.tables.get_mut(&vm).ok_or(SimError::UnknownVm(vm))?;
        Ok(LayerParts {
            table,
            buddy: &mut self.buddy,
            touches: self.touches.entry(vm).or_default(),
            costs: &self.costs,
        })
    }

    /// Unregisters `vm`, freeing every physical frame its translation
    /// table still maps back to the layer's buddy allocator and dropping
    /// its touch counters. Returns the number of base-page-equivalent
    /// frames returned to the allocator.
    ///
    /// The whole release runs under one [`BuddyAllocator::bulk_update`]
    /// so the persistent free-run index is rebuilt once from a rescan
    /// instead of being patched per frame — teardown of a large VM is a
    /// single index rebuild, and the rebuilt index is byte-identical to
    /// the rescan by construction.
    pub fn unregister_vm(&mut self, vm: VmId) -> Result<u64, SimError> {
        let table = self.tables.remove(&vm).ok_or(SimError::UnknownVm(vm))?;
        let huge: Vec<u64> = table.iter_huge().map(|(_, pa_huge)| pa_huge).collect();
        let base: Vec<u64> = table.iter_base().map(|(_, pa)| pa).collect();
        let freed = (huge.len() as u64) * (1u64 << HUGE_PAGE_ORDER) + base.len() as u64;
        self.buddy.bulk_update(|b| -> Result<(), SimError> {
            for pa_huge in huge {
                b.free(pa_huge << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER)?;
            }
            b.free_singles(&base)
        })?;
        self.touches.remove(&vm);
        self.drain_buddy_work();
        Ok(freed)
    }

    /// Handles a demand fault of `vm` at `frame` under `policy`.
    ///
    /// The fallback ladder, cost accounting and invalidation bookkeeping
    /// live in [`mech::resolve_fault`]; the engine enforces the shared
    /// legality rule (a huge mapping needs an empty region fully inside
    /// the faulting site's VMA, when there is one).
    pub fn fault(
        &mut self,
        vm: VmId,
        frame: u64,
        site: FaultSite<'_>,
        policy: &mut dyn HugePolicy,
    ) -> Result<(FaultOutcome, Effects), SimError> {
        let table = self.tables.get_mut(&vm).ok_or(SimError::UnknownVm(vm))?;
        if table.translate(frame).is_some() {
            return Err(L::already_mapped(L::input_addr(frame)));
        }
        let region = frame >> HUGE_PAGE_ORDER;
        let pop = table.region_population(region);
        let ctx = FaultCtx {
            layer: L::KIND,
            vm,
            addr_frame: frame,
            vma: site.vma,
            first_touch_in_vma: site.first_touch_in_vma,
            region_pop: pop,
            buddy: &self.buddy,
            table,
        };
        let huge_allowed = pop.present == 0 && ctx.region_within_vma();
        let decision = policy.fault_decision(&ctx);

        let (outcome, fx) = mech::resolve_fault(
            table,
            &mut self.buddy,
            &self.costs,
            L::KIND,
            frame,
            decision,
            huge_allowed,
        )?;
        policy.after_fault(frame, &outcome);
        self.drain_buddy_work();
        Ok((outcome, fx))
    }

    /// Feeds the allocator's deterministic work counters (runs probed by
    /// index queries, run-map mutations) into the obs registry. Counts,
    /// never wall-clock, so traced registries stay byte-identical across
    /// jobs; zero deltas are skipped to keep untraced registries sparse.
    fn drain_buddy_work(&self) {
        let (probes, updates) = self.buddy.take_work_counters();
        if probes > 0 {
            self.rec.counter_add("buddy.run_probes", probes);
        }
        if updates > 0 {
            self.rec.counter_add("buddy.index_updates", updates);
        }
    }

    /// Runs one daemon pass of `policy` over `vm`'s table, executing the
    /// promotions and demotions it requests.
    pub fn run_daemon(
        &mut self,
        vm: VmId,
        policy: &mut dyn HugePolicy,
        now: Cycles,
        vcpus: u32,
    ) -> Result<Effects, SimError> {
        let table = self.tables.get_mut(&vm).ok_or(SimError::UnknownVm(vm))?;
        let touches = self.touches.entry(vm).or_default();
        let mut ops_view = LayerOps {
            layer: L::KIND,
            vm,
            table,
            buddy: &mut self.buddy,
            touches,
            now,
        };
        let requests = {
            let _scan = self.prof.span(Phase::ContiguityScan);
            policy.daemon(&mut ops_view)
        };
        let mut ops_view = LayerOps {
            layer: L::KIND,
            vm,
            table,
            buddy: &mut self.buddy,
            touches,
            now,
        };
        let demotions = {
            let _scan = self.prof.span(Phase::ContiguityScan);
            policy.select_demotions(&mut ops_view)
        };
        let mut fx = Effects::cost(Cycles(
            self.costs.scan_per_region.0 * (requests.len() as u64 + 1),
        ));
        for op in requests {
            let region = op.region;
            let was_huge = table.huge_leaf(region).is_some();
            let opfx = {
                let _promo = self.prof.span(Phase::Promotion);
                mech::execute_promotion(table, &mut self.buddy, &self.costs, L::KIND, op, vcpus)
            };
            if self.rec.wants(cat::PROMOTION) && !was_huge && table.huge_leaf(region).is_some() {
                let (copied, zeroed) = (opfx.pages_copied, opfx.pages_zeroed);
                self.rec
                    .emit(cat::PROMOTION, vm.0, L::OBS, || EventKind::Promotion {
                        region,
                        mode: promo_mode(copied, zeroed),
                        pages_copied: copied,
                        pages_zeroed: zeroed,
                    });
                self.rec.counter_add(L::CTR_PROMOTIONS, 1);
                self.rec.counter_add(L::CTR_PROMO_PAGES_COPIED, copied);
            }
            fx.merge(opfx);
        }
        for region in demotions {
            let _demo = self.prof.span(Phase::Demotion);
            if let Ok(dfx) = mech::execute_demotion(table, &self.costs, L::KIND, region, vcpus) {
                self.rec
                    .emit(cat::DEMOTION, vm.0, L::OBS, || EventKind::Demotion {
                        region,
                    });
                self.rec.counter_add(L::CTR_DEMOTIONS, 1);
                fx.merge(dfx);
            }
        }
        self.drain_buddy_work();
        Ok(fx)
    }

    /// Demotes (splits) one huge mapping of `vm`.
    pub fn demote(&mut self, vm: VmId, region: u64, vcpus: u32) -> Result<Effects, SimError> {
        let table = self.tables.get_mut(&vm).ok_or(SimError::UnknownVm(vm))?;
        mech::execute_demotion(table, &self.costs, L::KIND, region, vcpus)
    }

    /// The layer's fragmentation index at huge-page order.
    pub fn fragmentation_index(&self) -> f64 {
        self.buddy.fragmentation_index(HUGE_PAGE_ORDER)
    }
}

// Machines move across executor worker threads whole; both engine
// instantiations (including their recorder handles) must stay `Send`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<LayerEngine<crate::guest::GuestLayer>>();
    assert_send::<LayerEngine<crate::host::HostLayer>>();
};

//! Hardware performance counters for the MMU model.
//!
//! These mirror the `perf` events the paper uses: TLB misses (the paper's
//! Figures 11 and 15 report them normalized) and page-walk duration. The
//! Gemini booking-timeout controller (Algorithm 1) samples
//! [`PerfCounters::stlb_misses`] deltas as its TLB-miss feedback signal.

use gemini_sim_core::Cycles;

/// Monotonic counters accumulated by [`crate::MmuSim`].
///
/// These are part of every run's compared output (results, goldens, the
/// parity suites), so the closed-form hit-run batch path must advance
/// them exactly as the faithful path would. Batching *observability*
/// (how many runs took the fast path) therefore lives in
/// [`crate::BatchStats`], not here: those numbers legitimately differ
/// between a `--no-batch` leg and a batched leg and would break
/// byte-identity if they were fields of this struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Total translated data accesses.
    pub accesses: u64,
    /// Accesses satisfied by the L1 TLBs.
    pub l1_hits: u64,
    /// Accesses satisfied by the unified L2 STLB.
    pub stlb_hits: u64,
    /// Accesses that required a page walk (the "TLB misses" the paper
    /// plots).
    pub stlb_misses: u64,
    /// Walks whose installed entry was a 2 MiB (well-aligned) translation.
    pub huge_walks: u64,
    /// Memory references performed by the page walker.
    pub walk_mem_refs: u64,
    /// Nested-TLB hits during walks.
    pub ntlb_hits: u64,
    /// Nested-TLB misses during walks (each costs an EPT sub-walk).
    pub ntlb_misses: u64,
    /// Guest paging-structure-cache hits.
    pub gpwc_hits: u64,
    /// EPT paging-structure-cache hits.
    pub epwc_hits: u64,
    /// Cycles spent translating (TLB latency plus walks).
    pub translation_cycles: u64,
    /// TLB shootdowns absorbed (invalidations due to remote map changes).
    pub shootdowns: u64,
}

impl PerfCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// TLB miss ratio over all accesses (0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.stlb_misses as f64 / self.accesses as f64
        }
    }

    /// Average page-walk memory references per walk (0 when no walks).
    pub fn refs_per_walk(&self) -> f64 {
        if self.stlb_misses == 0 {
            0.0
        } else {
            self.walk_mem_refs as f64 / self.stlb_misses as f64
        }
    }

    /// Total translation overhead as [`Cycles`].
    pub fn translation_time(&self) -> Cycles {
        Cycles(self.translation_cycles)
    }

    /// Difference `self - earlier`, for sampling deltas over a period.
    pub fn delta_since(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            accesses: self.accesses - earlier.accesses,
            l1_hits: self.l1_hits - earlier.l1_hits,
            stlb_hits: self.stlb_hits - earlier.stlb_hits,
            stlb_misses: self.stlb_misses - earlier.stlb_misses,
            huge_walks: self.huge_walks - earlier.huge_walks,
            walk_mem_refs: self.walk_mem_refs - earlier.walk_mem_refs,
            ntlb_hits: self.ntlb_hits - earlier.ntlb_hits,
            ntlb_misses: self.ntlb_misses - earlier.ntlb_misses,
            gpwc_hits: self.gpwc_hits - earlier.gpwc_hits,
            epwc_hits: self.epwc_hits - earlier.epwc_hits,
            translation_cycles: self.translation_cycles - earlier.translation_cycles,
            shootdowns: self.shootdowns - earlier.shootdowns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = PerfCounters::new();
        assert_eq!(c.miss_ratio(), 0.0);
        assert_eq!(c.refs_per_walk(), 0.0);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let earlier = PerfCounters {
            accesses: 10,
            stlb_misses: 2,
            ..Default::default()
        };
        let later = PerfCounters {
            accesses: 25,
            stlb_misses: 5,
            translation_cycles: 100,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.accesses, 15);
        assert_eq!(d.stlb_misses, 3);
        assert_eq!(d.translation_cycles, 100);
        assert_eq!(d.miss_ratio(), 0.2);
    }
}

//! Record/replay parity suite (DESIGN.md §15).
//!
//! A `gemini-trace-v1` trace captures the workload event stream — the
//! only input the simulator consumes besides its own configuration —
//! so replaying a trace must reproduce the recorded run byte for byte,
//! on every scenario in the registry and at any worker count. This
//! suite also pins down the failure surface: damaged, truncated or
//! future-versioned traces surface as typed [`SimError`] variants,
//! never as panics or silently-short runs.

use gemini_harness::runner::{record_workload_on, replay_trace_on, run_workload_on};
use gemini_harness::{run_cells, trace, Scale};
use gemini_sim_core::SimError;
use gemini_vm_sim::{RunResult, SystemKind, REGISTRY};
use gemini_workloads::{spec_by_name, TraceStream, WorkloadSpec};
use std::io::{BufReader, Cursor, Write};

/// Small enough for 12 record+replay pairs per test, large enough for
/// churn, daemon passes and latency tracking to all fire.
fn replay_scale() -> Scale {
    Scale {
        ops: 1_200,
        ..Scale::quick()
    }
}

fn redis() -> WorkloadSpec {
    spec_by_name("Redis").expect("Redis is in the catalog")
}

/// Records `system` on the given workload and returns the live result
/// plus the raw trace bytes.
fn record(
    system: SystemKind,
    spec: &WorkloadSpec,
    fragmented: bool,
    seed: u64,
) -> (RunResult, Vec<u8>) {
    let mut bytes = Vec::new();
    let (result, events) = record_workload_on(
        system,
        spec,
        &replay_scale(),
        "quick",
        fragmented,
        seed,
        &mut bytes,
    )
    .expect("recording succeeds");
    assert!(events > 0, "recording produced no events");
    (result, bytes)
}

fn replay(system: SystemKind, bytes: &[u8]) -> Result<RunResult, SimError> {
    let mut stream = TraceStream::new(Cursor::new(bytes))?;
    let fragmented = stream.header().fragmented;
    replay_trace_on(system, &mut stream, &replay_scale(), fragmented)
}

fn assert_identical(label: &str, live: &RunResult, replayed: &RunResult) {
    assert_eq!(
        format!("{live:?}"),
        format!("{replayed:?}"),
        "{label}: replay diverged from the live run"
    );
    assert_eq!(
        trace::result_json(live),
        trace::result_json(replayed),
        "{label}: JSON export diverged"
    );
}

#[test]
fn every_registry_scenario_replays_byte_identical() {
    let spec = redis();
    for (system, sspec) in REGISTRY {
        let (live, bytes) = record(*system, &spec, true, 7);
        let direct = run_workload_on(*system, &spec, &replay_scale(), true, 7).unwrap();
        assert_identical(&format!("{}/record", sspec.label), &live, &direct);
        let replayed = replay(*system, &bytes).expect("replay succeeds");
        assert_identical(&format!("{}/replay", sspec.label), &live, &replayed);
    }
}

#[test]
fn trace_bytes_are_machine_independent() {
    // Event generation never observes simulated machine state, so the
    // trace a scenario records is a function of (workload, scale, seed)
    // only — every system writes the identical byte stream.
    let spec = redis();
    let (_, reference) = record(SystemKind::HostBVmB, &spec, false, 42);
    for (system, sspec) in REGISTRY.iter().skip(1) {
        let (_, bytes) = record(*system, &spec, false, 42);
        assert_eq!(
            bytes, reference,
            "{}: recorded trace differs from Host-B-VM-B's",
            sspec.label
        );
    }
}

#[test]
fn one_trace_replays_on_every_system_at_any_jobs() {
    // One recording, replayed across all evaluated systems on the
    // worker pool: jobs=1 and jobs=4 must produce identical grids, and
    // each cell must match its live counterpart.
    let spec = redis();
    let (_, bytes) = record(SystemKind::Gemini, &spec, true, 5);
    let grid = |jobs: usize| -> Vec<String> {
        let cells: Vec<_> = SystemKind::evaluated()
            .into_iter()
            .map(|system| {
                let bytes = bytes.clone();
                move || {
                    let r = replay(system, &bytes).expect("replay succeeds");
                    format!("{r:?}")
                }
            })
            .collect();
        run_cells(jobs, cells)
    };
    let sequential = grid(1);
    let parallel = grid(4);
    assert_eq!(sequential, parallel, "replay grid diverged with jobs=4");
    for (system, rendered) in SystemKind::evaluated().into_iter().zip(&sequential) {
        let live = run_workload_on(system, &spec, &replay_scale(), true, 5).unwrap();
        assert_eq!(
            &format!("{live:?}"),
            rendered,
            "{}: parallel replay diverged from live run",
            live.system
        );
    }
}

#[test]
fn file_and_memory_streams_are_equivalent() {
    let spec = spec_by_name("Xapian").expect("Xapian is in the catalog");
    let (live, bytes) = record(SystemKind::Gemini, &spec, false, 9);
    let path =
        std::env::temp_dir().join(format!("gemini_trace_replay_{}.jsonl", std::process::id()));
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(&bytes))
        .expect("writing temp trace");
    let mut stream = TraceStream::new(BufReader::new(
        std::fs::File::open(&path).expect("reopening temp trace"),
    ))
    .expect("header parses from file");
    let from_file =
        replay_trace_on(SystemKind::Gemini, &mut stream, &replay_scale(), false).unwrap();
    let _ = std::fs::remove_file(&path);
    let from_memory = replay(SystemKind::Gemini, &bytes).unwrap();
    assert_identical("file-vs-memory", &from_file, &from_memory);
    assert_identical("file-vs-live", &live, &from_file);
}

#[test]
fn truncated_traces_fail_with_typed_errors_at_any_cut() {
    let (_, bytes) = record(SystemKind::Thp, &redis(), false, 3);
    // Cut on a line boundary (drops the end marker) and mid-record.
    let lines: Vec<&[u8]> = bytes.split_inclusive(|&b| b == b'\n').collect();
    let cut_lines: Vec<u8> = lines[..lines.len() - 3].concat();
    let cut_bytes = &bytes[..bytes.len() * 2 / 3];
    for (label, damaged) in [("line-cut", cut_lines.as_slice()), ("byte-cut", cut_bytes)] {
        match replay(SystemKind::Thp, damaged) {
            Err(SimError::BadTrace { .. }) => {}
            other => panic!("{label}: expected BadTrace, got {other:?}"),
        }
    }
}

#[test]
fn garbage_and_version_mismatch_are_typed_errors() {
    let (_, bytes) = record(SystemKind::Thp, &redis(), false, 3);
    let text = String::from_utf8(bytes).expect("traces are UTF-8");

    // Garbage header: not a trace at all.
    match TraceStream::new(Cursor::new(b"not a trace\n".to_vec())) {
        Err(SimError::BadTrace { line: 1, .. }) => {}
        other => panic!("expected BadTrace at line 1, got {other:?}"),
    }

    // Future format version: recognized but refused, with both
    // versions in the error.
    let future = text.replacen("\"version\":1", "\"version\":2", 1);
    match TraceStream::new(Cursor::new(future.into_bytes())) {
        Err(SimError::TraceVersion {
            found: 2,
            supported: 1,
        }) => {}
        other => panic!("expected TraceVersion, got {other:?}"),
    }

    // A corrupted record mid-stream: the error names the actual line.
    let mut lines: Vec<&str> = text.lines().collect();
    lines[20] = "[\"Q\",1,2]";
    let damaged = lines.join("\n") + "\n";
    match replay(SystemKind::Thp, damaged.as_bytes()) {
        Err(SimError::BadTrace { line: 21, .. }) => {}
        other => panic!("expected BadTrace at line 21, got {other:?}"),
    }
}

#[test]
fn unknown_workload_names_replay_fine() {
    // External tooling may write traces for workloads outside the
    // catalog; the name is carried verbatim and the run is driven
    // entirely by the header's parameters.
    let (live, bytes) = record(SystemKind::Gemini, &redis(), false, 8);
    let text = String::from_utf8(bytes).expect("traces are UTF-8");
    let renamed = text.replacen("\"workload\":\"Redis\"", "\"workload\":\"ExternalApp\"", 1);
    let replayed = replay(SystemKind::Gemini, renamed.as_bytes()).expect("replay succeeds");
    assert_eq!(replayed.workload, "ExternalApp");
    // Same stream, same machine: everything but the label matches.
    assert_eq!(
        format!("{live:?}").replace("Redis", "ExternalApp"),
        format!("{replayed:?}")
    );
}

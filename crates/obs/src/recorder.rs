//! The shared [`Recorder`] handle threaded through every layer of the
//! simulator, plus its [`TraceConfig`].
//!
//! A `Recorder` is a cheaply clonable handle (three `Arc`s) over one
//! shared recording state. Every subsystem — the machine, the guest
//! and host memory managers, the Gemini mechanisms, the MMU model —
//! holds a clone and emits into the same ring, registry and sample
//! vector. The hot-path cost when tracing is off is a single relaxed
//! atomic load and branch per call site: event payloads are built
//! inside closures that never run for disabled categories.
//!
//! The handle is `Send`: a machine (and its recorder) can be built and
//! driven on a worker thread of the parallel experiment executor, and
//! per-cell recorders can be [merged](Recorder::merge_from) into one
//! after the barrier. One machine is still driven by one thread at a
//! time; the mutex only serializes the merge and cross-thread
//! snapshots, it is not a concurrency model for the simulator itself.

use crate::event::{cat, Event, EventKind, Layer, SamplePoint};
use crate::metrics::Registry;
use gemini_sim_core::Cycles;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Configuration for a [`Recorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Union of [`cat`] bits to record; `cat::NONE` disables tracing.
    pub mask: u32,
    /// Maximum events held; older events are dropped (and counted)
    /// once the ring is full.
    pub ring_capacity: usize,
    /// Cycle interval between time-series samples; `None` disables
    /// the sampler.
    pub sample_interval: Option<Cycles>,
}

impl TraceConfig {
    /// Tracing fully disabled (the default for experiments).
    pub fn off() -> Self {
        Self {
            mask: cat::NONE,
            ring_capacity: 0,
            sample_interval: None,
        }
    }

    /// Every category on, a 1 Mi-event ring, and sampling every
    /// 2 ms of simulated time.
    pub fn all() -> Self {
        Self {
            mask: cat::ALL,
            ring_capacity: 1 << 20,
            sample_interval: Some(Cycles::from_millis(2.0)),
        }
    }

    /// True when neither events nor samples would ever be recorded.
    pub fn is_off(&self) -> bool {
        self.mask == cat::NONE && self.sample_interval.is_none()
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::off()
    }
}

#[derive(Debug)]
struct Inner {
    now: u64,
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
    interval: u64,
    samples: Vec<SamplePoint>,
    registry: Registry,
}

/// Shared handle into one recording session.
///
/// Clones are cheap and all observe the same state. The default
/// recorder ([`Recorder::off`]) records nothing.
#[derive(Debug, Clone)]
pub struct Recorder {
    mask: Arc<AtomicU32>,
    next_sample: Arc<AtomicU64>,
    inner: Arc<Mutex<Inner>>,
}

// The executor sends per-cell recorders back across the worker-pool
// barrier; keep that property from regressing silently.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Recorder>();
};

impl Default for Recorder {
    fn default() -> Self {
        Self::off()
    }
}

impl Recorder {
    /// Builds a recorder from `cfg`.
    pub fn new(cfg: &TraceConfig) -> Self {
        let interval = cfg.sample_interval.map_or(0, |c| c.0.max(1));
        Self {
            mask: Arc::new(AtomicU32::new(cfg.mask)),
            next_sample: Arc::new(AtomicU64::new(if interval == 0 { u64::MAX } else { 0 })),
            inner: Arc::new(Mutex::new(Inner {
                now: 0,
                ring: VecDeque::new(),
                capacity: cfg.ring_capacity,
                dropped: 0,
                interval,
                samples: Vec::new(),
                registry: Registry::default(),
            })),
        }
    }

    /// Locks the shared state; recorder methods never hold this across
    /// a user callback, so the lock cannot be re-entered.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("recorder lock poisoned")
    }

    /// A recorder that records nothing (all categories off, sampler
    /// off). This is what subsystems hold before a real recorder is
    /// attached.
    pub fn off() -> Self {
        Self::new(&TraceConfig::off())
    }

    /// True when at least one event category is enabled.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.mask.load(Ordering::Relaxed) != cat::NONE
    }

    /// True when events of category `c` are being recorded.
    #[inline]
    pub fn wants(&self, c: u32) -> bool {
        self.mask.load(Ordering::Relaxed) & c != 0
    }

    /// Advances the recorder's notion of the current simulated cycle.
    ///
    /// Fault paths deep in the stack have no clock of their own; the
    /// machine stamps the recorder before dispatching each workload
    /// event so their emissions carry the right cycle.
    #[inline]
    pub fn set_cycle(&self, now: Cycles) {
        if self.is_on() {
            self.lock().now = now.0;
        }
    }

    /// Records one event of category `c` for VM `vm` at layer
    /// `layer`. The payload closure only runs when the category is
    /// enabled.
    #[inline]
    pub fn emit(&self, c: u32, vm: u32, layer: Layer, kind: impl FnOnce() -> EventKind) {
        if !self.wants(c) {
            return;
        }
        let mut inner = self.lock();
        let event = Event {
            cycle: inner.now,
            vm,
            layer,
            kind: kind(),
        };
        if inner.ring.len() >= inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        if inner.capacity > 0 {
            inner.ring.push_back(event);
        } else {
            inner.dropped += 1;
        }
    }

    /// Adds `delta` to the registry counter `name` (no-op when
    /// tracing is off).
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if self.is_on() {
            self.lock().registry.counter_add(name, delta);
        }
    }

    /// Sets the registry gauge `name` (no-op when tracing is off).
    #[inline]
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if self.is_on() {
            self.lock().registry.gauge_set(name, value);
        }
    }

    /// Records `value` into the registry histogram `name` (no-op when
    /// tracing is off).
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if self.is_on() {
            self.lock().registry.observe(name, value);
        }
    }

    /// True when the sampler is enabled and a sample is due at `now`.
    #[inline]
    pub fn sample_due(&self, now: Cycles) -> bool {
        now.0 >= self.next_sample.load(Ordering::Relaxed)
    }

    /// The cycle at which the next time-series sample falls due
    /// (`Cycles(u64::MAX)` when the sampler is disabled, i.e. never).
    /// [`Recorder::sample_due`] is exactly `now >= next_sample_at()`;
    /// the machine's fast-forward gate folds this into its wakeup
    /// deadline so quiescent spans skip sampling checks in bulk.
    #[inline]
    pub fn next_sample_at(&self) -> Cycles {
        Cycles(self.next_sample.load(Ordering::Relaxed))
    }

    /// Appends `point` to the time series and schedules the next
    /// sample one interval after `point.cycle`.
    pub fn record_sample(&self, point: SamplePoint) {
        let mut inner = self.lock();
        self.next_sample.store(
            point.cycle.saturating_add(inner.interval),
            Ordering::Relaxed,
        );
        inner.samples.push(point);
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.lock().ring.iter().cloned().collect()
    }

    /// Number of events dropped because the ring was full (or had
    /// zero capacity).
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Snapshot of the sampled time series, oldest first.
    pub fn samples(&self) -> Vec<SamplePoint> {
        self.lock().samples.clone()
    }

    /// Snapshot of the metrics registry.
    pub fn registry(&self) -> Registry {
        self.lock().registry.clone()
    }

    /// Folds another recorder's recorded state into this one, in
    /// order: `other`'s events are appended after this recorder's
    /// (respecting this ring's capacity and drop accounting), samples
    /// are appended, and the registries merge (counters and histogram
    /// buckets add, gauges take `other`'s value).
    ///
    /// The parallel executor calls this once per cell, in submission
    /// order, after the barrier — so the merged recorder is identical
    /// however the cells were scheduled.
    pub fn merge_from(&self, other: &Recorder) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let (events, samples, dropped, registry) = {
            let o = other.lock();
            (
                o.ring.iter().cloned().collect::<Vec<_>>(),
                o.samples.clone(),
                o.dropped,
                o.registry.clone(),
            )
        };
        let mut inner = self.lock();
        inner.dropped += dropped;
        for event in events {
            if inner.ring.len() >= inner.capacity {
                inner.ring.pop_front();
                inner.dropped += 1;
            }
            if inner.capacity > 0 {
                inner.ring.push_back(event);
            } else {
                inner.dropped += 1;
            }
        }
        inner.samples.extend(samples);
        inner.registry.merge_from(&registry);
    }

    /// Event counts per `(kind label, layer)` in deterministic order.
    pub fn event_summary(&self) -> Vec<(&'static str, Layer, u64)> {
        let mut counts: BTreeMap<(&'static str, Layer), u64> = BTreeMap::new();
        for e in self.lock().ring.iter() {
            *counts.entry((e.kind.label(), e.layer)).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|((label, layer), n)| (label, layer, n))
            .collect()
    }

    /// Serializes events, samples and registry as JSON Lines rows in
    /// a stable order: events (oldest first), then samples, then the
    /// registry.
    pub fn to_json_lines(&self) -> Vec<String> {
        let inner = self.lock();
        let mut out = Vec::with_capacity(inner.ring.len() + inner.samples.len());
        for e in inner.ring.iter() {
            out.push(e.to_json());
        }
        for s in inner.samples.iter() {
            out.push(s.to_json());
        }
        out.extend(inner.registry.to_json_lines());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(frame: u64) -> EventKind {
        EventKind::Fault {
            frame,
            huge: false,
            honored: true,
        }
    }

    #[test]
    fn off_recorder_records_nothing() {
        let r = Recorder::off();
        r.set_cycle(Cycles(10));
        r.emit(cat::FAULT, 1, Layer::Guest, || unreachable!());
        r.counter_add("x", 1);
        assert!(!r.is_on());
        assert!(!r.sample_due(Cycles(u64::MAX - 1)));
        assert!(r.events().is_empty());
        assert!(r.registry().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn category_filter_is_respected() {
        let r = Recorder::new(&TraceConfig {
            mask: cat::BOOKING,
            ring_capacity: 8,
            sample_interval: None,
        });
        r.emit(cat::FAULT, 1, Layer::Guest, || unreachable!());
        r.emit(cat::BOOKING, 1, Layer::Host, || EventKind::Booked {
            region: 3,
        });
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events()[0].kind, EventKind::Booked { region: 3 });
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let r = Recorder::new(&TraceConfig {
            mask: cat::ALL,
            ring_capacity: 2,
            sample_interval: None,
        });
        for i in 0..5 {
            r.set_cycle(Cycles(i));
            r.emit(cat::FAULT, 0, Layer::Guest, || fault(i));
        }
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].cycle, 3, "oldest surviving event");
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::new(&TraceConfig::all());
        let clone = r.clone();
        clone.set_cycle(Cycles(42));
        clone.emit(cat::SHOOTDOWN, 2, Layer::Sys, || EventKind::Shootdown {
            rounds: 1,
        });
        clone.counter_add("mm.test", 7);
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events()[0].cycle, 42);
        assert_eq!(r.registry().counter("mm.test"), 7);
    }

    #[test]
    fn sampler_paces_by_interval() {
        let r = Recorder::new(&TraceConfig {
            mask: cat::NONE,
            ring_capacity: 0,
            sample_interval: Some(Cycles(100)),
        });
        assert!(r.sample_due(Cycles(0)), "first sample immediately");
        r.record_sample(SamplePoint {
            cycle: 0,
            host_fmfi: 0.0,
            guest_fmfi: 0.0,
            aligned_rate: 0.0,
            tlb_miss_rate: 0.0,
            free_order9: 0,
        });
        assert!(!r.sample_due(Cycles(99)));
        assert!(r.sample_due(Cycles(100)));
        assert_eq!(r.samples().len(), 1);
    }

    #[test]
    fn merge_preserves_order_capacity_and_registry() {
        let cfg = TraceConfig {
            mask: cat::ALL,
            ring_capacity: 3,
            sample_interval: None,
        };
        let a = Recorder::new(&cfg);
        let b = Recorder::new(&cfg);
        a.set_cycle(Cycles(1));
        a.emit(cat::FAULT, 0, Layer::Guest, || fault(1));
        a.counter_add("mm.test", 2);
        for i in 2..5u64 {
            b.set_cycle(Cycles(i));
            b.emit(cat::FAULT, 0, Layer::Guest, || fault(i));
        }
        b.counter_add("mm.test", 5);
        a.merge_from(&b);
        let events = a.events();
        // 1 + 3 events into a 3-slot ring: the oldest is dropped.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].cycle, 2);
        assert_eq!(events[2].cycle, 4);
        assert_eq!(a.dropped(), 1);
        assert_eq!(a.registry().counter("mm.test"), 7);
        // Merging a recorder into itself is a no-op, not a deadlock.
        a.merge_from(&a.clone());
        assert_eq!(a.events().len(), 3);
    }

    #[test]
    fn summary_groups_by_kind_and_layer() {
        let r = Recorder::new(&TraceConfig::all());
        for _ in 0..3 {
            r.emit(cat::FAULT, 1, Layer::Guest, || fault(0));
        }
        r.emit(cat::FAULT, 1, Layer::Host, || fault(0));
        assert_eq!(
            r.event_summary(),
            vec![("fault", Layer::Guest, 3), ("fault", Layer::Host, 1)]
        );
    }
}

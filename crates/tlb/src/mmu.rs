//! The MMU simulator: TLB lookups and two-dimensional page walks.
//!
//! [`MmuSim::access`] is the hot path: given a guest virtual frame and the
//! *resolved* pair of leaf sizes for its translation (guest PTE size and
//! host EPT leaf size), it simulates the hardware's behaviour and returns
//! the cycle cost. The rule at the center of the paper is enforced here:
//!
//! > a 2 MiB TLB entry may be installed only when **both** layers map the
//! > page with 2 MiB leaves (a *well-aligned* huge page). Any other
//! > combination splinters to 4 KiB entries.

use crate::cache::SetAssocCache;
use crate::config::MmuConfig;
use crate::counters::PerfCounters;
use gemini_obs::{cat, EventKind, Layer, Recorder};
use gemini_page_table::LeafSize;
use gemini_sim_core::{Cycles, SimError, VmId, HUGE_PAGE_ORDER};

/// The already-resolved translation of one guest virtual frame.
///
/// The memory manager resolves the two page-table layers (it owns them);
/// the MMU model only needs the leaf geometry and the output frames to
/// simulate caching behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedTranslation {
    /// Guest physical base-frame the GVA maps to.
    pub gpa_frame: u64,
    /// Size of the guest page-table leaf (GVA → GPA).
    pub guest_leaf: LeafSize,
    /// Size of the EPT leaf backing the GPA (GPA → HPA).
    pub host_leaf: LeafSize,
}

impl ResolvedTranslation {
    /// True when this translation is a well-aligned huge page: huge leaves
    /// at both layers, so hardware may cache a 2 MiB TLB entry.
    pub fn well_aligned_huge(self) -> bool {
        self.guest_leaf == LeafSize::Huge && self.host_leaf == LeafSize::Huge
    }
}

/// Outcome of simulating one translated access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Translation cost in cycles (excludes the data access itself).
    pub cycles: Cycles,
    /// True when a page walk was required (an STLB miss — what the paper
    /// counts as a "TLB miss").
    pub walked: bool,
    /// True when the installed/used entry was a 2 MiB translation.
    pub huge_entry: bool,
}

/// Tags distinguishing key spaces inside the opaque cache keys.
const SIZE_BASE: u128 = 0;
const SIZE_HUGE: u128 = 1;

/// Closed-form hit-run batching statistics.
///
/// Deliberately *not* part of [`PerfCounters`]: the batched and faithful
/// paths must produce byte-identical `PerfCounters` (they are compared in
/// the parity suites), while these fields observe the fast path itself
/// and so necessarily differ between the two legs. They surface through
/// the `tlb.batch_*` recorder counters and [`MmuSim::batch_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Closed-form runs applied.
    pub runs: u64,
    /// Accesses advanced in closed form (each run's leading access is
    /// processed faithfully and not counted here).
    pub hits: u64,
    /// Candidate runs that fell back to the faithful path (stability
    /// epoch moved underneath the window) or were cut short by a
    /// sampling/daemon deadline rather than ending naturally.
    pub breaks: u64,
}

impl BatchStats {
    /// Sums two stat blocks; used when aggregating across VMs.
    pub fn merged(self, other: BatchStats) -> BatchStats {
        BatchStats {
            runs: self.runs + other.runs,
            hits: self.hits + other.hits,
            breaks: self.breaks + other.breaks,
        }
    }
}

/// The simulated MMU for one physical core (shared by all VMs on it, with
/// VM-tagged entries, like VPID/EP4TA tagging on real hardware).
#[derive(Debug, Clone)]
pub struct MmuSim {
    cfg: MmuConfig,
    l1_4k: SetAssocCache,
    l1_2m: SetAssocCache,
    stlb: SetAssocCache,
    ntlb: SetAssocCache,
    /// Guest paging-structure caches for levels 4, 3, 2 (index 0 = L4).
    gpwc: [SetAssocCache; 3],
    /// EPT paging-structure caches for levels 4, 3, 2 (index 0 = L4).
    epwc: [SetAssocCache; 3],
    counters: PerfCounters,
    /// Page size of the most recent TLB hit — a probe-order heuristic
    /// for [`MmuSim::access_unresolved`], with no effect on simulated
    /// state.
    last_hit_huge: bool,
    /// Stability epoch: bumped by every mutation that can change *which*
    /// translations are resident (fills with their possible evictions,
    /// invalidations, shootdowns, and external runtime/daemon passes via
    /// [`MmuSim::note_external_pass`]). Pure lookups never bump it: a hit
    /// cannot evict, so residency established while the epoch holds still
    /// stands. [`MmuSim::advance_batched_hits`] refuses to run against a
    /// stale epoch.
    stability_epoch: u64,
    batch: BatchStats,
    rec: Recorder,
    rec_vm: u32,
}

// Machines (and the MMU model they own) run whole on executor worker
// threads; the recorder handle inside must keep the type `Send`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<MmuSim>();
};

impl MmuSim {
    /// Creates an MMU with the given geometry.
    ///
    /// Fails with [`SimError::BadCacheGeometry`] when any structure's
    /// `entries / assoc` is not a power of two (see
    /// [`SetAssocCache::new`]).
    pub fn new(cfg: MmuConfig) -> Result<Self, SimError> {
        Ok(Self {
            l1_4k: SetAssocCache::new(cfg.l1_4k_entries, cfg.l1_4k_assoc)?,
            l1_2m: SetAssocCache::new(cfg.l1_2m_entries, cfg.l1_2m_assoc)?,
            stlb: SetAssocCache::new(cfg.stlb_entries, cfg.stlb_assoc)?,
            ntlb: SetAssocCache::new(cfg.ntlb_entries, cfg.ntlb_assoc)?,
            gpwc: [
                SetAssocCache::new(cfg.gpwc_entries[0], 2)?,
                SetAssocCache::new(cfg.gpwc_entries[1], 2)?,
                SetAssocCache::new(cfg.gpwc_entries[2], 4)?,
            ],
            epwc: [
                SetAssocCache::new(cfg.epwc_entries[0], 2)?,
                SetAssocCache::new(cfg.epwc_entries[1], 2)?,
                SetAssocCache::new(cfg.epwc_entries[2], 4)?,
            ],
            counters: PerfCounters::new(),
            last_hit_huge: false,
            stability_epoch: 0,
            batch: BatchStats::default(),
            cfg,
            rec: Recorder::off(),
            rec_vm: 0,
        })
    }

    /// Attaches an observability recorder; shootdowns charged to this
    /// MMU are traced as events of VM `vm`.
    pub fn set_recorder(&mut self, rec: Recorder, vm: u32) {
        self.rec = rec;
        self.rec_vm = vm;
    }

    /// Returns the accumulated performance counters.
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Current stability epoch. Residency observed at epoch `e` may be
    /// assumed to still hold exactly while `stability_epoch() == e`.
    #[inline]
    pub fn stability_epoch(&self) -> u64 {
        self.stability_epoch
    }

    /// Bumps the stability epoch for a mutation performed outside this
    /// module — a daemon or runtime pass that may have promoted, demoted
    /// or unmapped memory. Conservative over-bumping is always sound (it
    /// only declines fast-path batches); a missed bump is not.
    #[inline]
    pub fn note_external_pass(&mut self) {
        self.stability_epoch += 1;
    }

    /// Closed-form batching statistics accumulated so far.
    pub fn batch_stats(&self) -> BatchStats {
        self.batch
    }

    /// Records that a batch candidate was cut short by a deadline (the
    /// caller's sampling or daemon boundary) rather than ending with the
    /// access stream.
    #[inline]
    pub fn note_batch_break(&mut self) {
        self.batch.breaks += 1;
        self.rec.counter_add("tlb.batch_breaks", 1);
    }

    /// Advances `n` accesses that provably hit the resident L1 entry for
    /// (`vm`, `gva_frame`) in closed form: counters, cycle cost and the
    /// probe-order heuristic move exactly as `n` faithful L1 hits would,
    /// but the set arrays are never touched.
    ///
    /// Soundness (DESIGN.md §16): the caller has just performed one
    /// faithful access for this key, which left the entry resident in the
    /// L1 array for `huge` *and* holding the newest stamp. Under the
    /// deferred-stamp rule ([`SetAssocCache::lookup`]) each further
    /// consecutive hit on the same key is a complete no-op on cache
    /// state, and an L1 hit never fills or evicts — so the only faithful
    /// effects are the counter and `last_hit_huge` updates reproduced
    /// here. The claim holds only while no fill/invalidate intervened;
    /// `epoch_at` (captured right after the leading access) proves that.
    /// Returns `None` — and the caller must fall back to the faithful
    /// path — if the epoch has moved.
    pub fn advance_batched_hits(
        &mut self,
        vm: VmId,
        gva_frame: u64,
        huge: bool,
        n: u64,
        epoch_at: u64,
    ) -> Option<Cycles> {
        if self.stability_epoch != epoch_at {
            self.note_batch_break();
            return None;
        }
        // Debug cross-check: recompute residency from the set arrays —
        // the entry the batch claims to hit must actually be there.
        debug_assert!(
            self.l1_of(huge).probe(Self::tlb_key(vm, gva_frame, huge)),
            "batched key not L1-resident: vm={vm:?} gva_frame={gva_frame:#x} huge={huge}"
        );
        self.counters.accesses += n;
        self.counters.l1_hits += n;
        self.counters.translation_cycles += n * self.cfg.l1_hit_cycles;
        self.last_hit_huge = huge;
        self.batch.runs += 1;
        self.batch.hits += n;
        self.rec.counter_add("tlb.batch_runs", 1);
        self.rec.counter_add("tlb.batched_hits", n);
        Some(Cycles(n * self.cfg.l1_hit_cycles))
    }

    /// Attempts to satisfy one data access from the TLBs alone, probing
    /// by virtual address like the hardware does — both page-size arrays,
    /// without resolving the translation first. Returns `None` on an STLB
    /// miss, in which case nothing (counters included) has been mutated:
    /// the caller resolves the two page-table layers and charges the walk
    /// through [`MmuSim::access`], which reproduces the exact probe
    /// sequence and therefore the exact state this method left behind.
    ///
    /// At most one array can hold an entry for a VA: every promotion,
    /// demotion and unmap invalidates the region's entries (that flush is
    /// the shootdown cost the model charges), so a hit here always agrees
    /// with what resolving the translation would have selected.
    pub fn access_unresolved(&mut self, vm: VmId, gva_frame: u64) -> Option<AccessOutcome> {
        // Probe order is behaviorally free (a miss probe mutates
        // nothing, and at most one size can hit), so try the size that
        // hit last time first — workloads are strongly phased toward
        // one page size. The second size's key is only built when the
        // first probe misses.
        let first_huge = self.last_hit_huge;
        let first_key = Self::tlb_key(vm, gva_frame, first_huge);
        if self.l1_of(first_huge).lookup(first_key) {
            return Some(self.l1_hit_outcome(first_huge));
        }
        let second_key = Self::tlb_key(vm, gva_frame, !first_huge);
        if self.l1_of(!first_huge).lookup(second_key) {
            return Some(self.l1_hit_outcome(!first_huge));
        }
        for (huge_entry, key) in [(first_huge, first_key), (!first_huge, second_key)] {
            if self.stlb.lookup(key) {
                self.counters.accesses += 1;
                self.counters.stlb_hits += 1;
                self.l1_of(huge_entry).insert(key);
                self.stability_epoch += 1; // L1 fill may have evicted.
                let cycles = self.cfg.l1_hit_cycles + self.cfg.stlb_hit_cycles;
                self.counters.translation_cycles += cycles;
                self.last_hit_huge = huge_entry;
                return Some(AccessOutcome {
                    cycles: Cycles(cycles),
                    walked: false,
                    huge_entry,
                });
            }
        }
        None
    }

    #[inline]
    fn l1_of(&mut self, huge: bool) -> &mut SetAssocCache {
        if huge {
            &mut self.l1_2m
        } else {
            &mut self.l1_4k
        }
    }

    #[inline]
    fn l1_hit_outcome(&mut self, huge_entry: bool) -> AccessOutcome {
        self.counters.accesses += 1;
        self.counters.l1_hits += 1;
        self.counters.translation_cycles += self.cfg.l1_hit_cycles;
        self.last_hit_huge = huge_entry;
        AccessOutcome {
            cycles: Cycles(self.cfg.l1_hit_cycles),
            walked: false,
            huge_entry,
        }
    }

    /// Simulates the translation for one data access.
    pub fn access(&mut self, vm: VmId, gva_frame: u64, t: ResolvedTranslation) -> AccessOutcome {
        self.counters.accesses += 1;
        let huge_entry = t.well_aligned_huge();
        let key = Self::tlb_key(vm, gva_frame, huge_entry);

        // L1 lookup: the hardware probes both page-size arrays.
        let l1 = if huge_entry {
            &mut self.l1_2m
        } else {
            &mut self.l1_4k
        };
        if l1.lookup(key) {
            self.counters.l1_hits += 1;
            self.counters.translation_cycles += self.cfg.l1_hit_cycles;
            return AccessOutcome {
                cycles: Cycles(self.cfg.l1_hit_cycles),
                walked: false,
                huge_entry,
            };
        }

        // L2 STLB.
        if self.stlb.lookup(key) {
            self.counters.stlb_hits += 1;
            l1.insert(key);
            self.stability_epoch += 1; // L1 fill may have evicted.
            let cycles = self.cfg.l1_hit_cycles + self.cfg.stlb_hit_cycles;
            self.counters.translation_cycles += cycles;
            return AccessOutcome {
                cycles: Cycles(cycles),
                walked: false,
                huge_entry,
            };
        }

        // Miss: 2-D page walk.
        self.walk_and_install(vm, gva_frame, t, huge_entry, key)
    }

    /// Simulates the translation for one data access that
    /// [`MmuSim::access_unresolved`] already established misses every
    /// TLB level — goes straight to the 2-D walk without re-probing.
    pub fn access_after_tlb_miss(
        &mut self,
        vm: VmId,
        gva_frame: u64,
        t: ResolvedTranslation,
    ) -> AccessOutcome {
        self.counters.accesses += 1;
        let huge_entry = t.well_aligned_huge();
        let key = Self::tlb_key(vm, gva_frame, huge_entry);
        self.walk_and_install(vm, gva_frame, t, huge_entry, key)
    }

    /// The STLB-miss tail of an access: walk both dimensions, install
    /// the translation in the STLB and the L1 array for its size.
    fn walk_and_install(
        &mut self,
        vm: VmId,
        gva_frame: u64,
        t: ResolvedTranslation,
        huge_entry: bool,
        key: u128,
    ) -> AccessOutcome {
        self.counters.stlb_misses += 1;
        let refs = self.nested_walk(vm, gva_frame, t);
        self.counters.walk_mem_refs += refs as u64;
        if huge_entry {
            self.counters.huge_walks += 1;
        }

        // Install the translation in both TLB levels.
        self.stlb.insert(key);
        let l1 = if huge_entry {
            &mut self.l1_2m
        } else {
            &mut self.l1_4k
        };
        l1.insert(key);
        // One bump covers the whole walk's fills (STLB, L1, and the
        // nTLB/PWC inserts made above in `nested_walk`).
        self.stability_epoch += 1;

        let cycles = self.cfg.l1_hit_cycles
            + self.cfg.walk_setup_cycles
            + refs as u64 * self.cfg.walk_ref_cycles;
        self.counters.translation_cycles += cycles;
        AccessOutcome {
            cycles: Cycles(cycles),
            walked: true,
            huge_entry,
        }
    }

    /// Performs the two-dimensional walk, returning memory references made.
    fn nested_walk(&mut self, vm: VmId, gva_frame: u64, t: ResolvedTranslation) -> u32 {
        let mut refs = 0u32;
        let guest_leaf_level = match t.guest_leaf {
            LeafSize::Base => 1,
            LeafSize::Huge => 2,
        };

        // Guest dimension: which levels must actually be referenced, given
        // the deepest guest paging-structure-cache hit.
        let start_level = self.pwc_deepest(vm, gva_frame, guest_leaf_level, true);
        for level in (guest_leaf_level..=start_level).rev() {
            // The guest page-table page at `level` lives at a GPA; its
            // translation goes through the nested TLB, missing into an EPT
            // walk. PT pages are assumed base-backed.
            let pt_gpa = Self::pt_page_id(gva_frame, level);
            let nkey = Self::ntlb_key(vm, pt_gpa, false);
            if self.ntlb.lookup(nkey) {
                self.counters.ntlb_hits += 1;
            } else {
                self.counters.ntlb_misses += 1;
                refs += self.ept_walk(vm, pt_gpa, LeafSize::Base);
                self.ntlb.insert(nkey);
            }
            // The reference to the guest entry itself.
            refs += 1;
            // Install the directory entry in the guest PWC (non-leaf only).
            if level > guest_leaf_level {
                self.pwc_insert(vm, gva_frame, level, true);
            }
        }

        // Final dimension: translate the data GPA.
        let host_huge = t.host_leaf == LeafSize::Huge;
        let data_page = if host_huge {
            t.gpa_frame >> HUGE_PAGE_ORDER
        } else {
            t.gpa_frame
        };
        let nkey = Self::ntlb_key(vm, data_page, host_huge);
        if self.ntlb.lookup(nkey) {
            self.counters.ntlb_hits += 1;
        } else {
            self.counters.ntlb_misses += 1;
            refs += self.ept_walk(vm, t.gpa_frame, t.host_leaf);
            self.ntlb.insert(nkey);
        }
        refs
    }

    /// Walks the EPT for `gpa_frame`, returning memory references made.
    fn ept_walk(&mut self, vm: VmId, gpa_frame: u64, leaf: LeafSize) -> u32 {
        let leaf_level = match leaf {
            LeafSize::Base => 1,
            LeafSize::Huge => 2,
        };
        let start_level = self.pwc_deepest(vm, gpa_frame, leaf_level, false);
        let refs = start_level - leaf_level + 1;
        for level in (leaf_level + 1..=start_level).rev() {
            self.pwc_insert(vm, gpa_frame, level, false);
        }
        refs
    }

    /// Finds the level the walker must start referencing from: one below
    /// the deepest paging-structure-cache hit, or 4 when nothing is cached.
    ///
    /// Cacheable levels are 4, 3 and (for base-leaf walks) 2 — the entry at
    /// the leaf level itself is the TLB's job, not the PWC's.
    fn pwc_deepest(&mut self, vm: VmId, frame: u64, leaf_level: u32, guest: bool) -> u32 {
        let deepest_cacheable = if leaf_level == 1 { 2 } else { 3 };
        for level in (leaf_level + 1..=deepest_cacheable).rev() {
            let key = Self::pwc_key(vm, frame, level);
            let cache = if guest {
                &mut self.gpwc[(4 - level) as usize]
            } else {
                &mut self.epwc[(4 - level) as usize]
            };
            if cache.lookup(key) {
                if guest {
                    self.counters.gpwc_hits += 1;
                } else {
                    self.counters.epwc_hits += 1;
                }
                // A hit at `level` hands the walker the entry at `level`,
                // so it starts referencing at `level - 1`.
                return level - 1;
            }
        }
        4
    }

    fn pwc_insert(&mut self, vm: VmId, frame: u64, level: u32, guest: bool) {
        if !(2..=4).contains(&level) {
            return;
        }
        let key = Self::pwc_key(vm, frame, level);
        let cache = if guest {
            &mut self.gpwc[(4 - level) as usize]
        } else {
            &mut self.epwc[(4 - level) as usize]
        };
        cache.insert(key);
    }

    /// Invalidates any TLB entries translating the given guest-virtual
    /// 2 MiB region of `vm` (both the 2 MiB entry and base entries within).
    ///
    /// Called on guest-side remaps (promotion, demotion, unmap). Returns
    /// the number of entries evicted.
    pub fn invalidate_gva_region(&mut self, vm: VmId, gva_huge_frame: u64) -> usize {
        self.stability_epoch += 1;
        let pred = |key: u128| {
            let (kvm, size, page) = Self::decode_key(key);
            if kvm != vm.0 {
                return false;
            }
            match size {
                SIZE_HUGE => page == gva_huge_frame,
                _ => page >> HUGE_PAGE_ORDER == gva_huge_frame,
            }
        };
        self.l1_4k.invalidate_matching(pred)
            + self.l1_2m.invalidate_matching(pred)
            + self.stlb.invalidate_matching(pred)
    }

    /// Invalidates all cached translations belonging to `vm`, modeling an
    /// INVEPT single-context flush after a host-side (EPT) remap.
    ///
    /// Returns the number of entries evicted.
    pub fn invalidate_vm(&mut self, vm: VmId) -> usize {
        self.stability_epoch += 1;
        let pred = |key: u128| Self::decode_key(key).0 == vm.0;
        let mut n = self.l1_4k.invalidate_matching(pred);
        n += self.l1_2m.invalidate_matching(pred);
        n += self.stlb.invalidate_matching(pred);
        n += self.ntlb.invalidate_matching(pred);
        for c in self.gpwc.iter_mut().chain(self.epwc.iter_mut()) {
            n += c.invalidate_matching(pred);
        }
        n
    }

    /// Invalidates nested-TLB entries for one guest-physical 2 MiB region,
    /// modeling a targeted EPT invalidation.
    pub fn invalidate_gpa_region(&mut self, vm: VmId, gpa_huge_frame: u64) -> usize {
        self.stability_epoch += 1;
        let pred = |key: u128| {
            let (kvm, size, page) = Self::decode_key(key);
            if kvm != vm.0 {
                return false;
            }
            match size {
                SIZE_HUGE => page == gpa_huge_frame,
                _ => page >> HUGE_PAGE_ORDER == gpa_huge_frame,
            }
        };
        self.ntlb.invalidate_matching(pred)
    }

    /// Records `n` TLB shootdowns and returns the stall to charge.
    pub fn charge_shootdowns(&mut self, n: u64, per_shootdown: Cycles) -> Cycles {
        self.counters.shootdowns += n;
        if n > 0 {
            self.stability_epoch += 1;
            let vm = self.rec_vm;
            self.rec
                .emit(cat::SHOOTDOWN, vm, Layer::Sys, || EventKind::Shootdown {
                    rounds: n,
                });
            self.rec.counter_add("mmu.shootdown_rounds", n);
        }
        Cycles(per_shootdown.0 * n)
    }

    /// Identity of the guest page-table page referenced at `level` for
    /// `gva_frame` (all GVAs sharing upper bits share the table).
    fn pt_page_id(gva_frame: u64, level: u32) -> u64 {
        // Tag PT-page ids so they cannot collide with data GPAs in the
        // nested TLB: set a high bit per level.
        (gva_frame >> (9 * level)) | (0x4000_0000_0000_0000u64 + ((level as u64) << 56))
    }

    fn tlb_key(vm: VmId, gva_frame: u64, huge: bool) -> u128 {
        let page = if huge {
            gva_frame >> HUGE_PAGE_ORDER
        } else {
            gva_frame
        };
        Self::encode_key(vm.0, if huge { SIZE_HUGE } else { SIZE_BASE }, page)
    }

    fn ntlb_key(vm: VmId, page: u64, huge: bool) -> u128 {
        Self::encode_key(vm.0, if huge { SIZE_HUGE } else { SIZE_BASE }, page)
    }

    fn pwc_key(vm: VmId, frame: u64, level: u32) -> u128 {
        Self::encode_key(vm.0, SIZE_BASE, frame >> (9 * level))
    }

    fn encode_key(vm: u32, size: u128, page: u64) -> u128 {
        ((vm as u128) << 96) | (size << 88) | page as u128
    }

    fn decode_key(key: u128) -> (u32, u128, u64) {
        ((key >> 96) as u32, (key >> 88) & 0xff, key as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VM: VmId = VmId(1);

    fn resolved(guest: LeafSize, host: LeafSize, gpa_frame: u64) -> ResolvedTranslation {
        ResolvedTranslation {
            gpa_frame,
            guest_leaf: guest,
            host_leaf: host,
        }
    }

    #[test]
    fn only_double_huge_is_well_aligned() {
        use LeafSize::{Base, Huge};
        assert!(resolved(Huge, Huge, 0).well_aligned_huge());
        assert!(!resolved(Huge, Base, 0).well_aligned_huge());
        assert!(!resolved(Base, Huge, 0).well_aligned_huge());
        assert!(!resolved(Base, Base, 0).well_aligned_huge());
    }

    #[test]
    fn cold_base_base_walk_costs_24_refs() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        let out = mmu.access(VM, 0x1234, resolved(LeafSize::Base, LeafSize::Base, 0x5678));
        assert!(out.walked);
        assert!(!out.huge_entry);
        // The canonical 2-D walk bound: (4+1)*(4+1)-1.
        assert_eq!(mmu.counters().walk_mem_refs, 24);
    }

    #[test]
    fn cold_aligned_huge_walk_is_cheaper() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        let out = mmu.access(VM, 0x1234, resolved(LeafSize::Huge, LeafSize::Huge, 0x5600));
        assert!(out.walked);
        assert!(out.huge_entry);
        // Guest: 3 levels × (EPT 4 + 1 entry ref) = 15; data EPT: 3 → 18.
        assert_eq!(mmu.counters().walk_mem_refs, 18);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        let t = resolved(LeafSize::Base, LeafSize::Base, 99);
        let first = mmu.access(VM, 7, t);
        let second = mmu.access(VM, 7, t);
        assert!(first.walked);
        assert!(!second.walked);
        assert_eq!(second.cycles, Cycles(MmuConfig::default().l1_hit_cycles));
        assert_eq!(mmu.counters().l1_hits, 1);
        assert_eq!(mmu.counters().stlb_misses, 1);
    }

    #[test]
    fn huge_entry_covers_whole_2mb_region() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        // Touch frame 0 of a well-aligned huge page, then frame 511.
        let t = resolved(LeafSize::Huge, LeafSize::Huge, 0);
        mmu.access(VM, 0, t);
        let far = mmu.access(VM, 511, resolved(LeafSize::Huge, LeafSize::Huge, 511));
        assert!(!far.walked, "huge TLB entry must cover all 512 frames");
    }

    #[test]
    fn misaligned_huge_splinters_to_base_entries() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        // Guest huge, host base: every 4 KiB frame needs its own entry.
        let t0 = resolved(LeafSize::Huge, LeafSize::Base, 0);
        mmu.access(VM, 0, t0);
        let far = mmu.access(VM, 511, resolved(LeafSize::Huge, LeafSize::Base, 511));
        assert!(
            far.walked,
            "misaligned huge page must not install a 2M entry"
        );
        assert_eq!(mmu.counters().stlb_misses, 2);
    }

    #[test]
    fn warm_walk_uses_pwc_and_ntlb() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        // Two base-base accesses in the same 2 MiB region: the second walk
        // should be far cheaper thanks to PWC + nested TLB.
        mmu.access(VM, 0, resolved(LeafSize::Base, LeafSize::Base, 1000));
        let before = mmu.counters().walk_mem_refs;
        mmu.access(VM, 1, resolved(LeafSize::Base, LeafSize::Base, 1001));
        let second_refs = mmu.counters().walk_mem_refs - before;
        assert_eq!(mmu.counters().stlb_misses, 2);
        assert!(second_refs <= 6, "warm walk took {second_refs} refs");
        assert!(mmu.counters().gpwc_hits > 0);
        assert!(mmu.counters().ntlb_hits > 0);
    }

    #[test]
    fn host_huge_backing_shortens_walks_even_when_misaligned() {
        // Host-H-VM-B vs Host-B-VM-B: same TLB behaviour, cheaper walks —
        // the paper's "misaligned pages still reduce walk overhead".
        let mut a = MmuSim::new(MmuConfig::default()).unwrap();
        let mut b = MmuSim::new(MmuConfig::default()).unwrap();
        a.access(VM, 0, resolved(LeafSize::Base, LeafSize::Huge, 0));
        b.access(VM, 0, resolved(LeafSize::Base, LeafSize::Base, 0));
        assert!(a.counters().walk_mem_refs < b.counters().walk_mem_refs);
    }

    #[test]
    fn vm_tagging_isolates_vms() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        let t = resolved(LeafSize::Base, LeafSize::Base, 42);
        mmu.access(VmId(1), 7, t);
        let other = mmu.access(VmId(2), 7, t);
        assert!(other.walked, "entries must be VM-tagged");
    }

    #[test]
    fn gva_region_invalidation_forces_rewalk() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        let t = resolved(LeafSize::Huge, LeafSize::Huge, 0);
        mmu.access(VM, 5, t);
        assert!(!mmu.access(VM, 5, t).walked);
        let evicted = mmu.invalidate_gva_region(VM, 0);
        assert!(evicted > 0);
        assert!(mmu.access(VM, 5, t).walked);
    }

    #[test]
    fn base_entries_in_region_are_also_invalidated() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        let t = resolved(LeafSize::Base, LeafSize::Base, 9);
        mmu.access(VM, 9, t); // Frame 9 lives in huge region 0.
        assert_eq!(mmu.invalidate_gva_region(VM, 0), 2); // L1 + STLB copies.
        assert!(mmu.access(VM, 9, t).walked);
    }

    #[test]
    fn invalidate_vm_flushes_everything_for_that_vm_only() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        let t = resolved(LeafSize::Base, LeafSize::Base, 1);
        mmu.access(VmId(1), 1, t);
        mmu.access(VmId(2), 1, t);
        mmu.invalidate_vm(VmId(1));
        assert!(mmu.access(VmId(1), 1, t).walked);
        assert!(!mmu.access(VmId(2), 1, t).walked);
    }

    #[test]
    fn shootdown_accounting() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        let stall = mmu.charge_shootdowns(3, Cycles(4000));
        assert_eq!(stall, Cycles(12_000));
        assert_eq!(mmu.counters().shootdowns, 3);
    }

    #[test]
    fn stability_epoch_tracks_residency_mutations_only() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        let t = resolved(LeafSize::Base, LeafSize::Base, 42);
        let e0 = mmu.stability_epoch();
        mmu.access(VM, 7, t); // Cold walk: fills.
        let e1 = mmu.stability_epoch();
        assert!(e1 > e0, "a walk's fills must bump the epoch");
        mmu.access(VM, 7, t); // Pure L1 hit: no fill, no eviction.
        assert_eq!(
            mmu.stability_epoch(),
            e1,
            "an L1 hit must not bump the epoch"
        );
        mmu.invalidate_gva_region(VM, 0);
        let e2 = mmu.stability_epoch();
        assert!(e2 > e1);
        mmu.invalidate_vm(VM);
        assert!(mmu.stability_epoch() > e2);
        let e3 = mmu.stability_epoch();
        mmu.invalidate_gpa_region(VM, 0);
        assert!(mmu.stability_epoch() > e3);
        let e4 = mmu.stability_epoch();
        mmu.charge_shootdowns(0, Cycles(100)); // No rounds: no bump.
        assert_eq!(mmu.stability_epoch(), e4);
        mmu.charge_shootdowns(2, Cycles(100));
        assert!(mmu.stability_epoch() > e4);
        let e5 = mmu.stability_epoch();
        mmu.note_external_pass();
        assert!(mmu.stability_epoch() > e5);
    }

    #[test]
    fn batched_hits_match_faithful_hits_exactly() {
        // Faithful leg: k repeat accesses through the full probe path.
        // Batched leg: one faithful access plus a closed-form advance of
        // k-1. Counters and all subsequent behavior must be identical.
        for huge in [false, true] {
            let leaf = if huge { LeafSize::Huge } else { LeafSize::Base };
            let t = resolved(leaf, leaf, 0x200);
            let mut faithful = MmuSim::new(MmuConfig::default()).unwrap();
            let mut batched = MmuSim::new(MmuConfig::default()).unwrap();
            let gva = 0x200u64;
            let k = 9u64;

            let mut acc_f = Cycles::ZERO;
            faithful.access(VM, gva, t);
            for _ in 0..k {
                acc_f += faithful.access_unresolved(VM, gva).unwrap().cycles;
            }

            batched.access(VM, gva, t);
            let epoch = batched.stability_epoch();
            let acc_b = batched
                .advance_batched_hits(VM, gva, huge, k, epoch)
                .expect("epoch unchanged, batch must engage");

            assert_eq!(acc_f, acc_b, "cycle cost diverged (huge={huge})");
            assert_eq!(
                faithful.counters(),
                batched.counters(),
                "counters diverged (huge={huge})"
            );
            assert_eq!(batched.batch_stats().runs, 1);
            assert_eq!(batched.batch_stats().hits, k);
            // Same future: drive both through an identical tail.
            for f in [gva, gva + 1, 0x999u64] {
                let a = faithful.access_unresolved(VM, f);
                let b = batched.access_unresolved(VM, f);
                assert_eq!(a, b, "tail access diverged at {f:#x}");
            }
            assert_eq!(faithful.counters(), batched.counters());
        }
    }

    #[test]
    fn stale_epoch_declines_the_batch() {
        let mut mmu = MmuSim::new(MmuConfig::default()).unwrap();
        let t = resolved(LeafSize::Base, LeafSize::Base, 5);
        mmu.access(VM, 5, t);
        let epoch = mmu.stability_epoch();
        mmu.note_external_pass(); // Daemon pass intervened.
        let before = *mmu.counters();
        assert_eq!(mmu.advance_batched_hits(VM, 5, false, 4, epoch), None);
        assert_eq!(*mmu.counters(), before, "a declined batch must not count");
        assert_eq!(mmu.batch_stats().breaks, 1);
        assert_eq!(mmu.batch_stats().runs, 0);
    }

    #[test]
    fn tlb_capacity_limits_coverage() {
        // With the tiny config (16 STLB entries), touching 64 distinct
        // pages in a loop thrashes: round 2 misses as much as round 1.
        let mut mmu = MmuSim::new(MmuConfig::tiny()).unwrap();
        for round in 0..2 {
            for f in 0..64u64 {
                mmu.access(VM, f, resolved(LeafSize::Base, LeafSize::Base, f));
            }
            let misses = mmu.counters().stlb_misses;
            if round == 0 {
                assert_eq!(misses, 64);
            } else {
                assert!(misses > 100, "expected thrashing, got {misses}");
            }
        }
        // Same pages via one well-aligned huge mapping: one walk total.
        let mut mmu2 = MmuSim::new(MmuConfig::tiny()).unwrap();
        for _ in 0..2 {
            for f in 0..64u64 {
                mmu2.access(VM, f, resolved(LeafSize::Huge, LeafSize::Huge, f));
            }
        }
        assert_eq!(mmu2.counters().stlb_misses, 1);
    }
}

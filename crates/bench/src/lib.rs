//! Shared helpers for the benchmark binaries.
//!
//! Every `benches/` target regenerates one or more of the paper's tables
//! and figures (see DESIGN.md's per-experiment index) and prints the rows
//! the paper reports. Scale is controlled by `GEMINI_SCALE`
//! (`quick` | `bench` | `full`, default `bench`) and op count by
//! `GEMINI_BENCH_OPS`.

use gemini_harness::Scale;

/// Resolves the scale for a bench binary from the environment.
pub fn bench_scale() -> Scale {
    let mut scale = Scale::from_env();
    if let Ok(ops) = std::env::var("GEMINI_BENCH_OPS") {
        if let Ok(ops) = ops.parse::<u64>() {
            scale.ops = ops;
        }
    }
    scale
}

/// Prints a standard bench header.
pub fn header(name: &str, artefacts: &str) {
    println!("================================================================");
    println!("{name} — regenerates {artefacts}");
    println!(
        "scale: ws_factor={:.3}, ops={}, host={} MiB, vm={} MiB (set GEMINI_SCALE/GEMINI_BENCH_OPS to change)",
        bench_scale().ws_factor,
        bench_scale().ops,
        bench_scale().host_frames * 4096 >> 20,
        bench_scale().vm_frames * 4096 >> 20,
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scale_defaults_to_bench() {
        let s = bench_scale();
        assert!(s.ops > 0);
        assert!(s.ws_factor > 0.0);
    }
}

//! Cross-crate integration tests: the full stack (workload generator →
//! guest MM → EPT → MMU model → policies → Gemini runtime) wired through
//! the public APIs, checking end-to-end invariants rather than per-module
//! behaviour.

use gemini_harness::{run_workload_on, Scale};
use gemini_mm::alignment_stats;
use gemini_sim_core::Cycles;
use gemini_vm_sim::{Machine, SystemKind};
use gemini_workloads::{catalog, spec_by_name, WorkloadGen};

fn quick(ops: u64) -> Scale {
    Scale {
        ops,
        ..Scale::quick()
    }
}

#[test]
fn every_evaluated_system_completes_every_motivation_workload() {
    let scale = quick(600);
    for system in SystemKind::evaluated() {
        for name in ["Canneal", "Specjbb"] {
            let spec = spec_by_name(name).unwrap();
            let r = run_workload_on(system, &spec, &scale, true, 1).unwrap();
            assert_eq!(r.ops, 600, "{system:?}/{name}");
            assert!(r.vtime > Cycles::ZERO);
            assert!(r.counters.accesses > 0);
        }
    }
}

#[test]
fn whole_catalog_runs_under_gemini() {
    let scale = quick(300);
    for spec in catalog() {
        let r = run_workload_on(SystemKind::Gemini, &spec, &scale, false, 2).unwrap();
        assert_eq!(r.ops, 300, "{}", spec.name);
        // Latency tracking matches the spec.
        assert_eq!(
            r.mean_latency > Cycles::ZERO,
            spec.latency_tracked,
            "{}",
            spec.name
        );
    }
}

#[test]
fn alignment_metric_agrees_with_direct_table_scan() {
    let scale = quick(1_000);
    let cfg = scale.machine_config(false, false, 3);
    let mut m = Machine::new(SystemKind::Thp, cfg);
    let vm = m.add_vm().unwrap();
    let spec = spec_by_name("Masstree").unwrap().scaled(scale.ws_factor);
    let r = m.run(vm, WorkloadGen::new(spec, scale.ops, 3)).unwrap();
    let direct = alignment_stats(m.guest_table(vm), m.ept(vm).unwrap());
    assert_eq!(r.alignment, direct);
}

#[test]
fn translations_remain_consistent_across_the_stack() {
    // After any run, every guest translation must resolve through the EPT
    // to a valid host frame, and well-aligned pages must be huge at both
    // layers.
    let scale = quick(1_500);
    let cfg = scale.machine_config(true, false, 4);
    let mut m = Machine::new(SystemKind::Gemini, cfg);
    let vm = m.add_vm().unwrap();
    let spec = spec_by_name("Xapian").unwrap().scaled(scale.ws_factor);
    m.run(vm, WorkloadGen::new(spec, scale.ops, 4)).unwrap();
    let guest = m.guest_table(vm);
    let ept = m.ept(vm).unwrap();
    let mut checked = 0;
    for (gva, gpa) in guest.iter_base() {
        let backing = ept.translate(gpa);
        assert!(
            backing.is_some(),
            "GVA {gva:#x} maps to unbacked GPA {gpa:#x}"
        );
        checked += 1;
    }
    for (_gva_h, gpa_h) in guest.iter_huge() {
        // Every frame of a guest huge page must be backed.
        for i in [0u64, 255, 511] {
            assert!(ept.translate((gpa_h << 9) + i).is_some());
        }
        checked += 1;
    }
    assert!(checked > 0, "workload mapped nothing?");
    guest.check_invariants().unwrap();
    ept.check_invariants().unwrap();
}

#[test]
fn misalignment_scenario_has_zero_aligned_rate_by_construction() {
    let scale = quick(800);
    let spec = spec_by_name("Canneal").unwrap();
    let r = run_workload_on(SystemKind::HostHVmB, &spec, &scale, false, 5).unwrap();
    assert_eq!(r.alignment.guest_huge, 0);
    assert!(r.alignment.host_huge > 0, "host should form huge pages");
    assert_eq!(r.aligned_rate(), 0.0);
}

#[test]
fn fragmentation_is_reflected_in_fmfi_metrics() {
    let scale = quick(400);
    let spec = spec_by_name("Silo").unwrap();
    let frag = run_workload_on(SystemKind::Thp, &spec, &scale, true, 6).unwrap();
    let clean = run_workload_on(SystemKind::Thp, &spec, &scale, false, 6).unwrap();
    // The fragmented run starts near FMFI 0.9; compaction may reduce it,
    // but it should still end at or above the clean run's level.
    assert!(frag.guest_fmfi >= clean.guest_fmfi);
}

#[test]
fn deterministic_across_identical_invocations() {
    let scale = quick(700);
    let spec = spec_by_name("RocksDB").unwrap();
    let a = run_workload_on(SystemKind::Gemini, &spec, &scale, true, 9).unwrap();
    let b = run_workload_on(SystemKind::Gemini, &spec, &scale, true, 9).unwrap();
    assert_eq!(a.vtime, b.vtime);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.alignment, b.alignment);
    assert_eq!(a.mean_latency, b.mean_latency);
}

#[test]
fn zero_heavy_flag_reaches_hawkeye() {
    // Specjbb (zero-heavy) under HawkEye should show demotion churn that
    // a non-zero-heavy workload does not: compare huge-page stability.
    let scale = quick(2_000);
    let spec = spec_by_name("Specjbb").unwrap();
    let r = run_workload_on(SystemKind::HawkEye, &spec, &scale, false, 10).unwrap();
    // The run completes and produced some huge pages at some point;
    // the zero-page deduplicator's demotions show up as shootdowns.
    assert!(r.counters.shootdowns > 0);
}

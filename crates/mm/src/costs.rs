//! Cycle costs of memory-management operations.
//!
//! These constants are order-of-magnitude figures for the paper's testbed
//! class of hardware (Xeon E5 v4, 2.1 GHz): minor faults cost a few
//! microseconds, EPT violations add a VM exit, zeroing 2 MiB dominates a
//! synchronous huge allocation, page migration costs a copy plus remap, and
//! every remote mapping change costs a TLB shootdown IPI round.

use gemini_sim_core::Cycles;

/// Tunable cycle costs charged by the mechanisms in this crate.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// A guest minor fault on a base page (entry + allocation + map).
    pub minor_fault: Cycles,
    /// Additional cost of a synchronous huge-page fault (zeroing 2 MiB and
    /// the longer allocation path) — the latency Ingens complains about.
    pub huge_fault_extra: Cycles,
    /// An EPT violation handled by the host (VM exit + backing + resume).
    pub ept_fault: Cycles,
    /// Additional cost of backing with a huge host page at EPT-fault time.
    pub ept_huge_fault_extra: Cycles,
    /// Copying one base page during migration/copy-promotion.
    pub page_copy: Cycles,
    /// One TLB-shootdown round, per vCPU interrupted.
    pub shootdown_per_vcpu: Cycles,
    /// Fixed bookkeeping cost of one promotion or demotion operation.
    pub remap_fixed: Cycles,
    /// Daemon scan cost per region examined.
    pub scan_per_region: Cycles,
    /// Fraction of daemon copy work that stalls the foreground workload
    /// (mmap_sem/mmu_lock contention and memory-bandwidth interference).
    pub daemon_contention: f64,
    /// Zeroing one base page when the kernel pre-allocates it (huge-page
    /// filling / preallocation).
    pub page_zero: Cycles,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            minor_fault: Cycles(2_000),
            huge_fault_extra: Cycles(90_000),
            ept_fault: Cycles(4_500),
            ept_huge_fault_extra: Cycles(90_000),
            page_copy: Cycles(1_500),
            shootdown_per_vcpu: Cycles(4_000),
            remap_fixed: Cycles(2_500),
            scan_per_region: Cycles(150),
            daemon_contention: 0.3,
            page_zero: Cycles(700),
        }
    }
}

impl CostModel {
    /// Foreground stall caused by a daemon operation that copied `pages`
    /// pages and issued one shootdown round to `vcpus` vCPUs.
    pub fn daemon_stall(&self, pages: u64, vcpus: u32) -> Cycles {
        let copy = self.page_copy.0 * pages;
        let contended = (copy as f64 * self.daemon_contention) as u64;
        Cycles(contended + self.shootdown_per_vcpu.0 * vcpus as u64 + self.remap_fixed.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sensibly() {
        let c = CostModel::default();
        assert!(c.huge_fault_extra > c.minor_fault);
        assert!(c.ept_fault > c.minor_fault);
        assert!(c.page_copy > c.page_zero);
        assert!(c.daemon_contention > 0.0 && c.daemon_contention < 1.0);
    }

    #[test]
    fn daemon_stall_scales_with_pages_and_vcpus() {
        let c = CostModel::default();
        let small = c.daemon_stall(1, 1);
        let big = c.daemon_stall(512, 16);
        assert!(big > small);
        assert!(big.0 > c.shootdown_per_vcpu.0 * 16);
    }
}

//! The Figure 2 microbenchmark: random accesses over a dataset of varying
//! size.
//!
//! The paper's motivating microbenchmark randomly accesses a data set in a
//! VM while the guest and host page sizes are pinned to one of four
//! combinations (`Host-{B,H} × VM-{B,H}`). Small datasets fit any TLB;
//! large datasets separate the configurations: only well-aligned huge
//! pages keep TLB misses low.

use crate::gen::WorkloadGen;
use crate::spec::{AccessSkew, AllocPattern, WorkloadSpec};

/// Builds the microbenchmark generator for one dataset size.
#[derive(Debug)]
pub struct MicrobenchGen;

impl MicrobenchGen {
    /// The workload spec for a `dataset` of bytes.
    pub fn spec(dataset: u64) -> WorkloadSpec {
        WorkloadSpec {
            name: "microbench",
            working_set: dataset,
            alloc: AllocPattern::Static,
            skew: AccessSkew::Uniform,
            churn_period: 0,
            accesses_per_op: 100,
            cpu_per_op: 100, // Nearly pure memory: the worst case for TLBs.
            latency_tracked: false,
            zero_heavy: false,
            tlb_sensitive: true,
        }
    }

    /// A ready generator for `dataset` bytes and `ops` operations.
    pub fn generator(dataset: u64, ops: u64, seed: u64) -> WorkloadGen {
        WorkloadGen::new(Self::spec(dataset), ops, seed)
    }

    /// The dataset sizes swept by Figure 2 (scaled to the simulator).
    pub fn dataset_sweep() -> Vec<u64> {
        const MB: u64 = 1 << 20;
        vec![
            2 * MB,
            4 * MB,
            8 * MB,
            16 * MB,
            32 * MB,
            64 * MB,
            128 * MB,
            256 * MB,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadEvent;

    #[test]
    fn spec_is_memory_bound_uniform() {
        let s = MicrobenchGen::spec(1 << 24);
        assert_eq!(s.skew, AccessSkew::Uniform);
        assert!(s.cpu_per_op < 1000);
        assert_eq!(s.working_set, 1 << 24);
    }

    #[test]
    fn sweep_is_increasing_and_crosses_tlb_coverage() {
        let sweep = MicrobenchGen::dataset_sweep();
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        // Must straddle the 6 MiB base-page L2 TLB coverage.
        assert!(*sweep.first().unwrap() < 6 * (1 << 20));
        assert!(*sweep.last().unwrap() > 6 * (1 << 20));
    }

    #[test]
    fn generator_runs_to_completion() {
        let mut g = MicrobenchGen::generator(1 << 22, 5, 1);
        let mut touches = 0;
        while let Some(ev) = g.next_event() {
            if matches!(ev, WorkloadEvent::Touch { .. }) {
                touches += 1;
            }
        }
        assert_eq!(touches, 5 * 99);
        assert!(g.finished());
    }
}

//! TLB hierarchy and two-dimensional page-walk cost model.
//!
//! This crate models the address-translation hardware whose behaviour the
//! paper's argument rests on (§2.1–§2.2):
//!
//! - a split L1 TLB plus a unified L2 TLB (STLB) caching complete
//!   GVA → HPA translations, where a 2 MiB entry can be installed **only
//!   when the guest maps the GVA with a 2 MiB leaf *and* the host backs the
//!   corresponding GPA region with a 2 MiB EPT leaf** — the well-aligned
//!   case. Mis-aligned huge pages splinter into 4 KiB TLB entries, which is
//!   exactly why they barely help;
//! - a nested TLB caching GPA → HPA translations used during walks;
//! - paging-structure caches (page-walk caches) for the guest dimension and
//!   the EPT dimension, which make huge-page walks cheap because only
//!   high-level directories are needed;
//! - the 2-D page walk itself: up to (4+1)·(4+1)−1 = 24 memory references
//!   with 4 KiB leaves at both layers, shrinking as either layer uses a
//!   2 MiB leaf.
//!
//! The [`MmuSim::access`] entry point charges one memory access's
//! translation cost given the *resolved* pair of leaf sizes, and maintains
//! hardware performance counters equivalent to the paper's `perf`
//! measurements (`dTLB-load-misses`, walk cycles).

//! # Examples
//!
//! ```
//! use gemini_tlb::{MmuConfig, MmuSim, ResolvedTranslation};
//! use gemini_page_table::LeafSize;
//! use gemini_sim_core::VmId;
//!
//! let mut mmu = MmuSim::new(MmuConfig::default())?;
//! let well_aligned = ResolvedTranslation {
//!     gpa_frame: 0,
//!     guest_leaf: LeafSize::Huge,
//!     host_leaf: LeafSize::Huge,
//! };
//! let cold = mmu.access(VmId(1), 0, well_aligned);
//! assert!(cold.walked);
//! // One 2 MiB entry now covers all 512 frames of the region.
//! let far = mmu.access(VmId(1), 511, ResolvedTranslation { gpa_frame: 511, ..well_aligned });
//! assert!(!far.walked);
//! # Ok::<(), gemini_sim_core::SimError>(())
//! ```

pub mod cache;
pub mod config;
pub mod counters;
pub mod mmu;

pub use cache::SetAssocCache;
pub use config::MmuConfig;
pub use counters::PerfCounters;
pub use mmu::{AccessOutcome, BatchStats, MmuSim, ResolvedTranslation};

//! Memory compaction (the kcompactd analogue).
//!
//! The fragmenter models other tenants' *movable* pages. On real Linux,
//! kcompactd migrates movable pages toward one end of the zone so that
//! large free blocks re-form; without it, a fragmented machine could never
//! again produce an order-9 block and every huge-page system would starve
//! identically. The [`Compactor`] owns the fragmenter's pinned frames and
//! migrates a budget of them per step from the *highest* regions to the
//! lowest free frames, clearing whole regions from the top down — the same
//! top-down clustering strategy Linux compaction uses.
//!
//! Compaction runs against a layer's buddy allocator directly (the
//! `Machine` steps it against [`crate::LayerEngine::buddy`] at either
//! layer), so one compactor implementation serves guest and host alike —
//! the same one-mechanism-two-layers structure as the engine itself.

use gemini_buddy::BuddyAllocator;

/// Background compactor owning a set of movable pinned frames.
#[derive(Debug, Clone, Default)]
pub struct Compactor {
    /// Owned movable frames, kept sorted ascending. A deque because the
    /// migration loop pops the highest pin and re-files its (lower)
    /// replacement at the front — O(1) at both ends instead of a
    /// front-insert memmove per migrated frame.
    pins: std::collections::VecDeque<u64>,
    /// Frames migrated so far (stats).
    pub migrated_total: u64,
}

impl Compactor {
    /// Takes ownership of the fragmenter's pinned frames.
    pub fn new(mut pins: Vec<u64>) -> Self {
        pins.sort_unstable();
        Self {
            pins: pins.into(),
            migrated_total: 0,
        }
    }

    /// Number of frames still pinned.
    pub fn pinned(&self) -> usize {
        self.pins.len()
    }

    /// Migrates up to `budget` of the highest pinned frames to the lowest
    /// free frames, if that moves them downward. Returns frames moved
    /// (each costs a page copy plus its share of a TLB shootdown to the
    /// caller's accounting).
    pub fn step(&mut self, buddy: &mut BuddyAllocator, budget: usize) -> u64 {
        let mut moved = 0u64;
        for _ in 0..budget {
            let Some(&pin) = self.pins.back() else {
                break;
            };
            // The buddy allocator prefers the lowest free frame.
            let Ok(target) = buddy.alloc(0) else {
                break;
            };
            if target >= pin {
                // No downward motion possible: compaction has converged.
                buddy.free(target, 0).expect("frame just allocated");
                break;
            }
            self.pins.pop_back();
            buddy.free(pin, 0).expect("compactor owned this frame");
            // Keep `pins` sorted: target is below every remaining pin.
            self.pins.push_front(target);
            moved += 1;
        }
        self.migrated_total += moved;
        moved
    }

    /// Releases every pin back to the allocator (tenant exits).
    pub fn release_all(&mut self, buddy: &mut BuddyAllocator) {
        for pin in self.pins.drain(..) {
            buddy.free(pin, 0).expect("compactor owned this frame");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_sim_core::{DetRng, HUGE_PAGE_ORDER};

    #[test]
    fn compaction_recreates_huge_blocks() {
        let mut buddy = BuddyAllocator::new(16384);
        let mut rng = DetRng::new(1);
        let pins = crate::frag::fragment_to(&mut buddy, 0.9, 0.12, &mut rng);
        assert_eq!(buddy.free_blocks_of_order(HUGE_PAGE_ORDER), 0);
        let mut c = Compactor::new(pins);
        let suitable =
            |b: &BuddyAllocator| b.free_area_counts().free_blocks_suitable(HUGE_PAGE_ORDER);
        let mut steps = 0;
        while suitable(&buddy) < 4 && steps < 1000 {
            let moved = c.step(&mut buddy, 64);
            if moved == 0 {
                break;
            }
            steps += 1;
        }
        // Blocks may merge beyond order 9; count anything order-9 capable.
        assert!(
            suitable(&buddy) >= 4,
            "compaction should re-form order-9 blocks"
        );
        buddy.check_invariants().unwrap();
        assert!(c.migrated_total > 0);
    }

    #[test]
    fn step_converges_and_stops() {
        let mut buddy = BuddyAllocator::new(1024);
        // Pins already at the bottom: nothing to do.
        for f in 0..4 {
            buddy.alloc_at(f, 0).unwrap();
        }
        let mut c = Compactor::new(vec![0, 1, 2, 3]);
        assert_eq!(c.step(&mut buddy, 16), 0);
        assert_eq!(c.pinned(), 4);
        buddy.check_invariants().unwrap();
    }

    #[test]
    fn budget_limits_work_per_step() {
        let mut buddy = BuddyAllocator::new(4096);
        let mut pins = Vec::new();
        for region in 0..8 {
            let f = region * 512 + 100;
            buddy.alloc_at(f, 0).unwrap();
            pins.push(f);
        }
        let mut c = Compactor::new(pins);
        let moved = c.step(&mut buddy, 3);
        assert!(moved <= 3);
    }

    #[test]
    fn release_all_returns_everything() {
        let mut buddy = BuddyAllocator::new(2048);
        let mut rng = DetRng::new(5);
        let pins = crate::frag::fragment_to(&mut buddy, 0.9, 0.1, &mut rng);
        let mut c = Compactor::new(pins);
        c.release_all(&mut buddy);
        assert_eq!(c.pinned(), 0);
        assert_eq!(buddy.free_frames(), 2048);
        buddy.check_invariants().unwrap();
    }
}

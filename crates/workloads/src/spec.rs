//! The workload catalog (paper Table 2), expressed as memory-behaviour
//! parameters.

/// How the workload acquires its memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPattern {
    /// One large allocation up front (static arrays).
    Static,
    /// Grows in chunks over the run (dynamic data structures).
    Gradual {
        /// Chunk size in bytes.
        chunk: u64,
    },
}

/// How accesses distribute over the working set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessSkew {
    /// Uniform random pages.
    Uniform,
    /// Zipf-distributed pages with the given exponent (hot keys).
    Zipf(f64),
    /// Streaming sequential sweep.
    Sequential,
}

/// One application model.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Display name (matches the paper's tables/figures).
    pub name: &'static str,
    /// Working-set size in bytes.
    pub working_set: u64,
    /// Allocation pattern.
    pub alloc: AllocPattern,
    /// Access distribution.
    pub skew: AccessSkew,
    /// Every `churn_period` operations, free the oldest chunk and allocate
    /// a replacement (0 = no churn). Only meaningful with gradual
    /// allocation.
    pub churn_period: u64,
    /// Page touches per operation/request.
    pub accesses_per_op: u32,
    /// Pure CPU cycles per operation (no memory), which dilutes
    /// translation overhead for non-TLB-sensitive workloads.
    pub cpu_per_op: u64,
    /// Whether the application reports request latencies (TailBench etc.).
    pub latency_tracked: bool,
    /// Many in-use zero pages (Specjbb): triggers HawkEye's deduplicator.
    pub zero_heavy: bool,
    /// Whether the paper classifies it as TLB-sensitive.
    pub tlb_sensitive: bool,
}

impl WorkloadSpec {
    /// Returns a copy with the working set (and chunk size) scaled by
    /// `factor`; tests use small instances, benches the full ones.
    pub fn scaled(&self, factor: f64) -> WorkloadSpec {
        let mut s = self.clone();
        s.working_set = ((s.working_set as f64 * factor) as u64).max(1 << 21);
        if let AllocPattern::Gradual { chunk } = s.alloc {
            s.alloc = AllocPattern::Gradual {
                chunk: ((chunk as f64 * factor) as u64).max(1 << 21),
            };
        }
        s
    }
}

const MB: u64 = 1 << 20;

/// The sixteen workloads of Table 2/Table 3, in the paper's order.
pub fn catalog() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "Img-dnn",
            working_set: 128 * MB,
            alloc: AllocPattern::Static,
            skew: AccessSkew::Zipf(0.9),
            churn_period: 0,
            accesses_per_op: 120,
            cpu_per_op: 9_000,
            latency_tracked: true,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "Sphinx",
            working_set: 96 * MB,
            alloc: AllocPattern::Static,
            skew: AccessSkew::Zipf(0.8),
            churn_period: 0,
            accesses_per_op: 150,
            cpu_per_op: 12_000,
            latency_tracked: true,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "Moses",
            working_set: 96 * MB,
            alloc: AllocPattern::Gradual { chunk: 8 * MB },
            skew: AccessSkew::Zipf(0.9),
            churn_period: 0,
            accesses_per_op: 130,
            cpu_per_op: 10_000,
            latency_tracked: true,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "Xapian",
            working_set: 128 * MB,
            alloc: AllocPattern::Gradual { chunk: 8 * MB },
            skew: AccessSkew::Zipf(1.0),
            churn_period: 4_000,
            accesses_per_op: 100,
            cpu_per_op: 6_000,
            latency_tracked: true,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "Masstree",
            working_set: 192 * MB,
            alloc: AllocPattern::Gradual { chunk: 16 * MB },
            skew: AccessSkew::Zipf(0.95),
            churn_period: 6_000,
            accesses_per_op: 90,
            cpu_per_op: 4_000,
            latency_tracked: true,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "Specjbb",
            working_set: 192 * MB,
            alloc: AllocPattern::Gradual { chunk: 16 * MB },
            skew: AccessSkew::Zipf(0.8),
            churn_period: 5_000,
            accesses_per_op: 110,
            cpu_per_op: 7_000,
            latency_tracked: true,
            zero_heavy: true,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "Silo",
            working_set: 128 * MB,
            alloc: AllocPattern::Static,
            skew: AccessSkew::Zipf(0.9),
            churn_period: 0,
            accesses_per_op: 80,
            cpu_per_op: 5_000,
            latency_tracked: true,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "RocksDB",
            working_set: 256 * MB,
            alloc: AllocPattern::Gradual { chunk: 16 * MB },
            skew: AccessSkew::Zipf(0.99),
            churn_period: 2_500,
            accesses_per_op: 100,
            cpu_per_op: 5_000,
            latency_tracked: true,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "Redis",
            working_set: 256 * MB,
            alloc: AllocPattern::Gradual { chunk: 16 * MB },
            skew: AccessSkew::Zipf(0.99),
            churn_period: 2_500,
            accesses_per_op: 60,
            cpu_per_op: 3_000,
            latency_tracked: true,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "Memcached",
            working_set: 192 * MB,
            alloc: AllocPattern::Gradual { chunk: 16 * MB },
            skew: AccessSkew::Zipf(0.99),
            churn_period: 5_000,
            accesses_per_op: 50,
            cpu_per_op: 2_500,
            latency_tracked: true,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "Canneal",
            working_set: 192 * MB,
            alloc: AllocPattern::Static,
            skew: AccessSkew::Uniform,
            churn_period: 0,
            accesses_per_op: 200,
            cpu_per_op: 6_000,
            latency_tracked: false,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "Streamcluster",
            working_set: 128 * MB,
            alloc: AllocPattern::Static,
            skew: AccessSkew::Sequential,
            churn_period: 0,
            accesses_per_op: 250,
            cpu_per_op: 8_000,
            latency_tracked: false,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "dedup",
            working_set: 96 * MB,
            alloc: AllocPattern::Gradual { chunk: 8 * MB },
            skew: AccessSkew::Uniform,
            churn_period: 8_000,
            accesses_per_op: 150,
            cpu_per_op: 7_000,
            latency_tracked: false,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "CG.D",
            working_set: 256 * MB,
            alloc: AllocPattern::Static,
            skew: AccessSkew::Uniform,
            churn_period: 0,
            accesses_per_op: 220,
            cpu_per_op: 5_000,
            latency_tracked: false,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "429.mcf",
            working_set: 192 * MB,
            alloc: AllocPattern::Static,
            skew: AccessSkew::Uniform,
            churn_period: 0,
            accesses_per_op: 180,
            cpu_per_op: 4_000,
            latency_tracked: false,
            zero_heavy: false,
            tlb_sensitive: true,
        },
        WorkloadSpec {
            name: "SVM",
            working_set: 384 * MB,
            alloc: AllocPattern::Static,
            skew: AccessSkew::Uniform,
            churn_period: 0,
            accesses_per_op: 200,
            cpu_per_op: 5_000,
            latency_tracked: false,
            zero_heavy: false,
            tlb_sensitive: true,
        },
    ]
}

/// The non-TLB-sensitive workloads used for the overhead study (§6.5).
pub fn non_tlb_sensitive() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "Shore",
            working_set: 64 * MB,
            alloc: AllocPattern::Static,
            skew: AccessSkew::Zipf(0.6),
            churn_period: 0,
            accesses_per_op: 10,
            cpu_per_op: 120_000, // I/O-bound: translation is noise.
            latency_tracked: true,
            zero_heavy: false,
            tlb_sensitive: false,
        },
        WorkloadSpec {
            name: "SP.D",
            working_set: 128 * MB,
            alloc: AllocPattern::Static,
            skew: AccessSkew::Sequential,
            churn_period: 0,
            accesses_per_op: 20,
            cpu_per_op: 100_000, // Compute-bound.
            latency_tracked: false,
            zero_heavy: false,
            tlb_sensitive: false,
        },
    ]
}

/// Finds a workload by name across both catalogs.
pub fn spec_by_name(name: &str) -> Option<WorkloadSpec> {
    catalog()
        .into_iter()
        .chain(non_tlb_sensitive())
        .find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_2() {
        let names: Vec<&str> = catalog().iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 16);
        for expect in [
            "Img-dnn",
            "Sphinx",
            "Moses",
            "Xapian",
            "Masstree",
            "Specjbb",
            "Silo",
            "RocksDB",
            "Redis",
            "Memcached",
            "Canneal",
            "Streamcluster",
            "dedup",
            "CG.D",
            "429.mcf",
            "SVM",
        ] {
            assert!(names.contains(&expect), "{expect} missing");
        }
    }

    #[test]
    fn only_specjbb_is_zero_heavy() {
        let zh: Vec<&str> = catalog()
            .iter()
            .filter(|s| s.zero_heavy)
            .map(|s| s.name)
            .collect();
        assert_eq!(zh, vec!["Specjbb"]);
    }

    #[test]
    fn working_sets_exceed_base_tlb_coverage() {
        // 1536 entries × 4 KiB = 6 MiB: all TLB-sensitive sets must be far
        // beyond it, else the experiment regime is wrong.
        for s in catalog() {
            assert!(s.working_set >= 64 * MB, "{} too small", s.name);
        }
    }

    #[test]
    fn non_sensitive_have_heavy_cpu_per_op() {
        for s in non_tlb_sensitive() {
            assert!(!s.tlb_sensitive);
            assert!(s.cpu_per_op >= 100_000);
        }
    }

    #[test]
    fn lookup_by_name_spans_both_catalogs() {
        assert!(spec_by_name("Redis").is_some());
        assert!(spec_by_name("Shore").is_some());
        assert!(spec_by_name("nope").is_none());
    }

    #[test]
    fn scaling_shrinks_but_respects_floor() {
        let s = spec_by_name("Redis").unwrap();
        let t = s.scaled(1.0 / 64.0);
        assert_eq!(t.working_set, 4 * MB);
        if let AllocPattern::Gradual { chunk } = t.alloc {
            assert_eq!(chunk, 2 * MB, "chunk floor is one huge page");
        } else {
            panic!("Redis is gradual");
        }
        let tiny = s.scaled(1e-9);
        assert_eq!(tiny.working_set, 2 * MB, "floor");
    }
}

//! The workload event generator.
//!
//! A [`WorkloadGen`] is a deterministic iterator of [`WorkloadEvent`]s.
//! The whole-system simulator executes the events against a VM: `Alloc`
//! becomes an `mmap`, `Free` an `munmap`, `Touch` a memory access (with
//! demand faults on first touch), and `EndRequest` closes a latency-
//! tracked request and charges the op's pure-CPU work.
//!
//! Hot pages under a Zipf skew are *scattered* across the working set with
//! a multiplicative hash — real key-value stores do not keep their hottest
//! keys adjacent — which is what makes base-page TLB coverage collapse.

use crate::spec::{AccessSkew, AllocPattern, WorkloadSpec};
use gemini_sim_core::{DetRng, Zipf, BASE_PAGE_SIZE};

/// One event of a workload's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadEvent {
    /// Allocate a new chunk (the simulator mmaps it and remembers the
    /// mapping `chunk → VMA`).
    Alloc {
        /// Chunk handle, unique per workload run.
        chunk: usize,
        /// Chunk length in bytes.
        bytes: u64,
    },
    /// Free a previously allocated chunk.
    Free {
        /// Chunk handle from a previous [`WorkloadEvent::Alloc`].
        chunk: usize,
    },
    /// Touch one page of a live chunk.
    Touch {
        /// Chunk handle.
        chunk: usize,
        /// Page index within the chunk.
        page: u64,
    },
    /// End of one operation/request; charge this much pure CPU work.
    EndRequest {
        /// CPU cycles of non-memory work in the op.
        cpu: u64,
    },
}

/// A deterministic, exhaustible stream of workload events.
///
/// The simulator consumes event streams through this trait so a stream
/// can be produced lazily ([`WorkloadGen`]) or materialized up front
/// ([`PregenStream`]). Generation is a pure function of
/// `(spec, ops, seed)` — it never observes machine state — so the two
/// forms drive a machine through byte-identical trajectories; the
/// pre-generated form exists so a large cell can build its machine on
/// one worker thread while another generates the stream (intra-cell
/// sharding, DESIGN.md §13).
pub trait EventStream {
    /// The workload model the stream realizes.
    fn spec(&self) -> &WorkloadSpec;
    /// Produces the next event, or `None` when the run is complete.
    fn next_event(&mut self) -> Option<WorkloadEvent>;
}

/// A fully materialized workload event stream (see
/// [`WorkloadGen::pregenerate`]).
#[derive(Debug)]
pub struct PregenStream {
    spec: WorkloadSpec,
    events: std::vec::IntoIter<WorkloadEvent>,
}

impl PregenStream {
    /// Events not yet replayed.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }

    /// The not-yet-replayed tail of the stream, for lookahead without
    /// consuming events.
    pub fn peek_events(&self) -> &[WorkloadEvent] {
        self.events.as_slice()
    }

    /// Length of the run of consecutive [`WorkloadEvent::Touch`] events
    /// at the head of the stream that touch `chunk` and whose page
    /// satisfies `same_key`. See [`touch_run_len`].
    pub fn peek_run(&self, chunk: usize, same_key: impl FnMut(u64) -> bool) -> usize {
        touch_run_len(self.peek_events(), chunk, same_key)
    }
}

/// Length of the longest prefix of `events` consisting of `Touch` events
/// on `chunk` whose page index satisfies `same_key`.
///
/// This is the lookahead primitive behind closed-form hit-run batching
/// (DESIGN.md §16): the caller has just translated one touch and asks
/// how many of the immediately following events provably resolve to the
/// same TLB entry — same chunk, and `same_key(page)` capturing the
/// entry's granularity (exact page for a 4 KiB entry, same 2 MiB region
/// for a huge entry). Any non-`Touch` event, any other chunk, or the
/// first key mismatch ends the run; the caller falls back to the
/// faithful per-event path there.
pub fn touch_run_len(
    events: &[WorkloadEvent],
    chunk: usize,
    mut same_key: impl FnMut(u64) -> bool,
) -> usize {
    let mut n = 0;
    for ev in events {
        match *ev {
            WorkloadEvent::Touch { chunk: c, page } if c == chunk && same_key(page) => n += 1,
            _ => break,
        }
    }
    n
}

impl EventStream for PregenStream {
    fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn next_event(&mut self) -> Option<WorkloadEvent> {
        self.events.next()
    }
}

impl EventStream for WorkloadGen {
    fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn next_event(&mut self) -> Option<WorkloadEvent> {
        WorkloadGen::next_event(self)
    }
}

/// A mutable borrow streams the underlying stream. This lets a caller
/// keep ownership across [`gemini_vm_sim::Machine::run`]-style
/// by-value consumers — the trace replay path drives a machine with
/// `&mut TraceStream` and then asks the stream whether the trace ended
/// cleanly (`check_complete`), which requires the stream back.
///
/// [`gemini_vm_sim::Machine::run`]: ../../gemini_vm_sim/struct.Machine.html#method.run
impl<S: EventStream + ?Sized> EventStream for &mut S {
    fn spec(&self) -> &WorkloadSpec {
        (**self).spec()
    }

    fn next_event(&mut self) -> Option<WorkloadEvent> {
        (**self).next_event()
    }
}

/// Deterministic generator of one workload's events.
#[derive(Debug)]
pub struct WorkloadGen {
    /// The model being generated.
    pub spec: WorkloadSpec,
    rng: DetRng,
    zipf: Option<Zipf>,
    /// Live chunks as (handle, pages).
    live: Vec<(usize, u64)>,
    total_pages: u64,
    next_chunk: usize,
    ops_done: u64,
    target_ops: u64,
    seq_pos: u64,
    /// Queued events not yet drained.
    queue: std::collections::VecDeque<WorkloadEvent>,
    touches_left_in_op: u32,
}

impl WorkloadGen {
    /// Creates a generator that will run `target_ops` operations.
    pub fn new(spec: WorkloadSpec, target_ops: u64, seed: u64) -> Self {
        let zipf = match spec.skew {
            AccessSkew::Zipf(e) => Some(Zipf::new((spec.working_set / BASE_PAGE_SIZE).max(1), e)),
            _ => None,
        };
        let mut gen = Self {
            spec,
            rng: DetRng::new(seed),
            zipf,
            live: Vec::new(),
            total_pages: 0,
            next_chunk: 0,
            ops_done: 0,
            target_ops,
            seq_pos: 0,
            queue: std::collections::VecDeque::new(),
            touches_left_in_op: 0,
        };
        // Initial allocation.
        match gen.spec.alloc {
            AllocPattern::Static => gen.push_alloc(gen.spec.working_set),
            AllocPattern::Gradual { chunk } => gen.push_alloc(chunk.min(gen.spec.working_set)),
        }
        gen
    }

    /// Operations completed so far.
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    /// True when the run is complete.
    pub fn finished(&self) -> bool {
        self.ops_done >= self.target_ops && self.queue.is_empty()
    }

    /// Drains the generator into a materialized [`PregenStream`].
    ///
    /// Generation never reads machine state, so replaying the returned
    /// stream drives a machine through exactly the trajectory the live
    /// generator would have — this is what lets one worker generate
    /// events while another builds the machine (intra-cell sharding).
    pub fn pregenerate(mut self) -> PregenStream {
        // One op is `accesses_per_op` touches plus occasional alloc/free
        // traffic; reserve for the touches and let the rest amortize.
        let mut events =
            Vec::with_capacity((self.target_ops * u64::from(self.spec.accesses_per_op)) as usize);
        while let Some(ev) = WorkloadGen::next_event(&mut self) {
            events.push(ev);
        }
        PregenStream {
            spec: self.spec,
            events: events.into_iter(),
        }
    }

    fn push_alloc(&mut self, bytes: u64) {
        // Round up to a whole page (minimum one). A sub-page request
        // used to create a zero-page live chunk: untouchable itself,
        // but `locate`'s shrink-clamp takes `page % pages` on the last
        // live chunk, which divides by zero the moment such a chunk is
        // at the tail — real allocators page-align too, so rounding is
        // also the more faithful model.
        let bytes = bytes.div_ceil(BASE_PAGE_SIZE).max(1) * BASE_PAGE_SIZE;
        let chunk = self.next_chunk;
        self.next_chunk += 1;
        let pages = bytes / BASE_PAGE_SIZE;
        self.live.push((chunk, pages));
        self.total_pages += pages;
        self.queue.push_back(WorkloadEvent::Alloc { chunk, bytes });
    }

    fn push_free_oldest(&mut self) {
        if self.live.len() <= 1 {
            return;
        }
        let (chunk, pages) = self.live.remove(0);
        self.total_pages -= pages;
        self.queue.push_back(WorkloadEvent::Free { chunk });
    }

    /// Maps a global page index to (chunk handle, page-in-chunk).
    fn locate(&self, mut page: u64) -> (usize, u64) {
        for &(chunk, pages) in &self.live {
            if page < pages {
                return (chunk, page);
            }
            page -= pages;
        }
        // Shrunk since the index was drawn: clamp into the last chunk.
        let &(chunk, pages) = self.live.last().expect("at least one live chunk");
        (chunk, page % pages)
    }

    /// Draws the next page to touch according to the skew.
    fn draw_page(&mut self) -> u64 {
        let n = self.total_pages.max(1);
        match self.spec.skew {
            AccessSkew::Uniform => self.rng.below(n),
            AccessSkew::Sequential => {
                self.seq_pos = (self.seq_pos + 1) % n;
                self.seq_pos
            }
            AccessSkew::Zipf(_) => {
                let rank = self
                    .zipf
                    .as_ref()
                    .expect("zipf sampler built in new()")
                    .sample(&mut self.rng);
                // Scatter ranks over the working set deterministically so
                // hot pages are not adjacent.
                rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % n
            }
        }
    }

    fn begin_op(&mut self) {
        // Growth: gradual workloads add a chunk every so often until the
        // working set is reached.
        if let AllocPattern::Gradual { chunk } = self.spec.alloc {
            let target_pages = self.spec.working_set / BASE_PAGE_SIZE;
            if self.total_pages < target_pages {
                let interval =
                    (self.target_ops / ((self.spec.working_set / chunk).max(1) + 1)).max(1);
                if self.ops_done % interval == 0 && self.ops_done > 0 {
                    self.push_alloc(chunk.min((target_pages - self.total_pages) * BASE_PAGE_SIZE));
                }
            }
            // Churn: replace the oldest chunk periodically.
            if self.spec.churn_period > 0
                && self.ops_done > 0
                && self.ops_done % self.spec.churn_period == 0
            {
                self.push_free_oldest();
                self.push_alloc(chunk);
            }
        }
        self.touches_left_in_op = self.spec.accesses_per_op;
    }

    /// Produces the next event, or `None` when finished.
    pub fn next_event(&mut self) -> Option<WorkloadEvent> {
        if let Some(ev) = self.queue.pop_front() {
            return Some(ev);
        }
        if self.ops_done >= self.target_ops {
            return None;
        }
        if self.touches_left_in_op == 0 {
            self.begin_op();
            // begin_op may queue alloc/free events; emit those first.
            if let Some(ev) = self.queue.pop_front() {
                return Some(ev);
            }
        }
        if self.touches_left_in_op > 1 {
            self.touches_left_in_op -= 1;
            let page = self.draw_page();
            let (chunk, in_chunk) = self.locate(page);
            Some(WorkloadEvent::Touch {
                chunk,
                page: in_chunk,
            })
        } else {
            self.touches_left_in_op = 0;
            self.ops_done += 1;
            Some(WorkloadEvent::EndRequest {
                cpu: self.spec.cpu_per_op,
            })
        }
    }
}

impl Iterator for WorkloadGen {
    type Item = WorkloadEvent;

    fn next(&mut self) -> Option<WorkloadEvent> {
        self.next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec_by_name;

    fn small(name: &str) -> WorkloadSpec {
        spec_by_name(name).unwrap().scaled(1.0 / 32.0)
    }

    #[test]
    fn static_workload_allocates_once_then_touches() {
        let mut g = WorkloadGen::new(small("Canneal"), 10, 1);
        let first = g.next_event().unwrap();
        assert!(matches!(first, WorkloadEvent::Alloc { chunk: 0, .. }));
        let mut touches = 0;
        let mut requests = 0;
        for ev in g.by_ref() {
            match ev {
                WorkloadEvent::Touch { .. } => touches += 1,
                WorkloadEvent::EndRequest { cpu } => {
                    requests += 1;
                    assert_eq!(cpu, spec_by_name("Canneal").unwrap().cpu_per_op);
                }
                WorkloadEvent::Alloc { .. } | WorkloadEvent::Free { .. } => {
                    panic!("static workload must not alloc/free again")
                }
            }
        }
        assert_eq!(requests, 10);
        // accesses_per_op includes the request end (one op = N-1 touches +
        // boundary).
        assert_eq!(touches, 10 * (200 - 1));
        assert!(g.finished());
    }

    #[test]
    fn gradual_workload_grows_to_working_set() {
        let spec = small("Redis");
        let target = spec.working_set;
        let mut g = WorkloadGen::new(spec, 20_000, 2);
        let mut allocated = 0u64;
        let mut freed = 0u64;
        let mut sizes = std::collections::HashMap::new();
        for ev in g.by_ref() {
            match ev {
                WorkloadEvent::Alloc { chunk, bytes } => {
                    allocated += bytes;
                    sizes.insert(chunk, bytes);
                }
                WorkloadEvent::Free { chunk } => freed += sizes[&chunk],
                _ => {}
            }
        }
        assert!(allocated - freed >= target * 9 / 10, "grew to ~working set");
        assert!(freed > 0, "churn freed something");
    }

    #[test]
    fn touches_stay_within_live_chunks() {
        let spec = small("RocksDB");
        let mut g = WorkloadGen::new(spec, 5_000, 3);
        let mut live: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for ev in g.by_ref() {
            match ev {
                WorkloadEvent::Alloc { chunk, bytes } => {
                    live.insert(chunk, bytes / BASE_PAGE_SIZE);
                }
                WorkloadEvent::Free { chunk } => {
                    live.remove(&chunk);
                }
                WorkloadEvent::Touch { chunk, page } => {
                    let pages = live.get(&chunk).copied().unwrap_or(0);
                    assert!(page < pages, "touch outside live chunk");
                }
                WorkloadEvent::EndRequest { .. } => {}
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<_> = WorkloadGen::new(small("Xapian"), 200, 42).collect();
        let b: Vec<_> = WorkloadGen::new(small("Xapian"), 200, 42).collect();
        assert_eq!(a, b);
        let c: Vec<_> = WorkloadGen::new(small("Xapian"), 200, 43).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_concentrates_touches() {
        let mut g = WorkloadGen::new(small("Redis"), 2_000, 7);
        let mut counts: std::collections::HashMap<(usize, u64), u64> =
            std::collections::HashMap::new();
        let mut total = 0u64;
        for ev in g.by_ref() {
            if let WorkloadEvent::Touch { chunk, page } = ev {
                *counts.entry((chunk, page)).or_insert(0) += 1;
                total += 1;
            }
        }
        let mut freq: Vec<u64> = counts.into_values().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top100: u64 = freq.iter().take(100).sum();
        assert!(
            top100 as f64 / total as f64 > 0.25,
            "hot pages should dominate: {}",
            top100 as f64 / total as f64
        );
    }

    #[test]
    fn sub_page_chunks_round_up_instead_of_panicking() {
        // A gradual workload whose chunk is smaller than one base page
        // used to create a zero-page live chunk and then panic with a
        // division by zero inside `locate`'s shrink-clamp path. Every
        // alloc must now be a whole number of pages (>= 1) and the run
        // must complete.
        use crate::spec::{AccessSkew, AllocPattern, WorkloadSpec};
        let spec = WorkloadSpec {
            name: "tiny-chunks",
            working_set: 3 * BASE_PAGE_SIZE,
            alloc: AllocPattern::Gradual {
                chunk: BASE_PAGE_SIZE / 8,
            },
            skew: AccessSkew::Uniform,
            churn_period: 7,
            accesses_per_op: 5,
            cpu_per_op: 100,
            latency_tracked: false,
            zero_heavy: false,
            tlb_sensitive: true,
        };
        let mut g = WorkloadGen::new(spec, 500, 11);
        let mut live: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        let mut allocs = 0;
        for ev in g.by_ref() {
            match ev {
                WorkloadEvent::Alloc { chunk, bytes } => {
                    allocs += 1;
                    assert!(bytes >= BASE_PAGE_SIZE, "sub-page alloc of {bytes} bytes");
                    assert_eq!(
                        bytes % BASE_PAGE_SIZE,
                        0,
                        "unaligned alloc of {bytes} bytes"
                    );
                    live.insert(chunk, bytes / BASE_PAGE_SIZE);
                }
                WorkloadEvent::Free { chunk } => {
                    live.remove(&chunk);
                }
                WorkloadEvent::Touch { chunk, page } => {
                    assert!(page < live[&chunk], "touch outside live chunk");
                }
                WorkloadEvent::EndRequest { .. } => {}
            }
        }
        assert!(g.finished());
        assert!(allocs > 1, "churn must have replaced chunks");
        // Zipf skew exercises the multiplicative-hash scatter over the
        // same tiny chunks; DetRng keeps both runs reproducible.
        let spec2 = WorkloadSpec {
            name: "tiny-chunks-zipf",
            skew: AccessSkew::Zipf(0.99),
            alloc: AllocPattern::Gradual { chunk: 512 },
            ..small("Redis")
        };
        let events: Vec<_> = WorkloadGen::new(spec2, 300, 13).collect();
        assert!(!events.is_empty());
    }

    #[test]
    fn sequential_sweeps_in_order() {
        let mut g = WorkloadGen::new(small("Streamcluster"), 3, 1);
        let mut last = None;
        for ev in g.by_ref() {
            if let WorkloadEvent::Touch { page, .. } = ev {
                if let Some(prev) = last {
                    assert!(page == prev + 1 || page == 0, "sequential");
                }
                last = Some(page);
            }
        }
    }

    #[test]
    fn touch_run_len_stops_at_key_chunk_and_event_boundaries() {
        use WorkloadEvent::{EndRequest, Touch};
        let evs = [
            Touch { chunk: 0, page: 8 },
            Touch { chunk: 0, page: 9 },
            Touch { chunk: 0, page: 8 },
            Touch { chunk: 1, page: 8 }, // Other chunk ends the run.
            Touch { chunk: 0, page: 8 },
        ];
        // Huge-style key: same 16-page region.
        assert_eq!(touch_run_len(&evs, 0, |p| p / 16 == 0), 3);
        // Base-style key: exact page.
        assert_eq!(touch_run_len(&evs, 0, |p| p == 8), 1);
        // Wrong chunk from the start.
        assert_eq!(touch_run_len(&evs, 2, |_| true), 0);
        // A non-touch event ends the run immediately.
        let evs2 = [EndRequest { cpu: 10 }, Touch { chunk: 0, page: 8 }];
        assert_eq!(touch_run_len(&evs2, 0, |_| true), 0);
        assert_eq!(touch_run_len(&[], 0, |_| true), 0);
    }

    #[test]
    fn peek_run_matches_the_consumed_stream() {
        // peek_run must agree with what next_event subsequently yields,
        // and must not consume anything.
        let spec = small("Streamcluster");
        let gen = WorkloadGen::new(spec, 40, 7);
        let stream = gen.pregenerate();
        let total = stream.remaining();
        let head = stream.peek_events().first().copied();
        if let Some(WorkloadEvent::Touch { chunk, page }) = head {
            let run = stream.peek_run(chunk, |p| p == page);
            let mut s = stream;
            assert_eq!(s.remaining(), total, "peek must not consume");
            for _ in 0..run {
                assert_eq!(s.next_event(), Some(WorkloadEvent::Touch { chunk, page }));
            }
            let next = s.next_event();
            assert_ne!(
                next,
                Some(WorkloadEvent::Touch { chunk, page }),
                "run must be maximal"
            );
        } else {
            // First event is an Alloc for every catalog spec; the run API
            // must report zero there.
            assert_eq!(stream.peek_run(0, |_| true), 0);
        }
    }
}

//! Memory fragmenter.
//!
//! The paper evaluates every system with and without fragmented memory,
//! using a program that drives the free-memory fragmentation index (FMFI)
//! to a target (§6.1). This module reproduces that tool for any buddy
//! allocator: it allocates a large fraction of memory as single frames and
//! frees a random, non-coalescing subset, shattering large free blocks
//! until the target FMFI at huge-page order is reached.

use gemini_buddy::BuddyAllocator;
use gemini_sim_core::{DetRng, HUGE_PAGE_ORDER};

/// Fragments `buddy` until its order-9 fragmentation index reaches at
/// least `target_fmfi`, holding roughly `hold_fraction` of total memory
/// allocated (as other tenants / long-lived kernel objects would).
///
/// Returns the frames left permanently allocated by the fragmenter, so the
/// caller can later release them if the scenario requires. Deterministic
/// for a given `rng` state.
pub fn fragment_to(
    buddy: &mut BuddyAllocator,
    target_fmfi: f64,
    hold_fraction: f64,
    rng: &mut DetRng,
) -> Vec<u64> {
    if target_fmfi <= 0.0 {
        return Vec::new();
    }
    // Grab as many single frames as needed, then free all but a pinned,
    // spread-out subset. Freeing every frame whose index is even within
    // its huge region would fully coalesce; keeping one pinned frame per
    // huge region prevents order-9 blocks from reforming.
    let total = buddy.total_frames();
    let want_hold = ((total as f64) * hold_fraction) as u64;
    // The whole-memory alloc/free churn is a bulk operation: suspend the
    // run index and let the allocator rebuild it once at the end, so the
    // setup costs O(frames), not O(frames x log runs) of map traffic.
    let pinned = buddy.bulk_update(|buddy| {
        // Equivalent to `while let Ok(f) = buddy.alloc(0)` but one pass.
        let mut grabbed = buddy.drain_singles();
        // Decide pins: one random frame per huge region, plus extras until
        // the hold fraction is met.
        let mut pinned = Vec::new();
        let mut released = Vec::new();
        // Group by huge region via a stable sort: regions come out
        // ascending and frames keep their grab order within each region,
        // exactly as the former map-of-vecs grouping produced them — the
        // RNG draw sequence (and thus the pin layout) is unchanged.
        grabbed.sort_by_key(|&f| f >> HUGE_PAGE_ORDER);
        let mut rest = grabbed.as_slice();
        while let Some(&first) = rest.first() {
            let region = first >> HUGE_PAGE_ORDER;
            let n = rest.partition_point(|&f| f >> HUGE_PAGE_ORDER == region);
            let (frames, tail) = rest.split_at(n);
            rest = tail;
            let keep = rng.below(frames.len() as u64) as usize;
            for (i, &f) in frames.iter().enumerate() {
                if i == keep {
                    pinned.push(f);
                } else {
                    released.push(f);
                }
            }
        }
        // Release non-pinned frames in random order; keep extras pinned
        // until the hold fraction is satisfied.
        rng.shuffle(&mut released);
        while (pinned.len() as u64) < want_hold {
            match released.pop() {
                Some(f) => pinned.push(f),
                None => break,
            }
        }
        // Free order cannot affect the end state (eager merging makes the
        // decomposition of a free-frame set unique), so release in bulk.
        buddy
            .free_singles(&released)
            .expect("fragmenter owns these frames");
        pinned
    });
    // If the target is not yet reached (e.g. pins landed unluckily), the
    // one-pin-per-region layout already maximizes order-9 fragmentation;
    // nothing more to do. Report only — the caller can check the index.
    let _ = buddy.fragmentation_index(HUGE_PAGE_ORDER) >= target_fmfi;
    pinned
}

/// Ongoing multi-tenant churn: the counterpart of the one-shot fragmenter.
///
/// The paper's environment is a multi-tenant cloud where "memory quickly
/// fragments" *continuously* — other tenants keep allocating and freeing,
/// so large free blocks are a transient resource that compaction creates
/// and neighbours consume. Without this pressure any asynchronous
/// coalescing policy converges to perfect alignment given enough time,
/// which real systems never get. Each step the tenant breaks the largest
/// free runs with short-lived single-frame allocations and releases the
/// expired ones.
#[derive(Debug)]
pub struct TenantChurn {
    /// (frame, allocation time), oldest first.
    held: std::collections::VecDeque<(u64, gemini_sim_core::Cycles)>,
    rng: DetRng,
    /// Frames taken over the tenant's lifetime (stats).
    pub breaks_total: u64,
}

impl TenantChurn {
    /// Creates a tenant with its own random stream.
    pub fn new(rng: DetRng) -> Self {
        Self {
            held: std::collections::VecDeque::new(),
            rng,
            breaks_total: 0,
        }
    }

    /// One churn step: release intrusions older than `hold`, then split
    /// up to `breaks` of the largest free runs with one-frame
    /// allocations. Returns frames taken this step.
    pub fn step(
        &mut self,
        buddy: &mut BuddyAllocator,
        now: gemini_sim_core::Cycles,
        breaks: usize,
        hold: gemini_sim_core::Cycles,
    ) -> u64 {
        while let Some(&(frame, t)) = self.held.front() {
            if now.saturating_sub(t) < hold {
                break;
            }
            self.held.pop_front();
            buddy.free(frame, 0).expect("tenant owned this frame");
        }
        let mut taken = 0;
        for _ in 0..breaks {
            // Break a random run big enough to matter for order-9
            // contiguity (not always the largest: compaction gets a
            // fighting chance to finish assembling blocks). Candidate
            // count and the address-ordered n-th pick both come off the
            // allocator's run index — no Vec materialisation.
            let min_len = gemini_sim_core::PAGES_PER_HUGE_PAGE / 2;
            let count = buddy.count_runs_at_least(min_len);
            if count == 0 {
                break;
            }
            let (start, len) = buddy
                .nth_run_at_least(min_len, self.rng.below(count))
                .expect("count bounds the pick index");
            let frame = start + len / 4 + self.rng.below(len / 2);
            if buddy.alloc_at(frame, 0).is_ok() {
                self.held.push_back((frame, now));
                taken += 1;
                self.breaks_total += 1;
            }
        }
        taken
    }

    /// Frames currently held by the tenant.
    pub fn held(&self) -> usize {
        self.held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmenter_raises_fmfi() {
        let mut b = BuddyAllocator::new(16384);
        assert_eq!(b.fragmentation_index(HUGE_PAGE_ORDER), 0.0);
        let mut rng = DetRng::new(1);
        let pins = fragment_to(&mut b, 0.9, 0.1, &mut rng);
        assert!(!pins.is_empty());
        let idx = b.fragmentation_index(HUGE_PAGE_ORDER);
        assert!(idx > 0.9, "fmfi {idx}");
        // No order-9 block survives.
        assert_eq!(b.free_blocks_of_order(HUGE_PAGE_ORDER), 0);
        b.check_invariants().unwrap();
    }

    #[test]
    fn fragmenter_holds_requested_fraction() {
        let mut b = BuddyAllocator::new(16384);
        let mut rng = DetRng::new(2);
        let pins = fragment_to(&mut b, 0.5, 0.25, &mut rng);
        assert!(pins.len() as u64 >= 16384 / 4);
        assert_eq!(b.used_frames(), pins.len() as u64);
    }

    #[test]
    fn zero_target_is_a_no_op() {
        let mut b = BuddyAllocator::new(1024);
        let mut rng = DetRng::new(3);
        let pins = fragment_to(&mut b, 0.0, 0.5, &mut rng);
        assert!(pins.is_empty());
        assert_eq!(b.free_frames(), 1024);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut b1 = BuddyAllocator::new(8192);
        let mut b2 = BuddyAllocator::new(8192);
        let p1 = fragment_to(&mut b1, 0.8, 0.1, &mut DetRng::new(7));
        let p2 = fragment_to(&mut b2, 0.8, 0.1, &mut DetRng::new(7));
        assert_eq!(p1, p2);
        assert_eq!(b1.free_runs(), b2.free_runs());
    }

    #[test]
    fn tenant_churn_breaks_large_runs_and_releases() {
        use gemini_sim_core::Cycles;
        let mut b = BuddyAllocator::new(4096);
        let mut t = TenantChurn::new(DetRng::new(4));
        let taken = t.step(&mut b, Cycles(0), 3, Cycles(100));
        assert_eq!(taken, 3);
        assert_eq!(t.held(), 3);
        assert!(b.largest_free_run() < 4096);
        // After the hold expires, intrusions come back.
        t.step(&mut b, Cycles(200), 0, Cycles(100));
        assert_eq!(t.held(), 0);
        assert_eq!(b.free_frames(), 4096);
        b.check_invariants().unwrap();
    }

    #[test]
    fn tenant_skips_small_runs() {
        use gemini_sim_core::Cycles;
        let mut b = BuddyAllocator::new(128); // Largest run < 256.
        let mut t = TenantChurn::new(DetRng::new(5));
        assert_eq!(t.step(&mut b, Cycles(0), 4, Cycles(100)), 0);
        assert_eq!(t.held(), 0);
    }

    #[test]
    fn pins_can_be_released_to_heal_memory() {
        let mut b = BuddyAllocator::new(4096);
        let mut rng = DetRng::new(9);
        let pins = fragment_to(&mut b, 0.9, 0.05, &mut rng);
        for f in pins {
            b.free(f, 0).unwrap();
        }
        assert_eq!(b.free_frames(), 4096);
        assert_eq!(b.free_runs(), vec![(0, 4096)]);
    }
}

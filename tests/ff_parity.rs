//! Fast-path parity suite (DESIGN.md §13 and §16).
//!
//! The fast-forward core elides daemon passes that are provably no-ops
//! (every deadline in [`next_daemon_wakeup`] lies in the future) and
//! runs resident touches through a tight loop; closed-form hit-run
//! batching additionally advances counters, cost and the virtual clock
//! over provably hit-only access runs without touching the TLB arrays.
//! Neither shortcut is allowed to change *any* simulated state: this
//! suite runs every scenario in the registry with each fast path on
//! and off — same DetRng-derived seeds, same workload stream — and
//! requires the full `RunResult` (every MMU counter, alignment stat,
//! latency figure and fragmentation index) to be byte-identical
//! between the paths.
//!
//! [`next_daemon_wakeup`]: ../crates/vm-sim/src/machine.rs

use gemini_harness::runner::{
    record_workload_on, replay_trace_on, run_workload_on, run_workload_reused, run_workload_sharded,
};
use gemini_harness::{trace, Scale};
use gemini_obs::{Profiler, Recorder, TraceConfig};
use gemini_vm_sim::{RunResult, SystemKind, REGISTRY};
use gemini_workloads::spec_by_name;

/// A scale small enough for 2×12 scenario runs per test, large enough
/// that daemons actually fire (and the fast-forward path has real
/// passes to skip).
fn parity_scale(no_ff: bool) -> Scale {
    Scale {
        ops: 1_200,
        no_ff,
        ..Scale::quick()
    }
}

/// Same sizing, toggling hit-run batching instead of fast-forward
/// (fast-forward stays on — batching only exists inside its chunked
/// access loop, so this is the pair that isolates the batch path).
fn batch_scale(no_batch: bool) -> Scale {
    Scale {
        no_batch,
        ..parity_scale(false)
    }
}

/// Requires byte-identity on both comparison surfaces: the complete
/// debug rendering (all counters) and the JSON export line (what the
/// experiment grids serialize).
fn assert_identical(label: &str, fast: &RunResult, faithful: &RunResult) {
    assert_eq!(
        format!("{fast:?}"),
        format!("{faithful:?}"),
        "{label}: fast-forward diverged from the faithful path"
    );
    assert_eq!(
        trace::result_json(fast),
        trace::result_json(faithful),
        "{label}: JSON export diverged"
    );
}

#[test]
fn every_registry_scenario_matches_faithful_clean_slate() {
    let spec = spec_by_name("Redis").expect("Redis is in the catalog");
    for (system, sspec) in REGISTRY {
        let fast = run_workload_on(*system, &spec, &parity_scale(false), false, 7).unwrap();
        let faithful = run_workload_on(*system, &spec, &parity_scale(true), false, 7).unwrap();
        assert_identical(sspec.label, &fast, &faithful);
        assert_eq!(fast.ops, 1_200, "{}: run truncated", sspec.label);
    }
}

#[test]
fn every_registry_scenario_matches_faithful_fragmented() {
    // Fragmentation pre-conditioning exercises the fault/compaction
    // paths the clean-slate leg barely touches.
    let spec = spec_by_name("Canneal").expect("Canneal is in the catalog");
    for (system, sspec) in REGISTRY {
        let fast = run_workload_on(*system, &spec, &parity_scale(false), true, 11).unwrap();
        let faithful = run_workload_on(*system, &spec, &parity_scale(true), true, 11).unwrap();
        assert_identical(sspec.label, &fast, &faithful);
    }
}

#[test]
fn reused_vm_scenario_matches_faithful() {
    // The reused-VM runner chains two workloads in one machine; the
    // second run starts from non-zero clocks and warm TLBs, so its
    // daemon deadlines are mid-flight when fast-forward kicks in.
    let spec = spec_by_name("Xapian").expect("Xapian is in the catalog");
    for (system, sspec) in REGISTRY.iter().filter(|(_, s)| s.evaluated) {
        let fast = run_workload_reused(*system, &spec, &parity_scale(false), 13).unwrap();
        let faithful = run_workload_reused(*system, &spec, &parity_scale(true), 13).unwrap();
        assert_identical(sspec.label, &fast, &faithful);
    }
}

#[test]
fn sharded_runner_matches_plain_at_every_jobs_setting() {
    // Intra-cell sharding overlaps machine construction with workload
    // pre-generation on a worker pool; neither the pool size nor the
    // pre-generation may leak into simulated state. Fragmented cells
    // make construction genuinely expensive (buddy pre-conditioning),
    // so the shards really do run concurrently at jobs >= 2.
    let spec = spec_by_name("Canneal").expect("Canneal is in the catalog");
    for (system, sspec) in REGISTRY.iter().filter(|(_, s)| s.evaluated) {
        let plain = run_workload_on(*system, &spec, &parity_scale(false), true, 7).unwrap();
        for jobs in [1usize, 2, 4] {
            let scale = Scale {
                jobs,
                ..parity_scale(false)
            };
            let sharded = run_workload_sharded(
                *system,
                &spec,
                &scale,
                true,
                7,
                &Recorder::off(),
                &Profiler::off(),
            )
            .unwrap();
            assert_identical(&format!("{}/jobs{jobs}", sspec.label), &sharded, &plain);
        }
    }
}

#[test]
fn sharded_runner_reports_shard_progress() {
    let spec = spec_by_name("Redis").expect("Redis is in the catalog");
    let rec = Recorder::new(&TraceConfig::all());
    let scale = Scale {
        jobs: 2,
        ..parity_scale(false)
    };
    run_workload_sharded(
        SystemKind::Gemini,
        &spec,
        &scale,
        false,
        5,
        &rec,
        &Profiler::off(),
    )
    .unwrap();
    assert_eq!(rec.registry().counter("exec.shards_submitted"), 2);
    assert_eq!(rec.registry().counter("exec.shards_finished"), 2);
}

#[test]
fn fleet_host_matches_faithful() {
    // The fleet driver caches one daemon wakeup per resident VM and
    // fast-forwards between lifecycle events; with `--no-ff` it runs a
    // daemon pass after every request batch instead. The whole
    // `HostRun` — every per-VM result, churn counter, end-state figure
    // and sampled series point — must be byte-identical either way.
    use gemini_harness::experiments::fleet;
    for &system in &fleet::SYSTEMS {
        let fast = fleet::run_host(system, &parity_scale(false), 0).unwrap();
        let faithful = fleet::run_host(system, &parity_scale(true), 0).unwrap();
        assert_eq!(
            format!("{fast:?}"),
            format!("{faithful:?}"),
            "fleet/{}: fast-forward diverged across VM lifecycles",
            system.label()
        );
    }
}

#[test]
fn fleet_grid_is_byte_identical_at_any_jobs() {
    // One executor cell per (system, host): worker count may only move
    // the wall clock, never the simulated fleet.
    use gemini_harness::experiments::fleet;
    let seq = fleet::run(&Scale {
        jobs: 1,
        ..parity_scale(false)
    })
    .unwrap();
    for jobs in [2usize, 4] {
        let par = fleet::run(&Scale {
            jobs,
            ..parity_scale(false)
        })
        .unwrap();
        assert_eq!(
            format!("{:?}", seq.runs),
            format!("{:?}", par.runs),
            "fleet grid diverged at jobs={jobs}"
        );
    }
}

#[test]
fn parity_holds_across_seeds_and_workloads() {
    // A small sweep over seeds × workloads on the paper's headline
    // system, so the invariant is not an artifact of one stream shape.
    for workload in ["Redis", "SVM", "Memcached"] {
        let spec = spec_by_name(workload).expect("catalog workload");
        for seed in [1u64, 42, 4242] {
            let fast = run_workload_on(
                gemini_vm_sim::SystemKind::Gemini,
                &spec,
                &parity_scale(false),
                false,
                seed,
            )
            .unwrap();
            let faithful = run_workload_on(
                gemini_vm_sim::SystemKind::Gemini,
                &spec,
                &parity_scale(true),
                false,
                seed,
            )
            .unwrap();
            assert_identical(&format!("{workload}/seed{seed}"), &fast, &faithful);
        }
    }
}

#[test]
fn every_registry_scenario_matches_no_batch_clean_slate() {
    let spec = spec_by_name("Redis").expect("Redis is in the catalog");
    for (system, sspec) in REGISTRY {
        let batched = run_workload_on(*system, &spec, &batch_scale(false), false, 7).unwrap();
        let plain = run_workload_on(*system, &spec, &batch_scale(true), false, 7).unwrap();
        assert_identical(sspec.label, &batched, &plain);
        assert_eq!(batched.ops, 1_200, "{}: run truncated", sspec.label);
    }
}

#[test]
fn every_registry_scenario_matches_no_batch_fragmented() {
    // Fragmented memory keeps base and huge entries mixed in the L1s,
    // so batch windows keep opening and closing on promotions,
    // demotions and shootdowns — the epoch-guard paths, not just the
    // happy run.
    let spec = spec_by_name("Canneal").expect("Canneal is in the catalog");
    for (system, sspec) in REGISTRY {
        let batched = run_workload_on(*system, &spec, &batch_scale(false), true, 11).unwrap();
        let plain = run_workload_on(*system, &spec, &batch_scale(true), true, 11).unwrap();
        assert_identical(sspec.label, &batched, &plain);
    }
}

#[test]
fn reused_vm_scenario_matches_no_batch() {
    // The second workload starts on warm TLBs, so batching engages from
    // the very first chunk instead of after a fill ramp.
    let spec = spec_by_name("Xapian").expect("Xapian is in the catalog");
    for (system, sspec) in REGISTRY.iter().filter(|(_, s)| s.evaluated) {
        let batched = run_workload_reused(*system, &spec, &batch_scale(false), 13).unwrap();
        let plain = run_workload_reused(*system, &spec, &batch_scale(true), 13).unwrap();
        assert_identical(sspec.label, &batched, &plain);
    }
}

#[test]
fn fleet_host_matches_no_batch() {
    // Lifecycle churn (VM arrivals/departures, clear_workload, host
    // rebalancing) hammers the invalidation paths that bump the
    // stability epoch; the fleet leg proves the guard composes with
    // all of it.
    use gemini_harness::experiments::fleet;
    for &system in &fleet::SYSTEMS {
        let batched = fleet::run_host(system, &batch_scale(false), 0).unwrap();
        let plain = fleet::run_host(system, &batch_scale(true), 0).unwrap();
        assert_eq!(
            format!("{batched:?}"),
            format!("{plain:?}"),
            "fleet/{}: hit-run batching diverged across VM lifecycles",
            system.label()
        );
    }
}

#[test]
fn recorded_trace_replays_identically_with_batching_on_and_off() {
    // Record once (batched), then replay the same trace through both
    // batch settings: live, batched replay and --no-batch replay must
    // agree byte-for-byte, so traces recorded before and after this PR
    // stay interchangeable.
    use gemini_workloads::TraceStream;
    let spec = spec_by_name("Canneal").expect("Canneal is in the catalog");
    let live = run_workload_on(SystemKind::Gemini, &spec, &batch_scale(false), true, 17).unwrap();
    let mut trace_bytes = Vec::new();
    let (recorded, events) = record_workload_on(
        SystemKind::Gemini,
        &spec,
        &batch_scale(false),
        "quick",
        true,
        17,
        &mut trace_bytes,
    )
    .unwrap();
    assert!(events > 0);
    assert_identical("record-tee", &recorded, &live);
    for no_batch in [false, true] {
        let mut stream = TraceStream::new(std::io::Cursor::new(trace_bytes.clone())).unwrap();
        let replayed = replay_trace_on(
            SystemKind::Gemini,
            &mut stream,
            &batch_scale(no_batch),
            true,
        )
        .unwrap();
        assert_identical(&format!("replay/no_batch={no_batch}"), &replayed, &live);
    }
}

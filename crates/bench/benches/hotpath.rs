#![allow(missing_docs)]
//! End-to-end hot-path benchmark: times whole experiment cells through the
//! same [`gemini_harness::bench`] module `gemini-sim bench` uses, so the
//! Criterion numbers and the `BENCH_pr4.json` report measure the same
//! code path. Covers the PR-4 reference cell (fragmented GEMINI/Canneal)
//! and a jobs sweep over the fig3 motivation grid.

use criterion::{criterion_group, criterion_main, Criterion};
use gemini_bench::bench_scale;
use gemini_harness::bench::{run_bench, run_reference_cell};

fn bench_reference_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);
    g.bench_function("reference_cell", |b| {
        b.iter(|| run_reference_cell().expect("reference cell runs"));
    });
    g.finish();
}

fn bench_full_report(c: &mut Criterion) {
    let scale = bench_scale();
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);
    g.bench_function("full_report_jobs1", |b| {
        b.iter(|| run_bench(&scale, "bench", 1).expect("bench grid runs"));
    });
    g.finish();
}

criterion_group!(benches, bench_reference_cell, bench_full_report);
criterion_main!(benches);
